//! The Nixon diamond: combining incomparable evidence (paper §5.3,
//! Theorem 5.26) — where reference-class reasoning gives up, random worlds
//! independently derives Dempster's rule of combination.
//!
//! ```sh
//! cargo run --example nixon_diamond
//! ```

use random_worlds::core::theorems::dempster_rule;
use random_worlds::core::Belief;
use random_worlds::prelude::*;

fn nixon_kb(quaker_stat: &str, republican_stat: &str) -> KnowledgeBase {
    KnowledgeBase::parse(&format!(
        "||Pacifist(x) | Quaker(x)||_x {quaker_stat}; \
         ||Pacifist(x) | Republican(x)||_x {republican_stat}; \
         Quaker(Nixon); Republican(Nixon); \
         exists! x (Quaker(x) & Republican(x))"
    ))
    .unwrap()
}

fn main() {
    let engine = RandomWorlds::new();

    // Two bodies of evidence both at 0.8: combined support *exceeds* 0.8.
    let r = engine
        .degree_of_belief(&nixon_kb("~=_1 0.8", "~=_2 0.8"), "Pacifist(Nixon)")
        .unwrap();
    println!("α = β = 0.8   → {r}");
    assert!((r.belief.as_point().unwrap() - 16.0 / 17.0).abs() < 1e-9);

    // A neutral second class (β = 0.5) defers entirely to the first.
    let r = engine
        .degree_of_belief(&nixon_kb("~=_1 0.7", "~=_2 0.5"), "Pacifist(Nixon)")
        .unwrap();
    println!("α = 0.7, β = 0.5 → {r}");
    assert!((r.belief.as_point().unwrap() - 0.7).abs() < 1e-9);

    // A hard default (α = 1) dominates soft contrary evidence.
    let r = engine
        .degree_of_belief(&nixon_kb("~=_1 1", "~=_2 0.3"), "Pacifist(Nixon)")
        .unwrap();
    println!("α = 1,  β = 0.3 → {r}");
    assert!(r.belief.is_one());

    // Conflicting hard defaults with *unspecified* relative strength: the
    // double limit does not exist — the belief depends on how the
    // tolerances shrink (the multiple-extensions phenomenon).
    let r = engine
        .degree_of_belief(&nixon_kb("~=_1 1", "~=_2 0"), "Pacifist(Nixon)")
        .unwrap();
    println!("α = 1,  β = 0  (indices 1,2) → {r}");
    assert!(matches!(r.belief, Belief::NonRobust(_)));

    // Declaring the defaults equally strong — the *same* tolerance index —
    // restores a robust answer: 1/2.
    let r = engine
        .degree_of_belief(&nixon_kb("~=_1 1", "~=_1 0"), "Pacifist(Nixon)")
        .unwrap();
    println!("α = 1,  β = 0  (shared index) → {r}");
    assert_eq!(r.belief.as_point(), Some(0.5));

    // The Dempster surface (the paper's footnote-14 example is the point
    // α = β = 0.2, where evidence *against* compounds: δ ≈ 0.059).
    println!("\nδ(α, β) surface:");
    print!("        ");
    for beta in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        print!("β={beta:.1}   ");
    }
    println!();
    for alpha in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        print!("α={alpha:.1}   ");
        for beta in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
            print!("{:.4}  ", dempster_rule(&[alpha, beta]));
        }
        println!();
    }
}
