//! Default reasoning over a taxonomy: Tweety, penguins, and inheritance —
//! including the exceptional-subclass and drowning problems that defeat
//! most default logics (paper §3.3, Examples 5.10 and 5.19–5.21).
//!
//! ```sh
//! cargo run --example taxonomy_defaults
//! ```

use random_worlds::prelude::*;

fn main() {
    // Defaults are statistics: `A(x) ->_i B(x)` abbreviates
    // `||B(x) | A(x)||_x ~=_i 1` ("almost all A are B", §4.3).
    let kb = KnowledgeBase::parse(
        "Bird(x) ->_1 Fly(x); \
         Penguin(x) ->_2 !Fly(x); \
         Bird(x) ->_3 Warm-blooded(x); \
         Yellow(x) ->_4 Easy-to-see(x); \
         forall x (Penguin(x) => Bird(x)); \
         Penguin(Tweety); Yellow(Tweety)",
    )
    .unwrap();
    let engine = RandomWorlds::new();

    // Specificity: the penguin default defeats the bird default.
    let r = engine.degree_of_belief(&kb, "Fly(Tweety)").unwrap();
    println!("Fly(Tweety)          = {r}");
    assert!(r.belief.is_zero());

    // Exceptional-subclass inheritance: being an atypical bird with respect
    // to flight does not block inheriting warm-bloodedness.
    let r = engine
        .degree_of_belief(&kb, "Warm-blooded(Tweety)")
        .unwrap();
    println!("Warm-blooded(Tweety) = {r}");
    assert!(r.belief.is_one());

    // The drowning problem: yellow things are easy to see, and Tweety's
    // exceptionality as a bird is no reason to doubt it.
    let r = engine.degree_of_belief(&kb, "Easy-to-see(Tweety)").unwrap();
    println!("Easy-to-see(Tweety)  = {r}");
    assert!(r.belief.is_one());

    // The default-inference relation |~rw (belief = 1) satisfies the KLM
    // laws (Thm 5.3); e.g. And:
    assert!(engine
        .follows_by_default(&kb, "!Fly(Tweety) & Warm-blooded(Tweety)")
        .unwrap());

    // Goodwin's moody magpies (Example 5.25): statistics from a *subclass*
    // the individual may or may not belong to still pull the answer below
    // the superclass value — reference-class systems would ignore them.
    let magpies = KnowledgeBase::parse(
        "||Chirps(x) | Bird(x)||_x ~=_1 0.9; \
         ||Chirps(x) | Magpie(x) & Moody(x)||_x ~=_2 0.2; \
         forall x (Magpie(x) => Bird(x)); \
         Magpie(Tweety)",
    )
    .unwrap();
    let r = engine.degree_of_belief(&magpies, "Chirps(Tweety)").unwrap();
    println!("moody-magpie belief  = {r}");
    let v = r.belief.as_point().unwrap();
    assert!(
        v < 0.9 - 1e-3,
        "must be pulled below the bird statistic: {v}"
    );

    // Poole's broken-arm disjunction (Example 5.4): knowing one arm is
    // broken (but not which), exactly one arm is believed usable.
    let arms = KnowledgeBase::parse(
        "||LeftUsable(x)||_x ~=_1 1; ||LeftUsable(x) | LeftBroken(x)||_x ~=_2 0; \
         ||RightUsable(x)||_x ~=_3 1; ||RightUsable(x) | RightBroken(x)||_x ~=_4 0; \
         LeftBroken(Eric) or RightBroken(Eric)",
    )
    .unwrap();
    let one_usable = engine
        .degree_of_belief(
            &arms,
            "(LeftUsable(Eric) or RightUsable(Eric)) & !(LeftUsable(Eric) & RightUsable(Eric))",
        )
        .unwrap();
    println!("exactly one arm usable = {one_usable}");
    assert!(one_usable.belief.is_one());
}
