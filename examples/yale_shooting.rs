//! The Yale Shooting Problem (paper §7.1): representation matters.
//!
//! §7.1 states that "random worlds gives unintuitive results when used with
//! the most straightforward representations of temporal knowledge", and
//! that an appropriate (causal) representation repairs this [BGHK94a,
//! Hun89]. Both halves are measurable.
//!
//! Domain elements are *scenarios*; fluents are unary predicates indexed by
//! time (`L0`, `L1` = gun loaded; `A0`, `A1`, `A2` = Fred alive). The
//! timeline is load (so `L0`), wait (0 → 1), shoot at 1, observe at 2. The
//! effect axiom is hard: a loaded gun at 1 means Fred is dead at 2.
//!
//! **Naive representation** — per-fluent persistence defaults
//! (`||L1|L0|| ≈ 1`, `||A2|A1|| ≈ 1`, …): the intended outcome (gun stays
//! loaded, Fred dies) violates the alive-persistence default, while the
//! anomalous outcome (gun mysteriously unloads while waiting, Fred lives)
//! violates the loaded-persistence default. One violation each — the
//! Hanks–McDermott standoff — so random worlds refuses to conclude death:
//! a middling belief at shared tolerances, a *non-robust* limit at
//! distinct ones.
//!
//! **Causal representation** — each fluent's next value is conditioned on
//! the *whole previous state* (`||A2 | A1 ∧ ¬L1|| ≈ 1`): the alive-
//! persistence statistic now simply does not apply when the gun is loaded,
//! the intended outcome violates nothing, and death is concluded with
//! belief 1.
//!
//! ```sh
//! cargo run --release --example yale_shooting
//! ```

use random_worlds::prelude::*;

const FACTS: &str = "forall x (L1(x) => !A2(x)); L0(S); A0(S)";

fn main() {
    let engine = RandomWorlds::new();

    println!("── Naive frame defaults, shared tolerance ──");
    let naive_shared = KnowledgeBase::parse(&format!(
        "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_1 1; \
         ||A2(x) | A1(x)||_x ~=_1 1; {FACTS}"
    ))
    .unwrap();
    let alive = engine.degree_of_belief(&naive_shared, "A2(S)").unwrap();
    println!("  Pr(Alive at 2) = {alive}");
    println!("  → neither death nor survival is concluded: the anomaly.");
    let v = alive
        .belief
        .as_point()
        .expect("shared-τ standoff is a point");
    assert!(v > 0.05 && v < 0.95, "middling belief expected, got {v}");

    println!("\n── Naive frame defaults, distinct tolerances ──");
    let naive_distinct = KnowledgeBase::parse(&format!(
        "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_2 1; \
         ||A2(x) | A1(x)||_x ~=_3 1; {FACTS}"
    ))
    .unwrap();
    let alive = engine.degree_of_belief(&naive_distinct, "A2(S)").unwrap();
    println!("  Pr(Alive at 2) = {alive}");
    println!("  → the limit depends on how τ⃗ → 0: the multiple-extensions analogue.");
    assert!(matches!(alive.belief, Belief::NonRobust(_)));

    println!("\n── Causal representation: condition on the full past state ──");
    let causal = KnowledgeBase::parse(&format!(
        "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_2 1; \
         ||A2(x) | A1(x) & !L1(x)||_x ~=_3 1; {FACTS}"
    ))
    .unwrap();
    let loaded = engine.degree_of_belief(&causal, "L1(S)").unwrap();
    let alive = engine.degree_of_belief(&causal, "A2(S)").unwrap();
    println!("  Pr(Loaded at 1) = {loaded}");
    println!("  Pr(Alive at 2)  = {alive}");
    println!("  → persistence chains forward and the shooting kills: intended.");
    assert!(loaded.belief.is_one());
    assert!(alive.belief.is_zero());
}
