//! The lottery paradox (paper §3.5 and §5.5): graded beliefs dissolve the
//! paradox that defeats all-or-nothing default logics.
//!
//! ```sh
//! cargo run --example lottery
//! ```

use random_worlds::logic::Tolerances;
use random_worlds::prelude::*;
use random_worlds::unary;

fn main() {
    // A lottery with exactly one winner among the ticket holders; everyone
    // in the domain holds a ticket.
    let mut kb = KnowledgeBase::parse(
        "exists! x (Winner(x)); \
         forall x (Winner(x) => Ticket(x)); \
         forall x (Ticket(x)); \
         Ticket(C)",
    )
    .unwrap();
    let win = kb.parse_query("Winner(C)").unwrap();
    let someone = kb.parse_query("exists x (Winner(x))").unwrap();

    // With a known lottery size N the belief is exactly 1/N (the unary
    // engine counts worlds exactly — no asymptotics needed).
    let tol = Tolerances::uniform(rw_util::Rat::new(1, 10));
    println!("known lottery size:");
    for n in [10usize, 100, 1000] {
        let p = unary::degree_of_belief_at(&kb, &win, n, &tol)
            .unwrap()
            .unwrap();
        println!(
            "  N = {n:>5}: Pr(Winner(C)) = {p:.6}  (1/N = {:.6})",
            1.0 / n as f64
        );
        assert!((p - 1.0 / n as f64).abs() < 1e-12);
        let s = unary::degree_of_belief_at(&kb, &someone, n, &tol)
            .unwrap()
            .unwrap();
        assert_eq!(s, 1.0, "someone certainly wins");
    }

    // Unknown (large) N: the degree of belief that C wins tends to 0, while
    // the belief that *someone* wins stays exactly 1 — Lifschitz's tension
    // between the instance conclusion and the universal dissolves in a
    // probabilistic setting (§5.5).
    println!("\nunknown lottery size (N → ∞):");
    let engine = RandomWorlds::new();
    let r = engine.degree_of_belief(&kb, "Winner(C)").unwrap();
    println!("  Pr(Winner(C))          = {r}");
    assert!(r.belief.is_zero());
    let r = engine
        .degree_of_belief(&kb, "exists x (Winner(x))")
        .unwrap();
    println!("  Pr(exists x Winner(x)) = {r}");
    assert!(r.belief.is_one());

    // But the universal "no one wins" is *not* concluded:
    let r = engine
        .degree_of_belief(&kb, "forall x (!Winner(x))")
        .unwrap();
    println!("  Pr(forall x !Winner(x)) = {r}");
    assert!(r.belief.is_zero());

    // Poole's variant: declaring a class the union of finitely many
    // *exceptional* (ε-small) subclasses is inconsistent under the
    // statistical reading — the method rejects the KB instead of quietly
    // breaking a desideratum (§5.5).
    let poole = KnowledgeBase::parse(
        "forall x (Bird(x) <=> Penguin(x) or Emu(x)); \
         forall x (!(Penguin(x) & Emu(x))); \
         Bird(x) ->_1 !Penguin(x); \
         Bird(x) ->_2 !Emu(x); \
         exists x (Bird(x))",
    )
    .unwrap();
    let r = engine.degree_of_belief(&poole, "Penguin(C) or Emu(C) or !Bird(C)");
    match r {
        Ok(res) => {
            println!("\nPoole partition KB: {res}");
            assert!(
                matches!(res.belief, random_worlds::core::Belief::Undefined),
                "the partition-of-exceptions KB must be eventually inconsistent"
            );
        }
        Err(e) => println!("\nPoole partition KB rejected: {e}"),
    }
}
