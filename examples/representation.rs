//! Representation dependence (paper §7.2): how the *choice of vocabulary*
//! shifts maximum-entropy degrees of belief — and which queries are robust
//! to it.
//!
//! ```sh
//! cargo run --example representation
//! ```

use random_worlds::prelude::*;

fn main() {
    let engine = RandomWorlds::new();

    // A single color predicate: indifference gives Pr(White) = 1/2.
    let kb1 = KnowledgeBase::parse("true").unwrap();
    let r1 = engine.degree_of_belief(&kb1, "White(B)").unwrap();
    println!("one predicate:      Pr(White(B)) = {r1}");
    assert!((r1.belief.as_point().unwrap() - 0.5).abs() < 1e-9);

    // Refine ¬White into a disjoint union of Red and Blue: the three-way
    // partition now gets 1/3 each.
    let kb2 = KnowledgeBase::parse(
        "forall x (!White(x) <=> Red(x) or Blue(x)); \
         forall x (!(Red(x) & Blue(x))); \
         forall x (White(x) => !Red(x) & !Blue(x))",
    )
    .unwrap();
    let r2 = engine.degree_of_belief(&kb2, "White(B)").unwrap();
    println!("refined vocabulary: Pr(White(B)) = {r2}");
    assert!((r2.belief.as_point().unwrap() - 1.0 / 3.0).abs() < 2e-3);

    // The paper's Bird/Fly vs Bird/FlyingBird example: the query the KB
    // actually constrains (does Tweety fly?) is robust at 0.5 under both
    // representations, while the *unconstrained* query Pr(Bird(Opus))
    // shifts from 1/2 to 2/3 — a diagnosis, not a bug: the KB contains no
    // justified value for it.
    let fly_rep = KnowledgeBase::parse("||Fly(x) | Bird(x)||_x ~=_1 0.5; Bird(Tweety)").unwrap();
    let fb_rep = KnowledgeBase::parse(
        "||FlyingBird(x) | Bird(x)||_x ~=_1 0.5; \
         forall x (FlyingBird(x) => Bird(x)); Bird(Tweety)",
    )
    .unwrap();

    let t1 = engine.degree_of_belief(&fly_rep, "Fly(Tweety)").unwrap();
    let t2 = engine
        .degree_of_belief(&fb_rep, "FlyingBird(Tweety)")
        .unwrap();
    println!("\nPr(Tweety flies), Fly representation:        {t1}");
    println!("Pr(Tweety flies), FlyingBird representation: {t2}");
    assert!((t1.belief.as_point().unwrap() - 0.5).abs() < 1e-6);
    assert!((t2.belief.as_point().unwrap() - 0.5).abs() < 1e-3);

    let o1 = engine.degree_of_belief(&fly_rep, "Bird(Opus)").unwrap();
    let o2 = engine.degree_of_belief(&fb_rep, "Bird(Opus)").unwrap();
    println!("\nPr(Bird(Opus)), Fly representation:          {o1}");
    println!("Pr(Bird(Opus)), FlyingBird representation:   {o2}");
    assert!((o1.belief.as_point().unwrap() - 0.5).abs() < 1e-3);
    assert!((o2.belief.as_point().unwrap() - 2.0 / 3.0).abs() < 2e-3);
}
