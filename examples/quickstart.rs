//! Quickstart: from a statistical knowledge base to a degree of belief.
//!
//! The opening example of the paper — a doctor deciding how strongly to
//! believe that Eric, a patient with jaundice, has hepatitis, given the
//! statistic that about 80% of jaundiced patients do.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use random_worlds::prelude::*;

fn main() {
    // A knowledge base in L≈: statistical statements use proportion
    // expressions `||φ | ψ||_x` with approximate comparisons `~=_i`;
    // ordinary first-order facts sit alongside them.
    let kb = KnowledgeBase::parse(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; \
         Jaun(Eric)",
    )
    .expect("knowledge base parses");

    let engine = RandomWorlds::new();

    // Pr∞(Hep(Eric) | KB) — the random-worlds degree of belief: count all
    // first-order models of size N satisfying the KB, condition, and take
    // N → ∞ then tolerance → 0. Here the direct-inference theorem (Thm 5.6)
    // answers exactly 0.8 without any counting.
    let result = engine.degree_of_belief(&kb, "Hep(Eric)").unwrap();
    println!("Pr(Hep(Eric) | KB) = {result}");
    assert_eq!(result.belief.as_point(), Some(0.8));

    // Extra information about *other* individuals is ignored (Example 5.8)…
    let mut kb2 = kb.clone();
    kb2.assert("Hep(Tom)").unwrap();
    let r2 = engine.degree_of_belief(&kb2, "Hep(Eric)").unwrap();
    println!("…and with Hep(Tom) added:   {r2}");
    assert_eq!(r2.belief.as_point(), Some(0.8));

    // …and so is irrelevant information about Eric himself (Thm 5.16).
    let mut kb3 = kb.clone();
    kb3.assert("Tall(Eric)").unwrap();
    kb3.assert("Fever(Eric)").unwrap();
    let r3 = engine.degree_of_belief(&kb3, "Hep(Eric)").unwrap();
    println!("…and with Tall/Fever facts: {r3}");
    assert_eq!(r3.belief.as_point(), Some(0.8));

    // Degrees of belief are not just theorem lookups: queries with no
    // tailored statistic go through the maximum-entropy engine (§6 of the
    // paper). An unconstrained new predicate gets belief 1/2.
    let r4 = engine.degree_of_belief(&kb, "Diabetic(Eric)").unwrap();
    println!("Pr(Diabetic(Eric) | KB) = {r4}");
    assert!((r4.belief.as_point().unwrap() - 0.5).abs() < 1e-6);
}
