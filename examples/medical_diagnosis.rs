//! Medical diagnosis: specificity, irrelevance and competing evidence on a
//! richer knowledge base (paper Examples 5.8, 5.18 and §5.3).
//!
//! ```sh
//! cargo run --example medical_diagnosis
//! ```

use random_worlds::core::theorems::dempster_rule;
use random_worlds::prelude::*;
use random_worlds::refclass::{reference_class_belief, SelectionRule};

fn main() {
    // The paper's KB_hep: general statistics, a more specific statistic for
    // jaundice + fever, and patient records for Eric.
    let kb = KnowledgeBase::parse(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; \
         ||Hep(x)||_x <~_2 0.05; \
         ||Hep(x) | Jaun(x) & Fever(x)||_x ~=_3 1; \
         forall x (Hep(x) => Jaun(x)); \
         Jaun(Eric)",
    )
    .unwrap();
    let engine = RandomWorlds::new();

    // With only jaundice on record, the most specific class with statistics
    // is Jaun: belief 0.8 — the population rate (0.05) and the
    // jaundice+fever statistic are *not* used (Example 5.18).
    let r = engine.degree_of_belief(&kb, "Hep(Eric)").unwrap();
    println!("jaundice only:            {r}");

    // Once fever is on record the more specific class takes over: belief 1.
    let mut kb_fever = kb.clone();
    kb_fever.assert("Fever(Eric)").unwrap();
    let r = engine.degree_of_belief(&kb_fever, "Hep(Eric)").unwrap();
    println!("jaundice + fever:         {r}");
    assert!(r.belief.is_one());

    // Tallness is irrelevant and ignored (Thm 5.16).
    let mut kb_tall = kb_fever.clone();
    kb_tall.assert("Tall(Eric)").unwrap();
    let r = engine.degree_of_belief(&kb_tall, "Hep(Eric)").unwrap();
    println!("…plus an irrelevant fact: {r}");
    assert!(r.belief.is_one());

    // Competing risk factors with no joint statistic (paper §2.3's Fred):
    // classical reference-class systems give up; random worlds combines the
    // evidence with Dempster's rule (Thm 5.26).
    let fred = KnowledgeBase::parse(
        "||Heart-disease(x) | Cholesterol(x)||_x ~=_1 0.15; \
         ||Heart-disease(x) | Smoker(x)||_x ~=_2 0.09; \
         Cholesterol(Fred); Smoker(Fred); \
         exists! x (Cholesterol(x) & Smoker(x))",
    )
    .unwrap();
    let rw = engine
        .degree_of_belief(&fred, "Heart-disease(Fred)")
        .unwrap();
    let baseline = reference_class_belief(
        &fred,
        "Heart-disease(Fred)",
        SelectionRule::SpecificityThenStrength,
    )
    .unwrap();
    println!("two risk factors, random worlds:    {rw}");
    println!("two risk factors, reference class:  {baseline:?}");
    let expected = dempster_rule(&[0.15, 0.09]);
    assert!((rw.belief.as_point().unwrap() - expected).abs() < 1e-9);

    // Tay-Sachs (paper Example 5.22): a *disjunctive* reference class —
    // outlawed by Kyburg and Pollock — is used without fuss.
    let ts = KnowledgeBase::parse("||TS(x) | EEJ(x) or FC(x)||_x ~=_1 0.02; EEJ(Eric)").unwrap();
    let mut ts_kb = ts.clone();
    ts_kb
        .assert("forall x (EEJ(x) => EEJ(x) or FC(x))")
        .unwrap();
    let r = engine.degree_of_belief(&ts_kb, "TS(Eric)").unwrap();
    println!("Tay-Sachs via disjunctive class:    {r}");
    assert!((r.belief.as_point().unwrap() - 0.02).abs() < 1e-3);
}
