//! The §7.3 learning experiments: random worlds cannot learn from samples;
//! the random-propensities prior can — and sometimes learns too much.
//!
//! Three scenarios, each contrasting the uniform prior (random worlds)
//! with the per-predicate propensity prior of [BGHK92] and Carnap's `m*`:
//!
//! 1. **Sampling**: 75% of a sampled half-population has property `P`;
//!    what about an unsampled individual?
//! 2. **Succession**: three named observations (2 positive, 1 negative);
//!    Laplace's rule of succession says (2+1)/(3+2) = 0.6.
//! 3. **The giraffe**: from `∀x (Giraffe(x) ⇒ Tall(x))` alone, propensities
//!    drift toward "everything is tall" — the over-eagerness the paper
//!    criticizes.
//!
//! ```sh
//! cargo run --release --example propensity_learning
//! ```

use random_worlds::logic::Tolerances;
use random_worlds::prelude::*;
use random_worlds::propensity::{giraffe, sampling, succession, Prior, PropensityEngine};

fn show(name: &str, trend: &[(usize, Option<f64>)]) {
    print!("  {name:<22}");
    for (n, v) in trend {
        match v {
            Some(v) => print!("  N={n}: {v:.4}"),
            None => print!("  N={n}: ∅"),
        }
    }
    println!();
}

fn run_scenario(s: &random_worlds::propensity::Scenario, ns: &[usize], tau: Rat) {
    let tol = Tolerances::uniform(tau);
    let uniform: Vec<(usize, Option<f64>)> = ns
        .iter()
        .map(|&n| {
            (
                n,
                random_worlds::unary::degree_of_belief_at(&s.kb, &s.query, n, &tol).unwrap(),
            )
        })
        .collect();
    show("random worlds", &uniform);
    for (label, prior) in [
        ("per-predicate [BGHK92]", Prior::PerPredicate),
        ("Carnap m*", Prior::CarnapStar),
    ] {
        let engine = PropensityEngine::new(prior);
        let trend = engine.belief_trend(&s.kb, &s.query, ns, &tol).unwrap();
        show(label, &trend);
    }
    println!(
        "  paper's expectation: random worlds → {:.3}{}",
        s.random_worlds_expected,
        match s.propensity_expected {
            Some(v) => format!(", propensities → ≈{v:.3}"),
            None => ", propensities drift toward 1".to_string(),
        }
    );
}

fn main() {
    let tau = Rat::new(1, 10);

    println!("── Sampling: ||P|S|| ≈ 0.75, ||S|| ≈ 0.5, query P(C) with ¬S(C) ──");
    run_scenario(&sampling(75), &[16, 32, 48], tau);
    println!(
        "  note: m* stays at 1/2 — Dirichlet aggregation means the atom prior\n\
         \u{20}       cannot transfer sample statistics across the S boundary;\n\
         \u{20}       only per-predicate propensities learn here."
    );

    println!("\n── Succession: P(C1), P(C2), ¬P(C3), query P(Fresh) ──");
    run_scenario(&succession(2, 3), &[32, 64, 128], tau);

    println!("\n── Giraffe: ∀x (G(x) ⇒ T(x)), query T(C) ──");
    run_scenario(&giraffe(), &[16, 48, 96], tau);
    println!(
        "  random worlds holds at 2/3 (uniform over the three allowed atoms);\n\
         \u{20} per-predicate propensities keep climbing — \"learns too often\"."
    );
}
