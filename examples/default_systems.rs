//! Comparing default-reasoning systems (paper §3, §6): System P
//! (ε-semantics), System Z, GMP90's maximum-entropy plausibility (via the
//! Theorem 6.1 embedding), and full random worlds — on the benchmark
//! problems the paper uses to position them.
//!
//! ```sh
//! cargo run --example default_systems
//! ```

use random_worlds::epsilon::prop::VarTable;
use random_worlds::epsilon::{me_plausible, p_entails, z_entails, DefaultRule};
use random_worlds::prelude::*;

fn main() {
    let mut vt = VarTable::new();
    let mut rules = vec![
        DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
        DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("!fly").unwrap()),
        DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("bird").unwrap()),
        DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("warm").unwrap()),
    ];

    let penguin = vt.parse("penguin").unwrap();
    let no_fly = vt.parse("!fly").unwrap();
    let warm = vt.parse("warm").unwrap();

    println!("query: penguin → ¬fly (specificity)");
    println!("  System P:     {}", p_entails(&rules, &penguin, &no_fly));
    println!("  System Z:     {:?}", z_entails(&rules, &penguin, &no_fly));
    println!(
        "  ME-plausible: {:?}",
        me_plausible(&rules, &vt, &penguin, &no_fly)
    );

    println!("\nquery: penguin → warm-blooded (exceptional-subclass inheritance)");
    let p = p_entails(&rules, &penguin, &warm);
    let z = z_entails(&rules, &penguin, &warm);
    let me = me_plausible(&rules, &vt, &penguin, &warm);
    println!("  System P:     {p}   (too weak: no inheritance at all)");
    println!("  System Z:     {z:?}   (the drowning problem, §3.3)");
    println!("  ME-plausible: {me:?}   (inherits — Thm 6.1 = unary random worlds)");
    assert!(!p);
    assert_eq!(z, Some(false));
    assert!(me.unwrap());

    // The drowning problem proper: yellow things are easy to see.
    rules.push(DefaultRule::new(
        vt.parse("yellow").unwrap(),
        vt.parse("see").unwrap(),
    ));
    let yellow_penguin = vt.parse("penguin & yellow").unwrap();
    let see = vt.parse("see").unwrap();
    println!("\nquery: yellow penguin → easy-to-see (drowning problem)");
    println!(
        "  System Z:     {:?}",
        z_entails(&rules, &yellow_penguin, &see)
    );
    println!(
        "  ME-plausible: {:?}",
        me_plausible(&rules, &vt, &yellow_penguin, &see)
    );

    // Full random worlds is not limited to propositional rules: the
    // elephant–zookeeper example (paper §3.4/Example 4.4) needs an open
    // default over *pairs*, which no propositional system can express.
    println!("\nelephant–zookeeper (first-order defaults, Example 5.12):");
    let kb = KnowledgeBase::parse(
        "||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1; \
         ||Likes(x, Fred) | Elephant(x)||_x ~=_2 0; \
         Zookeeper(Fred); Elephant(Clyde); Zookeeper(Eric)",
    )
    .unwrap();
    let engine = RandomWorlds::new();
    let likes_eric = engine.degree_of_belief(&kb, "Likes(Clyde, Eric)").unwrap();
    let likes_fred = engine.degree_of_belief(&kb, "Likes(Clyde, Fred)").unwrap();
    println!("  Likes(Clyde, Eric) = {likes_eric}");
    println!("  Likes(Clyde, Fred) = {likes_fred}");
    assert!(likes_eric.belief.is_one());
    assert!(likes_fred.belief.is_zero());

    // And nested defaults (Example 4.6/5.14): people who normally go to bed
    // late normally rise late.
    let kb = KnowledgeBase::parse(
        "|| ||Rises-late(x, y) | Day(y)||_y ~=_1 1 | ||To-bed-late(x, z) | Day(z)||_z ~=_2 1 ||_x ~=_3 1; \
         ||To-bed-late(Alice, z) | Day(z)||_z ~=_2 1; \
         Day(Tomorrow)",
    )
    .unwrap();
    let r = engine
        .degree_of_belief(&kb, "Rises-late(Alice, Tomorrow)")
        .unwrap();
    println!("\nnested default (bed-late): Rises-late(Alice, Tomorrow) = {r}");
    assert!(r.belief.is_one());
}
