//! The paper's §3 benchmark problems run through the *classical*
//! nonmonotonic systems — Reiter's default logic, circumscription, and
//! lexicographic entailment — side by side with random worlds, reproducing
//! each system's documented failure mode:
//!
//! * Nixon diamond: Reiter splits into two extensions (no answer);
//! * Poole's broken arm (Example 5.4): Reiter's unique extension claims
//!   BOTH arms usable because default logic fails the Or rule;
//! * specificity: the naive normal encoding loses it, the RC81 semi-normal
//!   guard recovers it (at the cost of modularity);
//! * the lottery: circumscription never concludes any individual loses;
//! * drowning: System Z blocks unrelated inheritance, lexicographic
//!   entailment and random worlds do not.
//!
//! ```sh
//! cargo run --example classical_comparators
//! ```

use random_worlds::defaults::{
    circ_entails, extensions, lex_entails, minimal_models, skeptical, CircPolicy, Default,
    DefaultTheory,
};
use random_worlds::epsilon::prop::VarTable;
use random_worlds::epsilon::{z_entails, DefaultRule};
use random_worlds::prelude::*;

fn nixon() {
    println!("── Nixon diamond ──");
    let mut vt = VarTable::new();
    let mut t = DefaultTheory::new();
    t.fact_str(&mut vt, "quaker & republican").unwrap();
    t.normal_str(&mut vt, "quaker", "pacifist").unwrap();
    t.normal_str(&mut vt, "republican", "!pacifist").unwrap();
    let exts = extensions(&t, vt.len());
    println!("  Reiter: {} extensions → no skeptical answer", exts.len());
    assert_eq!(exts.len(), 2);

    let kb = KnowledgeBase::parse(
        "||Pacifist(x) | Quaker(x)||_x ~=_1 0.9; \
         ||Pacifist(x) | Republican(x)||_x ~=_2 0.1; \
         Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
    )
    .unwrap();
    let rw = RandomWorlds::new()
        .degree_of_belief(&kb, "Pacifist(Nixon)")
        .unwrap();
    println!("  random worlds (0.9 vs 0.1): {rw}");
}

fn broken_arm() {
    println!("\n── Poole's broken arm (Example 5.4) ──");
    let mut vt = VarTable::new();
    let mut t = DefaultTheory::new();
    t.fact_str(&mut vt, "lb or rb").unwrap();
    t.normal_str(&mut vt, "true", "lu").unwrap();
    t.normal_str(&mut vt, "true", "ru").unwrap();
    t.normal_str(&mut vt, "lb", "!lu").unwrap();
    t.normal_str(&mut vt, "rb", "!ru").unwrap();
    let both = vt.parse("lu & ru").unwrap();
    let exts = extensions(&t, vt.len());
    println!(
        "  Reiter: {} extension(s); both arms usable? {}",
        exts.len(),
        skeptical(&t, vt.len(), &both)
    );
    assert!(
        skeptical(&t, vt.len(), &both),
        "the anomaly the paper cites"
    );

    // Random worlds: the Or/And rules give `exactly one arm usable`.
    let kb = KnowledgeBase::parse(
        "||LeftUsable(x)||_x ~=_1 1; ||LeftUsable(x) | LeftBroken(x)||_x ~=_2 0; \
         ||RightUsable(x)||_x ~=_3 1; ||RightUsable(x) | RightBroken(x)||_x ~=_4 0; \
         LeftBroken(Eric) or RightBroken(Eric)",
    )
    .unwrap();
    let engine = RandomWorlds::new();
    let one_usable = engine
        .follows_by_default(
            &kb,
            "(LeftUsable(Eric) or RightUsable(Eric)) & \
             !(LeftUsable(Eric) & RightUsable(Eric))",
        )
        .unwrap();
    println!("  random worlds: exactly one arm usable? {one_usable}");
    assert!(one_usable);
}

fn specificity_encodings() {
    println!("\n── Specificity under Reiter encodings ──");
    let mut vt = VarTable::new();
    let mut naive = DefaultTheory::new();
    naive.fact_str(&mut vt, "penguin").unwrap();
    naive.fact_str(&mut vt, "penguin => bird").unwrap();
    naive.normal_str(&mut vt, "bird", "fly").unwrap();
    naive.normal_str(&mut vt, "penguin", "!fly").unwrap();
    let no_fly = vt.parse("!fly").unwrap();
    println!(
        "  naive normal encoding: {} extensions, ¬fly skeptical? {}",
        extensions(&naive, vt.len()).len(),
        skeptical(&naive, vt.len(), &no_fly)
    );

    let mut guarded = DefaultTheory::new();
    guarded.fact_str(&mut vt, "penguin").unwrap();
    guarded.fact_str(&mut vt, "penguin => bird").unwrap();
    guarded.default_rule(Default::semi_normal(
        vt.parse("bird").unwrap(),
        vt.parse("fly").unwrap(),
        vt.parse("!penguin").unwrap(),
    ));
    guarded.normal_str(&mut vt, "penguin", "!fly").unwrap();
    println!(
        "  RC81 semi-normal guard:  {} extension,  ¬fly skeptical? {}",
        extensions(&guarded, vt.len()).len(),
        skeptical(&guarded, vt.len(), &no_fly)
    );
    assert!(!skeptical(&naive, vt.len(), &no_fly));
    assert!(skeptical(&guarded, vt.len(), &no_fly));
}

fn lottery() {
    println!("\n── Lottery paradox under circumscription (§3.5) ──");
    let mut vt = VarTable::new();
    let t = vt
        .parse("(w1 or w2 or w3) & (w1 => !w2 & !w3) & (w2 => !w1 & !w3) & (w3 => !w1 & !w2)")
        .unwrap();
    let policy = CircPolicy::minimize(vec![0, 1, 2]);
    let minimal = minimal_models(&t, &policy, vt.len());
    let not_w1 = vt.parse("!w1").unwrap();
    let someone = vt.parse("w1 or w2 or w3").unwrap();
    println!(
        "  {} minimal models; ¬Winner(1) entailed? {}; someone wins? {}",
        minimal.len(),
        circ_entails(&t, &policy, vt.len(), &not_w1),
        circ_entails(&t, &policy, vt.len(), &someone)
    );

    // Random worlds instead grades the belief: Pr(Winner(c)) = 1/N.
    let kb = KnowledgeBase::parse(
        "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); \
         forall x (Ticket(x)); Ticket(C)",
    )
    .unwrap();
    let rw = RandomWorlds::new().degree_of_belief(&kb, "Winner(C)");
    println!(
        "  random worlds, N unknown: Pr(Winner(C)) = {}",
        rw.unwrap()
    );
}

fn drowning() {
    println!("\n── Drowning problem: Z vs lexicographic vs random worlds ──");
    let mut vt = VarTable::new();
    let rules = vec![
        DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
        DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("!fly").unwrap()),
        DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("bird").unwrap()),
        DefaultRule::new(vt.parse("yellow").unwrap(), vt.parse("see").unwrap()),
    ];
    let yp = vt.parse("yellow & penguin").unwrap();
    let see = vt.parse("see").unwrap();
    println!(
        "  System Z:      {:?}  (drowns)",
        z_entails(&rules, &yp, &see)
    );
    println!("  lexicographic: {:?}", lex_entails(&rules, &yp, &see));

    let kb = KnowledgeBase::parse(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         forall x (Penguin(x) => Bird(x)); Yellow(x) ->_3 EasyToSee(x); \
         Penguin(Tweety); Yellow(Tweety)",
    )
    .unwrap();
    let rw = RandomWorlds::new()
        .degree_of_belief(&kb, "EasyToSee(Tweety)")
        .unwrap();
    println!("  random worlds: {rw}");
    assert_eq!(z_entails(&rules, &yp, &see), Some(false));
    assert_eq!(lex_entails(&rules, &yp, &see), Some(true));
    assert!(rw.belief.is_one());
}

fn main() {
    nixon();
    broken_arm();
    specificity_encodings();
    lottery();
    drowning();
    println!("\nAll classical-comparator checks passed.");
}
