//! Property test: pretty-printing is a right inverse of parsing on randomly
//! generated formulas of `L≈`.

use proptest::prelude::*;
use random_worlds::logic::{parse_formula, Pretty, Vocabulary};

/// A generator for random formula source strings built from a fixed small
/// vocabulary — generating *text* keeps the generator decoupled from the
/// AST so it also fuzzes the parser itself.
fn formula_src(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        prop_oneof![Just("P"), Just("Q"), Just("R")].prop_map(|p| format!("{p}(x)")),
        prop_oneof![Just("P"), Just("Q")].prop_map(|p| format!("{p}(Alice)")),
        Just("x = Alice".to_string()),
        Just("Alice = Bob".to_string()),
        Just("true".to_string()),
        (1u32..99).prop_map(|n| format!("||P(x)||_x ~=_1 0.{n:02}")),
        (1u32..99).prop_map(|n| format!("||P(x) | Q(x)||_x <~_2 0.{n:02}")),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) & ({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) or ({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) => ({b})")),
            inner.clone().prop_map(|a| format!("!({a})")),
            inner.clone().prop_map(|a| format!("forall x ({a})")),
            inner.clone().prop_map(|a| format!("exists x ({a})")),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(src in formula_src(3)) {
        let mut vocab = Vocabulary::new();
        let Ok(f) = parse_formula(&mut vocab, &src) else {
            // Generated source is always valid; a failure here is a parser bug.
            return Err(TestCaseError::fail(format!("failed to parse `{src}`")));
        };
        let printed = Pretty::new(&vocab, &f).to_string();
        let f2 = parse_formula(&mut vocab, &printed)
            .map_err(|e| TestCaseError::fail(format!("reparse of `{printed}`: {e}")))?;
        prop_assert_eq!(&f, &f2, "`{}` printed as `{}`", src, printed);
        // Printing is idempotent.
        let printed2 = Pretty::new(&vocab, &f2).to_string();
        prop_assert_eq!(printed, printed2);
    }
}

#[test]
fn closed_formula_check_matches_free_vars() {
    let mut vocab = Vocabulary::new();
    let f = parse_formula(&mut vocab, "forall x (P(x) => ||Q(y) | R(y)||_y ~=_1 1)").unwrap();
    assert!(random_worlds::logic::analysis::free_vars(&f).is_empty());
    let g = parse_formula(&mut vocab, "P(x) & forall y (Q(y))").unwrap();
    assert_eq!(random_worlds::logic::analysis::free_vars(&g).len(), 1);
}
