//! The experiment index: every worked example of the paper with an exact
//! expected degree of belief, asserted end-to-end through the public API.
//!
//! IDs (`E1`–`E31`) follow DESIGN.md §7 / EXPERIMENTS.md; each test cites
//! the paper example or theorem it reproduces.

use random_worlds::core::theorems::dempster_rule;
use random_worlds::core::{Belief, RandomWorlds};
use random_worlds::prelude::*;

fn engine() -> RandomWorlds {
    RandomWorlds::default()
}

fn belief(kb_src: &str, query: &str) -> Belief {
    let kb = KnowledgeBase::parse(kb_src).unwrap();
    engine().degree_of_belief(&kb, query).unwrap().belief
}

fn assert_point(kb_src: &str, query: &str, expected: f64, eps: f64) {
    let b = belief(kb_src, query);
    let v = b
        .as_point()
        .unwrap_or_else(|| panic!("{kb_src} ⊢ {query}: expected point, got {b}"));
    assert!(
        (v - expected).abs() <= eps,
        "{kb_src} ⊢ {query}: got {v}, expected {expected}"
    );
}

const KB_HEP_BASIC: &str = "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)";

#[test]
fn e1_hepatitis_direct_inference() {
    // Example 5.8.
    assert_point(KB_HEP_BASIC, "Hep(Eric)", 0.8, 0.0);
}

#[test]
fn e2_other_individuals_ignored() {
    // Example 5.8: Pr(Hep(Eric) | KB ∧ Hep(Tom)) = 0.8.
    assert_point(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Hep(Tom)",
        "Hep(Eric)",
        0.8,
        0.0,
    );
}

#[test]
fn e3_specificity_penguins() {
    // Example 5.10: Pr(Fly(Tweety)) = 0.
    assert_point(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
        "Fly(Tweety)",
        0.0,
        0.0,
    );
}

#[test]
fn e4_disjunctive_class_is_inert() {
    // Example 5.11: explicit statistics for the spurious class
    // Jaun ∧ (¬Hep ∨ x = Eric) cannot be stated without mentioning Eric, so
    // the direct-inference answer stands; we check the pure KB again at the
    // exact unary engine for several sizes.
    let mut kb = KnowledgeBase::parse(KB_HEP_BASIC).unwrap();
    let q = kb.parse_query("Hep(Eric)").unwrap();
    let tol = random_worlds::logic::Tolerances::uniform(rw_util::Rat::new(1, 40));
    let v = random_worlds::unary::degree_of_belief_at(&kb, &q, 60, &tol)
        .unwrap()
        .unwrap();
    assert!((v - 0.8).abs() < 0.03, "{v}");
}

#[test]
fn e5_elephant_zookeeper() {
    // Example 5.12 (binary predicates; theorem engine only).
    let kb = "||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1; \
              ||Likes(x, Fred) | Elephant(x)||_x ~=_2 0; \
              Zookeeper(Fred); Elephant(Clyde); Zookeeper(Eric)";
    assert_point(kb, "Likes(Clyde, Eric)", 1.0, 0.0);
    assert_point(kb, "Likes(Clyde, Fred)", 0.0, 0.0);
}

#[test]
fn e6_tall_parent() {
    // Example 5.13: an existentially-defined reference class.
    assert_point(
        "||Tall(x) | exists y (Child(x, y) & Tall(y))||_x ~=_1 1; \
         exists y (Child(Alice, y) & Tall(y))",
        "Tall(Alice)",
        1.0,
        0.0,
    );
}

#[test]
fn e7_nested_defaults_bed_late() {
    // Examples 4.6 / 5.14.
    assert_point(
        "|| ||Rises-late(x, y) | Day(y)||_y ~=_1 1 | ||To-bed-late(x, z) | Day(z)||_z ~=_2 1 ||_x ~=_3 1; \
         ||To-bed-late(Alice, z) | Day(z)||_z ~=_2 1; Day(Tomorrow)",
        "Rises-late(Alice, Tomorrow)",
        1.0,
        0.0,
    );
}

#[test]
fn e8_irrelevant_facts_ignored() {
    // Example 5.18: KB'_hep + Fever + Tall still gives 0.8; with the
    // fever statistic, fever promotes to the more specific class (1.0).
    assert_point(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Fever(Eric); Tall(Eric)",
        "Hep(Eric)",
        0.8,
        0.0,
    );
    assert_point(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; ||Hep(x) | Jaun(x) & Fever(x)||_x ~=_2 1; \
         Jaun(Eric); Fever(Eric); Tall(Eric)",
        "Hep(Eric)",
        1.0,
        0.0,
    );
}

#[test]
fn e8b_subtle_case_beyond_theorems() {
    // Example 5.18's last remark: with the fever statistic present but no
    // fever *fact*, no theorem applies — yet random worlds still answers
    // 0.8 (via maximum entropy).
    assert_point(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; ||Hep(x) | Jaun(x) & Fever(x)||_x ~=_2 1; \
         Jaun(Eric); Tall(Eric)",
        "Hep(Eric)",
        0.8,
        0.01,
    );
}

#[test]
fn e9_yellow_penguin() {
    // Example 5.19.
    assert_point(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         forall x (Penguin(x) => Bird(x)); Penguin(Tweety); Yellow(Tweety)",
        "Fly(Tweety)",
        0.0,
        0.0,
    );
}

#[test]
fn e10_warm_blooded_inheritance() {
    // Example 5.20: exceptional subclasses inherit unrelated properties.
    assert_point(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         Bird(x) ->_3 Warm-blooded(x); \
         forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
        "Warm-blooded(Tweety)",
        1.0,
        0.0,
    );
}

#[test]
fn e11_drowning_problem() {
    // Example 5.21: yellow penguins are easy to see.
    assert_point(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         Yellow(x) ->_3 Easy-to-see(x); \
         forall x (Penguin(x) => Bird(x)); Penguin(Tweety); Yellow(Tweety)",
        "Easy-to-see(Tweety)",
        1.0,
        0.0,
    );
}

#[test]
fn e12_tay_sachs_disjunctive_class() {
    // Example 5.22: disjunctive reference classes are fine.
    assert_point(
        "||TS(x) | EEJ(x) or FC(x)||_x ~=_1 0.02; EEJ(Eric)",
        "TS(Eric)",
        0.02,
        1e-3,
    );
}

#[test]
fn e13_strength_rule() {
    // Example 5.24: Pr(Chirps(Tweety)) ∈ [0.7, 0.8].
    let b = belief(
        "0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8; \
         0 <~_3 ||Chirps(x) | Magpie(x)||_x <~_4 0.99; \
         forall x (Magpie(x) => Bird(x)); Magpie(Tweety)",
        "Chirps(Tweety)",
    );
    assert_eq!(b.as_interval(), Some((0.7, 0.8)), "{b}");
}

#[test]
fn e14_moody_magpies() {
    // Example 5.25 (Goodwin): the moody-magpie statistic pulls the belief
    // strictly below the bird statistic 0.9.
    let b = belief(
        "||Chirps(x) | Bird(x)||_x ~=_1 0.9; \
         ||Chirps(x) | Magpie(x) & Moody(x)||_x ~=_2 0.2; \
         forall x (Magpie(x) => Bird(x)); Magpie(Tweety)",
        "Chirps(Tweety)",
    );
    let v = b.as_point().unwrap();
    assert!(v < 0.9 - 1e-3 && v > 0.2, "{v}");
}

#[test]
fn e15_nixon_dempster() {
    // Theorem 5.26 at α = β = 0.8: δ = 16/17 ≈ 0.941.
    assert_point(
        "||Pacifist(x) | Quaker(x)||_x ~=_1 0.8; \
         ||Pacifist(x) | Republican(x)||_x ~=_2 0.8; \
         Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
        "Pacifist(Nixon)",
        16.0 / 17.0,
        1e-12,
    );
}

#[test]
fn e16_neutral_evidence_defers() {
    // §5.3: β = 0.5 leaves the Quaker statistic in charge.
    assert_point(
        "||Pacifist(x) | Quaker(x)||_x ~=_1 0.7; \
         ||Pacifist(x) | Republican(x)||_x ~=_2 0.5; \
         Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
        "Pacifist(Nixon)",
        0.7,
        1e-12,
    );
}

#[test]
fn e17_conflicting_defaults() {
    // §5.3: hard conflicting defaults — distinct strengths: no robust
    // limit; shared strength (same index): exactly 1/2.
    let kb = "||Pacifist(x) | Quaker(x)||_x ~=_1 1; \
              ||Pacifist(x) | Republican(x)||_x ~=_2 0; \
              Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))";
    assert!(matches!(
        belief(kb, "Pacifist(Nixon)"),
        Belief::NonRobust(_)
    ));
    let shared = kb.replace("~=_2 0", "~=_1 0");
    assert_point(&shared, "Pacifist(Nixon)", 0.5, 0.0);
}

#[test]
fn e18_independence_product() {
    // Example 5.28 / Theorem 5.27: 0.8 × 0.4 = 0.32.
    assert_point(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
         ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
        "Hep(Eric) & Over60(Eric)",
        0.32,
        1e-12,
    );
}

#[test]
fn e19_black_birds_maxent() {
    // Example 5.29: NOT 0.2 — maxent mixes the bird and non-bird cases
    // into 0.47.
    assert_point(
        "||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1",
        "Black(Clyde)",
        0.47,
        5e-3,
    );
}

#[test]
fn e20_lottery_known_size() {
    // §5.5: with everyone holding a ticket and one winner, Pr = 1/N exactly.
    let mut kb = KnowledgeBase::parse(
        "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); \
         forall x (Ticket(x)); Ticket(C)",
    )
    .unwrap();
    let q = kb.parse_query("Winner(C)").unwrap();
    let tol = random_worlds::logic::Tolerances::uniform(rw_util::Rat::new(1, 10));
    for n in [7usize, 50, 250] {
        let v = random_worlds::unary::degree_of_belief_at(&kb, &q, n, &tol)
            .unwrap()
            .unwrap();
        assert!((v - 1.0 / n as f64).abs() < 1e-12, "N={n}: {v}");
    }
}

#[test]
fn e21_lottery_unknown_size() {
    // §5.5: unknown N — the instance belief is 0 but ∃ remains 1, and the
    // universal "no winner" is NOT concluded.
    let kb = "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); \
              forall x (Ticket(x)); Ticket(C)";
    assert!(belief(kb, "Winner(C)").is_zero());
    assert!(belief(kb, "exists x (Winner(x))").is_one());
    assert!(belief(kb, "forall x (!Winner(x))").is_zero());
}

#[test]
fn e22_unique_names() {
    // §5.5 + Lifschitz C1.
    assert!(belief("P(A) or !P(A)", "C1 = C2").is_zero());
    assert!(belief("Ray = Reiter; Drew = McDermott", "!(Ray = Drew)").is_one());
    // The 3-way disjunction: Pr(C1 = C2) → 1/3.
    let b = belief("C1 = C2 or C2 = C3 or C1 = C3", "C1 = C2");
    let v = b.as_point().unwrap();
    assert!((v - 1.0 / 3.0).abs() < 0.05, "{v}");
}

#[test]
fn e23_section6_worked_example() {
    // §6: ∀x P1(x) ∧ ||P1 ∧ P2|| ⪯ 0.3 → Pr(P2(c)) = 0.3 via the maxent
    // point (0.3, 0.7, 0, 0).
    assert_point(
        "forall x (P1(x)); ||P1(x) & P2(x)||_x <~_1 0.3",
        "P2(C)",
        0.3,
        2e-3,
    );
}

#[test]
fn e24_broken_arm() {
    // Example 5.4 (Poole): exactly one arm is believed usable; which one is
    // open (belief strictly between 0 and 1 for each).
    let kb = "||LeftUsable(x)||_x ~=_1 1; ||LeftUsable(x) | LeftBroken(x)||_x ~=_2 0; \
              ||RightUsable(x)||_x ~=_3 1; ||RightUsable(x) | RightBroken(x)||_x ~=_4 0; \
              LeftBroken(Eric) or RightBroken(Eric)";
    assert!(belief(
        kb,
        "(LeftUsable(Eric) or RightUsable(Eric)) & !(LeftUsable(Eric) & RightUsable(Eric))"
    )
    .is_one());
    // "…but we draw no conclusions as to which one it is": with the four
    // defaults at unspecified relative strengths, the which-arm belief is
    // either a middling value or non-robust (the multiple-extensions
    // analogue, §5.3) — prioritizing one default swings the answer, so the
    // candidate spread is wide. What must NOT happen is a robust 0 or 1.
    match belief(kb, "LeftUsable(Eric)") {
        Belief::Point(v) => assert!(v > 0.05 && v < 0.95, "{v}"),
        Belief::NonRobust(vs) => {
            let min = vs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(max - min > 0.1, "spread too small: {vs:?}");
        }
        other => panic!("unexpected: {other}"),
    }
}

#[test]
fn e29_baselines_diverge() {
    // §2.3: competing reference classes — the classical systems give up
    // where random worlds combines evidence.
    let kb = KnowledgeBase::parse(
        "||Heart-disease(x) | Cholesterol(x)||_x ~=_1 0.15; \
         ||Heart-disease(x) | Smoker(x)||_x ~=_2 0.09; \
         Cholesterol(Fred); Smoker(Fred); exists! x (Cholesterol(x) & Smoker(x))",
    )
    .unwrap();
    let rw = engine()
        .degree_of_belief(&kb, "Heart-disease(Fred)")
        .unwrap();
    assert!((rw.belief.as_point().unwrap() - dempster_rule(&[0.15, 0.09])).abs() < 1e-12);
    let baseline = random_worlds::refclass::reference_class_belief(
        &kb,
        "Heart-disease(Fred)",
        random_worlds::refclass::SelectionRule::SpecificityThenStrength,
    )
    .unwrap();
    assert!(baseline.as_interval().is_none(), "{baseline:?}");
}

#[test]
fn e30_representation_dependence() {
    // §7.2.
    assert_point("true", "White(B)", 0.5, 1e-9);
    assert_point(
        "forall x (!White(x) <=> Red(x) or Blue(x)); forall x (!(Red(x) & Blue(x))); \
         forall x (White(x) => !Red(x) & !Blue(x))",
        "White(B)",
        1.0 / 3.0,
        2e-3,
    );
    assert_point(
        "||FlyingBird(x) | Bird(x)||_x ~=_1 0.5; \
         forall x (FlyingBird(x) => Bird(x)); Bird(Tweety)",
        "Bird(Opus)",
        2.0 / 3.0,
        2e-3,
    );
    assert_point(
        "||Fly(x) | Bird(x)||_x ~=_1 0.5; Bird(Tweety)",
        "Bird(Opus)",
        0.5,
        2e-3,
    );
}

#[test]
fn e31_republican_banker() {
    // Footnote 14: two independent 0.2 statistics *compound against*:
    // δ(0.2, 0.2) = 1/17 < 0.2 (Kyburg's strength rule would say 0.2).
    assert_point(
        "||Pacifist(x) | Republican(x)||_x ~=_1 0.2; \
         ||Pacifist(x) | Banker(x)||_x ~=_2 0.2; \
         Republican(Morgan); Banker(Morgan); \
         exists! x (Republican(x) & Banker(x))",
        "Pacifist(Morgan)",
        1.0 / 17.0,
        1e-12,
    );
}

#[test]
fn poole_partition_is_inconsistent() {
    // §5.5: a class declared the union of exceptional subclasses has no
    // models once tolerances are small — detected as Undefined.
    let b = belief(
        "forall x (Bird(x) <=> Penguin(x) or Emu(x)); \
         forall x (!(Penguin(x) & Emu(x))); \
         Bird(x) ->_1 !Penguin(x); Bird(x) ->_2 !Emu(x); exists x (Bird(x))",
        "Penguin(C)",
    );
    assert_eq!(b, Belief::Undefined);
}
