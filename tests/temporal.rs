//! §7.1 temporal-representation experiments (E40): the Yale Shooting
//! Problem under naive frame defaults (the anomaly, faithfully reproduced)
//! and under past-state-conditioned causal statistics (the repair).

use random_worlds::prelude::*;

const FACTS: &str = "forall x (L1(x) => !A2(x)); L0(S); A0(S)";

fn belief(kb_src: &str, query: &str) -> Belief {
    let kb = KnowledgeBase::parse(kb_src).unwrap();
    RandomWorlds::new()
        .degree_of_belief(&kb, query)
        .unwrap()
        .belief
}

#[test]
fn e40a_naive_representation_shared_tolerance_standoff() {
    // Intended outcome violates alive-persistence; anomalous outcome
    // violates loaded-persistence. At equal strengths random worlds
    // declines to conclude death — the §7.1 "unintuitive result".
    let kb = format!(
        "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_1 1; \
         ||A2(x) | A1(x)||_x ~=_1 1; {FACTS}"
    );
    let b = belief(&kb, "A2(S)");
    let v = b
        .as_point()
        .unwrap_or_else(|| panic!("expected point, got {b}"));
    assert!(v > 0.05 && v < 0.95, "expected a standoff, got {v}");
}

#[test]
fn e40b_naive_representation_distinct_tolerances_non_robust() {
    // With unspecified relative strengths the limit depends on the path
    // τ⃗ → 0 — the analogue of competing extensions in minimization
    // frameworks (Hanks–McDermott).
    let kb = format!(
        "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_2 1; \
         ||A2(x) | A1(x)||_x ~=_3 1; {FACTS}"
    );
    let b = belief(&kb, "A2(S)");
    assert!(matches!(b, Belief::NonRobust(_)), "got {b}");
}

#[test]
fn e40c_causal_representation_concludes_death() {
    // Conditioning each fluent's next value on the full previous state
    // (the [Hun89]/[BGHK94a] repair): the intended outcome violates no
    // default, so persistence chains and the shooting kills.
    let kb = format!(
        "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_2 1; \
         ||A2(x) | A1(x) & !L1(x)||_x ~=_3 1; {FACTS}"
    );
    assert!(belief(&kb, "L1(S)").is_one());
    assert!(belief(&kb, "A1(S)").is_one());
    assert!(belief(&kb, "A2(S)").is_zero());
}

#[test]
fn e40d_causal_representation_supports_explanation() {
    // Backward (explanation) query: observing Fred alive at 2, the gun
    // must have been unloaded at 1 — conditioning handles abduction with
    // no extra machinery.
    let kb = format!(
        "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_2 1; \
         ||A2(x) | A1(x) & !L1(x)||_x ~=_3 1; {FACTS}; A2(S)"
    );
    assert!(belief(&kb, "L1(S)").is_zero());
}

mod scenario_compiler {
    //! The same experiments driven through `rw-temporal`'s scenario
    //! compiler instead of hand-written KBs: the representations are a
    //! switch, not a re-encoding.

    use random_worlds::prelude::*;
    use random_worlds::temporal::{
        project_with, Action, Fluent, Literal, Representation, Scenario,
    };

    /// Engine with a trimmed τ-sweep: temporal KBs carry a tolerance index
    /// per frame statement and the default asymmetry probes sweep each one,
    /// which is accuracy these coarse 0-vs-1-vs-standoff assertions don't
    /// need.
    fn engine(probe: bool) -> RandomWorlds {
        let mut e = RandomWorlds::new();
        e.sweep.steps = 5;
        e.sweep.probe_asymmetry = probe;
        e
    }

    fn project(
        s: &Scenario,
        rep: Representation,
        fluent: &Fluent,
        time: usize,
    ) -> Result<random_worlds::core::BeliefResult, random_worlds::core::EngineError> {
        // Probes are only needed where non-robustness is the point.
        project_with(
            &engine(rep == Representation::NaiveDistinct),
            s,
            rep,
            fluent,
            time,
        )
    }

    fn yale_shooting() -> (Scenario, Fluent, Fluent) {
        let mut s = Scenario::new();
        let loaded = s.fluent("L");
        let alive = s.fluent("A");
        s.initially(Literal::pos(loaded.clone()));
        s.initially(Literal::pos(alive.clone()));
        s.wait();
        s.then(
            Action::new("shoot")
                .requires(Literal::pos(loaded.clone()))
                .causes(Literal::neg(alive.clone())),
        );
        (s, loaded, alive)
    }

    #[test]
    fn compiled_naive_shared_reproduces_the_standoff() {
        let (s, _, alive) = yale_shooting();
        let r = project(&s, Representation::NaiveShared, &alive, 2).unwrap();
        let v = r.belief.as_point().unwrap_or_else(|| panic!("{r}"));
        assert!(v > 0.05 && v < 0.95, "expected a standoff, got {v}");
    }

    #[test]
    fn compiled_naive_distinct_is_non_robust() {
        let (s, _, alive) = yale_shooting();
        let r = project(&s, Representation::NaiveDistinct, &alive, 2).unwrap();
        assert!(matches!(r.belief, Belief::NonRobust(_)), "{r}");
    }

    #[test]
    fn compiled_causal_concludes_death_and_persistence() {
        let (s, loaded, alive) = yale_shooting();
        assert!(project(&s, Representation::Causal, &loaded, 1)
            .unwrap()
            .belief
            .is_one());
        assert!(project(&s, Representation::Causal, &alive, 2)
            .unwrap()
            .belief
            .is_zero());
        // The gun also stays loaded after the shot (shooting affects only
        // Alive in this formulation).
        assert!(project(&s, Representation::Causal, &loaded, 2)
            .unwrap()
            .belief
            .is_one());
    }

    #[test]
    fn compiled_observation_supports_explanation() {
        // The stolen-bullet variant: observing Fred alive at 2 explains
        // away the load — the gun must have become unloaded by 1.
        let (mut s, loaded, alive) = yale_shooting();
        s.observe(2, Literal::pos(alive));
        let r = project(&s, Representation::Causal, &loaded, 1).unwrap();
        assert!(r.belief.is_zero(), "{r}");
    }

    #[test]
    fn statistical_effects_grade_the_projection() {
        // "Shooting a loaded gun kills 70% of the time": the statistical
        // language grades the projection where qualitative systems must
        // choose all-or-nothing. Pr(Alive₁) → 0.30.
        let mut s = Scenario::new();
        let loaded = s.fluent("L");
        let alive = s.fluent("A");
        s.initially(Literal::pos(loaded.clone()));
        s.initially(Literal::pos(alive.clone()));
        s.then(
            Action::new("shoot")
                .requires(Literal::pos(loaded))
                .causes_with_chance(Literal::neg(alive.clone()), 70),
        );
        let r = project(&s, Representation::Causal, &alive, 1).unwrap();
        let v = r.belief.as_point().unwrap_or_else(|| panic!("{r}"));
        assert!((v - 0.30).abs() < 5e-3, "expected ≈0.30, got {v}");
    }

    #[test]
    fn load_action_with_no_preconditions() {
        // load (unconditional) then shoot: death follows with no waiting.
        let mut s = Scenario::new();
        let loaded = s.fluent("L");
        let alive = s.fluent("A");
        s.initially(Literal::neg(loaded.clone()));
        s.initially(Literal::pos(alive.clone()));
        s.then(Action::new("load").causes(Literal::pos(loaded.clone())));
        s.then(
            Action::new("shoot")
                .requires(Literal::pos(loaded.clone()))
                .causes(Literal::neg(alive.clone())),
        );
        assert!(project(&s, Representation::Causal, &loaded, 1)
            .unwrap()
            .belief
            .is_one());
        assert!(project(&s, Representation::Causal, &alive, 2)
            .unwrap()
            .belief
            .is_zero());
    }
}

#[test]
fn causal_representation_is_elaboration_tolerant() {
    // An unrelated fluent (Fred wears a hat) persists independently of the
    // shooting — irrelevance carries over to the temporal setting.
    let kb = format!(
        "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_2 1; \
         ||A2(x) | A1(x) & !L1(x)||_x ~=_3 1; \
         ||H1(x) | H0(x)||_x ~=_4 1; H0(S); {FACTS}"
    );
    assert!(belief(&kb, "H1(S)").is_one());
    assert!(belief(&kb, "A2(S)").is_zero());
}
