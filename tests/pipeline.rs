//! Integration tests for the solver-pipeline API: custom stage lists,
//! per-query traces, and batched answering through the facade crate.

use random_worlds::core::solvers::{EnumerationDiagonalSolver, TheoremSolver};
use random_worlds::core::{
    Budget, EngineError, Response, Solver, SolverOutcome, Stage, StageStatus,
};
use random_worlds::prelude::*;
use rw_logic::ast::Formula;

fn hepatitis() -> KnowledgeBase {
    KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap()
}

/// A solver that never answers, recording nothing.
struct AlwaysDecline;

impl Solver for AlwaysDecline {
    fn name(&self) -> &str {
        "always-decline"
    }

    fn solve(
        &self,
        _kb: &KnowledgeBase,
        _query: &Formula,
        _budget: &Budget,
        _recurse: &random_worlds::core::Recurse<'_>,
    ) -> SolverOutcome {
        SolverOutcome::Declined {
            reason: "integration-test stub".to_string(),
        }
    }
}

#[test]
fn default_pipeline_names_are_stable() {
    let engine = RandomWorlds::new();
    assert_eq!(
        engine.solvers(),
        vec!["theorems", "maxent", "unary-exact", "enumeration"]
    );
}

#[test]
fn custom_ordering_changes_who_answers() {
    let kb = hepatitis();
    // Theorems only: answers by direct inference.
    let theorems_only = RandomWorlds::new().with_solvers(vec![Stage::new(Box::new(TheoremSolver))]);
    let r = theorems_only.answer(&kb, "Hep(Eric)").unwrap();
    assert_eq!(r.provenance, Provenance::DirectInference);
    // A stub ahead of the theorems shows up (declined) in the trace but
    // cannot change the answer.
    let stubbed = RandomWorlds::new().with_solvers(vec![
        Stage::new(Box::new(AlwaysDecline)),
        Stage::new(Box::new(TheoremSolver)),
    ]);
    let r = stubbed.answer(&kb, "Hep(Eric)").unwrap();
    assert_eq!(r.belief.as_point(), Some(0.8));
    assert_eq!(r.trace.steps().len(), 2);
    assert_eq!(r.trace.steps()[0].stage, "always-decline");
    assert!(matches!(
        r.trace.steps()[0].status,
        StageStatus::Declined(_)
    ));
}

#[test]
fn removing_the_answering_stage_is_out_of_reach_with_full_trace() {
    let kb = hepatitis();
    // Enumeration alone cannot do a 3-predicate unary KB within one world
    // budget? It can — so use a stub-only pipeline for a guaranteed miss.
    let engine = RandomWorlds::new().with_solvers(vec![Stage::new(Box::new(AlwaysDecline))]);
    match engine.answer(&kb, "Hep(Eric)") {
        Err(EngineError::OutOfReach { trace, .. }) => {
            assert_eq!(trace.steps().len(), 1);
            assert_eq!(trace.steps()[0].stage, "always-decline");
        }
        other => panic!("expected OutOfReach, got {other:?}"),
    }
}

#[test]
fn traces_expose_declined_stages_on_the_enumeration_path() {
    // A binary predicate defeats theorems, maxent and unary counting; the
    // trace must show all three declining before enumeration answers.
    let kb = KnowledgeBase::parse("Likes(A, B)").unwrap();
    let r: Response = RandomWorlds::new().answer(&kb, "Likes(B, A)").unwrap();
    let keywords: Vec<&str> = r.trace.steps().iter().map(|s| s.status.keyword()).collect();
    assert_eq!(
        keywords,
        vec!["declined", "declined", "declined", "answered"]
    );
    assert!(matches!(r.provenance, Provenance::Enumeration { .. }));
}

#[test]
fn batch_answers_match_singles_and_isolate_failures() {
    let kb = hepatitis();
    let engine = RandomWorlds::new();
    let queries = ["Hep(Eric)", "broken(", "!Hep(Eric)"];
    let results = engine.answer_batch(&kb, &queries);
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().unwrap().belief.as_point(), Some(0.8));
    assert!(results[1].is_err());
    let single = engine.answer(&kb, "!Hep(Eric)").unwrap();
    assert_eq!(results[2].as_ref().unwrap().belief, single.belief);
}

#[test]
fn parallel_cached_batches_through_the_facade() {
    use std::sync::Arc;
    let kb = hepatitis();
    let engine = RandomWorlds::new();
    let queries = ["Hep(Eric)", "!Hep(Eric)", "(Hep(Eric))", "!(Hep(Eric))"];
    let opts = BatchOptions::threaded(2).with_cache(Arc::new(AnswerCache::new()));
    let cold = engine.answer_batch_report(&kb, &queries, &opts);
    assert_eq!(cold.report.answered, 4);
    assert_eq!(cold.report.failed, 0);
    // Second pass over the same options (same cache): everything hits,
    // beliefs are unchanged, and the synthetic `cache` stage answers.
    let warm = engine.answer_batch_report(&kb, &queries, &opts);
    assert_eq!(warm.report.cache_hits, 4);
    for (c, w) in cold.results.iter().zip(&warm.results) {
        let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
        assert_eq!(c.belief, w.belief);
        assert!(w.cached);
        assert_eq!(w.trace.steps()[0].stage, "cache");
    }
    let report: BatchReport = warm.report;
    assert_eq!(
        report
            .stages
            .iter()
            .find(|s| s.stage == "cache")
            .unwrap()
            .answered,
        4
    );
}

#[test]
fn stage_budgets_degrade_gracefully_into_the_next_stage() {
    // Starve the unary stage: the pipeline reports budget exhaustion in
    // the trace and enumeration still answers.
    let kb =
        KnowledgeBase::parse("||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1").unwrap();
    let base = RandomWorlds::new();
    let stages = vec![
        Stage::budgeted(
            Box::new(random_worlds::core::solvers::UnaryDiagonalSolver::new(
                base.diagonal.clone(),
            )),
            Budget::counting(1),
        ),
        Stage::budgeted(
            Box::new(EnumerationDiagonalSolver::new(base.diagonal.clone())),
            Budget::counting(base.enum_max_worlds),
        ),
    ];
    let engine = base.with_solvers(stages);
    let r = engine.answer(&kb, "Bird(Clyde)").unwrap();
    assert!(matches!(
        r.trace.steps()[0].status,
        StageStatus::BudgetExhausted(_)
    ));
    assert!(
        matches!(r.provenance, Provenance::Enumeration { .. }),
        "{r}"
    );
}
