//! Theorem 5.3 / 5.5 as an executable regression: the KLM postulates for
//! `|~rw` checked numerically over a corpus of knowledge bases.

use random_worlds::core::klm::{
    check_and, check_cautious_monotonicity, check_cut, check_or, check_rational_monotonicity,
    RuleCheck,
};
use random_worlds::core::RandomWorlds;
use random_worlds::prelude::*;

fn engine() -> RandomWorlds {
    RandomWorlds::default()
}

fn corpus() -> Vec<(KnowledgeBase, &'static str, &'static str)> {
    // (KB, θ, φ) triples where KB |~ θ and KB |~ φ are expected.
    vec![
        (
            KnowledgeBase::parse(
                "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
                 forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
            )
            .unwrap(),
            "Bird(Tweety)",
            "!Fly(Tweety)",
        ),
        (
            KnowledgeBase::parse("||Q(x) | P(x)||_x ~=_1 1; P(C)").unwrap(),
            "Q(C)",
            "Q(C)",
        ),
        (
            KnowledgeBase::parse("Bird(x) ->_1 Warm(x); ||Bird(x)||_x ~=_2 0.3; Bird(Tweety)")
                .unwrap(),
            "Warm(Tweety)",
            "Warm(Tweety)",
        ),
    ]
}

#[test]
fn cut_holds_across_corpus() {
    let e = engine();
    for (kb, theta, phi) in corpus() {
        let r = check_cut(&e, &kb, theta, phi);
        assert_ne!(r, RuleCheck::Violated, "Cut on {kb:?} with {theta}/{phi}");
    }
}

#[test]
fn cautious_monotonicity_holds_across_corpus() {
    let e = engine();
    for (kb, theta, phi) in corpus() {
        let r = check_cautious_monotonicity(&e, &kb, theta, phi);
        assert_ne!(r, RuleCheck::Violated, "CM on {kb:?} with {theta}/{phi}");
    }
}

#[test]
fn and_holds_across_corpus() {
    let e = engine();
    for (kb, theta, phi) in corpus() {
        let r = check_and(&e, &kb, theta, phi);
        assert_ne!(r, RuleCheck::Violated, "And on {kb:?} with {theta}/{phi}");
    }
}

#[test]
fn or_rule_broken_arm() {
    // The Or rule drives Example 5.4: from both disjuncts concluding
    // "some arm is unusable", the disjunctive KB concludes it too.
    let e = engine();
    let kb_left = KnowledgeBase::parse(
        "||LeftUsable(x)||_x ~=_1 1; ||LeftUsable(x) | LeftBroken(x)||_x ~=_2 0; \
         ||RightUsable(x)||_x ~=_3 1; ||RightUsable(x) | RightBroken(x)||_x ~=_4 0; \
         LeftBroken(Eric)",
    )
    .unwrap();
    let kb_right = KnowledgeBase::parse(
        "||LeftUsable(x)||_x ~=_1 1; ||LeftUsable(x) | LeftBroken(x)||_x ~=_2 0; \
         ||RightUsable(x)||_x ~=_3 1; ||RightUsable(x) | RightBroken(x)||_x ~=_4 0; \
         RightBroken(Eric)",
    )
    .unwrap();
    let phi = "!LeftUsable(Eric) or !RightUsable(Eric)";
    let r = check_or(&e, &kb_left, &kb_right, phi);
    assert_eq!(r, RuleCheck::Holds);
}

#[test]
fn rational_monotonicity_with_irrelevant_theta() {
    // Thm 5.5 (weakened RM): adding a non-disbelieved θ preserves default
    // conclusions.
    let e = engine();
    let kb = KnowledgeBase::parse(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         forall x (Penguin(x) => Bird(x)); Penguin(Tweety); \
         ||Yellow(x)||_x ~=_3 0.5",
    )
    .unwrap();
    let r = check_rational_monotonicity(&e, &kb, "Yellow(Tweety)", "!Fly(Tweety)");
    assert_eq!(r, RuleCheck::Holds);
}

#[test]
fn reflexivity_and_right_weakening() {
    // Reflexivity: KB |~ (each of its own conjuncts); Right Weakening: a
    // logically weaker consequence keeps belief 1.
    let e = engine();
    let kb = KnowledgeBase::parse("||Q(x) | P(x)||_x ~=_1 1; P(C)").unwrap();
    assert!(e.follows_by_default(&kb, "P(C)").unwrap());
    assert!(e.follows_by_default(&kb, "Q(C)").unwrap());
    assert!(e.follows_by_default(&kb, "Q(C) or R(C)").unwrap()); // weakening
}

#[test]
fn left_logical_equivalence() {
    // Proposition 5.1: logically equivalent KBs induce identical beliefs.
    let e = engine();
    let kb1 = KnowledgeBase::parse("P(C) & Q(C); ||R(x) | P(x)||_x ~=_1 0.7").unwrap();
    let kb2 = KnowledgeBase::parse("Q(C) & P(C); ||R(x) | P(x)||_x ~=_1 0.7").unwrap();
    let b1 = e.degree_of_belief(&kb1, "R(C)").unwrap().belief;
    let b2 = e.degree_of_belief(&kb2, "R(C)").unwrap().belief;
    assert!(b1.approx_eq(&b2, 1e-9), "{b1} vs {b2}");
}
