//! Integration tests for the Monte-Carlo approximate-inference stage at
//! the pipeline level: determinism across worker thread counts, stage
//! placement, cache keyspace separation, and agreement with the exact
//! stages on trap queries.

use proptest::prelude::*;
use random_worlds::core::{Belief, McConfig, Provenance, RandomWorlds};
use random_worlds::prelude::*;

fn trap_kb() -> KnowledgeBase {
    // PR-2's serving trap: conjunctions over individuals sharing one
    // statistic miss every theorem pattern (the shared predicate defeats
    // the independence product), so an exact engine pays a maxent sweep.
    KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Jaun(Tom)").unwrap()
}

#[test]
fn approx_pipeline_answers_the_trap_in_the_sampling_stage() {
    let engine = RandomWorlds::new().with_approx(McConfig::default());
    let r = engine.answer(&trap_kb(), "Hep(Eric) & Hep(Tom)").unwrap();
    let Belief::Approximate {
        value,
        ci_half_width,
    } = r.belief
    else {
        panic!("{r}");
    };
    assert!(ci_half_width > 0.0, "{r}");
    // True degree of belief: the two individuals are exchangeable and
    // asymptotically independent given the KB, so ≈ 0.8² = 0.64. The
    // finite-N sweep plus extrapolation lands near it.
    assert!((value - 0.64).abs() < 3.0 * ci_half_width + 0.05, "{r}");
    assert!(matches!(r.provenance, Provenance::MonteCarlo { .. }), "{r}");
    assert_eq!(r.trace.steps().last().unwrap().stage, "montecarlo");
    // The theorem stage declined first — the cascade order is intact.
    assert_eq!(r.trace.steps()[0].stage, "theorems");
}

#[test]
fn exact_queries_never_reach_the_sampler() {
    let engine = RandomWorlds::new().with_approx(McConfig::default());
    let kb = trap_kb();
    for (q, expect) in [("Hep(Eric)", 0.8), ("Jaun(Eric)", 1.0), ("!Jaun(Tom)", 0.0)] {
        let r = engine.answer(&kb, q).unwrap();
        assert_eq!(r.belief.as_point(), Some(expect), "{q}: {r}");
        assert_eq!(r.trace.steps().len(), 1, "{q} must stop at theorems: {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite (b): `MonteCarloSolver` beliefs are identical across
    /// 1/2/4 worker threads for a fixed seed.
    #[test]
    fn beliefs_are_identical_across_worker_thread_counts(seed in 0u64..1_000_000) {
        let kb = trap_kb();
        let answer = |threads: usize| {
            let cfg = McConfig {
                seed,
                threads,
                max_samples: 1 << 14,
                ..McConfig::default()
            };
            let r = RandomWorlds::new()
                .with_approx(cfg)
                .answer(&kb, "Hep(Eric) & Hep(Tom)")
                .unwrap();
            (r.belief, r.provenance)
        };
        let reference = answer(1);
        prop_assert_eq!(&answer(2), &reference, "2 threads diverged (seed {})", seed);
        prop_assert_eq!(&answer(4), &reference, "4 threads diverged (seed {})", seed);
    }

    /// Different seeds give different draws but compatible beliefs.
    #[test]
    fn seeds_vary_the_draws_not_the_truth(seed in 1u64..1_000_000) {
        let kb = trap_kb();
        let at = |seed: u64| {
            let r = RandomWorlds::new()
                .with_approx(McConfig { seed, max_samples: 1 << 14, ..McConfig::default() })
                .answer(&kb, "Hep(Eric) & Hep(Tom)")
                .unwrap();
            r.belief
        };
        let (a, b) = (at(seed), at(seed.wrapping_mul(31).wrapping_add(7)));
        prop_assert!(a.approx_eq(&b, 0.02), "{} vs {}", a, b);
    }
}
