//! Cross-system comparisons between random worlds and the classical
//! nonmonotonic systems (paper §3): every row pins both the classical
//! system's documented behavior (including its failure mode) and the
//! random-worlds answer on the same benchmark. Experiment rows E32–E36.

use random_worlds::defaults::{
    circ_entails, extensions, lex_entails, minimal_models, skeptical, CircPolicy, Default,
    DefaultTheory,
};
use random_worlds::epsilon::prop::VarTable;
use random_worlds::epsilon::{me_plausible, z_entails, DefaultRule};
use random_worlds::prelude::*;

fn rw_belief(kb_src: &str, query: &str) -> Belief {
    let kb = KnowledgeBase::parse(kb_src).unwrap();
    RandomWorlds::new()
        .degree_of_belief(&kb, query)
        .unwrap()
        .belief
}

#[test]
fn e32_nixon_reiter_splits_random_worlds_grades() {
    // Reiter: two extensions, no skeptical verdict either way.
    let mut vt = VarTable::new();
    let mut t = DefaultTheory::new();
    t.fact_str(&mut vt, "quaker & republican").unwrap();
    t.normal_str(&mut vt, "quaker", "pacifist").unwrap();
    t.normal_str(&mut vt, "republican", "!pacifist").unwrap();
    assert_eq!(extensions(&t, vt.len()).len(), 2);
    let pac = vt.parse("pacifist").unwrap();
    assert!(!skeptical(&t, vt.len(), &pac));
    assert!(!skeptical(&t, vt.len(), &vt.parse("!pacifist").unwrap()));

    // Random worlds with equal-strength defaults: the symmetric point 1/2
    // (§5.3) — the two extensions become one graded answer.
    let kb = "Quaker(x) ->_1 Pacifist(x); Republican(x) ->_1 !Pacifist(x); \
              Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))";
    let b = rw_belief(kb, "Pacifist(Nixon)");
    let v = b
        .as_point()
        .unwrap_or_else(|| panic!("expected point, got {b}"));
    assert!((v - 0.5).abs() < 1e-6, "{v}");
}

#[test]
fn e33_broken_arm_reiter_asserts_both_usable() {
    // Reiter (Example 5.4): unique extension, both arms usable, because the
    // exception defaults' prerequisites are never derivable from `lb ∨ rb`
    // (default logic fails Or).
    let mut vt = VarTable::new();
    let mut t = DefaultTheory::new();
    t.fact_str(&mut vt, "lb or rb").unwrap();
    t.normal_str(&mut vt, "true", "lu").unwrap();
    t.normal_str(&mut vt, "true", "ru").unwrap();
    t.normal_str(&mut vt, "lb", "!lu").unwrap();
    t.normal_str(&mut vt, "rb", "!ru").unwrap();
    let exts = extensions(&t, vt.len());
    assert_eq!(exts.len(), 1);
    assert!(skeptical(&t, vt.len(), &vt.parse("lu & ru").unwrap()));

    // Random worlds: exactly one arm usable, with belief 1.
    let kb = "||LeftUsable(x)||_x ~=_1 1; ||LeftUsable(x) | LeftBroken(x)||_x ~=_2 0; \
              ||RightUsable(x)||_x ~=_3 1; ||RightUsable(x) | RightBroken(x)||_x ~=_4 0; \
              LeftBroken(Eric) or RightBroken(Eric)";
    assert!(rw_belief(
        kb,
        "(LeftUsable(Eric) or RightUsable(Eric)) & !(LeftUsable(Eric) & RightUsable(Eric))"
    )
    .is_one());
    // And — unlike Reiter — NOT both usable.
    assert!(rw_belief(kb, "LeftUsable(Eric) & RightUsable(Eric)").is_zero());
}

#[test]
fn e34_specificity_needs_guards_in_reiter_but_not_in_random_worlds() {
    let mut vt = VarTable::new();
    let no_fly = vt.parse("!fly").unwrap();

    // Naive normal encoding: two extensions, specificity lost.
    let mut naive = DefaultTheory::new();
    naive.fact_str(&mut vt, "penguin").unwrap();
    naive.fact_str(&mut vt, "penguin => bird").unwrap();
    naive.normal_str(&mut vt, "bird", "fly").unwrap();
    naive.normal_str(&mut vt, "penguin", "!fly").unwrap();
    assert_eq!(extensions(&naive, vt.len()).len(), 2);
    assert!(!skeptical(&naive, vt.len(), &no_fly));

    // Semi-normal guard [RC81]: restores specificity — but note the bird
    // default now hard-codes knowledge about penguins (the modularity cost
    // §3.3 describes).
    let mut guarded = DefaultTheory::new();
    guarded.fact_str(&mut vt, "penguin").unwrap();
    guarded.fact_str(&mut vt, "penguin => bird").unwrap();
    guarded.default_rule(Default::semi_normal(
        vt.parse("bird").unwrap(),
        vt.parse("fly").unwrap(),
        vt.parse("!penguin").unwrap(),
    ));
    guarded.normal_str(&mut vt, "penguin", "!fly").unwrap();
    assert_eq!(extensions(&guarded, vt.len()).len(), 1);
    assert!(skeptical(&guarded, vt.len(), &no_fly));

    // Random worlds: specificity falls out of Theorem 5.16 with the
    // unmodified, modular KB.
    let kb = "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
              forall x (Penguin(x) => Bird(x)); Penguin(Tweety)";
    assert!(rw_belief(kb, "Fly(Tweety)").is_zero());
}

#[test]
fn e35_lottery_circumscription_vs_graded_belief() {
    // Circumscription (§3.5): minimizing winners, each minimal model
    // crowns a different ticket; no ¬Winner(i) conclusion, though
    // existence survives.
    let mut vt = VarTable::new();
    let t = vt
        .parse(
            "(w1 or w2 or w3 or w4) & (w1 => !w2 & !w3 & !w4) & \
                (w2 => !w1 & !w3 & !w4) & (w3 => !w1 & !w2 & !w4) & (w4 => !w1 & !w2 & !w3)",
        )
        .unwrap();
    let policy = CircPolicy::minimize((0..4).collect());
    assert_eq!(minimal_models(&t, &policy, vt.len()).len(), 4);
    assert!(!circ_entails(
        &t,
        &policy,
        vt.len(),
        &vt.parse("!w1").unwrap()
    ));
    assert!(circ_entails(
        &t,
        &policy,
        vt.len(),
        &vt.parse("w1 or w2 or w3 or w4").unwrap()
    ));

    // Random worlds grades instead: with the domain size open, each ticket
    // holder's chance of winning is believed 0, yet someone surely wins —
    // resolving Lifschitz's tension (§5.5).
    let kb = "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); \
              forall x (Ticket(x)); Ticket(C)";
    assert!(rw_belief(kb, "Winner(C)").is_zero());
    assert!(rw_belief(kb, "exists x (Winner(x))").is_one());
}

#[test]
fn e36_drowning_z_blocks_lex_and_random_worlds_inherit() {
    let mut vt = VarTable::new();
    let rules = vec![
        DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
        DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("!fly").unwrap()),
        DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("bird").unwrap()),
        DefaultRule::new(vt.parse("yellow").unwrap(), vt.parse("see").unwrap()),
    ];
    let yp = vt.parse("yellow & penguin").unwrap();
    let see = vt.parse("see").unwrap();

    // System Z drowns; lexicographic entailment and GMP90's ME-plausible
    // consequence (= unary random worlds, Thm 6.1) do not.
    assert_eq!(z_entails(&rules, &yp, &see), Some(false));
    assert_eq!(lex_entails(&rules, &yp, &see), Some(true));
    assert_eq!(me_plausible(&rules, &vt, &yp, &see).ok(), Some(true));

    // Full random worlds on the first-order statement of the same KB.
    let kb = "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
              forall x (Penguin(x) => Bird(x)); Yellow(x) ->_3 EasyToSee(x); \
              Penguin(Tweety); Yellow(Tweety)";
    assert!(rw_belief(kb, "EasyToSee(Tweety)").is_one());
}

#[test]
fn lex_specificity_and_z_agree_when_nothing_drowns() {
    // On exception-free chains the two orderings coincide; the refinement
    // only matters below the worst violation.
    let mut vt = VarTable::new();
    let rules = vec![
        DefaultRule::new(vt.parse("a").unwrap(), vt.parse("b").unwrap()),
        DefaultRule::new(vt.parse("b").unwrap(), vt.parse("c").unwrap()),
    ];
    let a = vt.parse("a").unwrap();
    let c = vt.parse("c").unwrap();
    assert_eq!(z_entails(&rules, &a, &c), Some(true));
    assert_eq!(lex_entails(&rules, &a, &c), Some(true));
}

#[test]
fn reiter_extension_count_matches_diamond_width() {
    // k pairwise-conflicting defaults from one premise → k extensions:
    // the multiple-extension growth that graded belief collapses.
    for k in 2usize..=4 {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "p").unwrap();
        for i in 0..k {
            // Each default concludes `exactly option i` (mutually
            // exclusive via pairwise negations).
            let mut concl = format!("o{i}");
            for j in 0..k {
                if j != i {
                    concl.push_str(&format!(" & !o{j}"));
                }
            }
            t.normal_str(&mut vt, "p", &concl).unwrap();
        }
        assert_eq!(extensions(&t, vt.len()).len(), k, "width {k}");
    }
}
