//! Cross-engine validation: every computation path must implement the same
//! semantics.
//!
//! * brute-force enumeration (`rw-worlds`) vs exact unary counting
//!   (`rw-unary`) — equal to floating-point accuracy wherever both run;
//! * exact unary counting at growing `N` vs the maximum-entropy point
//!   (`rw-maxent`) — the §6 concentration phenomenon;
//! * probability laws that hold at every `N` and tolerance
//!   (complementation, monotonicity under conjunction);
//! * the conditioning identity of Proposition 5.2.

use proptest::prelude::*;
use random_worlds::logic::Tolerances;
use random_worlds::prelude::*;
use rw_util::Rat;

fn tol(d: i128) -> Tolerances {
    Tolerances::uniform(Rat::new(1, d))
}

#[test]
fn unary_matches_enumeration_on_fixed_corpus() {
    let corpus = [
        ("||P(x)||_x ~=_1 0.5", "P(C)"),
        ("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(C)", "Hep(C)"),
        ("forall x (P(x) => Q(x)); P(C)", "Q(C)"),
        ("exists! x (W(x)); W(C) or P(C)", "W(C)"),
        ("P(A) or Q(B); !P(B)", "Q(B)"),
        ("C1 = C2 or C2 = C3", "C1 = C3"),
        ("||P(x) & Q(x)||_x <~_1 0.25; P(C)", "Q(C)"),
    ];
    for (kb_src, q_src) in corpus {
        let mut kb = KnowledgeBase::parse(kb_src).unwrap();
        let q = kb.parse_query(q_src).unwrap();
        for n in 2..=4usize {
            let t = tol(4);
            let exact = rw_worlds::degree_of_belief_at(&kb, &q, n, &t).unwrap();
            let unary = random_worlds::unary::degree_of_belief_at(&kb, &q, n, &t).unwrap();
            match (exact, unary) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() < 1e-9,
                    "{kb_src} ⊢ {q_src} @N={n}: {a} vs {b}"
                ),
                other => panic!("{kb_src} ⊢ {q_src} @N={n}: {other:?}"),
            }
        }
    }
}

#[test]
fn unary_counts_concentrate_at_maxent_point() {
    // §6: E[atom proportions | KB] → maxent point as N grows; the gap
    // shrinks roughly like 1/N (figure F4 of the experiment index).
    let kb =
        KnowledgeBase::parse("||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1").unwrap();
    let t = tol(20);
    let point = rw_maxent::maxent_point(&kb, &t).unwrap();
    let mut last_gap = f64::INFINITY;
    // N = 20 admits no profile at this tolerance (no integer bird count
    // satisfies both constraints); start at 40.
    for n in [40usize, 80, 160] {
        let props = random_worlds::unary::expected_atom_proportions(&kb, n, &t)
            .unwrap()
            .unwrap();
        let gap: f64 = props
            .iter()
            .zip(&point)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(
            gap < last_gap + 1e-4,
            "gap grew at N={n}: {gap} vs {last_gap}"
        );
        last_gap = gap;
    }
    assert!(last_gap < 0.02, "{last_gap}");
}

#[test]
fn conditioning_identity_prop_5_2() {
    // Proposition 5.2: if Pr(θ|KB) = 1 then Pr(φ|KB) = Pr(φ|KB ∧ θ) — here
    // verified exactly at finite N for a θ entailed by the KB.
    let mut kb = KnowledgeBase::parse("forall x (P(x) => Q(x)); P(C)").unwrap();
    let phi = kb.parse_query("R(C)").unwrap();
    let theta = kb.parse_query("Q(C)").unwrap();
    let mut kb2 = kb.clone();
    kb2.assert_formula(theta);
    let t = tol(4);
    for n in 2..=4usize {
        let a = rw_worlds::degree_of_belief_at(&kb, &phi, n, &t)
            .unwrap()
            .unwrap();
        let b = rw_worlds::degree_of_belief_at(&kb2, &phi, n, &t)
            .unwrap()
            .unwrap();
        assert!((a - b).abs() < 1e-12, "N={n}: {a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Complement law at every finite size: Pr(φ) + Pr(¬φ) = 1.
    #[test]
    fn complement_law(kb_pick in 0usize..4, q_pick in 0usize..3, n in 2usize..4) {
        let kbs = [
            "||P(x)||_x ~=_1 0.5",
            "P(C) or Q(C)",
            "forall x (P(x) => Q(x))",
            "||Q(x) | P(x)||_x ~=_1 0.75",
        ];
        let queries = ["P(C)", "Q(C) & P(C)", "exists x (P(x) & !Q(x))"];
        let mut kb = KnowledgeBase::parse(kbs[kb_pick]).unwrap();
        let q = kb.parse_query(queries[q_pick]).unwrap();
        let nq = kb.parse_query(&format!("!({})", queries[q_pick])).unwrap();
        let t = tol(4);
        let a = rw_worlds::degree_of_belief_at(&kb, &q, n, &t).unwrap();
        let b = rw_worlds::degree_of_belief_at(&kb, &nq, n, &t).unwrap();
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!((a + b - 1.0).abs() < 1e-12);
        }
    }

    /// Conjunction monotonicity: Pr(φ ∧ ψ) ≤ min(Pr(φ), Pr(ψ)).
    #[test]
    fn conjunction_monotonicity(n in 2usize..4, den in 3i128..6) {
        let mut kb = KnowledgeBase::parse("||Q(x) | P(x)||_x ~=_1 0.6; P(C)").unwrap();
        let q1 = kb.parse_query("Q(C)").unwrap();
        let q2 = kb.parse_query("R(C)").unwrap();
        let q12 = kb.parse_query("Q(C) & R(C)").unwrap();
        let t = tol(den);
        let a = rw_worlds::degree_of_belief_at(&kb, &q1, n, &t).unwrap().unwrap();
        let b = rw_worlds::degree_of_belief_at(&kb, &q2, n, &t).unwrap().unwrap();
        let ab = rw_worlds::degree_of_belief_at(&kb, &q12, n, &t).unwrap().unwrap();
        prop_assert!(ab <= a.min(b) + 1e-12);
    }

    /// Unary agreement on randomized unary KBs: the profile engine must
    /// reproduce enumeration exactly.
    #[test]
    fn unary_agreement_randomized(
        alpha_num in 1i128..10,
        cond_flip in proptest::bool::ANY,
        fact_flip in proptest::bool::ANY,
        n in 2usize..4,
    ) {
        let alpha = format!("0.{alpha_num}");
        let stat = if cond_flip {
            format!("||Q(x) | P(x)||_x ~=_1 {alpha}")
        } else {
            format!("||Q(x)||_x ~=_1 {alpha}")
        };
        let fact = if fact_flip { "P(C)" } else { "!P(C)" };
        let src = format!("{stat}; {fact}");
        let mut kb = KnowledgeBase::parse(&src).unwrap();
        let q = kb.parse_query("Q(C)").unwrap();
        let t = tol(5);
        let exact = rw_worlds::degree_of_belief_at(&kb, &q, n, &t).unwrap();
        let unary = random_worlds::unary::degree_of_belief_at(&kb, &q, n, &t).unwrap();
        match (exact, unary) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{src}: {a} vs {b}"),
            other => prop_assert!(false, "{src}: {other:?}"),
        }
    }
}
