//! Integration tests for the random-propensities engine (§7.3): agreement
//! with random worlds in the λ → ∞ limit, probability-law invariants, the
//! Laplace succession grid, and direct-inference parity. Experiment rows
//! E37–E39.

use random_worlds::logic::{KnowledgeBase, Tolerances};
use random_worlds::propensity::{Prior, PropensityEngine};
use random_worlds::unary;
use random_worlds::util::Rat;

fn kb_and_query(kb_src: &str, q: &str) -> (KnowledgeBase, random_worlds::logic::Formula) {
    let mut kb = KnowledgeBase::parse(kb_src).unwrap();
    let q = kb.parse_query(q).unwrap();
    (kb, q)
}

#[test]
fn lambda_limit_recovers_random_worlds_across_kbs() {
    // λ → ∞ makes every world equally likely again; the propensity engine
    // must agree with the uniform counting engine on diverse KBs.
    let cases = [
        (
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)",
            "Hep(Eric)",
            20,
        ),
        ("P(C1); !P(C2)", "P(C3)", 24),
        ("forall x (G(x) => T(x))", "T(C)", 20),
        (
            "||P(x)||_x ~=_1 0.5; ||Q(x)||_x ~=_2 0.5",
            "P(C) & Q(C)",
            16,
        ),
    ];
    let tol = Tolerances::uniform(Rat::new(1, 8));
    let engine = PropensityEngine::new(Prior::Lambda(1e9));
    for (kb_src, q_src, n) in cases {
        let (kb, q) = kb_and_query(kb_src, q_src);
        let rw = unary::degree_of_belief_at(&kb, &q, n, &tol)
            .unwrap()
            .unwrap();
        let pr = engine
            .degree_of_belief_at(&kb, &q, n, &tol)
            .unwrap()
            .unwrap();
        assert!(
            (rw - pr).abs() < 1e-4,
            "{kb_src} ⊢ {q_src}: rw {rw} vs λ→∞ {pr}"
        );
    }
}

#[test]
fn complement_law_holds_under_every_prior() {
    // Pr(φ) + Pr(¬φ) = 1 for any exchangeable prior — the engines compute
    // genuine conditional probabilities.
    let tol = Tolerances::uniform(Rat::new(1, 8));
    for prior in [Prior::PerPredicate, Prior::CarnapStar, Prior::Lambda(3.0)] {
        let engine = PropensityEngine::new(prior);
        let (mut kb, q) = kb_and_query("||P(x) | S(x)||_x ~=_1 0.75; S(C1); !S(C2)", "P(C2)");
        let not_q = kb.parse_query("!P(C2)").unwrap();
        let a = engine
            .degree_of_belief_at(&kb, &q, 20, &tol)
            .unwrap()
            .unwrap();
        let b = engine
            .degree_of_belief_at(&kb, &not_q, 20, &tol)
            .unwrap()
            .unwrap();
        assert!((a + b - 1.0).abs() < 1e-9, "{prior:?}: {a} + {b}");
    }
}

#[test]
fn e37_succession_grid_matches_laplace() {
    // (k positives, n−k negatives) → (k+1)/(n+2), Laplace's rule, for the
    // single-predicate priors.
    let tol = Tolerances::uniform(Rat::new(1, 10));
    for (k, n) in [(0usize, 1usize), (1, 2), (2, 5), (4, 4)] {
        let s = random_worlds::propensity::succession(k, n);
        let expected = (k as f64 + 1.0) / (n as f64 + 2.0);
        let engine = PropensityEngine::new(Prior::PerPredicate);
        let v = engine
            .limit_estimate(&s.kb, &s.query, &[48, 96, 192], &tol)
            .unwrap()
            .unwrap();
        assert!(
            (v - expected).abs() < 0.02,
            "k={k}, n={n}: expected {expected}, got {v}"
        );
    }
}

#[test]
fn e38_sampling_contrast_random_worlds_flat_propensities_learn() {
    let s = random_worlds::propensity::sampling(80);
    let tol = Tolerances::uniform(Rat::new(1, 10));

    let rw = unary::degree_of_belief_at(&s.kb, &s.query, 40, &tol)
        .unwrap()
        .unwrap();
    assert!(
        (rw - 0.5).abs() < 0.03,
        "random worlds should stay flat: {rw}"
    );

    let engine = PropensityEngine::new(Prior::PerPredicate);
    let pp = engine
        .degree_of_belief_at(&s.kb, &s.query, 40, &tol)
        .unwrap()
        .unwrap();
    assert!(pp > 0.68, "per-predicate propensities should learn: {pp}");

    // m* cannot transfer across the sample boundary (Dirichlet
    // aggregation): it stays with random worlds here.
    let star = PropensityEngine::new(Prior::CarnapStar);
    let ms = star
        .degree_of_belief_at(&s.kb, &s.query, 40, &tol)
        .unwrap()
        .unwrap();
    assert!((ms - 0.5).abs() < 0.03, "m* should stay flat: {ms}");
}

#[test]
fn e39_direct_inference_parity_with_random_worlds() {
    // Direct inference (Theorem 5.6) also holds for random propensities
    // [KH96]: given `||Hep|Jaun|| ≈ 0.8` and `Jaun(Eric)`, every engine
    // lands near 0.8.
    let (kb, q) = kb_and_query("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Hep(Eric)");
    let tol = Tolerances::uniform(Rat::new(1, 12));
    for prior in [Prior::PerPredicate, Prior::CarnapStar] {
        let engine = PropensityEngine::new(prior);
        let v = engine
            .degree_of_belief_at(&kb, &q, 48, &tol)
            .unwrap()
            .unwrap();
        assert!((v - 0.8).abs() < 0.1, "{prior:?}: {v}");
    }
}

#[test]
fn priors_diverge_only_where_they_should() {
    // On a KB with full statistics and no named individuals beyond the
    // query constant, all priors give (τ-window) direct inference — the
    // divergence is specifically about *learning*, not about using stated
    // statistics.
    let (kb, q) = kb_and_query("||P(x)||_x ~=_1 0.3", "P(C)");
    let tol = Tolerances::uniform(Rat::new(1, 12));
    let mut values = Vec::new();
    for prior in [Prior::PerPredicate, Prior::CarnapStar, Prior::Lambda(50.0)] {
        let engine = PropensityEngine::new(prior);
        values.push(
            engine
                .degree_of_belief_at(&kb, &q, 60, &tol)
                .unwrap()
                .unwrap(),
        );
    }
    let rw = unary::degree_of_belief_at(&kb, &q, 60, &tol)
        .unwrap()
        .unwrap();
    values.push(rw);
    for v in &values {
        assert!((v - 0.3).abs() < 0.1, "direct inference broke: {values:?}");
    }
}
