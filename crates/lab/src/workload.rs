//! The `workloads/*.jsonl` task-set format.
//!
//! A workload file is JSONL: an optional header object (first line, keyed
//! by `"workload"`) followed by one task object per line. Blank lines and
//! `#`-prefixed comment lines are skipped, so workload files can carry
//! commentary like every other text format in this workspace.
//!
//! ```text
//! {"workload":"paper-examples","gates":{"max_trial_us":30000000}}
//! {"task":"hep-eric","kb":"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)","query":"Hep(Eric)","expect":0.8}
//! ```
//!
//! Task fields:
//!
//! * `task` — unique id (required);
//! * `kb` — inline KB source, in any format [`rw_server::format::parse_kb`]
//!   accepts: plain `L≈`, `@temporal`, or `@defaults` (use `\n` escapes
//!   for multi-line directive sources); or `kb_path` — a path resolved
//!   against the workload file's directory;
//! * `query` — the `L≈` query (required);
//! * `expect` — optional expected point belief (the oracle tag); the
//!   reference engine's answer must match to 1e-9;
//! * `expect_kind` — optional expected belief shape: `point`,
//!   `interval`, `non-robust`, `approximate`, or `undefined`;
//! * `min_n` / `max_n` — optional rising-`N` scan window pins, applied
//!   to every exact engine so compiled and oracle extrapolate from the
//!   same diagonal points (bit-equality depends on it).
//!
//! Header gate fields (all optional):
//!
//! * `max_trial_us` — every successful trial must finish within this;
//! * `min_speedup` — `{"engine":…,"baseline":…,"value":…,"tasks":[…]}`:
//!   summed over the listed tasks (all tasks when the list is absent),
//!   `engine` must beat `baseline` by the given wall-clock factor.

use rw_server::proto::Value;
use std::fmt;
use std::path::Path;

/// A parsed workload: name, gates, and tasks in file order.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Workload name (header `workload` field, or `"workload"`).
    pub name: String,
    /// Human description from the header, possibly empty.
    pub description: String,
    /// Regression gates from the header.
    pub gates: Gates,
    /// The tasks, in file order.
    pub tasks: Vec<Task>,
}

/// Regression gates a run of the workload is judged against (beyond the
/// always-on cross-engine equality and determinism gates).
#[derive(Clone, Debug, Default)]
pub struct Gates {
    /// Ceiling on any successful trial's wall time, in microseconds.
    pub max_trial_us: Option<u64>,
    /// A cross-engine wall-clock floor.
    pub min_speedup: Option<SpeedupGate>,
}

/// `engine` must beat `baseline` by `value`× summed wall-clock over
/// `tasks` (every task when empty).
#[derive(Clone, Debug)]
pub struct SpeedupGate {
    /// The engine whose speed is being asserted.
    pub engine: String,
    /// The engine it is measured against.
    pub baseline: String,
    /// The required wall-clock ratio `baseline / engine`.
    pub value: f64,
    /// Task ids the gate sums over; empty = all tasks.
    pub tasks: Vec<String>,
}

/// One workload task: a KB, a query, and optional oracle/scan pins.
#[derive(Clone, Debug)]
pub struct Task {
    /// Unique task id.
    pub id: String,
    /// KB source text (inline or loaded from `kb_path`).
    pub kb_source: String,
    /// The query to answer.
    pub query: String,
    /// Expected point belief, checked against the reference engine.
    pub expect: Option<f64>,
    /// Expected belief shape keyword.
    pub expect_kind: Option<String>,
    /// Rising-`N` scan floor for exact engines.
    pub min_n: Option<usize>,
    /// Rising-`N` scan ceiling for exact engines.
    pub max_n: Option<usize>,
}

/// A workload-file parse error, tagged with its 1-based line.
#[derive(Clone, Debug)]
pub struct WorkloadError {
    /// 1-based line number in the workload file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WorkloadError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, WorkloadError> {
    Err(WorkloadError {
        line,
        message: message.into(),
    })
}

fn as_usize(v: &Value) -> Option<usize> {
    v.as_u64().map(|u| u as usize)
}

fn string_list(v: &Value) -> Option<Vec<String>> {
    match v {
        Value::Arr(items) => items
            .iter()
            .map(|i| i.as_str().map(str::to_string))
            .collect(),
        _ => None,
    }
}

fn parse_gates(line: usize, v: &Value) -> Result<Gates, WorkloadError> {
    let mut gates = Gates::default();
    let Value::Obj(entries) = v else {
        return err(line, "`gates` must be an object");
    };
    for (key, val) in entries {
        match key.as_str() {
            "max_trial_us" => match val.as_u64() {
                Some(us) => gates.max_trial_us = Some(us),
                None => return err(line, "`max_trial_us` must be a non-negative integer"),
            },
            "min_speedup" => {
                let (Some(engine), Some(baseline), Some(value)) = (
                    val.get("engine").and_then(Value::as_str),
                    val.get("baseline").and_then(Value::as_str),
                    val.get("value").and_then(Value::as_f64),
                ) else {
                    return err(
                        line,
                        "`min_speedup` needs string `engine`/`baseline` and numeric `value`",
                    );
                };
                let tasks = match val.get("tasks") {
                    None => Vec::new(),
                    Some(t) => match string_list(t) {
                        Some(list) => list,
                        None => return err(line, "`min_speedup.tasks` must be a string array"),
                    },
                };
                gates.min_speedup = Some(SpeedupGate {
                    engine: engine.to_string(),
                    baseline: baseline.to_string(),
                    value,
                    tasks,
                });
            }
            other => return err(line, format!("unknown gate `{other}`")),
        }
    }
    Ok(gates)
}

fn parse_task(line: usize, v: &Value, base_dir: Option<&Path>) -> Result<Task, WorkloadError> {
    let Some(id) = v.get("task").and_then(Value::as_str) else {
        return err(line, "task lines need a string `task` id");
    };
    let kb_source = match (v.get("kb"), v.get("kb_path")) {
        (Some(kb), None) => match kb.as_str() {
            Some(s) => s.to_string(),
            None => return err(line, "`kb` must be a string"),
        },
        (None, Some(p)) => {
            let Some(rel) = p.as_str() else {
                return err(line, "`kb_path` must be a string");
            };
            let path = match base_dir {
                Some(dir) => dir.join(rel),
                None => Path::new(rel).to_path_buf(),
            };
            match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => return err(line, format!("cannot read `{}`: {e}", path.display())),
            }
        }
        (Some(_), Some(_)) => return err(line, "give `kb` or `kb_path`, not both"),
        (None, None) => return err(line, "task lines need `kb` or `kb_path`"),
    };
    let Some(query) = v.get("query").and_then(Value::as_str) else {
        return err(line, "task lines need a string `query`");
    };
    let expect = match v.get("expect") {
        None => None,
        Some(e) => match e.as_f64() {
            Some(x) => Some(x),
            None => return err(line, "`expect` must be a number"),
        },
    };
    let expect_kind =
        match v.get("expect_kind") {
            None => None,
            Some(k) => match k.as_str() {
                Some(s)
                    if matches!(
                        s,
                        "point" | "interval" | "non-robust" | "approximate" | "undefined"
                    ) =>
                {
                    Some(s.to_string())
                }
                _ => return err(
                    line,
                    "`expect_kind` must be point | interval | non-robust | approximate | undefined",
                ),
            },
        };
    let scan = |key: &str| -> Result<Option<usize>, WorkloadError> {
        match v.get(key) {
            None => Ok(None),
            Some(n) => match as_usize(n) {
                Some(u) if u >= 2 => Ok(Some(u)),
                _ => err(line, format!("`{key}` must be an integer >= 2")),
            },
        }
    };
    let min_n = scan("min_n")?;
    let max_n = scan("max_n")?;
    if let (Some(lo), Some(hi)) = (min_n, max_n) {
        if lo > hi {
            return err(line, "`min_n` must not exceed `max_n`");
        }
    }
    Ok(Task {
        id: id.to_string(),
        kb_source,
        query: query.to_string(),
        expect,
        expect_kind,
        min_n,
        max_n,
    })
}

impl Workload {
    /// Parses workload JSONL source. `base_dir` resolves `kb_path`
    /// references (pass the workload file's directory).
    pub fn parse(src: &str, base_dir: Option<&Path>) -> Result<Workload, WorkloadError> {
        let mut name = String::from("workload");
        let mut description = String::new();
        let mut gates = Gates::default();
        let mut tasks: Vec<Task> = Vec::new();
        let mut saw_header = false;
        let mut saw_any = false;
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let n = idx + 1;
            let v = match Value::parse(line) {
                Ok(v) => v,
                Err(e) => return err(n, e.to_string()),
            };
            if v.get("workload").is_some() {
                if saw_header {
                    return err(n, "duplicate workload header");
                }
                if saw_any {
                    return err(n, "the workload header must be the first line");
                }
                saw_header = true;
                saw_any = true;
                name = match v.get("workload").and_then(Value::as_str) {
                    Some(s) => s.to_string(),
                    None => return err(n, "`workload` must be a string"),
                };
                if let Some(d) = v.get("description") {
                    match d.as_str() {
                        Some(s) => description = s.to_string(),
                        None => return err(n, "`description` must be a string"),
                    }
                }
                if let Some(g) = v.get("gates") {
                    gates = parse_gates(n, g)?;
                }
                continue;
            }
            saw_any = true;
            let task = parse_task(n, &v, base_dir)?;
            if tasks.iter().any(|t| t.id == task.id) {
                return err(n, format!("duplicate task id `{}`", task.id));
            }
            tasks.push(task);
        }
        if tasks.is_empty() {
            return err(1, "workload contains no tasks");
        }
        if let Some(gate) = &gates.min_speedup {
            for id in &gate.tasks {
                if !tasks.iter().any(|t| &t.id == id) {
                    return err(1, format!("`min_speedup` names unknown task `{id}`"));
                }
            }
        }
        Ok(Workload {
            name,
            description,
            gates,
            tasks,
        })
    }

    /// Loads a workload from a file, resolving `kb_path` references
    /// against the file's directory.
    pub fn load(path: &Path) -> Result<Workload, WorkloadError> {
        let src = std::fs::read_to_string(path).map_err(|e| WorkloadError {
            line: 0,
            message: format!("cannot read `{}`: {e}", path.display()),
        })?;
        Workload::parse(&src, path.parent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_header_gates_and_tasks() {
        let w = Workload::parse(
            "# comment\n\
             {\"workload\":\"demo\",\"description\":\"d\",\"gates\":{\"max_trial_us\":5000000,\"min_speedup\":{\"engine\":\"compiled\",\"baseline\":\"oracle\",\"value\":5.0,\"tasks\":[\"a\"]}}}\n\
             {\"task\":\"a\",\"kb\":\"P(C)\",\"query\":\"P(C)\",\"expect\":1,\"min_n\":2,\"max_n\":4}\n",
            None,
        )
        .unwrap();
        assert_eq!(w.name, "demo");
        assert_eq!(w.gates.max_trial_us, Some(5_000_000));
        let gate = w.gates.min_speedup.as_ref().unwrap();
        assert_eq!(
            (gate.engine.as_str(), gate.baseline.as_str()),
            ("compiled", "oracle")
        );
        assert_eq!(w.tasks.len(), 1);
        assert_eq!(w.tasks[0].expect, Some(1.0));
        assert_eq!((w.tasks[0].min_n, w.tasks[0].max_n), (Some(2), Some(4)));
    }

    #[test]
    fn headerless_workloads_are_fine() {
        let w = Workload::parse(
            "{\"task\":\"a\",\"kb\":\"P(C)\",\"query\":\"P(C)\"}\n",
            None,
        )
        .unwrap();
        assert_eq!(w.name, "workload");
        assert_eq!(w.tasks.len(), 1);
    }

    #[test]
    fn duplicate_task_ids_are_rejected() {
        let e = Workload::parse(
            "{\"task\":\"a\",\"kb\":\"P(C)\",\"query\":\"P(C)\"}\n\
             {\"task\":\"a\",\"kb\":\"Q(C)\",\"query\":\"Q(C)\"}\n",
            None,
        )
        .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"), "{}", e.message);
    }

    #[test]
    fn header_after_tasks_is_rejected() {
        let e = Workload::parse(
            "{\"task\":\"a\",\"kb\":\"P(C)\",\"query\":\"P(C)\"}\n{\"workload\":\"late\"}\n",
            None,
        )
        .unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn speedup_gate_task_ids_are_validated() {
        let e = Workload::parse(
            "{\"workload\":\"w\",\"gates\":{\"min_speedup\":{\"engine\":\"compiled\",\"baseline\":\"oracle\",\"value\":2.0,\"tasks\":[\"ghost\"]}}}\n\
             {\"task\":\"a\",\"kb\":\"P(C)\",\"query\":\"P(C)\"}\n",
            None,
        )
        .unwrap_err();
        assert!(e.message.contains("ghost"), "{}", e.message);
    }

    #[test]
    fn empty_workloads_are_rejected() {
        assert!(Workload::parse("# nothing\n", None).is_err());
    }

    #[test]
    fn bad_scan_pins_are_rejected() {
        let e = Workload::parse(
            "{\"task\":\"a\",\"kb\":\"P(C)\",\"query\":\"P(C)\",\"min_n\":5,\"max_n\":3}\n",
            None,
        )
        .unwrap_err();
        assert!(e.message.contains("min_n"), "{}", e.message);
    }
}
