//! Variant-matrix expansion and trial execution.
//!
//! A *trial* is one (task, engine, threads, cache) cell: a fresh engine
//! configured for the variant answers the task's query against its KB.
//! Trials share nothing — each gets its own [`AnswerCache`] when the
//! cache dimension is on — so rows are a pure function of the task and
//! variant (plus the run seed for Monte-Carlo), which is what makes the
//! determinism and shuffle-invariance gates meaningful.

use crate::workload::{Task, Workload};
use rw_core::{AnswerCache, Belief, McConfig, RandomWorlds, Response};
use rw_logic::KnowledgeBase;
use rw_server::json::{belief_json, counters_json, escape};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The engine axis of the variant matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Compiled branch-and-count exact cascade (the default engine).
    Compiled,
    /// Naive odometer-enumeration exact cascade (`enum_compiled = false`).
    Oracle,
    /// Symmetry-reduced orbit counting (`enum_symmetry = true`).
    Symmetry,
    /// Monte-Carlo approximate inference after the theorem stage.
    MonteCarlo,
    /// Theorems + maximum-entropy τ-sweep only (no counting fallback);
    /// declines — recorded as a failed trial — where neither applies.
    MaxEnt,
}

/// Every engine keyword, in canonical order.
pub const ALL_ENGINES: [Engine; 5] = [
    Engine::Compiled,
    Engine::Oracle,
    Engine::Symmetry,
    Engine::MonteCarlo,
    Engine::MaxEnt,
];

impl Engine {
    /// The stable keyword used in rows, flags and gate specs.
    pub fn keyword(&self) -> &'static str {
        match self {
            Engine::Compiled => "compiled",
            Engine::Oracle => "oracle",
            Engine::Symmetry => "symmetry",
            Engine::MonteCarlo => "montecarlo",
            Engine::MaxEnt => "maxent",
        }
    }

    /// Parses a keyword back into an engine.
    pub fn parse(s: &str) -> Option<Engine> {
        ALL_ENGINES.iter().copied().find(|e| e.keyword() == s)
    }

    /// Whether the engine's answers are exact (bit-equality is owed
    /// between any two exact engines on the same task).
    pub fn is_exact(&self) -> bool {
        matches!(self, Engine::Compiled | Engine::Oracle | Engine::Symmetry)
    }
}

/// The variant matrix and run parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Engines to run, in order.
    pub engines: Vec<Engine>,
    /// Thread counts to run each engine under.
    pub threads: Vec<usize>,
    /// Cache settings to run (false = no cache, true = per-trial
    /// [`AnswerCache`] with a replay to verify the hit).
    pub cache: Vec<bool>,
    /// Root seed for Monte-Carlo trials.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            engines: vec![Engine::Compiled, Engine::Oracle, Engine::MonteCarlo],
            threads: vec![1],
            cache: vec![false, true],
            seed: 42,
        }
    }
}

/// One trial's outcome, renderable as a JSONL row.
#[derive(Clone, Debug)]
pub struct TrialRow {
    /// The task id.
    pub task: String,
    /// The engine axis value.
    pub engine: Engine,
    /// The threads axis value.
    pub threads: usize,
    /// The cache axis value.
    pub cache: bool,
    /// Whether the trial produced a belief.
    pub ok: bool,
    /// The belief, when `ok`.
    pub belief: Option<Belief>,
    /// The provenance rendering, when `ok`.
    pub provenance: Option<String>,
    /// The `,"mc":{…}` / `,"enum":{…}` effort-counter fragment, possibly
    /// empty; rendered into the row as a `"counters":{…}` object.
    pub counters: String,
    /// With the cache on: the replayed query hit the cache and returned
    /// the identical belief. Always false with the cache off.
    pub cache_hit: bool,
    /// Wall time of the (cold) answer, microseconds.
    pub elapsed_us: u128,
    /// The failure, when `!ok`.
    pub error: Option<String>,
}

impl TrialRow {
    fn render_with(&self, threads: Option<usize>, elapsed_us: u128) -> String {
        let mut out = format!(
            r#"{{"task":"{}","engine":"{}""#,
            escape(&self.task),
            self.engine.keyword()
        );
        if let Some(t) = threads {
            let _ = write!(out, r#","threads":{t}"#);
        }
        let _ = write!(
            out,
            r#","cache":{},"ok":{},"cache_hit":{},"elapsed_us":{elapsed_us}"#,
            self.cache, self.ok, self.cache_hit
        );
        match (&self.belief, &self.provenance) {
            (Some(b), Some(p)) => {
                let _ = write!(
                    out,
                    r#","belief":{},"provenance":"{}""#,
                    belief_json(b),
                    escape(p),
                );
                // The fragment is `,"mc":{…}` / `,"enum":{…}`; rewrap it
                // as a named object so row consumers address one key.
                if !self.counters.is_empty() {
                    let _ = write!(out, r#","counters":{{{}}}"#, &self.counters[1..]);
                }
            }
            _ => {
                let _ = write!(
                    out,
                    r#","error":"{}""#,
                    escape(self.error.as_deref().unwrap_or("unknown"))
                );
            }
        }
        out.push('}');
        out
    }

    /// The full JSONL row (no trailing newline).
    pub fn render(&self) -> String {
        self.render_with(Some(self.threads), self.elapsed_us)
    }

    /// The row with its two legitimately variant-dependent fields
    /// removed: wall time zeroed and the `threads` field dropped. Two
    /// trials of the same (task, engine, cache) cell at different thread
    /// counts must produce byte-identical identities — counting and
    /// sampling are thread-count deterministic.
    pub fn identity(&self) -> String {
        self.render_with(None, 0)
    }
}

/// Builds the engine for one variant cell over one task.
fn build_engine(engine: Engine, threads: usize, task: &Task, seed: u64) -> RandomWorlds {
    let mut rw = RandomWorlds::new();
    rw.enum_threads = threads;
    rw.enum_min_n = task.min_n;
    rw.enum_max_n = task.max_n;
    match engine {
        Engine::Compiled | Engine::MaxEnt => {}
        Engine::Oracle => rw.enum_compiled = false,
        Engine::Symmetry => rw.enum_symmetry = true,
        Engine::MonteCarlo => {
            let defaults = McConfig::default();
            rw.approx = Some(McConfig {
                seed,
                threads,
                ..defaults
            });
        }
    }
    let mut stages = rw.default_stages();
    if engine == Engine::MaxEnt {
        stages.retain(|s| matches!(s.solver.name(), "theorems" | "maxent"));
    }
    rw.with_solvers(stages)
}

fn success(task: &Task, engine: Engine, threads: usize, cache: bool, r: &Response) -> TrialRow {
    TrialRow {
        task: task.id.clone(),
        engine,
        threads,
        cache,
        ok: true,
        belief: Some(r.belief.clone()),
        provenance: Some(r.provenance.to_string()),
        counters: counters_json(&r.provenance),
        cache_hit: false,
        elapsed_us: 0,
        error: None,
    }
}

fn failure(task: &Task, engine: Engine, threads: usize, cache: bool, error: String) -> TrialRow {
    TrialRow {
        task: task.id.clone(),
        engine,
        threads,
        cache,
        ok: false,
        belief: None,
        provenance: None,
        counters: String::new(),
        cache_hit: false,
        elapsed_us: 0,
        error: Some(error),
    }
}

/// Runs one trial: a fresh variant engine over the task's KB.
fn run_trial(
    kb: &KnowledgeBase,
    task: &Task,
    engine: Engine,
    threads: usize,
    cache: bool,
    seed: u64,
) -> TrialRow {
    let mut rw = build_engine(engine, threads, task, seed);
    if cache {
        rw = rw.with_cache(Arc::new(AnswerCache::new()));
    }
    let started = Instant::now();
    let cold = rw.answer(kb, &task.query);
    let elapsed_us = started.elapsed().as_micros();
    let mut row = match cold {
        Ok(r) => success(task, engine, threads, cache, &r),
        Err(e) => failure(task, engine, threads, cache, e.to_string()),
    };
    row.elapsed_us = elapsed_us;
    if cache && row.ok {
        // Replay the query through the same engine: the canonical-query
        // cache must hit and must return the identical belief (the PR-4
        // fingerprinting contract, armored on every cached trial).
        match rw.answer(kb, &task.query) {
            Ok(warm) if !warm.cached => {
                return failure(
                    task,
                    engine,
                    threads,
                    cache,
                    "cache replay missed".to_string(),
                );
            }
            Ok(warm) => {
                let cold_json = belief_json(row.belief.as_ref().unwrap());
                let warm_json = belief_json(&warm.belief);
                if cold_json != warm_json {
                    return failure(
                        task,
                        engine,
                        threads,
                        cache,
                        format!(
                            "cache replay returned a different belief: {warm_json} != {cold_json}"
                        ),
                    );
                }
                row.cache_hit = true;
            }
            Err(e) => {
                return failure(
                    task,
                    engine,
                    threads,
                    cache,
                    format!("cache replay failed: {e}"),
                );
            }
        }
    }
    row
}

/// Runs the full variant matrix over every task, in deterministic order:
/// tasks in file order, then engines, threads and cache settings in
/// config order. A KB that fails to load produces one failed row per
/// variant cell rather than aborting the run.
pub fn run(workload: &Workload, cfg: &RunConfig) -> Vec<TrialRow> {
    let mut rows = Vec::new();
    for task in &workload.tasks {
        let kb = rw_server::format::parse_kb(&task.kb_source);
        for &engine in &cfg.engines {
            for &threads in &cfg.threads {
                for &cache in &cfg.cache {
                    let row = match &kb {
                        Ok(kb) => run_trial(kb, task, engine, threads, cache, cfg.seed),
                        Err(e) => failure(task, engine, threads, cache, format!("kb: {e}")),
                    };
                    rows.push(row);
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_workload() -> Workload {
        Workload::parse(
            "{\"task\":\"hep\",\"kb\":\"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)\",\"query\":\"Hep(Eric)\",\"expect\":0.8}\n",
            None,
        )
        .unwrap()
    }

    #[test]
    fn trials_cover_the_variant_matrix_in_order() {
        let cfg = RunConfig {
            engines: vec![Engine::Compiled, Engine::Oracle],
            threads: vec![1, 2],
            cache: vec![false, true],
            seed: 42,
        };
        let rows = run(&demo_workload(), &cfg);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].engine, Engine::Compiled);
        // Theorem answers carry no effort counters; the counters object
        // appears only when the provenance has them.
        assert!(!rows[0].render().contains(r#""counters""#));
        assert_eq!((rows[0].threads, rows[0].cache), (1, false));
        assert_eq!((rows[1].threads, rows[1].cache), (1, true));
        assert_eq!(rows[7].engine, Engine::Oracle);
        assert!(rows.iter().all(|r| r.ok), "all trials answer");
    }

    #[test]
    fn cached_trials_verify_the_replay() {
        let cfg = RunConfig {
            engines: vec![Engine::Compiled],
            threads: vec![1],
            cache: vec![true],
            seed: 42,
        };
        let rows = run(&demo_workload(), &cfg);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].ok);
        assert!(rows[0].cache_hit, "replay must hit the cache");
    }

    #[test]
    fn identities_drop_threads_and_time() {
        let cfg = RunConfig {
            engines: vec![Engine::Compiled],
            threads: vec![1, 2],
            cache: vec![false],
            seed: 42,
        };
        let rows = run(&demo_workload(), &cfg);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].identity(), rows[1].identity());
        assert!(rows[0].render().contains("\"threads\":1"));
        assert!(!rows[0].identity().contains("threads"));
    }

    #[test]
    fn counting_rows_render_a_counters_object() {
        // A binary-predicate query outside every theorem pattern falls to
        // the enumeration stage, whose search effort must surface as a
        // named `counters` object (the window is pinned tiny so the scan
        // stays fast even in debug builds).
        let w = Workload::parse(
            "{\"task\":\"likes\",\"kb\":\"Likes(A, B)\",\"query\":\"Likes(B, A)\",\"min_n\":2,\"max_n\":4}\n",
            None,
        )
        .unwrap();
        let cfg = RunConfig {
            engines: vec![Engine::Compiled],
            threads: vec![1],
            cache: vec![false],
            seed: 42,
        };
        let rows = run(&w, &cfg);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].ok, "{:?}", rows[0].error);
        let line = rows[0].render();
        assert!(
            line.contains(r#""counters":{"enum":{"max_n":4,"visited":"#),
            "{line}"
        );
    }

    #[test]
    fn engine_keywords_round_trip() {
        for e in ALL_ENGINES {
            assert_eq!(Engine::parse(e.keyword()), Some(e));
        }
        assert_eq!(Engine::parse("warp-drive"), None);
    }

    #[test]
    fn broken_kbs_fail_every_cell_without_aborting() {
        let w = Workload::parse(
            "{\"task\":\"bad\",\"kb\":\"||broken\",\"query\":\"P(C)\"}\n\
             {\"task\":\"good\",\"kb\":\"P(C)\",\"query\":\"P(C)\"}\n",
            None,
        )
        .unwrap();
        let cfg = RunConfig {
            engines: vec![Engine::Compiled],
            threads: vec![1],
            cache: vec![false],
            seed: 42,
        };
        let rows = run(&w, &cfg);
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].ok);
        assert!(rows[0].error.as_deref().unwrap().starts_with("kb:"));
        assert!(rows[1].ok);
    }

    #[test]
    fn maxent_engine_runs_without_counting_stages() {
        let task = demo_workload().tasks[0].clone();
        let rw = build_engine(Engine::MaxEnt, 1, &task, 42);
        assert_eq!(rw.solvers(), vec!["theorems", "maxent"]);
    }
}
