#![warn(missing_docs)]

//! Workload experiment runner for the random-worlds engine.
//!
//! The engine grew five ways to answer the same question — the compiled
//! branch-and-count cascade, the odometer oracle, symmetry-reduced orbit
//! counting, Monte-Carlo sampling, and the maxent τ-sweep — plus knobs
//! (threads, caching) that are promised never to change an answer. This
//! crate turns those promises into *gates* over declarative workloads:
//!
//! * a workload (`workloads/*.jsonl`, [`workload`]) lists tasks — KB
//!   source (plain `L≈`, `@temporal`, or `@defaults`), query, optional
//!   expected belief and scan pins — and per-workload perf floors;
//! * the runner ([`runner`]) expands the variant matrix
//!   (engine × threads × cache) and answers every task under every
//!   variant, one JSONL row per trial;
//! * the report ([`report`]) judges the rows: exact engines bit-equal,
//!   Monte-Carlo within 3σ, byte-identical rows at any thread count,
//!   verified cache replays, declared wall-clock floors — and renders
//!   the analysis table plus machine-readable `LAB_REPORT.json`.
//!
//! ```
//! use rw_lab::{analysis_table, evaluate, run, RunConfig, Workload};
//!
//! let workload = Workload::parse(
//!     r#"{"task":"hep","kb":"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)","query":"Hep(Eric)","expect":0.8}"#,
//!     None,
//! ).unwrap();
//! let cfg = RunConfig::default();
//! let rows = run(&workload, &cfg);
//! let report = evaluate(&workload, &cfg, &rows);
//! assert!(report.pass);
//! ```

pub mod report;
pub mod runner;
pub mod workload;

pub use report::{analysis_table, evaluate, GateResult, GateStatus, LabReport};
pub use runner::{run, Engine, RunConfig, TrialRow, ALL_ENGINES};
pub use workload::{Gates, SpeedupGate, Task, Workload, WorkloadError};
