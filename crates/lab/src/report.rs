//! Gate evaluation, the analysis table, and `LAB_REPORT.json`.
//!
//! A run's rows are judged against two always-on gates — cross-engine
//! belief equality and thread-count determinism — plus whatever the
//! workload header declares (`max_trial_us`, `min_speedup`). The report
//! is machine-readable JSON so CI can gate on `"pass":true` without
//! parsing prose.

use crate::runner::{Engine, RunConfig, TrialRow};
use crate::workload::Workload;
use rw_core::Belief;
use rw_server::json::{belief_json, escape};
use std::fmt::Write as _;

/// How a gate concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateStatus {
    /// The gate's condition held.
    Pass,
    /// The gate's condition was violated.
    Fail,
    /// The run's variant set (or the workload header) makes the gate
    /// inapplicable.
    Skip,
}

impl GateStatus {
    /// The stable keyword used in `LAB_REPORT.json`.
    pub fn keyword(&self) -> &'static str {
        match self {
            GateStatus::Pass => "pass",
            GateStatus::Fail => "fail",
            GateStatus::Skip => "skip",
        }
    }
}

/// One gate's verdict.
#[derive(Clone, Debug)]
pub struct GateResult {
    /// Gate name (`cross-engine-equality`, `determinism`, …).
    pub gate: String,
    /// The verdict.
    pub status: GateStatus,
    /// Human-readable evidence: what was checked, or what broke.
    pub detail: String,
}

/// The machine-readable run report.
#[derive(Clone, Debug)]
pub struct LabReport {
    /// Workload name.
    pub workload: String,
    /// Total trials run.
    pub trials: usize,
    /// Trials that produced a belief.
    pub ok: usize,
    /// Trials that failed.
    pub failed: usize,
    /// Per-engine wall-time percentiles over the successful trials, in
    /// canonical engine order (log2-bucketed, so the quantiles are bucket
    /// upper bounds — the same math as the serving registry's
    /// histograms).
    pub latency: Vec<(String, rw_obs::HistogramSnapshot)>,
    /// Every gate's verdict.
    pub gates: Vec<GateResult>,
    /// True when no gate failed.
    pub pass: bool,
}

impl LabReport {
    /// Renders the report as a single deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            r#"{{"workload":"{}","trials":{},"ok":{},"failed":{},"latency":{{"#,
            escape(&self.workload),
            self.trials,
            self.ok,
            self.failed
        );
        for (i, (engine, snapshot)) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#""{}":{}"#, escape(engine), snapshot.to_json());
        }
        out.push_str(r#"},"gates":["#);
        for (i, g) in self.gates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"gate":"{}","status":"{}","detail":"{}"}}"#,
                escape(&g.gate),
                g.status.keyword(),
                escape(&g.detail)
            );
        }
        let _ = write!(out, r#"],"pass":{}}}"#, self.pass);
        out
    }
}

/// Per-engine latency snapshots over the successful rows, in canonical
/// engine order (only engines that produced at least one row appear).
fn latency_by_engine(rows: &[TrialRow]) -> Vec<(String, rw_obs::HistogramSnapshot)> {
    crate::runner::ALL_ENGINES
        .iter()
        .filter_map(|&engine| {
            let histogram = rw_obs::Histogram::new();
            let mut any = false;
            for row in rows.iter().filter(|r| r.ok && r.engine == engine) {
                histogram.record(row.elapsed_us.min(u128::from(u64::MAX)) as u64);
                any = true;
            }
            any.then(|| (engine.keyword().to_string(), histogram.snapshot()))
        })
        .collect()
}

/// The reference row for a task: the first exact engine in canonical
/// order that answered it (preferring uncached, first-thread-count rows,
/// whose cell always exists when the engine ran).
fn reference_row<'r>(rows: &'r [TrialRow], task: &str) -> Option<&'r TrialRow> {
    for engine in [Engine::Compiled, Engine::Oracle, Engine::Symmetry] {
        let mut candidates = rows
            .iter()
            .filter(|r| r.task == task && r.engine == engine && r.ok);
        if let Some(row) = candidates.clone().find(|r| !r.cache) {
            return Some(row);
        }
        if let Some(row) = candidates.next() {
            return Some(row);
        }
    }
    None
}

/// |mc − exact| within 3σ, where the sampler's `ci_half_width` is a 95%
/// interval (1.96σ). Exact interval beliefs widen the window to the
/// interval itself ± 3σ, and a non-robust belief widens it to the hull
/// of its candidate limits — which limit the sampler converges to
/// depends on the tolerance ordering, so anywhere in the hull agrees.
/// A tiny absolute slack keeps a zero-width CI from demanding
/// float-identical extrapolations.
fn within_three_sigma(mc_value: f64, ci_half_width: f64, exact: &Belief) -> bool {
    let tol = 3.0 * (ci_half_width / 1.96) + 1e-9;
    let hull = match exact {
        Belief::NonRobust(candidates) => {
            let lo = candidates.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = candidates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (lo.is_finite() && hi.is_finite()).then_some((lo, hi))
        }
        other => other.as_interval(),
    };
    match hull {
        Some((lo, hi)) => mc_value >= lo - tol && mc_value <= hi + tol,
        None => false,
    }
}

fn gate(name: &str, status: GateStatus, detail: impl Into<String>) -> GateResult {
    GateResult {
        gate: name.to_string(),
        status,
        detail: detail.into(),
    }
}

/// Report at most this many violations per gate; the rest are counted.
const MAX_DETAIL: usize = 4;

fn verdict(name: &str, violations: Vec<String>, checked: usize, none_msg: &str) -> GateResult {
    if violations.is_empty() {
        if checked == 0 {
            return gate(name, GateStatus::Skip, none_msg);
        }
        return gate(name, GateStatus::Pass, format!("{checked} checks"));
    }
    let mut detail = violations[..violations.len().min(MAX_DETAIL)].join("; ");
    if violations.len() > MAX_DETAIL {
        let _ = write!(detail, "; … {} more", violations.len() - MAX_DETAIL);
    }
    gate(name, GateStatus::Fail, detail)
}

/// Cross-engine belief equality: exact engines bit-equal to the task's
/// reference belief; Monte-Carlo within 3σ (bit-equal when it answered
/// exactly, i.e. the theorem stage fired before the sampler).
fn equality_gate(rows: &[TrialRow], tasks: &[String]) -> GateResult {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for task in tasks {
        let Some(reference) = reference_row(rows, task) else {
            continue;
        };
        let ref_json = belief_json(reference.belief.as_ref().unwrap());
        for row in rows.iter().filter(|r| &r.task == task && r.ok) {
            let Some(belief) = &row.belief else { continue };
            if row.engine.is_exact() {
                checked += 1;
                let row_json = belief_json(belief);
                if row_json != ref_json {
                    violations.push(format!(
                        "{task}/{}: {row_json} != {}/{ref_json}",
                        row.engine.keyword(),
                        reference.engine.keyword()
                    ));
                }
            } else if row.engine == Engine::MonteCarlo {
                checked += 1;
                match belief {
                    Belief::Approximate {
                        value,
                        ci_half_width,
                    } => {
                        if !within_three_sigma(
                            *value,
                            *ci_half_width,
                            reference.belief.as_ref().unwrap(),
                        ) {
                            violations.push(format!(
                                "{task}/montecarlo: {value}±{ci_half_width} outside 3σ of {ref_json}"
                            ));
                        }
                    }
                    exact => {
                        // The sampler never ran (a theorem answered
                        // first): the answer is exact and owes
                        // bit-equality like any exact engine.
                        let row_json = belief_json(exact);
                        if row_json != ref_json {
                            violations.push(format!(
                                "{task}/montecarlo (exact path): {row_json} != {ref_json}"
                            ));
                        }
                    }
                }
            }
        }
    }
    verdict(
        "cross-engine-equality",
        violations,
        checked,
        "no exact reference engine in the run",
    )
}

/// Expected-belief oracles: the reference engine's answer must match the
/// task's `expect` (to 1e-9) and `expect_kind`.
fn expectation_gate(rows: &[TrialRow], workload: &Workload) -> GateResult {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for task in &workload.tasks {
        if task.expect.is_none() && task.expect_kind.is_none() {
            continue;
        }
        let Some(reference) = reference_row(rows, &task.id) else {
            violations.push(format!("{}: no exact engine answered", task.id));
            continue;
        };
        let belief = reference.belief.as_ref().unwrap();
        if let Some(expect) = task.expect {
            checked += 1;
            match belief.as_point() {
                Some(v) if (v - expect).abs() <= 1e-9 => {}
                got => violations.push(format!(
                    "{}: expected {expect}, got {got:?} ({})",
                    task.id,
                    belief_json(belief)
                )),
            }
        }
        if let Some(kind) = &task.expect_kind {
            checked += 1;
            let actual = match belief {
                Belief::Point(_) => "point",
                Belief::Interval(..) => "interval",
                Belief::NonRobust(_) => "non-robust",
                Belief::Approximate { .. } => "approximate",
                Belief::Undefined => "undefined",
            };
            if actual != kind {
                violations.push(format!(
                    "{}: expected a {kind} belief, got {actual}",
                    task.id
                ));
            }
        }
    }
    verdict(
        "expectations",
        violations,
        checked,
        "no task declares an expectation",
    )
}

/// Thread-count determinism: within one (task, engine, cache) cell,
/// every thread count's row must have a byte-identical identity
/// (timing masked, `threads` field dropped).
fn determinism_gate(rows: &[TrialRow]) -> GateResult {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    let mut seen: Vec<(String, Engine, bool, String, usize)> = Vec::new();
    for row in rows {
        let identity = row.identity();
        match seen
            .iter()
            .find(|(t, e, c, ..)| t == &row.task && *e == row.engine && *c == row.cache)
        {
            None => seen.push((
                row.task.clone(),
                row.engine,
                row.cache,
                identity,
                row.threads,
            )),
            Some((_, _, _, first, first_threads)) => {
                checked += 1;
                if first != &identity {
                    violations.push(format!(
                        "{}/{}/cache={}: threads={} row differs from threads={first_threads}",
                        row.task,
                        row.engine.keyword(),
                        row.cache,
                        row.threads
                    ));
                }
            }
        }
    }
    verdict(
        "determinism",
        violations,
        checked,
        "single thread count in the run",
    )
}

/// Cached trials must have verified a cache hit (the runner downgrades a
/// missed or mismatched replay to a failed row, which this gate surfaces
/// alongside genuine cache misses).
fn cache_gate(rows: &[TrialRow]) -> GateResult {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for row in rows.iter().filter(|r| r.cache) {
        checked += 1;
        if row.ok && !row.cache_hit {
            violations.push(format!(
                "{}/{}: cached trial did not verify a hit",
                row.task,
                row.engine.keyword()
            ));
        }
    }
    verdict(
        "cache-consistency",
        violations,
        checked,
        "no cached trials in the run",
    )
}

/// Trials that failed outright, excluding the maxent engine (which
/// legitimately declines queries outside the theorem/maxent fragments —
/// its failures are visible in the rows but do not gate the run).
fn failure_gate(rows: &[TrialRow]) -> GateResult {
    let mut violations = Vec::new();
    for row in rows.iter().filter(|r| !r.ok && r.engine != Engine::MaxEnt) {
        violations.push(format!(
            "{}/{}: {}",
            row.task,
            row.engine.keyword(),
            row.error.as_deref().unwrap_or("unknown")
        ));
    }
    verdict("trial-failures", violations, rows.len(), "no trials ran")
}

/// `max_trial_us` from the workload header.
fn trial_time_gate(rows: &[TrialRow], ceiling: Option<u64>) -> GateResult {
    let Some(ceiling) = ceiling else {
        return gate(
            "max-trial-us",
            GateStatus::Skip,
            "workload declares no ceiling",
        );
    };
    let mut violations = Vec::new();
    for row in rows.iter().filter(|r| r.ok) {
        if row.elapsed_us > ceiling as u128 {
            violations.push(format!(
                "{}/{}/t{}: {}us > {ceiling}us",
                row.task,
                row.engine.keyword(),
                row.threads,
                row.elapsed_us
            ));
        }
    }
    verdict(
        "max-trial-us",
        violations,
        rows.iter().filter(|r| r.ok).count(),
        "no successful trials",
    )
}

/// `min_speedup` from the workload header: summed uncached wall time at
/// the run's first thread count, `baseline` over `engine`.
fn speedup_gate(rows: &[TrialRow], cfg: &RunConfig, workload: &Workload) -> GateResult {
    let Some(spec) = &workload.gates.min_speedup else {
        return gate(
            "min-speedup",
            GateStatus::Skip,
            "workload declares no speedup gate",
        );
    };
    let (Some(engine), Some(baseline)) =
        (Engine::parse(&spec.engine), Engine::parse(&spec.baseline))
    else {
        return gate(
            "min-speedup",
            GateStatus::Fail,
            format!(
                "unknown engine in gate spec: {}/{}",
                spec.engine, spec.baseline
            ),
        );
    };
    if !cfg.engines.contains(&engine) || !cfg.engines.contains(&baseline) {
        return gate(
            "min-speedup",
            GateStatus::Skip,
            format!(
                "run does not include both {} and {}",
                spec.engine, spec.baseline
            ),
        );
    }
    let threads = cfg.threads.first().copied().unwrap_or(1);
    let in_scope = |r: &&TrialRow| {
        r.ok && !r.cache
            && r.threads == threads
            && (spec.tasks.is_empty() || spec.tasks.contains(&r.task))
    };
    let total = |e: Engine| -> u128 {
        rows.iter()
            .filter(in_scope)
            .filter(|r| r.engine == e)
            .map(|r| r.elapsed_us)
            .sum()
    };
    let fast = total(engine);
    let slow = total(baseline);
    if fast == 0 || slow == 0 {
        return gate(
            "min-speedup",
            GateStatus::Fail,
            format!(
                "no measurable uncached trials for {}({slow}us)/{}({fast}us)",
                spec.baseline, spec.engine
            ),
        );
    }
    let ratio = slow as f64 / fast as f64;
    if ratio >= spec.value {
        gate(
            "min-speedup",
            GateStatus::Pass,
            format!(
                "{} {:.1}x faster than {} (floor {:.1}x)",
                spec.engine, ratio, spec.baseline, spec.value
            ),
        )
    } else {
        gate(
            "min-speedup",
            GateStatus::Fail,
            format!(
                "{} only {ratio:.2}x faster than {} (floor {:.1}x)",
                spec.engine, spec.baseline, spec.value
            ),
        )
    }
}

/// Evaluates every gate over a run's rows.
pub fn evaluate(workload: &Workload, cfg: &RunConfig, rows: &[TrialRow]) -> LabReport {
    let task_ids: Vec<String> = workload.tasks.iter().map(|t| t.id.clone()).collect();
    let gates = vec![
        equality_gate(rows, &task_ids),
        expectation_gate(rows, workload),
        determinism_gate(rows),
        cache_gate(rows),
        failure_gate(rows),
        trial_time_gate(rows, workload.gates.max_trial_us),
        speedup_gate(rows, cfg, workload),
    ];
    let ok = rows.iter().filter(|r| r.ok).count();
    let pass = gates.iter().all(|g| g.status != GateStatus::Fail);
    LabReport {
        workload: workload.name.clone(),
        trials: rows.len(),
        ok,
        failed: rows.len() - ok,
        latency: latency_by_engine(rows),
        gates,
        pass,
    }
}

fn belief_summary(row: &TrialRow) -> String {
    let Some(belief) = &row.belief else {
        return format!("error: {}", row.error.as_deref().unwrap_or("unknown"));
    };
    match belief {
        Belief::Point(v) => format!("point {v}"),
        Belief::Interval(lo, hi) => format!("interval [{lo}, {hi}]"),
        Belief::NonRobust(vs) => format!("non-robust ({} candidates)", vs.len()),
        Belief::Approximate {
            value,
            ci_half_width,
        } => format!("approx {value} ± {ci_half_width}"),
        Belief::Undefined => "undefined".to_string(),
    }
}

/// A fixed-width text table over the rows, for humans reading the run.
pub fn analysis_table(rows: &[TrialRow]) -> String {
    let mut out = String::new();
    let task_w = rows
        .iter()
        .map(|r| r.task.len())
        .chain(std::iter::once(4))
        .max()
        .unwrap();
    let _ = writeln!(
        out,
        "{:<task_w$}  {:<10}  {:>7}  {:<5}  {:<42}  {:>12}",
        "task", "engine", "threads", "cache", "belief", "elapsed_us"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<task_w$}  {:<10}  {:>7}  {:<5}  {:<42}  {:>12}",
            row.task,
            row.engine.keyword(),
            row.threads,
            if row.cache { "on" } else { "off" },
            belief_summary(row),
            row.elapsed_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    fn demo() -> (Workload, RunConfig) {
        let w = Workload::parse(
            "{\"workload\":\"demo\"}\n\
             {\"task\":\"hep\",\"kb\":\"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)\",\"query\":\"Hep(Eric)\",\"expect\":0.8,\"expect_kind\":\"point\"}\n",
            None,
        )
        .unwrap();
        let cfg = RunConfig {
            engines: vec![Engine::Compiled, Engine::Oracle, Engine::MonteCarlo],
            threads: vec![1, 2],
            cache: vec![false, true],
            seed: 42,
        };
        (w, cfg)
    }

    #[test]
    fn clean_runs_pass_every_applicable_gate() {
        let (w, cfg) = demo();
        let rows = run(&w, &cfg);
        let report = evaluate(&w, &cfg, &rows);
        assert!(report.pass, "{}", report.to_json());
        assert_eq!(report.failed, 0);
        let by_name = |n: &str| {
            report
                .gates
                .iter()
                .find(|g| g.gate == n)
                .unwrap_or_else(|| panic!("missing gate {n}"))
                .status
        };
        assert_eq!(by_name("cross-engine-equality"), GateStatus::Pass);
        assert_eq!(by_name("expectations"), GateStatus::Pass);
        assert_eq!(by_name("determinism"), GateStatus::Pass);
        assert_eq!(by_name("cache-consistency"), GateStatus::Pass);
        assert_eq!(by_name("min-speedup"), GateStatus::Skip);
    }

    #[test]
    fn wrong_expectations_fail_the_run() {
        let w = Workload::parse(
            "{\"task\":\"hep\",\"kb\":\"||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)\",\"query\":\"Hep(Eric)\",\"expect\":0.25}\n",
            None,
        )
        .unwrap();
        let cfg = RunConfig {
            engines: vec![Engine::Compiled],
            threads: vec![1],
            cache: vec![false],
            seed: 42,
        };
        let rows = run(&w, &cfg);
        let report = evaluate(&w, &cfg, &rows);
        assert!(!report.pass);
        let expectation = report
            .gates
            .iter()
            .find(|g| g.gate == "expectations")
            .unwrap();
        assert_eq!(expectation.status, GateStatus::Fail);
        assert!(
            expectation.detail.contains("0.25"),
            "{}",
            expectation.detail
        );
    }

    #[test]
    fn report_json_is_machine_readable() {
        let (w, cfg) = demo();
        let rows = run(&w, &cfg);
        let report = evaluate(&w, &cfg, &rows);
        let json = report.to_json();
        let v = rw_server::proto::Value::parse(&json).unwrap();
        assert_eq!(v.get("workload").and_then(|x| x.as_str()), Some("demo"));
        assert_eq!(v.get("pass").and_then(|x| x.as_bool()), Some(true));
        assert!(matches!(
            v.get("gates"),
            Some(rw_server::proto::Value::Arr(_))
        ));
        // Per-engine latency percentiles, only for engines that ran.
        let latency = v.get("latency").expect("latency object");
        let compiled = latency.get("compiled").expect("compiled histogram");
        assert_eq!(
            compiled.get("count").and_then(|x| x.as_u64()),
            Some(4),
            "{json}"
        );
        assert!(compiled.get("p99_us").is_some(), "{json}");
        assert!(latency.get("symmetry").is_none(), "{json}");
    }

    #[test]
    fn three_sigma_window_is_centered_on_the_exact_belief() {
        assert!(within_three_sigma(0.8, 0.0, &Belief::Point(0.8)));
        assert!(within_three_sigma(0.81, 0.0098, &Belief::Point(0.8)));
        assert!(!within_three_sigma(0.9, 0.0098, &Belief::Point(0.8)));
        assert!(within_three_sigma(0.5, 0.0, &Belief::Interval(0.4, 0.6)));
    }

    #[test]
    fn three_sigma_widens_to_the_non_robust_candidate_hull() {
        let nr = Belief::NonRobust(vec![0.5, 0.9999, 0.0001]);
        assert!(within_three_sigma(1.0, 0.01, &nr));
        assert!(within_three_sigma(0.0, 0.01, &nr));
        assert!(!within_three_sigma(1.2, 0.01, &nr));
        assert!(!within_three_sigma(0.5, 0.01, &Belief::NonRobust(vec![])));
    }

    #[test]
    fn analysis_table_lists_every_row() {
        let (w, cfg) = demo();
        let rows = run(&w, &cfg);
        let table = analysis_table(&rows);
        assert_eq!(table.lines().count(), rows.len() + 1);
        assert!(table.lines().next().unwrap().contains("belief"));
    }
}
