//! The in-tree slice of the lab's cross-engine equality contract: the
//! bundled workload files must parse, and their debug-safe rows must
//! clear the equality, expectation, and cache gates under `cargo test`
//! — no release build or `rwq lab` invocation required. The full
//! matrices (Monte-Carlo sampling on binary statistics, maxent sweeps,
//! the speedup floor) run in release via `rwq lab run`; this tier keeps
//! the bit-equality core from regressing silently in between.

use rw_lab::{evaluate, run, Engine, GateStatus, RunConfig, Workload};
use std::path::PathBuf;

fn workloads_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../workloads")
}

fn load(file: &str) -> Workload {
    Workload::load(&workloads_dir().join(file))
        .unwrap_or_else(|e| panic!("bundled workload {file} must load: {e}"))
}

/// Runs a task subset against the given engines and asserts every gate
/// except min-speedup (wall-clock floors are meaningless in debug
/// builds) passes or is skipped.
fn assert_gates(workload: &Workload, keep: &[&str], engines: Vec<Engine>) {
    let mut w = workload.clone();
    if !keep.is_empty() {
        w.tasks.retain(|t| keep.contains(&t.id.as_str()));
        assert_eq!(w.tasks.len(), keep.len(), "task subset ids drifted");
    }
    w.gates.min_speedup = None;
    w.gates.max_trial_us = None;
    let cfg = RunConfig {
        engines,
        threads: vec![1, 2],
        cache: vec![false, true],
        seed: 42,
    };
    let rows = run(&w, &cfg);
    let report = evaluate(&w, &cfg, &rows);
    for gate in &report.gates {
        assert_ne!(
            gate.status,
            GateStatus::Fail,
            "{}: gate {} failed: {}",
            w.name,
            gate.gate,
            gate.detail
        );
    }
    assert!(report.pass, "{}: report failed", w.name);
    assert_eq!(report.failed, 0, "{}: trials failed", w.name);
}

/// Every bundled workload parses, has a description, and declares at
/// least one expectation — the files are the contract, so a truncated
/// or hand-mangled edit should fail here, not at `rwq lab` time.
#[test]
fn bundled_workloads_parse_and_declare_expectations() {
    for file in [
        "paper_examples.jsonl",
        "trap_shapes.jsonl",
        "temporal_scenarios.jsonl",
        "default_suites.jsonl",
    ] {
        let w = load(file);
        assert!(!w.description.is_empty(), "{file}: empty description");
        assert!(!w.tasks.is_empty(), "{file}: no tasks");
        assert!(
            w.tasks
                .iter()
                .any(|t| t.expect.is_some() || t.expect_kind.is_some()),
            "{file}: no task declares an expectation"
        );
    }
}

/// The paper examples are all theorem-speed: the full engine matrix
/// (including the sampler, which the theorem stage preempts here) must
/// agree bit-for-bit at 1 and 2 threads, cached and cold.
#[test]
fn paper_examples_agree_across_all_engines() {
    assert_gates(
        &load("paper_examples.jsonl"),
        &[],
        vec![
            Engine::Compiled,
            Engine::Oracle,
            Engine::Symmetry,
            Engine::MonteCarlo,
        ],
    );
}

/// The small-N pinned trap rows: both binary-predicate KBs scan tiny
/// windows, so the three exact engines must extrapolate from the same
/// diagonal points and answer bit-identically. (Monte-Carlo stays out:
/// sampling a binary statistic takes seconds even in release.)
#[test]
fn trap_small_n_rows_are_bit_equal_across_exact_engines() {
    assert_gates(
        &load("trap_shapes.jsonl"),
        &["trap-cross-product", "binary-ground", "binary-stat"],
        vec![Engine::Compiled, Engine::Oracle, Engine::Symmetry],
    );
}

/// The theorem-speed temporal and defaults rows answer end-to-end
/// through the `@temporal` / `@defaults` loader directives under the
/// default engine trio.
#[test]
fn directive_workload_rows_answer_end_to_end() {
    assert_gates(
        &load("temporal_scenarios.jsonl"),
        &["shoot-statistical", "persistence-wait"],
        vec![Engine::Compiled, Engine::Oracle, Engine::MonteCarlo],
    );
    assert_gates(
        &load("default_suites.jsonl"),
        &["bird-default", "penguin-specificity"],
        vec![Engine::Compiled, Engine::Oracle, Engine::MonteCarlo],
    );
}
