//! Property-based armor for the experiment runner's determinism
//! contract: trial rows are byte-identical modulo the `threads` field
//! and `elapsed_us` timings at any thread count, and the row *set* is
//! invariant under task reordering. Both properties hold for arbitrary
//! task subsets of a theorem-speed pool, so the suite stays fast in
//! debug builds while still crossing every engine.

use proptest::prelude::*;
use rw_lab::{run, Engine, Gates, RunConfig, Task, Workload};

/// Theorem-path tasks (each answers in well under a millisecond even in
/// debug builds): direct inference, negation, specificity, Dempster
/// combination, an interval answer, and an independence product.
const POOL: &[(&str, &str, &str)] = &[
    (
        "hep-direct",
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)",
        "Hep(Eric)",
    ),
    (
        "hep-negation",
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)",
        "!Hep(Eric)",
    ),
    (
        "penguin",
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
        "Fly(Tweety)",
    ),
    (
        "nixon-dempster",
        "||Pacifist(x) | Quaker(x)||_x ~=_1 0.8; ||Pacifist(x) | Republican(x)||_x ~=_2 0.8; \
         Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
        "Pacifist(Nixon)",
    ),
    (
        "magpie-interval",
        "0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8; \
         0 <~_3 ||Chirps(x) | Magpie(x)||_x <~_4 0.99; \
         forall x (Magpie(x) => Bird(x)); Magpie(Tweety)",
        "Chirps(Tweety)",
    ),
    (
        "cross-product",
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
         ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
        "Hep(Eric) & Over60(Eric)",
    ),
];

fn task(idx: usize) -> Task {
    let (id, kb, query) = POOL[idx];
    Task {
        id: id.to_string(),
        kb_source: kb.to_string(),
        query: query.to_string(),
        expect: None,
        expect_kind: None,
        min_n: None,
        max_n: None,
    }
}

fn workload(indices: &[usize]) -> Workload {
    Workload {
        name: "property".to_string(),
        description: String::new(),
        gates: Gates::default(),
        tasks: indices.iter().map(|&i| task(i)).collect(),
    }
}

fn config(threads: usize) -> RunConfig {
    RunConfig {
        engines: vec![Engine::Compiled, Engine::Oracle, Engine::MonteCarlo],
        threads: vec![threads],
        cache: vec![false, true],
        seed: 42,
    }
}

/// Distinct pool indices in generated order.
fn arb_task_set() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..POOL.len(), 1..5).prop_map(|picks| {
        let mut seen = Vec::new();
        for i in picks {
            if !seen.contains(&i) {
                seen.push(i);
            }
        }
        seen
    })
}

fn identities(workload: &Workload, cfg: &RunConfig) -> Vec<String> {
    run(workload, cfg).iter().map(|r| r.identity()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The `identity()` projection (threads dropped, timings zeroed) is
    /// byte-identical at 1, 2, and 4 threads: thread count may only
    /// ever change wall-clock, never an answer, a provenance string, a
    /// counter, or a cache outcome.
    #[test]
    fn rows_are_byte_identical_across_thread_counts(indices in arb_task_set()) {
        let w = workload(&indices);
        let one = identities(&w, &config(1));
        let two = identities(&w, &config(2));
        let four = identities(&w, &config(4));
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &four);
    }

    /// Reordering the task list permutes the rows but never changes
    /// them: the sorted identity multiset is order-invariant (each
    /// trial builds a fresh engine, so no cross-task state leaks).
    #[test]
    fn shuffled_task_order_yields_the_same_sorted_row_set(
        indices in arb_task_set(),
        seed in 0u64..u64::MAX,
    ) {
        let mut shuffled = indices.clone();
        // Fisher–Yates with a splitmix64 stream off the generated seed.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let cfg = config(1);
        let mut base = identities(&workload(&indices), &cfg);
        let mut permuted = identities(&workload(&shuffled), &cfg);
        base.sort();
        permuted.sort();
        prop_assert_eq!(base, permuted);
    }
}
