//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A fair coin.
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

/// The fair-coin strategy value.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}
