//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A vector of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The result of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start < self.size.end {
            self.size.start + rng.gen_index(self.size.end - self.size.start)
        } else {
            self.size.start
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
