//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `generate` produces a value
/// and that is the whole story.
pub trait Strategy: Clone + 'static {
    /// The type of generated values.
    type Value: 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: 'static,
        F: Fn(Self::Value) -> U + Clone + 'static,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `expand`
    /// produces one more level of nesting from the strategy so far.
    /// `_desired_size` and `_expected_branch` are accepted (and ignored)
    /// for source compatibility with real proptest.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        Self: Sized,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so expected sizes stay
            // finite even when `expand` always branches.
            let deeper = expand(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + 'static>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: 'static,
    F: Fn(S::Value) -> U + Clone + 'static,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies (the [`crate::prop_oneof!`]
/// macro's backing type).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T: 'static> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u128() % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 separately: the span fits u128 only when the bounds do not straddle
// the full i128 domain, which generated test ranges never do.
impl Strategy for std::ops::Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        let offset = (rng.next_u128() % span) as i128;
        self.start.wrapping_add(offset)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..1000 {
            let v = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (-5i128..-2).generate(&mut rng);
            assert!((-5..-2).contains(&w));
        }
    }

    #[test]
    fn map_union_and_just_compose() {
        let mut rng = rng();
        let s = crate::prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2),];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v), "{v}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let mut rng = rng();
        let s = Just(1usize).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        });
        for _ in 0..200 {
            assert!(s.generate(&mut rng) >= 1);
        }
    }
}
