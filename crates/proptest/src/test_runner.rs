//! Case execution: configuration, failure type, RNG and the runner.

use rw_util::{Rng, StdRng};

/// How many cases to run per property.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The randomness source handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A reproducible generator for the given seed.
    pub fn deterministic(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// The next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// A uniform index below `n`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }
}

/// Runs a property over many generated cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a deterministic seed (runs replay identically).
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner {
            config,
            rng: TestRng::deterministic(0x5eed_cafe_f00d_0001),
        }
    }

    /// Executes `case` repeatedly, panicking on the first failure.
    pub fn run(
        &mut self,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        for i in 0..self.config.cases {
            if let Err(e) = case(&mut self.rng) {
                panic!(
                    "property `{name}` failed at case {i}/{}: {e}",
                    self.config.cases
                );
            }
        }
    }
}
