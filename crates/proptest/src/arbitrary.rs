//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy value.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = crate::bool::BoolAny;

    fn arbitrary() -> crate::bool::BoolAny {
        crate::bool::ANY
    }
}
