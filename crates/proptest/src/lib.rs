//! A workspace-local, std-only stand-in for the `proptest` crate.
//!
//! The workspace must build offline with no external dependencies, so the
//! property-test suites link this crate instead of crates.io `proptest`
//! (the path dependency shadows the name). It implements the subset of the
//! API those suites use — [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, [`prop_oneof!`],
//! collections,
//! [`proptest!`] with `proptest_config`, and the `prop_assert*` macros —
//! with two deliberate simplifications:
//!
//! * **no shrinking**: a failing case reports the case number and message
//!   only (the suites all format offending inputs into their assertion
//!   messages already);
//! * **deterministic seeding**: every run replays the same case sequence,
//!   so CI failures reproduce locally without a persistence file.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Chooses uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..4, flag in any::<bool>()) { prop_assert!(x < 4 || flag); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with ($cfg) $($rest)* }
    };
    (@with ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result
            });
        }
        $crate::proptest!{ @with ($cfg) $($rest)* }
    };
    (@with ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!{
            @with ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}
