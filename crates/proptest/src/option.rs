//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some` of a value from `inner` (3 times in 4) or `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
