//! Scaling benchmarks for the comparator systems (experiment index B7–B8):
//! Reiter extension enumeration (exponential in the default count, by
//! construction of the subset characterization), circumscription minimal-
//! model filtering, lexicographic entailment, and the propensity engine's
//! profile sweep against the uniform-prior sweep it generalizes.

use rw_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rw_defaults::{extensions, lex_entails, minimal_models, CircPolicy, DefaultTheory};
use rw_epsilon::prop::VarTable;
use rw_epsilon::DefaultRule;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_propensity::{Prior, PropensityEngine};
use rw_util::Rat;
use std::hint::black_box;

/// A Nixon-like diamond of `k` pairwise-conflicting defaults: extension
/// count (and candidate space) grows with `k`.
fn diamond(k: usize) -> (DefaultTheory, usize) {
    let mut vt = VarTable::new();
    let mut t = DefaultTheory::new();
    t.fact_str(&mut vt, "p").unwrap();
    for i in 0..k {
        let mut concl = format!("o{i}");
        for j in 0..k {
            if j != i {
                concl.push_str(&format!(" & !o{j}"));
            }
        }
        t.normal_str(&mut vt, "p", &concl).unwrap();
    }
    (t, vt.len())
}

fn bench_reiter(c: &mut Criterion) {
    let mut group = c.benchmark_group("reiter_extensions_vs_defaults");
    for k in [2usize, 4, 6, 8] {
        let (t, nvars) = diamond(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(extensions(&t, nvars).len()))
        });
    }
    group.finish();
}

fn bench_circumscription(c: &mut Criterion) {
    let mut group = c.benchmark_group("circumscription_vs_tickets");
    for k in [3usize, 6, 9] {
        // Exactly-one-winner lottery over k tickets.
        let mut vt = VarTable::new();
        let some: Vec<String> = (0..k).map(|i| format!("w{i}")).collect();
        let mut src = format!("({})", some.join(" or "));
        for i in 0..k {
            let others: Vec<String> = (0..k)
                .filter(|&j| j != i)
                .map(|j| format!("!w{j}"))
                .collect();
            src.push_str(&format!(" & (w{i} => {})", others.join(" & ")));
        }
        let t = vt.parse(&src).unwrap();
        let policy = CircPolicy::minimize((0..k).collect());
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(minimal_models(&t, &policy, vt.len()).len()))
        });
    }
    group.finish();
}

fn bench_lex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lex_entailment_vs_rules");
    for m in [4usize, 8, 12] {
        let mut vt = VarTable::new();
        let mut rules = Vec::new();
        for i in 0..m / 2 {
            rules.push(DefaultRule::new(
                vt.parse(&format!("c{i}")).unwrap(),
                vt.parse(&format!("c{}", i + 1)).unwrap(),
            ));
            rules.push(DefaultRule::new(
                vt.parse(&format!("c{i}")).unwrap(),
                vt.parse(&format!("f{i}")).unwrap(),
            ));
        }
        let prem = vt.parse("c0").unwrap();
        let concl = vt.parse("f0").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(lex_entails(&rules, &prem, &concl)))
        });
    }
    group.finish();
}

fn bench_propensity_sweep(c: &mut Criterion) {
    // The propensity sweep does strictly more per-profile work than the
    // uniform sweep (per-predicate marginals); this pins the overhead.
    let mut group = c.benchmark_group("prior_sweep_overhead");
    group.sample_size(20);
    let mut kb =
        KnowledgeBase::parse("||P(x) | S(x)||_x ~=_1 0.75; ||S(x)||_x ~=_2 0.5; !S(C)").unwrap();
    let q = kb.parse_query("P(C)").unwrap();
    let tol = Tolerances::uniform(Rat::new(1, 10));
    let n = 32usize;
    group.bench_function("uniform", |b| {
        b.iter(|| black_box(rw_unary::degree_of_belief_at(&kb, &q, n, &tol).unwrap()))
    });
    for (label, prior) in [
        ("per_predicate", Prior::PerPredicate),
        ("carnap_star", Prior::CarnapStar),
        ("lambda", Prior::Lambda(4.0)),
    ] {
        let engine = PropensityEngine::new(prior);
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.degree_of_belief_at(&kb, &q, n, &tol).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reiter,
    bench_circumscription,
    bench_lex,
    bench_propensity_sweep,
);
criterion_main!(benches);
