//! Compiled branch-and-count vs naive odometer enumeration (experiment
//! index B12) — the exact-counting speedup this harness exists to prove.
//!
//! Two workloads, both counted at the same domain size so the comparison
//! is count-for-count:
//!
//! * the **PR-2 trap shapes** — `!!φ(c)`, conjunctions over individuals
//!   sharing a statistic — against the 5-conjunct trap KB (4 unary
//!   predicates + 2 constants: 2^16·16 ≈ 1M interpretations at N=4);
//! * **binary-predicate KBs the unary engine rejects**, where one
//!   relation alone contributes `2^(N²)` interpretations.
//!
//! For every query the naive path walks all interpretations once
//! (`count_worlds` returns numerator and denominator in a single pass);
//! the compiled path counts the same two totals by branch-and-count.
//! The counts are asserted **exactly equal** — the Definition 4.2 ratio,
//! and therefore every served belief, is bit-identical — and the run
//! fails unless the compiled engine beats the floor declared by the
//! `min_speedup` gate in `workloads/trap_shapes.jsonl` on each trap
//! query. Results land in `BENCH_5.json` at the workspace root as
//! machine-readable `{query, engine, median_us, speedup_vs_naive}` rows.

use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_util::Rat;
use rw_worlds::{count_formula_models, count_worlds, CountOptions};
use std::time::Instant;

const SAMPLES: usize = 5;

/// The ≥N× floor lives in the `min_speedup` gate of
/// `workloads/trap_shapes.jsonl`, so this bench and `rwq lab run`
/// enforce one number; editing the workload header moves both.
fn required_trap_speedup() -> f64 {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../workloads/trap_shapes.jsonl"
    );
    let workload = rw_lab::Workload::load(std::path::Path::new(path))
        .unwrap_or_else(|e| panic!("load {path}: {e}"));
    workload
        .gates
        .min_speedup
        .unwrap_or_else(|| panic!("{path} must declare a min_speedup gate"))
        .value
}

struct Workload {
    label: &'static str,
    kb_src: &'static str,
    query: &'static str,
    n: usize,
    /// Whether the ≥5× assertion applies (the trap workload).
    trap: bool,
}

fn workloads() -> Vec<Workload> {
    let trap_kb = "||Hep(x) | Jaun(x)||_x ~=_1 0.8; ||Over60(x) | Patient(x)||_x ~=_2 0.4; \
                   Jaun(Eric); Patient(Eric); Jaun(Tom)";
    vec![
        Workload {
            label: "trap",
            kb_src: trap_kb,
            query: "!!Hep(Eric)",
            n: 4,
            trap: true,
        },
        Workload {
            label: "trap",
            kb_src: trap_kb,
            query: "Hep(Eric) & Hep(Tom)",
            n: 4,
            trap: true,
        },
        Workload {
            label: "trap",
            kb_src: trap_kb,
            query: "Hep(Eric) & Over60(Eric)",
            n: 4,
            trap: true,
        },
        // A binary predicate: 2^(N²)·N² interpretations, out of the
        // unary engine's reach entirely.
        Workload {
            label: "binary",
            kb_src: "Likes(A, B)",
            query: "Likes(B, A)",
            n: 4,
            trap: false,
        },
        Workload {
            label: "binary",
            kb_src: "||Likes(x, y)||_{x,y} ~=_1 0.25; Likes(A, B)",
            query: "Likes(B, A)",
            n: 3,
            trap: false,
        },
    ]
}

fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let required_trap_speedup = required_trap_speedup();
    let tol = Tolerances::uniform(Rat::new(1, 4));
    let mut rows = Vec::new();
    let mut min_trap_speedup = f64::INFINITY;

    println!("compiled branch-and-count vs naive odometer enumeration\n");
    println!(
        "{:<28} {:>2} {:>12} {:>12} {:>9}   counts",
        "query", "N", "naive µs", "compiled µs", "speedup"
    );

    for w in workloads() {
        let mut kb = KnowledgeBase::parse(w.kb_src).unwrap();
        let query = kb.parse_query(w.query).unwrap();
        let kb_formula = kb.as_formula();
        let numerator_formula = Formula::and(kb_formula.clone(), query.clone());

        // Naive: one odometer pass over every interpretation computes
        // numerator and denominator together.
        let mut naive_samples = Vec::with_capacity(SAMPLES);
        let mut naive_counts = (0u128, 0u128);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            naive_counts = count_worlds(kb.vocab(), w.n, &tol, &query, &kb_formula);
            naive_samples.push(t.elapsed().as_secs_f64() * 1e6);
        }

        // Compiled: branch-and-count the same two totals.
        let opts = CountOptions::default();
        let mut compiled_samples = Vec::with_capacity(SAMPLES);
        let mut compiled_counts = (0u128, 0u128);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            let num =
                count_formula_models(kb.vocab(), w.n, &tol, &numerator_formula, &opts).unwrap();
            let den = count_formula_models(kb.vocab(), w.n, &tol, &kb_formula, &opts).unwrap();
            compiled_counts = (num.count, den.count);
            compiled_samples.push(t.elapsed().as_secs_f64() * 1e6);
        }

        // Exactness first: identical counts mean identical beliefs.
        assert_eq!(
            compiled_counts, naive_counts,
            "count mismatch on `{}` ⊢ `{}` at N={}",
            w.kb_src, w.query, w.n
        );

        let naive_us = median_us(&mut naive_samples);
        let compiled_us = median_us(&mut compiled_samples);
        let speedup = naive_us / compiled_us;
        if w.trap {
            min_trap_speedup = min_trap_speedup.min(speedup);
        }
        println!(
            "{:<28} {:>2} {:>12.1} {:>12.1} {:>8.1}x   {}/{}",
            w.query, w.n, naive_us, compiled_us, speedup, naive_counts.0, naive_counts.1
        );

        rows.push(format!(
            concat!(
                r#"{{"kb":"{}","query":"{}","n":{},"engine":"naive","median_us":{:.1},"#,
                r#""speedup_vs_naive":1.0}}"#
            ),
            w.label,
            json_escape(w.query),
            w.n,
            naive_us
        ));
        rows.push(format!(
            concat!(
                r#"{{"kb":"{}","query":"{}","n":{},"engine":"compiled","median_us":{:.1},"#,
                r#""speedup_vs_naive":{:.2}}}"#
            ),
            w.label,
            json_escape(w.query),
            w.n,
            compiled_us,
            speedup
        ));
    }

    let report = format!(
        "{{\"bench\":\"exact_count\",\"samples\":{},\"required_trap_speedup\":{},\
         \"min_trap_speedup\":{:.2},\"results\":[{}]}}\n",
        SAMPLES,
        required_trap_speedup,
        min_trap_speedup,
        rows.join(",")
    );
    // `CARGO_MANIFEST_DIR` = crates/bench; the report lives at the
    // workspace root where CI (and readers) expect it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
    std::fs::write(path, &report).expect("write BENCH_5.json");
    println!("\nwrote {path}");

    assert!(
        min_trap_speedup >= required_trap_speedup,
        "compiled counting must beat naive enumeration by ≥{required_trap_speedup}× \
         on the trap workload, got {min_trap_speedup:.2}×"
    );
    println!("trap workload speedup ≥ {required_trap_speedup}x: ok ({min_trap_speedup:.1}x min)");
}
