//! Serving-layer throughput (experiment index B12): N concurrent TCP
//! clients against one resident `rw-server`, cold cache vs warm cache.
//!
//! The workload is the `parallel` bench's: per-individual theorem
//! queries against a medical-style KB, every query resolving in the
//! theorem stage (so the bench measures serving overhead + answer
//! compute, not multi-second solver tails). Clients **pipeline** — all
//! requests written, then all responses read — so loopback round-trip
//! latency does not dominate; the server still answers one line per
//! request, in order, per connection.
//!
//! Reported: queries/second for the cold pass (every answer computed)
//! and the warm pass (every answer a shared-cache hit), plus the
//! warm/cold speedup. A resident process that cannot beat 2× on
//! repeated workloads would not be worth keeping warm — the run asserts
//! the ratio, and cross-checks every response against the direct
//! engine's beliefs.
//!
//! A second section (experiment index B13) sweeps a fixed warm
//! workload across 1 → 1024 simultaneous connections against one
//! resident server and writes the connections-vs-throughput curve to
//! `BENCH_9.json` at the workspace root. Connections are established
//! and registered *before* the clock starts, so the curve measures
//! serving throughput at N open connections, not accept latency. The
//! run asserts the curve does not collapse: every point must hold at
//! least [`CURVE_FLOOR`] of the peak.

use rw_core::RandomWorlds;
use rw_logic::KnowledgeBase;
use rw_server::{Server, ServerConfig, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

// 80 individuals = a 162-conjunct KB: big enough that a cold answer's
// per-query KB clone + theorem scan dwarfs a warm cache lookup, the way
// a production KB would.
const INDIVIDUALS: usize = 80;
const CLIENTS: usize = 4;
const RUNS: usize = 5;

fn kb_text() -> String {
    let mut src =
        String::from("||Hep(x) | Jaun(x)||_x ~=_1 0.8; ||Over60(x) | Patient(x)||_x ~=_2 0.4");
    for i in 0..INDIVIDUALS {
        src.push_str(&format!("; Jaun(C{i}); Patient(C{i})"));
    }
    src
}

/// Six queries per individual over three canonical forms (each form
/// appears twice under different surface syntax) — 480 queries over 240
/// forms at the current [`INDIVIDUALS`] — round-robined across the
/// clients.
fn workload() -> Vec<String> {
    let mut queries = Vec::with_capacity(6 * INDIVIDUALS);
    for i in 0..INDIVIDUALS {
        queries.push(format!("Hep(C{i})"));
        queries.push(format!("Over60(C{i})"));
        queries.push(format!("!Hep(C{i})"));
        queries.push(format!("(Hep(C{i}))"));
        queries.push(format!("(Over60(C{i}))"));
        queries.push(format!("!(Hep(C{i}))"));
    }
    queries
}

/// One pipelined client pass: writes every request, then reads every
/// response. Returns `(query, belief value)` pairs in request order.
fn client_pass(addr: std::net::SocketAddr, queries: &[String]) -> Vec<(String, f64)> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut requests = String::new();
    for q in queries {
        requests.push_str(&format!(
            r#"{{"op":"query","kb":"bench","query":"{}"}}"#,
            rw_server::json::escape(q)
        ));
        requests.push('\n');
    }
    writer.write_all(requests.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(queries.len());
    let mut line = String::new();
    for q in queries {
        line.clear();
        reader.read_line(&mut line).expect("read");
        let v = Value::parse(line.trim()).expect("response parses");
        assert_eq!(
            v.get("query").and_then(Value::as_str),
            Some(q.as_str()),
            "response order broke: {line}"
        );
        let value = v
            .get("belief")
            .and_then(|b| b.get("value"))
            .and_then(Value::as_f64)
            .expect("point belief");
        out.push((q.clone(), value));
    }
    out
}

/// Runs the whole workload once across [`CLIENTS`] concurrent
/// connections; returns the wall time and every `(query, value)` pair.
fn full_pass(addr: std::net::SocketAddr, shards: &[Vec<String>]) -> (Duration, Vec<(String, f64)>) {
    let start = Instant::now();
    let results: Vec<Vec<(String, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(move || client_pass(addr, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    (start.elapsed(), results.into_iter().flatten().collect())
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

// ---------------------------------------------------------------------
// Connections-vs-throughput curve (experiment index B13 → BENCH_9.json)
// ---------------------------------------------------------------------

/// Simultaneous-connection counts for the curve. Each count divides
/// [`CURVE_TOTAL`] and (above 1) the driver-thread count, so every
/// connection gets the same pipelined share of the fixed workload.
const CURVE: &[usize] = &[1, 8, 64, 256, 1024];
const CURVE_TOTAL: usize = 2048;
const CURVE_RUNS: usize = 3;
const CURVE_DRIVERS: usize = 8;
/// Every curve point must deliver at least this fraction of the peak
/// point's throughput — the "no collapse at the high end" gate.
const CURVE_FLOOR: f64 = 0.25;

/// One timed pass at `conns` simultaneous connections: every
/// connection is opened and answered a ping (proving the event loop
/// registered it) before the clock starts, then each pipelines its
/// share of the workload and reads the ordered responses back.
fn curve_pass(
    addr: std::net::SocketAddr,
    conns: usize,
    queries: &[String],
    reference: &std::collections::HashMap<String, f64>,
) -> Duration {
    let drivers = conns.min(CURVE_DRIVERS);
    let per_driver = conns / drivers;
    let per_conn = CURVE_TOTAL / conns;
    let ready = std::sync::Barrier::new(drivers + 1);
    std::thread::scope(|scope| {
        let ready = &ready;
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                scope.spawn(move || {
                    let mut socks: Vec<(TcpStream, BufReader<TcpStream>)> = (0..per_driver)
                        .map(|_| {
                            let s = TcpStream::connect(addr).expect("connect");
                            s.set_nodelay(true).expect("nodelay");
                            let r = BufReader::new(s.try_clone().expect("clone"));
                            (s, r)
                        })
                        .collect();
                    for (w, r) in socks.iter_mut() {
                        w.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
                        let mut line = String::new();
                        r.read_line(&mut line).expect("pong");
                        assert!(line.contains("ping"), "{line}");
                    }
                    ready.wait();
                    for (c, (w, _)) in socks.iter_mut().enumerate() {
                        let global = d * per_driver + c;
                        let mut burst = String::new();
                        for k in 0..per_conn {
                            let q = &queries[(global * per_conn + k) % queries.len()];
                            burst.push_str(&format!(
                                r#"{{"op":"query","kb":"bench","query":"{}"}}"#,
                                rw_server::json::escape(q)
                            ));
                            burst.push('\n');
                        }
                        w.write_all(burst.as_bytes()).expect("write burst");
                    }
                    let mut line = String::new();
                    for (c, (_, r)) in socks.iter_mut().enumerate() {
                        let global = d * per_driver + c;
                        for k in 0..per_conn {
                            let q = &queries[(global * per_conn + k) % queries.len()];
                            line.clear();
                            r.read_line(&mut line).expect("read");
                            let v = Value::parse(line.trim()).expect("response parses");
                            assert_eq!(
                                v.get("query").and_then(Value::as_str),
                                Some(q.as_str()),
                                "response order broke at {conns} conns: {line}"
                            );
                            let value = v
                                .get("belief")
                                .and_then(|b| b.get("value"))
                                .and_then(Value::as_f64)
                                .expect("point belief");
                            assert_eq!(reference[q], value, "belief diverged on {q}");
                        }
                    }
                })
            })
            .collect();
        ready.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("curve driver");
        }
        start.elapsed()
    })
}

fn qps(n: usize, wall: Duration) -> f64 {
    n as f64 / wall.as_secs_f64().max(1e-12)
}

fn main() {
    let queries = workload();
    let shards: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| queries.iter().skip(c).step_by(CLIENTS).cloned().collect())
        .collect();
    let kb = KnowledgeBase::parse(&kb_text()).expect("kb");

    // Reference beliefs from the engine itself.
    let engine = RandomWorlds::new();
    let reference: std::collections::HashMap<String, f64> = queries
        .iter()
        .map(|q| {
            let r = engine.answer(&kb, q).expect("reference answer");
            (q.clone(), r.belief.as_point().expect("point"))
        })
        .collect();
    let check = |pass: &[(String, f64)]| {
        for (q, v) in pass {
            assert_eq!(reference[q], *v, "belief diverged on {q}");
        }
    };

    println!(
        "server-serving workload: {} queries ({} canonical forms) × {} clients, {} KB conjuncts, median of {} runs\n",
        queries.len(),
        3 * INDIVIDUALS,
        CLIENTS,
        kb.conjuncts().len(),
        RUNS
    );

    // Cold: a fresh server (fresh cache) per run.
    let mut cold_times = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let server = Arc::new(
            Server::bind(ServerConfig {
                threads: CLIENTS,
                ..ServerConfig::default()
            })
            .expect("bind"),
        );
        server.registry().insert("bench", kb.clone());
        let addr = server.local_addr().expect("addr");
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run().expect("run"))
        };
        let (wall, pass) = full_pass(addr, &shards);
        check(&pass);
        cold_times.push(wall);
        server.stop();
        runner.join().expect("join");
    }
    let cold = median(cold_times);

    // Warm: one resident server, cache warmed by an untimed pass.
    let server = Arc::new(
        Server::bind(ServerConfig {
            threads: CLIENTS,
            ..ServerConfig::default()
        })
        .expect("bind"),
    );
    server.registry().insert("bench", kb.clone());
    let addr = server.local_addr().expect("addr");
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    let (_, first) = full_pass(addr, &shards);
    check(&first);
    let mut warm_times = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let (wall, pass) = full_pass(addr, &shards);
        check(&pass);
        warm_times.push(wall);
    }
    let warm = median(warm_times);
    let hits = server.registry().cache().hits();
    server.stop();
    runner.join().expect("join");

    let speedup = qps(queries.len(), warm) / qps(queries.len(), cold);
    println!(
        "cache cold (fresh server/run)   {:>10.3} ms   {:>9.0} q/s",
        cold.as_secs_f64() * 1e3,
        qps(queries.len(), cold)
    );
    println!(
        "cache warm (resident server)    {:>10.3} ms   {:>9.0} q/s   hits {}",
        warm.as_secs_f64() * 1e3,
        qps(queries.len(), warm),
        hits
    );
    println!("\nwarm/cold throughput: {speedup:.2}x (beliefs identical across every pass)");
    assert!(hits > 0, "warm passes must hit the shared cache");
    assert!(
        speedup >= 2.0,
        "a resident warm cache must deliver ≥ 2x cold throughput, got {speedup:.2}x"
    );

    // -- B13: connections-vs-throughput curve --------------------------
    let server = Arc::new(
        Server::bind(ServerConfig {
            threads: CLIENTS,
            max_queue: 4096,
            ..ServerConfig::default()
        })
        .expect("bind"),
    );
    server.registry().insert("bench", kb.clone());
    let addr = server.local_addr().expect("addr");
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    // Warm the cache once so every curve point measures serving
    // overhead over identical (cached) answer compute.
    let (_, warmup) = full_pass(addr, &shards);
    check(&warmup);

    println!(
        "\nconnections-vs-throughput: {} warm queries per pass, median of {} runs",
        CURVE_TOTAL, CURVE_RUNS
    );
    let mut points = Vec::with_capacity(CURVE.len());
    for &conns in CURVE {
        let wall = median(
            (0..CURVE_RUNS)
                .map(|_| curve_pass(addr, conns, &queries, &reference))
                .collect(),
        );
        let throughput = qps(CURVE_TOTAL, wall);
        println!(
            "{:>5} conns   {:>10.3} ms   {:>9.0} q/s",
            conns,
            wall.as_secs_f64() * 1e3,
            throughput
        );
        points.push((conns, wall, throughput));
    }
    server.stop();
    runner.join().expect("join");

    let peak = points.iter().map(|&(_, _, q)| q).fold(0.0f64, f64::max);
    let rows: Vec<String> = points
        .iter()
        .map(|&(conns, wall, q)| {
            format!(
                r#"{{"conns":{},"median_ms":{:.3},"qps":{:.0},"vs_peak":{:.3}}}"#,
                conns,
                wall.as_secs_f64() * 1e3,
                q,
                q / peak
            )
        })
        .collect();
    let report = format!(
        "{{\"bench\":\"server_connections\",\"total_queries\":{},\"runs\":{},\
         \"threads\":{},\"floor_ratio\":{},\"peak_qps\":{:.0},\"results\":[{}]}}\n",
        CURVE_TOTAL,
        CURVE_RUNS,
        CLIENTS,
        CURVE_FLOOR,
        peak,
        rows.join(",")
    );
    // `CARGO_MANIFEST_DIR` = crates/bench; the report lives at the
    // workspace root where CI (and readers) expect it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    std::fs::write(path, &report).expect("write BENCH_9.json");
    println!("\nwrote {path}");

    for &(conns, _, q) in &points {
        assert!(
            q >= CURVE_FLOOR * peak,
            "throughput collapsed at {conns} conns: {q:.0} q/s vs peak {peak:.0} \
             (floor {CURVE_FLOOR})"
        );
    }
}
