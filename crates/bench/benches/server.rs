//! Serving-layer throughput (experiment index B12): N concurrent TCP
//! clients against one resident `rw-server`, cold cache vs warm cache.
//!
//! The workload is the `parallel` bench's: per-individual theorem
//! queries against a medical-style KB, every query resolving in the
//! theorem stage (so the bench measures serving overhead + answer
//! compute, not multi-second solver tails). Clients **pipeline** — all
//! requests written, then all responses read — so loopback round-trip
//! latency does not dominate; the server still answers one line per
//! request, in order, per connection.
//!
//! Reported: queries/second for the cold pass (every answer computed)
//! and the warm pass (every answer a shared-cache hit), plus the
//! warm/cold speedup. A resident process that cannot beat 2× on
//! repeated workloads would not be worth keeping warm — the run asserts
//! the ratio, and cross-checks every response against the direct
//! engine's beliefs.

use rw_core::RandomWorlds;
use rw_logic::KnowledgeBase;
use rw_server::{Server, ServerConfig, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

// 80 individuals = a 162-conjunct KB: big enough that a cold answer's
// per-query KB clone + theorem scan dwarfs a warm cache lookup, the way
// a production KB would.
const INDIVIDUALS: usize = 80;
const CLIENTS: usize = 4;
const RUNS: usize = 5;

fn kb_text() -> String {
    let mut src =
        String::from("||Hep(x) | Jaun(x)||_x ~=_1 0.8; ||Over60(x) | Patient(x)||_x ~=_2 0.4");
    for i in 0..INDIVIDUALS {
        src.push_str(&format!("; Jaun(C{i}); Patient(C{i})"));
    }
    src
}

/// Six queries per individual over three canonical forms (each form
/// appears twice under different surface syntax) — 480 queries over 240
/// forms at the current [`INDIVIDUALS`] — round-robined across the
/// clients.
fn workload() -> Vec<String> {
    let mut queries = Vec::with_capacity(6 * INDIVIDUALS);
    for i in 0..INDIVIDUALS {
        queries.push(format!("Hep(C{i})"));
        queries.push(format!("Over60(C{i})"));
        queries.push(format!("!Hep(C{i})"));
        queries.push(format!("(Hep(C{i}))"));
        queries.push(format!("(Over60(C{i}))"));
        queries.push(format!("!(Hep(C{i}))"));
    }
    queries
}

/// One pipelined client pass: writes every request, then reads every
/// response. Returns `(query, belief value)` pairs in request order.
fn client_pass(addr: std::net::SocketAddr, queries: &[String]) -> Vec<(String, f64)> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut requests = String::new();
    for q in queries {
        requests.push_str(&format!(
            r#"{{"op":"query","kb":"bench","query":"{}"}}"#,
            rw_server::json::escape(q)
        ));
        requests.push('\n');
    }
    writer.write_all(requests.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(queries.len());
    let mut line = String::new();
    for q in queries {
        line.clear();
        reader.read_line(&mut line).expect("read");
        let v = Value::parse(line.trim()).expect("response parses");
        assert_eq!(
            v.get("query").and_then(Value::as_str),
            Some(q.as_str()),
            "response order broke: {line}"
        );
        let value = v
            .get("belief")
            .and_then(|b| b.get("value"))
            .and_then(Value::as_f64)
            .expect("point belief");
        out.push((q.clone(), value));
    }
    out
}

/// Runs the whole workload once across [`CLIENTS`] concurrent
/// connections; returns the wall time and every `(query, value)` pair.
fn full_pass(addr: std::net::SocketAddr, shards: &[Vec<String>]) -> (Duration, Vec<(String, f64)>) {
    let start = Instant::now();
    let results: Vec<Vec<(String, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(move || client_pass(addr, shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    (start.elapsed(), results.into_iter().flatten().collect())
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

fn qps(n: usize, wall: Duration) -> f64 {
    n as f64 / wall.as_secs_f64().max(1e-12)
}

fn main() {
    let queries = workload();
    let shards: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| queries.iter().skip(c).step_by(CLIENTS).cloned().collect())
        .collect();
    let kb = KnowledgeBase::parse(&kb_text()).expect("kb");

    // Reference beliefs from the engine itself.
    let engine = RandomWorlds::new();
    let reference: std::collections::HashMap<String, f64> = queries
        .iter()
        .map(|q| {
            let r = engine.answer(&kb, q).expect("reference answer");
            (q.clone(), r.belief.as_point().expect("point"))
        })
        .collect();
    let check = |pass: &[(String, f64)]| {
        for (q, v) in pass {
            assert_eq!(reference[q], *v, "belief diverged on {q}");
        }
    };

    println!(
        "server-serving workload: {} queries ({} canonical forms) × {} clients, {} KB conjuncts, median of {} runs\n",
        queries.len(),
        3 * INDIVIDUALS,
        CLIENTS,
        kb.conjuncts().len(),
        RUNS
    );

    // Cold: a fresh server (fresh cache) per run.
    let mut cold_times = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let server = Arc::new(
            Server::bind(ServerConfig {
                threads: CLIENTS,
                ..ServerConfig::default()
            })
            .expect("bind"),
        );
        server.registry().insert("bench", kb.clone());
        let addr = server.local_addr().expect("addr");
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run().expect("run"))
        };
        let (wall, pass) = full_pass(addr, &shards);
        check(&pass);
        cold_times.push(wall);
        server.stop();
        runner.join().expect("join");
    }
    let cold = median(cold_times);

    // Warm: one resident server, cache warmed by an untimed pass.
    let server = Arc::new(
        Server::bind(ServerConfig {
            threads: CLIENTS,
            ..ServerConfig::default()
        })
        .expect("bind"),
    );
    server.registry().insert("bench", kb.clone());
    let addr = server.local_addr().expect("addr");
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    let (_, first) = full_pass(addr, &shards);
    check(&first);
    let mut warm_times = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let (wall, pass) = full_pass(addr, &shards);
        check(&pass);
        warm_times.push(wall);
    }
    let warm = median(warm_times);
    let hits = server.registry().cache().hits();
    server.stop();
    runner.join().expect("join");

    let speedup = qps(queries.len(), warm) / qps(queries.len(), cold);
    println!(
        "cache cold (fresh server/run)   {:>10.3} ms   {:>9.0} q/s",
        cold.as_secs_f64() * 1e3,
        qps(queries.len(), cold)
    );
    println!(
        "cache warm (resident server)    {:>10.3} ms   {:>9.0} q/s   hits {}",
        warm.as_secs_f64() * 1e3,
        qps(queries.len(), warm),
        hits
    );
    println!("\nwarm/cold throughput: {speedup:.2}x (beliefs identical across every pass)");
    assert!(hits > 0, "warm passes must hit the shared cache");
    assert!(
        speedup >= 2.0,
        "a resident warm cache must deliver ≥ 2x cold throughput, got {speedup:.2}x"
    );
}
