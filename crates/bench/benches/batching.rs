//! Serving-path benchmarks (experiment index B9): `answer_batch` against
//! per-query `answer` loops, and the per-stage cost of a trace-carrying
//! pipeline walk versus the work the stages themselves do.
//!
//! Shapes to observe:
//! * batching amortizes pipeline construction, so the per-query gap
//!   widens as the batch grows on theorem-answerable queries (where the
//!   inference itself is nearly free);
//! * the pipeline/trace overhead is noise next to any stage that counts
//!   worlds or sweeps τ.

use rw_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rw_core::RandomWorlds;
use rw_logic::KnowledgeBase;
use std::hint::black_box;

fn medical_kb() -> KnowledgeBase {
    KnowledgeBase::parse(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
         ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
    )
    .unwrap()
}

fn queries(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match i % 3 {
            0 => "Hep(Eric)".to_string(),
            1 => "Over60(Eric)".to_string(),
            _ => "Hep(Eric) & Over60(Eric)".to_string(),
        })
        .collect()
}

fn bench_batch_vs_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_vs_loop");
    let engine = RandomWorlds::new();
    let kb = medical_kb();
    for n in [1usize, 8, 64] {
        let qs = queries(n);
        group.bench_with_input(BenchmarkId::new("answer_batch", n), &qs, |b, qs| {
            b.iter(|| black_box(engine.answer_batch(&kb, qs)))
        });
        group.bench_with_input(BenchmarkId::new("answer_loop", n), &qs, |b, qs| {
            b.iter(|| {
                let results: Vec<_> = qs.iter().map(|q| engine.answer(&kb, q)).collect();
                black_box(results)
            })
        });
    }
    group.finish();
}

fn bench_pipeline_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_stage_mix");
    let engine = RandomWorlds::new();
    // Theorem-answered: one stage, trace of length 1.
    let kb = medical_kb();
    group.bench_function("theorem_hit", |b| {
        b.iter(|| black_box(engine.answer(&kb, "Hep(Eric)").unwrap()))
    });
    // Maxent-answered: the theorem stage declines first.
    let kb =
        KnowledgeBase::parse("||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1").unwrap();
    group.bench_function("maxent_after_decline", |b| {
        b.iter(|| black_box(engine.answer(&kb, "Black(Clyde)").unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_batch_vs_loop, bench_pipeline_overhead);
criterion_main!(benches);
