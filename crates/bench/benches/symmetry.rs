//! Symmetry-reduced orbit counting vs plain branch-and-count (experiment
//! index B13) — the deep-domain reach the PR-6 subsystem exists to prove.
//!
//! For each KB shape in the symmetry fragment the harness measures two
//! things under the *same* default visited budget:
//!
//! * **max reachable N** — the deepest domain size each engine can count
//!   `#KB` and `#(KB ∧ q)` at before exhausting the budget (or the
//!   per-shape time cap): plain branch-and-count visits worlds, so it
//!   stalls near `N ≈ 8`; orbit counting visits canonical
//!   representatives, whose number grows polynomially, and must reach
//!   `N ≥ 32` on every shape or the run fails;
//! * **speedup at a common N** — both engines count the same totals at
//!   `N = 6` (asserted exactly equal first, so the Definition 4.2 ratio
//!   cannot drift) and the median wall-time ratio is reported.
//!
//! Results land in `BENCH_6.json` at the workspace root as
//! machine-readable `{shape, engine, max_n, median_us, speedup_vs_plain}`
//! rows plus the regression gate verdict.

use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_util::Rat;
use rw_worlds::{count_formula_models, CountOptions, SymmetrySpec};
use std::time::{Duration, Instant};

const SAMPLES: usize = 5;
/// The common domain size for the count-for-count speedup comparison.
const COMMON_N: usize = 6;
/// The regression gate: orbit counting must reach at least this depth on
/// every shape (4× the plain engine's historical `MAX_COMPILED_N = 8`).
const REQUIRED_SYMMETRY_N: usize = 32;
/// Never scan past the engine's own window.
const N_CAP: usize = 64;
/// Per-engine wall-clock cap on the reachability scan, so a pathological
/// shape degrades the report instead of hanging the bench.
const SCAN_TIME_CAP: Duration = Duration::from_secs(5);

struct Shape {
    label: &'static str,
    kb_src: &'static str,
    query: &'static str,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            label: "unary-proportion",
            kb_src: "||P(x)||_x ~=_1 0.5; P(C)",
            query: "P(C)",
        },
        Shape {
            label: "conditional-proportion",
            kb_src: "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(C); Jaun(D)",
            query: "Hep(C) & Hep(D)",
        },
        Shape {
            label: "binary-ground",
            kb_src: "Likes(A, B)",
            query: "Likes(B, A)",
        },
        Shape {
            label: "unary-plus-binary",
            kb_src: "||P(x)||_x ~=_1 0.5; Likes(A, B); P(A)",
            query: "Likes(B, A)",
        },
    ]
}

fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The deepest `N` at which both counts succeed within the default
/// budget, scanning upward until an engine-reported failure, the window
/// edge, or the time cap.
fn max_reachable_n(mut count_at: impl FnMut(usize) -> bool) -> usize {
    let started = Instant::now();
    let mut max_n = 0;
    for n in 2..=N_CAP {
        if started.elapsed() > SCAN_TIME_CAP || !count_at(n) {
            break;
        }
        max_n = n;
    }
    max_n
}

fn main() {
    let tol = Tolerances::uniform(Rat::new(1, 16));
    let opts = CountOptions::default();
    let mut rows = Vec::new();
    let mut min_symmetry_n = usize::MAX;

    println!("symmetry-reduced orbit counting vs plain branch-and-count\n");
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "shape", "plain maxN", "sym maxN", "plain µs", "sym µs", "speedup"
    );

    for s in shapes() {
        let mut kb = KnowledgeBase::parse(s.kb_src).unwrap();
        let query = kb.parse_query(s.query).unwrap();
        let kb_formula = kb.as_formula();
        let numerator_formula = Formula::and(kb_formula.clone(), query);
        let num_spec = SymmetrySpec::detect(kb.vocab(), &numerator_formula)
            .expect("bench shapes stay inside the symmetry fragment");
        let kb_spec = SymmetrySpec::detect(kb.vocab(), &kb_formula)
            .expect("bench shapes stay inside the symmetry fragment");

        // Reachability: deepest N each engine can count both totals at.
        let plain_max = max_reachable_n(|n| {
            count_formula_models(kb.vocab(), n, &tol, &numerator_formula, &opts).is_ok()
                && count_formula_models(kb.vocab(), n, &tol, &kb_formula, &opts).is_ok()
        });
        let sym_max = max_reachable_n(|n| {
            num_spec.count(n, &tol, &opts).is_ok() && kb_spec.count(n, &tol, &opts).is_ok()
        });
        min_symmetry_n = min_symmetry_n.min(sym_max);

        // Speedup at the common N, exactness asserted first.
        let mut plain_samples = Vec::with_capacity(SAMPLES);
        let mut plain_counts = (0u128, 0u128);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            let num = count_formula_models(kb.vocab(), COMMON_N, &tol, &numerator_formula, &opts)
                .unwrap();
            let den = count_formula_models(kb.vocab(), COMMON_N, &tol, &kb_formula, &opts).unwrap();
            plain_counts = (num.count, den.count);
            plain_samples.push(t.elapsed().as_secs_f64() * 1e6);
        }
        let mut sym_samples = Vec::with_capacity(SAMPLES);
        let mut sym_counts = (0u128, 0u128);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            let num = num_spec.count(COMMON_N, &tol, &opts).unwrap();
            let den = kb_spec.count(COMMON_N, &tol, &opts).unwrap();
            sym_counts = (
                num.count.exact().expect("common-N counts fit u128"),
                den.count.exact().expect("common-N counts fit u128"),
            );
            sym_samples.push(t.elapsed().as_secs_f64() * 1e6);
        }
        assert_eq!(
            sym_counts, plain_counts,
            "count mismatch on `{}` ⊢ `{}` at N={COMMON_N}",
            s.kb_src, s.query
        );

        let plain_us = median_us(&mut plain_samples);
        let sym_us = median_us(&mut sym_samples);
        let speedup = plain_us / sym_us;
        println!(
            "{:<24} {:>10} {:>10} {:>12.1} {:>12.1} {:>8.1}x",
            s.label, plain_max, sym_max, plain_us, sym_us, speedup
        );

        rows.push(format!(
            concat!(
                r#"{{"shape":"{}","engine":"plain","max_n":{},"median_us":{:.1},"#,
                r#""speedup_vs_plain":1.0}}"#
            ),
            s.label, plain_max, plain_us
        ));
        rows.push(format!(
            concat!(
                r#"{{"shape":"{}","engine":"symmetry","max_n":{},"median_us":{:.1},"#,
                r#""speedup_vs_plain":{:.2}}}"#
            ),
            s.label, sym_max, sym_us, speedup
        ));
    }

    let report = format!(
        "{{\"bench\":\"symmetry\",\"samples\":{},\"common_n\":{},\
         \"required_symmetry_n\":{},\"min_symmetry_n\":{},\"results\":[{}]}}\n",
        SAMPLES,
        COMMON_N,
        REQUIRED_SYMMETRY_N,
        min_symmetry_n,
        rows.join(",")
    );
    // `CARGO_MANIFEST_DIR` = crates/bench; the report lives at the
    // workspace root where CI (and readers) expect it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    std::fs::write(path, &report).expect("write BENCH_6.json");
    println!("\nwrote {path}");

    assert!(
        min_symmetry_n >= REQUIRED_SYMMETRY_N,
        "orbit counting must reach N≥{REQUIRED_SYMMETRY_N} on every shape within the \
         default budget, got N={min_symmetry_n}"
    );
    println!("symmetry reach ≥ N={REQUIRED_SYMMETRY_N}: ok (N={min_symmetry_n} min)");
}
