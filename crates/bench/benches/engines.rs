//! Scaling benchmarks for the three world-counting engines and the theorem
//! engine (experiment index B1–B4).
//!
//! Shapes to observe (EXPERIMENTS.md):
//! * brute-force enumeration is doubly exponential in `N` — each +1 of
//!   domain size multiplies the world space by `2^(#preds)` per element;
//! * the unary profile engine is polynomial (`O(N^(A-1))` compositions);
//! * the theorem engine is effectively constant time in `N` (it never
//!   counts) and linear-ish in KB size;
//! * the full engine's fallback chain is dominated by its cheapest
//!   applicable layer.

use rw_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rw_logic::{KnowledgeBase, Tolerances};
use rw_util::Rat;
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration_vs_N");
    let mut kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
    let q = kb.parse_query("Hep(Eric)").unwrap();
    let tol = Tolerances::uniform(Rat::new(1, 4));
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(rw_worlds::degree_of_belief_at(&kb, &q, n, &tol).unwrap()))
        });
    }
    group.finish();
}

fn bench_unary_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("unary_profiles_vs_N");
    let mut kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
    let q = kb.parse_query("Hep(Eric)").unwrap();
    let tol = Tolerances::uniform(Rat::new(1, 10));
    for n in [16usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(rw_unary::degree_of_belief_at(&kb, &q, n, &tol).unwrap()))
        });
    }
    group.finish();
}

fn bench_unary_vs_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("unary_profiles_vs_preds");
    // Profiles grow as C(N + 2^A - 1, 2^A - 1): the third point at N = 24
    // would enumerate ~2.6M compositions per iteration (minutes per sample),
    // so the group fixes N = 12 and trims the sample count. The
    // exponential-in-predicates shape is unchanged.
    group.sample_size(10);
    for preds in [1usize, 2, 3] {
        let stats: Vec<String> = (0..preds)
            .map(|i| format!("||P{i}(x)||_x ~=_{} 0.5", i + 1))
            .collect();
        let mut kb = KnowledgeBase::parse(&stats.join("; ")).unwrap();
        let q = kb.parse_query("P0(C)").unwrap();
        let tol = Tolerances::uniform(Rat::new(1, 8));
        group.bench_with_input(BenchmarkId::from_parameter(preds), &preds, |b, _| {
            b.iter(|| black_box(rw_unary::degree_of_belief_at(&kb, &q, 12, &tol).unwrap()))
        });
    }
    group.finish();
}

fn bench_theorem_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_engine");
    let engine = rw_core::RandomWorlds::default();

    let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
    group.bench_function("direct_inference", |b| {
        b.iter(|| black_box(engine.degree_of_belief(&kb, "Hep(Eric)").unwrap()))
    });

    let kb = KnowledgeBase::parse(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         forall x (Penguin(x) => Bird(x)); Penguin(Tweety); Yellow(Tweety)",
    )
    .unwrap();
    group.bench_function("minimal_class", |b| {
        b.iter(|| black_box(engine.degree_of_belief(&kb, "Fly(Tweety)").unwrap()))
    });

    let kb = KnowledgeBase::parse(
        "||Pacifist(x) | Quaker(x)||_x ~=_1 0.8; ||Pacifist(x) | Republican(x)||_x ~=_2 0.8; \
         Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
    )
    .unwrap();
    group.bench_function("dempster", |b| {
        b.iter(|| black_box(engine.degree_of_belief(&kb, "Pacifist(Nixon)").unwrap()))
    });
    group.finish();
}

fn bench_default_systems(c: &mut Criterion) {
    use rw_epsilon::prop::{DefaultRule, VarTable};
    let mut group = c.benchmark_group("propositional_systems_vs_rules");
    for m in [4usize, 8, 12] {
        // A chain taxonomy: c0 → c1 → ... plus a flying default per level.
        let mut vt = VarTable::new();
        let mut rules = Vec::new();
        for i in 0..m / 2 {
            rules.push(DefaultRule::new(
                vt.parse(&format!("c{i}")).unwrap(),
                vt.parse(&format!("c{}", i + 1)).unwrap(),
            ));
            rules.push(DefaultRule::new(
                vt.parse(&format!("c{i}")).unwrap(),
                vt.parse(&format!("f{i}")).unwrap(),
            ));
        }
        let prem = vt.parse("c0").unwrap();
        let concl = vt.parse("f0").unwrap();
        group.bench_with_input(BenchmarkId::new("system_p", m), &m, |b, _| {
            b.iter(|| black_box(rw_epsilon::p_entails(&rules, &prem, &concl)))
        });
        group.bench_with_input(BenchmarkId::new("system_z", m), &m, |b, _| {
            b.iter(|| black_box(rw_epsilon::z_entails(&rules, &prem, &concl)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_enumeration,
    bench_unary_counting,
    bench_unary_vs_predicates,
    bench_theorem_engine,
    bench_default_systems,
);
criterion_main!(benches);
