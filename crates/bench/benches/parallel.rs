//! Serving-path scaling benchmark (experiment index B10): the parallel
//! sharded batch executor and the canonical-query answer cache, on a
//! generated ≥200-query workload against one medical-style KB.
//!
//! Three axes, reported as a table with speedups over the sequential
//! uncached baseline (each figure is the median of [`RUNS`] runs):
//!
//! * **threads** — 1/2/4/8 workers, no cache: pure sharding. Expect
//!   near-linear scaling up to the core count (per-query work is
//!   independent; the only shared state is one atomic work index). On a
//!   single-core container this row is flat — read it on real hardware.
//! * **cache, cold** — first pass over the workload with a fresh cache:
//!   the workload repeats every canonical form twice under different
//!   surface syntax, so even a cold pass serves half its queries from
//!   the cache.
//! * **cache, warm** — second pass over a populated cache: every query
//!   is a hit; this is the steady-state serving latency.
//!
//! Every query is theorem-answerable (micro- not milliseconds), keeping
//! the whole suite fast; the `batching` bench covers per-stage costs.
//! The run cross-checks that every configuration produced exactly the
//! baseline's beliefs (`beliefs identical: true`), so the speedups are
//! for equivalent answers.

use rw_core::{AnswerCache, BatchOptions, BatchRun, RandomWorlds};
use rw_logic::KnowledgeBase;
use std::sync::Arc;
use std::time::{Duration, Instant};

const INDIVIDUALS: usize = 40;
const RUNS: usize = 5;

/// Two statistical defaults plus per-individual facts: every query in
/// the workload resolves in the theorem stage (direct inference or
/// minimal reference class) against this (2 + 2·INDIVIDUALS)-conjunct KB.
fn kb() -> KnowledgeBase {
    let mut src =
        String::from("||Hep(x) | Jaun(x)||_x ~=_1 0.8; ||Over60(x) | Patient(x)||_x ~=_2 0.4");
    for i in 0..INDIVIDUALS {
        src.push_str(&format!("; Jaun(C{i}); Patient(C{i})"));
    }
    KnowledgeBase::parse(&src).unwrap()
}

/// 240 queries over 120 canonical forms: per individual, three distinct
/// canonical queries, each repeated once under a different surface form
/// (redundant parens / double-negation-free negation shapes) that
/// canonicalizes onto it.
fn workload() -> Vec<String> {
    let mut queries = Vec::with_capacity(6 * INDIVIDUALS);
    for i in 0..INDIVIDUALS {
        queries.push(format!("Hep(C{i})"));
        queries.push(format!("Over60(C{i})"));
        queries.push(format!("!Hep(C{i})"));
        queries.push(format!("(Hep(C{i}))"));
        queries.push(format!("(Over60(C{i}))"));
        queries.push(format!("!(Hep(C{i}))"));
    }
    queries
}

fn beliefs(run: &BatchRun) -> Vec<String> {
    run.results
        .iter()
        .map(|r| match r {
            Ok(resp) => format!("{:?}", resp.belief),
            Err(e) => format!("err: {e}"),
        })
        .collect()
}

/// Runs `f` [`RUNS`] times; returns the median wall time and the last run.
fn median_timed(mut f: impl FnMut() -> BatchRun) -> (Duration, BatchRun) {
    let mut times = Vec::with_capacity(RUNS);
    let mut last = None;
    for _ in 0..RUNS {
        let t = Instant::now();
        let run = f();
        times.push(t.elapsed());
        last = Some(run);
    }
    times.sort();
    (times[times.len() / 2], last.expect("RUNS > 0"))
}

fn row(label: &str, elapsed: Duration, baseline: Duration, detail: &str) {
    println!(
        "{label:<34} {:>10.3} ms   speedup {:>6.2}x   {detail}",
        elapsed.as_secs_f64() * 1e3,
        baseline.as_secs_f64() / elapsed.as_secs_f64().max(1e-12),
    );
}

fn main() {
    let kb = kb();
    let queries = workload();
    let engine = RandomWorlds::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "batch-serving workload: {} queries ({} canonical forms), {} KB conjuncts, {} core(s), median of {} runs\n",
        queries.len(),
        3 * INDIVIDUALS,
        kb.conjuncts().len(),
        cores,
        RUNS
    );

    let (baseline, baseline_run) =
        median_timed(|| engine.answer_batch_report(&kb, &queries, &BatchOptions::sequential()));
    let reference = beliefs(&baseline_run);
    assert_eq!(baseline_run.report.failed, 0, "workload must be answerable");
    row("sequential, no cache (baseline)", baseline, baseline, "");

    let mut all_identical = true;

    for threads in [2usize, 4, 8] {
        let (elapsed, run) = median_timed(|| {
            engine.answer_batch_report(&kb, &queries, &BatchOptions::threaded(threads))
        });
        all_identical &= beliefs(&run) == reference;
        row(
            &format!("threads={threads}, no cache"),
            elapsed,
            baseline,
            &format!("cpu {:.3} ms", run.report.cpu.as_secs_f64() * 1e3),
        );
    }

    println!();
    for threads in [1usize, 4] {
        let (cold_elapsed, cold) = median_timed(|| {
            // A fresh cache per run: this measures the cold pass.
            let opts = BatchOptions::threaded(threads).with_cache(Arc::new(AnswerCache::new()));
            engine.answer_batch_report(&kb, &queries, &opts)
        });
        all_identical &= beliefs(&cold) == reference;
        row(
            &format!("threads={threads}, cache cold"),
            cold_elapsed,
            baseline,
            &format!("hits {}", cold.report.cache_hits),
        );

        // One shared cache, warmed by a first pass, measured on reruns.
        let warm_opts = BatchOptions::threaded(threads).with_cache(Arc::new(AnswerCache::new()));
        let _ = engine.answer_batch_report(&kb, &queries, &warm_opts);
        let (warm_elapsed, warm) =
            median_timed(|| engine.answer_batch_report(&kb, &queries, &warm_opts));
        all_identical &= beliefs(&warm) == reference;
        assert!(
            warm.report.cache_hits > 0,
            "warm cache must report nonzero hits"
        );
        row(
            &format!("threads={threads}, cache warm"),
            warm_elapsed,
            baseline,
            &format!("hits {}", warm.report.cache_hits),
        );
    }

    println!();
    overhead_gate(&engine, &kb, &queries);

    println!("\nbeliefs identical across all runs: {all_identical}");
    assert!(all_identical, "a configuration diverged from the baseline");
}

/// Observability overhead gate: warm-cache serving with the metrics
/// registry enabled must stay within 5% of the registry disabled. The
/// warm pass is the steady state where per-query instrumentation (hit
/// counters, lookup-latency histograms) is the largest relative cost.
/// Medians already damp noise; a few retries ride out scheduler spikes
/// so the gate fails only on a real regression.
fn overhead_gate(engine: &RandomWorlds, kb: &KnowledgeBase, queries: &[String]) {
    const ATTEMPTS: usize = 7;
    let opts = BatchOptions::threaded(1).with_cache(Arc::new(AnswerCache::new()));
    let _ = engine.answer_batch_report(kb, queries, &opts); // warm the cache
    let mut best = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        rw_obs::set_enabled(false);
        let (off, _) = median_timed(|| engine.answer_batch_report(kb, queries, &opts));
        rw_obs::set_enabled(true);
        let (on, _) = median_timed(|| engine.answer_batch_report(kb, queries, &opts));
        let ratio = on.as_secs_f64() / off.as_secs_f64().max(1e-12);
        best = best.min(ratio);
        println!(
            "obs overhead (warm, threads=1)     on {:>8.3} ms   off {:>8.3} ms   {:+.2}%",
            on.as_secs_f64() * 1e3,
            off.as_secs_f64() * 1e3,
            (ratio - 1.0) * 100.0,
        );
        if best <= 1.05 {
            break;
        }
        eprintln!("  attempt {attempt}/{ATTEMPTS}: over the 5% budget, retrying");
    }
    assert!(
        best <= 1.05,
        "metrics registry costs more than 5% warm-cache throughput (best ratio {best:.3})"
    );
}
