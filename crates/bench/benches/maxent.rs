//! Maximum-entropy solver benchmarks (experiment index B5), including the
//! ablation the workspace's own history motivated: the Gibbs-form dual
//! solver against Frank–Wolfe, whose additive gap bound collapses on the
//! `τ²`-scale coordinates of exceptional-subclass KBs.

use rw_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rw_logic::{KnowledgeBase, Tolerances};
use rw_maxent::{compile, maximize_entropy, maximize_entropy_dual, SweepConfig};
use rw_util::Rat;
use std::hint::black_box;

fn penguin_kb() -> KnowledgeBase {
    KnowledgeBase::parse(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
         Bird(x) ->_3 Warm-blooded(x); \
         forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
    )
    .unwrap()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy_solver_ablation");
    let kb = penguin_kb();
    let tol = Tolerances::uniform(Rat::new(1, 64));
    let sys = compile(&kb, &tol).unwrap();
    let rows: Vec<(Vec<f64>, f64)> = sys.rows.iter().map(|r| (r.coeffs.clone(), r.rhs)).collect();
    group.bench_function("dual_gibbs", |b| {
        b.iter(|| black_box(maximize_entropy_dual(&rows, &sys.zero, sys.atoms).unwrap()))
    });
    let (a, bvec) = sys.lp_rows();
    group.bench_function("frank_wolfe", |b| {
        b.iter(|| {
            // FW may stop at its iteration budget on this instance; that is
            // the point of the ablation. Count the work either way.
            black_box(maximize_entropy(&a, &bvec, sys.atoms).ok())
        })
    });
    group.finish();
}

fn bench_atom_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxent_vs_atoms");
    for preds in [2usize, 4, 6] {
        let stats: Vec<String> = (0..preds)
            .map(|i| format!("||P{i}(x)||_x ~=_{} 0.{}", i + 1, 2 + i))
            .collect();
        let kb = KnowledgeBase::parse(&stats.join("; ")).unwrap();
        let tol = Tolerances::uniform(Rat::new(1, 32));
        group.bench_with_input(
            BenchmarkId::from_parameter(1usize << preds),
            &preds,
            |b, _| b.iter(|| black_box(rw_maxent::maxent_point(&kb, &tol).unwrap())),
        );
    }
    group.finish();
}

fn bench_full_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("tau_sweep");
    group.sample_size(20);
    let mut kb = penguin_kb();
    let q = kb.parse_query("Warm-blooded(Tweety)").unwrap();
    let config = SweepConfig::default();
    group.bench_function("exceptional_inheritance", |b| {
        b.iter(|| black_box(rw_maxent::degree_of_belief_limit(&kb, &q, &config).unwrap()))
    });
    let no_probe = SweepConfig {
        probe_asymmetry: false,
        ..SweepConfig::default()
    };
    group.bench_function("exceptional_inheritance_no_probes", |b| {
        b.iter(|| black_box(rw_maxent::degree_of_belief_limit(&kb, &q, &no_probe).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_atom_scaling, bench_full_sweep);
criterion_main!(benches);
