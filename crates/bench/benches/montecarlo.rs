//! Approximate vs exact on the PR-2 trap queries (experiment index B11):
//! the Monte-Carlo sampling stage against the maximum-entropy stage on
//! query shapes that miss every theorem pattern.
//!
//! These are the shapes the PR-2 changelog flagged as the serving-path
//! trap — each one used to fall into a 1–14 s maxent sweep:
//!
//! * `!!φ(c)` — double negation defeats the syntactic matchers (the
//!   answer cache canonicalizes it away, but only on a repeat);
//! * conjunctions over individuals sharing one statistic — the shared
//!   predicate defeats the Thm 5.27 independence product.
//!
//! The table reports, per query, the maxent wall time and value against
//! the sampler's wall time, estimate and 95% CI, plus the speedup. Each
//! run cross-checks that the sampler's interval brackets the maxent
//! value (within 3 half-widths plus extrapolation slack) — the speedup
//! is for a *compatible* answer, not a different one. Bare asserted
//! facts, the third trap shape, no longer need either stage: the
//! theorem fast path answers them in microseconds (asserted below).

use rw_core::solvers::{MaxEntSolver, MonteCarloSolver, TheoremSolver};
use rw_core::{Belief, Budget, Provenance, Solver, SolverOutcome};
use rw_logic::KnowledgeBase;
use std::time::{Duration, Instant};

fn kb() -> KnowledgeBase {
    KnowledgeBase::parse(
        "||Hep(x) | Jaun(x)||_x ~=_1 0.8; ||Over60(x) | Patient(x)||_x ~=_2 0.4; \
         Jaun(Eric); Patient(Eric); Jaun(Tom)",
    )
    .unwrap()
}

fn solve_timed(solver: &dyn Solver, kb: &KnowledgeBase, query: &str) -> (Duration, SolverOutcome) {
    let mut kb = kb.clone();
    let q = kb.parse_query(query).unwrap();
    let t = Instant::now();
    let outcome = solver.solve(&kb, &q, &Budget::UNLIMITED, &|_, _| None);
    (t.elapsed(), outcome)
}

fn point_of(outcome: &SolverOutcome) -> Option<f64> {
    match outcome {
        SolverOutcome::Answered { belief, .. } => belief.as_point(),
        _ => None,
    }
}

fn main() {
    let kb = kb();
    let maxent = MaxEntSolver::default();
    let sampler = MonteCarloSolver::default();
    println!(
        "maxent vs montecarlo on theorem-missing trap queries ({} conjuncts)\n",
        kb.conjuncts().len()
    );
    println!(
        "{:<28} {:>12} {:>9}   {:>12} {:>9} {:>8}   {:>8}",
        "query", "maxent ms", "value", "sampler ms", "estimate", "±ci", "speedup"
    );

    let mut all_compatible = true;
    for query in [
        "!!Hep(Eric)",
        "Hep(Eric) & Hep(Tom)",
        "Hep(Eric) & Over60(Eric)",
    ] {
        let (me_t, me_o) = solve_timed(&maxent, &kb, query);
        let (mc_t, mc_o) = solve_timed(&sampler, &kb, query);
        let me_v = point_of(&me_o).expect("maxent must answer the trap queries");
        let (mc_v, mc_hw) = match &mc_o {
            SolverOutcome::Answered {
                belief:
                    Belief::Approximate {
                        value,
                        ci_half_width,
                    },
                provenance: Provenance::MonteCarlo { .. },
            } => (*value, *ci_half_width),
            other => panic!("sampler must answer approximately, got {other:?}"),
        };
        // 3 half-widths plus slack for the finite-N extrapolation error.
        let compatible = (mc_v - me_v).abs() <= 3.0 * mc_hw + 0.05;
        all_compatible &= compatible;
        println!(
            "{query:<28} {:>12.1} {me_v:>9.4}   {:>12.1} {mc_v:>9.4} {mc_hw:>8.4}   {:>7.1}x{}",
            me_t.as_secs_f64() * 1e3,
            mc_t.as_secs_f64() * 1e3,
            me_t.as_secs_f64() / mc_t.as_secs_f64().max(1e-9),
            if compatible { "" } else { "   <-- DISAGREES" }
        );
    }

    // The third trap shape needs no sampling at all any more: the
    // theorem fast path answers asserted ground facts directly.
    let (th_t, th_o) = solve_timed(&TheoremSolver, &kb, "Jaun(Eric) & Patient(Eric)");
    assert_eq!(point_of(&th_o), Some(1.0), "{th_o:?}");
    println!(
        "\nasserted-fact fast path: Jaun(Eric) & Patient(Eric) answered exactly in {:.3} ms",
        th_t.as_secs_f64() * 1e3
    );
    println!("sampler estimates compatible with maxent: {all_compatible}");
    assert!(all_compatible, "a sampler estimate left its own interval");
}
