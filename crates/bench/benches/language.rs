//! Language-layer benchmarks (experiment index B6): parsing, printing and
//! model checking — the substrate costs under every engine.

use rw_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rw_logic::{parse_formula, KnowledgeBase, Pretty, Tolerances, Vocabulary};
use rw_util::Rat;
use std::hint::black_box;

const SOURCES: &[&str] = &[
    "||Hep(x) | Jaun(x)||_x ~=_1 0.8",
    "forall x (Penguin(x) => Bird(x))",
    "|| ||Rises-late(x, y) | Day(y)||_y ~=_1 1 | ||To-bed-late(x, z) | Day(z)||_z ~=_2 1 ||_x ~=_3 1",
    "exists! x (Quaker(x) & Republican(x))",
];

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for (i, src) in SOURCES.iter().enumerate() {
        group.bench_with_input(BenchmarkId::from_parameter(i), src, |b, src| {
            b.iter(|| {
                let mut v = Vocabulary::new();
                black_box(parse_formula(&mut v, src).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_printer(c: &mut Criterion) {
    let mut group = c.benchmark_group("print");
    for (i, src) in SOURCES.iter().enumerate() {
        let mut v = Vocabulary::new();
        let f = parse_formula(&mut v, src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(i), &f, |b, f| {
            b.iter(|| black_box(Pretty::new(&v, f).to_string()))
        });
    }
    group.finish();
}

fn bench_model_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_check");
    let mut kb =
        KnowledgeBase::parse("||Fly(x) | Bird(x)||_x ~=_1 0.9; forall x (Penguin(x) => Bird(x))")
            .unwrap();
    let f = kb.as_formula();
    let nested = kb
        .parse_query("|| ||Likes(x, y)||_y ~=_1 0.5 ||_x <~_2 0.9")
        .unwrap();
    let tol = Tolerances::uniform(Rat::new(1, 10));
    for n in [8usize, 16, 32] {
        let world = {
            let mut rng = rw_util::StdRng::seed_from_u64(42);
            rw_worlds::sample::sample_world(kb.vocab(), n, &mut rng)
        };
        group.bench_with_input(BenchmarkId::new("statistical_kb", n), &n, |b, _| {
            b.iter(|| black_box(rw_worlds::evaluate_closed(&world, kb.vocab(), &tol, &f)))
        });
        group.bench_with_input(BenchmarkId::new("nested_proportions", n), &n, |b, _| {
            b.iter(|| {
                black_box(rw_worlds::evaluate_closed(
                    &world,
                    kb.vocab(),
                    &tol,
                    &nested,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parser, bench_printer, bench_model_checking);
criterion_main!(benches);
