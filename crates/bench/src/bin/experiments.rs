//! The experiment harness: regenerates every paper-vs-measured row of
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p rw-bench --bin experiments --release
//! ```

use rw_core::{Belief, RandomWorlds};
use rw_logic::{KnowledgeBase, Tolerances};
use rw_util::Rat;

struct Row {
    id: &'static str,
    source: &'static str,
    description: &'static str,
    expected: String,
    measured: String,
    ok: bool,
}

fn fmt_belief(b: &Belief) -> String {
    match b {
        Belief::Point(v) => format!("{v:.4}"),
        Belief::Interval(lo, hi) => format!("[{lo:.2}, {hi:.2}]"),
        Belief::NonRobust(_) => "non-robust".to_string(),
        Belief::Approximate {
            value,
            ci_half_width,
        } => format!("{value:.4}±{ci_half_width:.4}"),
        Belief::Undefined => "undefined".to_string(),
    }
}

fn run_examples(engine: &RandomWorlds) -> Vec<Row> {
    struct Case {
        id: &'static str,
        source: &'static str,
        description: &'static str,
        kb: &'static str,
        query: &'static str,
        expected: Expected,
    }
    enum Expected {
        Point(f64, f64),
        Interval(f64, f64),
        NonRobust,
        Undefined,
    }
    use Expected::*;

    let nixon = "||Pacifist(x) | Quaker(x)||_x ~=_1 {A}; \
                 ||Pacifist(x) | Republican(x)||_x ~=_2 {B}; \
                 Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))";
    let _ = nixon;

    let cases = vec![
        Case { id: "E1", source: "Ex 5.8", description: "hepatitis direct inference",
            kb: "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", query: "Hep(Eric)",
            expected: Point(0.8, 1e-9) },
        Case { id: "E2", source: "Ex 5.8", description: "other individuals ignored",
            kb: "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Hep(Tom)", query: "Hep(Eric)",
            expected: Point(0.8, 1e-9) },
        Case { id: "E3", source: "Ex 5.10", description: "penguins do not fly (specificity)",
            kb: "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
            query: "Fly(Tweety)", expected: Point(0.0, 1e-9) },
        Case { id: "E5a", source: "Ex 5.12", description: "elephants like zookeeper Eric",
            kb: "||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1; ||Likes(x, Fred) | Elephant(x)||_x ~=_2 0; Zookeeper(Fred); Elephant(Clyde); Zookeeper(Eric)",
            query: "Likes(Clyde, Eric)", expected: Point(1.0, 1e-9) },
        Case { id: "E5b", source: "Ex 5.12", description: "but not Fred",
            kb: "||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1; ||Likes(x, Fred) | Elephant(x)||_x ~=_2 0; Zookeeper(Fred); Elephant(Clyde); Zookeeper(Eric)",
            query: "Likes(Clyde, Fred)", expected: Point(0.0, 1e-9) },
        Case { id: "E6", source: "Ex 5.13", description: "tall parent (∃-defined class)",
            kb: "||Tall(x) | exists y (Child(x, y) & Tall(y))||_x ~=_1 1; exists y (Child(Alice, y) & Tall(y))",
            query: "Tall(Alice)", expected: Point(1.0, 1e-9) },
        Case { id: "E7", source: "Ex 5.14", description: "nested bed-late defaults",
            kb: "|| ||Rises-late(x, y) | Day(y)||_y ~=_1 1 | ||To-bed-late(x, z) | Day(z)||_z ~=_2 1 ||_x ~=_3 1; ||To-bed-late(Alice, z) | Day(z)||_z ~=_2 1; Day(Tomorrow)",
            query: "Rises-late(Alice, Tomorrow)", expected: Point(1.0, 1e-9) },
        Case { id: "E8", source: "Ex 5.18", description: "irrelevant facts ignored",
            kb: "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Fever(Eric); Tall(Eric)",
            query: "Hep(Eric)", expected: Point(0.8, 1e-9) },
        Case { id: "E9", source: "Ex 5.19", description: "yellow penguin still flightless",
            kb: "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); forall x (Penguin(x) => Bird(x)); Penguin(Tweety); Yellow(Tweety)",
            query: "Fly(Tweety)", expected: Point(0.0, 1e-9) },
        Case { id: "E10", source: "Ex 5.20", description: "exceptional subclass inherits",
            kb: "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); Bird(x) ->_3 Warm-blooded(x); forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
            query: "Warm-blooded(Tweety)", expected: Point(1.0, 1e-9) },
        Case { id: "E11", source: "Ex 5.21", description: "drowning problem solved",
            kb: "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); Yellow(x) ->_3 Easy-to-see(x); forall x (Penguin(x) => Bird(x)); Penguin(Tweety); Yellow(Tweety)",
            query: "Easy-to-see(Tweety)", expected: Point(1.0, 1e-9) },
        Case { id: "E12", source: "Ex 5.22", description: "Tay-Sachs disjunctive class",
            kb: "||TS(x) | EEJ(x) or FC(x)||_x ~=_1 0.02; EEJ(Eric)",
            query: "TS(Eric)", expected: Point(0.02, 1e-3) },
        Case { id: "E13", source: "Ex 5.24", description: "strength rule (magpies)",
            kb: "0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8; 0 <~_3 ||Chirps(x) | Magpie(x)||_x <~_4 0.99; forall x (Magpie(x) => Bird(x)); Magpie(Tweety)",
            query: "Chirps(Tweety)", expected: Interval(0.7, 0.8) },
        Case { id: "E15", source: "Thm 5.26", description: "Nixon δ(0.8, 0.8) = 16/17",
            kb: "||Pacifist(x) | Quaker(x)||_x ~=_1 0.8; ||Pacifist(x) | Republican(x)||_x ~=_2 0.8; Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
            query: "Pacifist(Nixon)", expected: Point(16.0 / 17.0, 1e-9) },
        Case { id: "E16", source: "§5.3", description: "neutral evidence defers",
            kb: "||Pacifist(x) | Quaker(x)||_x ~=_1 0.7; ||Pacifist(x) | Republican(x)||_x ~=_2 0.5; Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
            query: "Pacifist(Nixon)", expected: Point(0.7, 1e-9) },
        Case { id: "E17a", source: "§5.3", description: "conflicting hard defaults (distinct τ)",
            kb: "||Pacifist(x) | Quaker(x)||_x ~=_1 1; ||Pacifist(x) | Republican(x)||_x ~=_2 0; Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
            query: "Pacifist(Nixon)", expected: NonRobust },
        Case { id: "E17b", source: "§5.3", description: "equal-strength conflict → 1/2",
            kb: "||Pacifist(x) | Quaker(x)||_x ~=_1 1; ||Pacifist(x) | Republican(x)||_x ~=_1 0; Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
            query: "Pacifist(Nixon)", expected: Point(0.5, 1e-9) },
        Case { id: "E18", source: "Ex 5.28", description: "independence: 0.8 × 0.4",
            kb: "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
            query: "Hep(Eric) & Over60(Eric)", expected: Point(0.32, 1e-9) },
        Case { id: "E19", source: "Ex 5.29", description: "maxent, not naive independence",
            kb: "||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1",
            query: "Black(Clyde)", expected: Point(0.47, 5e-3) },
        Case { id: "E21a", source: "§5.5", description: "lottery: instance loses",
            kb: "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); forall x (Ticket(x)); Ticket(C)",
            query: "Winner(C)", expected: Point(0.0, 2e-3) },
        Case { id: "E21b", source: "§5.5", description: "lottery: someone wins",
            kb: "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); forall x (Ticket(x)); Ticket(C)",
            query: "exists x (Winner(x))", expected: Point(1.0, 2e-3) },
        Case { id: "E22a", source: "§5.5", description: "unique names by default",
            kb: "P(A) or !P(A)", query: "C1 = C2", expected: Point(0.0, 1e-9) },
        Case { id: "E22b", source: "§5.5", description: "Lifschitz C1",
            kb: "Ray = Reiter; Drew = McDermott", query: "!(Ray = Drew)", expected: Point(1.0, 1e-9) },
        Case { id: "E23", source: "§6", description: "maxent point (0.3, 0.7, 0, 0)",
            kb: "forall x (P1(x)); ||P1(x) & P2(x)||_x <~_1 0.3", query: "P2(C)",
            expected: Point(0.3, 2e-3) },
        Case { id: "E24", source: "Ex 5.4", description: "broken arm: exactly one usable",
            kb: "||LeftUsable(x)||_x ~=_1 1; ||LeftUsable(x) | LeftBroken(x)||_x ~=_2 0; ||RightUsable(x)||_x ~=_3 1; ||RightUsable(x) | RightBroken(x)||_x ~=_4 0; LeftBroken(Eric) or RightBroken(Eric)",
            query: "(LeftUsable(Eric) or RightUsable(Eric)) & !(LeftUsable(Eric) & RightUsable(Eric))",
            expected: Point(1.0, 2e-3) },
        Case { id: "E30a", source: "§7.2", description: "representation: 2 colors",
            kb: "true", query: "White(B)", expected: Point(0.5, 1e-9) },
        Case { id: "E30b", source: "§7.2", description: "representation: 3 colors",
            kb: "forall x (!White(x) <=> Red(x) or Blue(x)); forall x (!(Red(x) & Blue(x))); forall x (White(x) => !Red(x) & !Blue(x))",
            query: "White(B)", expected: Point(1.0 / 3.0, 2e-3) },
        Case { id: "E31", source: "fn 14", description: "Republican banker δ(0.2,0.2)",
            kb: "||Pacifist(x) | Republican(x)||_x ~=_1 0.2; ||Pacifist(x) | Banker(x)||_x ~=_2 0.2; Republican(Morgan); Banker(Morgan); exists! x (Republican(x) & Banker(x))",
            query: "Pacifist(Morgan)", expected: Point(1.0 / 17.0, 1e-9) },
        Case { id: "E-poole", source: "§5.5", description: "Poole partition inconsistent",
            kb: "forall x (Bird(x) <=> Penguin(x) or Emu(x)); forall x (!(Penguin(x) & Emu(x))); Bird(x) ->_1 !Penguin(x); Bird(x) ->_2 !Emu(x); exists x (Bird(x))",
            query: "Penguin(C)", expected: Undefined },
    ];

    let mut rows = Vec::new();
    for case in cases {
        let kb = KnowledgeBase::parse(case.kb).expect(case.id);
        let result = engine.answer(&kb, case.query);
        let (measured, ok, expected_str) = match (&result, &case.expected) {
            (Ok(r), Point(v, eps)) => (
                format!("{} ({})", fmt_belief(&r.belief), r.provenance),
                r.belief.as_point().is_some_and(|m| (m - v).abs() <= *eps),
                format!("{v:.4}"),
            ),
            (Ok(r), Interval(lo, hi)) => (
                format!("{} ({})", fmt_belief(&r.belief), r.provenance),
                r.belief.as_interval() == Some((*lo, *hi)),
                format!("[{lo:.2}, {hi:.2}]"),
            ),
            (Ok(r), NonRobust) => (
                format!("{} ({})", fmt_belief(&r.belief), r.provenance),
                matches!(r.belief, Belief::NonRobust(_)),
                "non-robust".to_string(),
            ),
            (Ok(r), Undefined) => (
                format!("{} ({})", fmt_belief(&r.belief), r.provenance),
                matches!(r.belief, Belief::Undefined),
                "undefined".to_string(),
            ),
            (Err(e), _) => (format!("error: {e}"), false, "-".to_string()),
        };
        rows.push(Row {
            id: case.id,
            source: case.source,
            description: case.description,
            expected: expected_str,
            measured,
            ok,
        });
    }
    rows
}

/// The §3 / §7.3 comparator experiments (E32–E39): classical nonmonotonic
/// systems and the random-propensities priors, lined up against random
/// worlds on the shared benchmarks.
fn run_comparators(engine: &RandomWorlds) -> Vec<Row> {
    use rw_defaults::{
        circ_entails, extensions, lex_entails, skeptical, CircPolicy, DefaultTheory,
    };
    use rw_epsilon::prop::VarTable;
    use rw_epsilon::{z_entails, DefaultRule};
    use rw_propensity::{Prior, PropensityEngine};

    let mut rows = Vec::new();
    let mut push = |id, source, description, expected: String, measured: String, ok| {
        rows.push(Row {
            id,
            source,
            description,
            expected,
            measured,
            ok,
        });
    };

    // E32: Nixon — Reiter splits, random worlds grades.
    {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "quaker & republican").unwrap();
        t.normal_str(&mut vt, "quaker", "pacifist").unwrap();
        t.normal_str(&mut vt, "republican", "!pacifist").unwrap();
        let n_ext = extensions(&t, vt.len()).len();
        let kb = KnowledgeBase::parse(
            "Quaker(x) ->_1 Pacifist(x); Republican(x) ->_1 !Pacifist(x); \
             Quaker(Nixon); Republican(Nixon); exists! x (Quaker(x) & Republican(x))",
        )
        .unwrap();
        let rw = engine.answer(&kb, "Pacifist(Nixon)").unwrap();
        let ok = n_ext == 2 && rw.belief.as_point().is_some_and(|v| (v - 0.5).abs() < 1e-6);
        push(
            "E32",
            "§3.1/5.3",
            "Nixon: Reiter splits, RW grades",
            "2 exts / 0.5".to_string(),
            format!("{n_ext} exts / {}", fmt_belief(&rw.belief)),
            ok,
        );
    }

    // E33: broken arm — Reiter says both usable; RW: exactly one.
    {
        let mut vt = VarTable::new();
        let mut t = DefaultTheory::new();
        t.fact_str(&mut vt, "lb or rb").unwrap();
        t.normal_str(&mut vt, "true", "lu").unwrap();
        t.normal_str(&mut vt, "true", "ru").unwrap();
        t.normal_str(&mut vt, "lb", "!lu").unwrap();
        t.normal_str(&mut vt, "rb", "!ru").unwrap();
        let both = vt.parse("lu & ru").unwrap();
        let reiter_both = skeptical(&t, vt.len(), &both);
        let kb = KnowledgeBase::parse(
            "||LeftUsable(x)||_x ~=_1 1; ||LeftUsable(x) | LeftBroken(x)||_x ~=_2 0; \
             ||RightUsable(x)||_x ~=_3 1; ||RightUsable(x) | RightBroken(x)||_x ~=_4 0; \
             LeftBroken(Eric) or RightBroken(Eric)",
        )
        .unwrap();
        let one = engine
            .follows_by_default(
                &kb,
                "(LeftUsable(Eric) or RightUsable(Eric)) & \
                 !(LeftUsable(Eric) & RightUsable(Eric))",
            )
            .unwrap();
        push(
            "E33",
            "Ex 5.4",
            "broken arm: Reiter both, RW one",
            "both / one".to_string(),
            format!("Reiter both-usable={reiter_both} / RW exactly-one={one}"),
            reiter_both && one,
        );
    }

    // E34: specificity — naive Reiter loses it, semi-normal recovers.
    {
        let mut vt = VarTable::new();
        let no_fly = vt.parse("!fly").unwrap();
        let mut naive = DefaultTheory::new();
        naive.fact_str(&mut vt, "penguin").unwrap();
        naive.fact_str(&mut vt, "penguin => bird").unwrap();
        naive.normal_str(&mut vt, "bird", "fly").unwrap();
        naive.normal_str(&mut vt, "penguin", "!fly").unwrap();
        let naive_ok = !skeptical(&naive, vt.len(), &no_fly);
        let mut guarded = DefaultTheory::new();
        guarded.fact_str(&mut vt, "penguin").unwrap();
        guarded.fact_str(&mut vt, "penguin => bird").unwrap();
        guarded.default_rule(rw_defaults::Default::semi_normal(
            vt.parse("bird").unwrap(),
            vt.parse("fly").unwrap(),
            vt.parse("!penguin").unwrap(),
        ));
        guarded.normal_str(&mut vt, "penguin", "!fly").unwrap();
        let guarded_ok = skeptical(&guarded, vt.len(), &no_fly);
        push(
            "E34",
            "§3.3",
            "specificity: naive loses, guard fixes",
            "lost / fixed".to_string(),
            format!("naive-lost={naive_ok} / guarded-fixed={guarded_ok}"),
            naive_ok && guarded_ok,
        );
    }

    // E35: lottery under circumscription vs graded belief.
    {
        let mut vt = VarTable::new();
        let t = vt
            .parse(
                "(w1 or w2 or w3) & (w1 => !w2 & !w3) & (w2 => !w1 & !w3) & \
                 (w3 => !w1 & !w2)",
            )
            .unwrap();
        let policy = CircPolicy::minimize(vec![0, 1, 2]);
        let circ_loser = circ_entails(&t, &policy, vt.len(), &vt.parse("!w1").unwrap());
        let circ_someone =
            circ_entails(&t, &policy, vt.len(), &vt.parse("w1 or w2 or w3").unwrap());
        let kb = KnowledgeBase::parse(
            "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); \
             forall x (Ticket(x)); Ticket(C)",
        )
        .unwrap();
        let rw = engine.answer(&kb, "Winner(C)").unwrap();
        push(
            "E35",
            "§3.5/5.5",
            "lottery: circ silent, RW graded",
            "no ¬W(c); Pr=0".to_string(),
            format!(
                "circ ¬W(c)={circ_loser}, ∃={circ_someone} / RW {}",
                fmt_belief(&rw.belief)
            ),
            !circ_loser && circ_someone && rw.belief.is_zero(),
        );
    }

    // E36: drowning — Z blocks, lex and RW inherit.
    {
        let mut vt = VarTable::new();
        let rules = vec![
            DefaultRule::new(vt.parse("bird").unwrap(), vt.parse("fly").unwrap()),
            DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("!fly").unwrap()),
            DefaultRule::new(vt.parse("penguin").unwrap(), vt.parse("bird").unwrap()),
            DefaultRule::new(vt.parse("yellow").unwrap(), vt.parse("see").unwrap()),
        ];
        let yp = vt.parse("yellow & penguin").unwrap();
        let see = vt.parse("see").unwrap();
        let z = z_entails(&rules, &yp, &see);
        let lex = lex_entails(&rules, &yp, &see);
        let kb = KnowledgeBase::parse(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Yellow(x) ->_3 EasyToSee(x); \
             Penguin(Tweety); Yellow(Tweety)",
        )
        .unwrap();
        let rw = engine.answer(&kb, "EasyToSee(Tweety)").unwrap();
        push(
            "E36",
            "§3.3/5.21",
            "drowning: Z no, lex yes, RW 1",
            "no/yes/1".to_string(),
            format!("Z={z:?} / lex={lex:?} / RW {}", fmt_belief(&rw.belief)),
            z == Some(false) && lex == Some(true) && rw.belief.is_one(),
        );
    }

    // E37: Laplace succession under propensity priors; RW stays at 1/2.
    {
        let s = rw_propensity::succession(2, 3);
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let pp = PropensityEngine::new(Prior::PerPredicate)
            .limit_estimate(&s.kb, &s.query, &[48, 96, 192], &tol)
            .unwrap()
            .unwrap();
        let rw = rw_unary::degree_of_belief_at(&s.kb, &s.query, 96, &tol)
            .unwrap()
            .unwrap();
        push(
            "E37",
            "§7.3",
            "succession: propensities 0.6, RW 0.5",
            "0.6 / 0.5".to_string(),
            format!("{pp:.4} / {rw:.4}"),
            (pp - 0.6).abs() < 0.02 && (rw - 0.5).abs() < 0.02,
        );
    }

    // E38: sampling — propensities learn across the S boundary, RW and
    // Carnap's m* do not.
    {
        let s = rw_propensity::sampling(80);
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let rw = rw_unary::degree_of_belief_at(&s.kb, &s.query, 40, &tol)
            .unwrap()
            .unwrap();
        let pp = PropensityEngine::new(Prior::PerPredicate)
            .degree_of_belief_at(&s.kb, &s.query, 40, &tol)
            .unwrap()
            .unwrap();
        let star = PropensityEngine::new(Prior::CarnapStar)
            .degree_of_belief_at(&s.kb, &s.query, 40, &tol)
            .unwrap()
            .unwrap();
        push(
            "E38",
            "§7.3",
            "sampling: BGHK92 learns, RW/m* flat",
            "≈0.8 / 0.5 / 0.5".to_string(),
            format!("{pp:.3} / {rw:.3} / {star:.3}"),
            pp > 0.68 && (rw - 0.5).abs() < 0.03 && (star - 0.5).abs() < 0.03,
        );
    }

    // E40: Yale shooting (§7.1) — naive temporal representation anomalous,
    // causal conditioning intended.
    {
        let facts = "forall x (L1(x) => !A2(x)); L0(S); A0(S)";
        let naive = KnowledgeBase::parse(&format!(
            "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_1 1; \
             ||A2(x) | A1(x)||_x ~=_1 1; {facts}"
        ))
        .unwrap();
        let anomaly = engine.answer(&naive, "A2(S)").unwrap();
        let causal = KnowledgeBase::parse(&format!(
            "||L1(x) | L0(x)||_x ~=_1 1; ||A1(x) | A0(x)||_x ~=_2 1; \
             ||A2(x) | A1(x) & !L1(x)||_x ~=_3 1; {facts}"
        ))
        .unwrap();
        let fixed = engine.answer(&causal, "A2(S)").unwrap();
        let anomalous = anomaly
            .belief
            .as_point()
            .is_some_and(|v| v > 0.05 && v < 0.95);
        push(
            "E40",
            "§7.1",
            "Yale shooting: naive vs causal",
            "standoff / 0".to_string(),
            format!(
                "naive {} / causal {}",
                fmt_belief(&anomaly.belief),
                fmt_belief(&fixed.belief)
            ),
            anomalous && fixed.belief.is_zero(),
        );
    }

    // E41: the §2.2 disjunctive-class restriction — Kyburg/Pollock lose
    // Tay-Sachs, random worlds answers.
    {
        use rw_refclass::{reference_class_belief_policy, RefClassAnswer, RefClassPolicy};
        let kb =
            KnowledgeBase::parse("||TS(x) | EEJ(x) or FC(x)||_x ~=_1 0.02; EEJ(Eric)").unwrap();
        let restricted = reference_class_belief_policy(
            &kb,
            "TS(Eric)",
            &RefClassPolicy {
                allow_disjunctive: false,
                ..RefClassPolicy::default()
            },
        )
        .unwrap();
        let rw = engine.answer(&kb, "TS(Eric)").unwrap();
        let gave_up = matches!(restricted, RefClassAnswer::NoOpinion { .. });
        push(
            "E41",
            "§2.2/5.22",
            "disjunctive class: Kyburg mute, RW 0.02",
            "no opinion / 0.02".to_string(),
            format!(
                "restricted refclass gave up={gave_up} / RW {}",
                fmt_belief(&rw.belief)
            ),
            gave_up
                && rw
                    .belief
                    .as_point()
                    .is_some_and(|v| (v - 0.02).abs() < 1e-6),
        );
    }

    // E39: the giraffe — propensities learn "too often".
    {
        let s = rw_propensity::giraffe();
        let tol = Tolerances::uniform(Rat::new(1, 10));
        let rw = rw_unary::degree_of_belief_at(&s.kb, &s.query, 48, &tol)
            .unwrap()
            .unwrap();
        let engine_pp = PropensityEngine::new(Prior::PerPredicate);
        let trend = engine_pp
            .belief_trend(&s.kb, &s.query, &[16, 48, 96], &tol)
            .unwrap();
        let vals: Vec<f64> = trend.into_iter().map(|(_, v)| v.unwrap()).collect();
        let drifting = vals.windows(2).all(|w| w[0] < w[1]) && vals[2] > rw + 0.02;
        push(
            "E39",
            "§7.3",
            "giraffe: propensities over-learn",
            "2/3 vs drift↑".to_string(),
            format!(
                "RW {rw:.3}; BGHK92 {:.3}→{:.3}→{:.3}",
                vals[0], vals[1], vals[2]
            ),
            (rw - 2.0 / 3.0).abs() < 0.03 && drifting,
        );
    }

    rows
}

fn print_figures(engine: &RandomWorlds) {
    let _ = engine;
    println!("\n── F1: Pr_N(Hep(Eric)) along the (τ, N) diagonal → 0.8 ──");
    let mut kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
    let q = kb.parse_query("Hep(Eric)").unwrap();
    for (den, n) in [(10i128, 20usize), (20, 40), (40, 80), (80, 160)] {
        let tol = Tolerances::uniform(Rat::new(1, den));
        let v = rw_unary::degree_of_belief_at(&kb, &q, n, &tol)
            .unwrap()
            .unwrap();
        println!("  τ = 1/{den:<3} N = {n:<4} Pr = {v:.5}");
    }

    println!("\n── F2: maxent Pr(Fly | Penguin) vs τ → 0 ──");
    let kb = KnowledgeBase::parse(
        "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); forall x (Penguin(x) => Bird(x))",
    )
    .unwrap();
    for den in [8i128, 16, 32, 64, 128] {
        let tol = Tolerances::uniform(Rat::new(1, den));
        let p = rw_maxent::maxent_point(&kb, &tol).unwrap();
        // Atoms: Bird=b0, Fly=b1, Penguin=b2; Fly|Penguin mass ratio.
        let fly_peng: f64 = (0..8).filter(|a| a & 0b110 == 0b110).map(|a| p[a]).sum();
        let peng: f64 = (0..8).filter(|a| a & 0b100 == 0b100).map(|a| p[a]).sum();
        println!("  τ = 1/{den:<4} Pr(Fly|Penguin) = {:.5}", fly_peng / peng);
    }

    println!("\n── F3: Dempster surface δ(α, β) (Thm 5.26) ──");
    print!("  α\\β ");
    for b in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        print!("  {b:.1}   ");
    }
    println!();
    for a in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        print!("  {a:.1} ");
        for b in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
            print!(" {:.4}", rw_core::dempster_rule(&[a, b]));
        }
        println!();
    }

    println!("\n── F4: exact-vs-maxent atom gap vs N (concentration, §6) ──");
    let kb =
        KnowledgeBase::parse("||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1").unwrap();
    let tol = Tolerances::uniform(Rat::new(1, 20));
    let point = rw_maxent::maxent_point(&kb, &tol).unwrap();
    for n in [40usize, 80, 160, 320] {
        if let Ok(Some(props)) = rw_unary::expected_atom_proportions(&kb, n, &tol) {
            let gap: f64 = props
                .iter()
                .zip(&point)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            println!("  N = {n:<4} max |E[p_a] - p*_a| = {gap:.5}");
        }
    }

    println!("\n── F5: lottery Pr(Winner(C)) = 1/N exactly ──");
    let mut kb = KnowledgeBase::parse(
        "exists! x (Winner(x)); forall x (Winner(x) => Ticket(x)); forall x (Ticket(x)); Ticket(C)",
    )
    .unwrap();
    let q = kb.parse_query("Winner(C)").unwrap();
    let tol = Tolerances::uniform(Rat::new(1, 10));
    for n in [10usize, 100, 1000] {
        let v = rw_unary::degree_of_belief_at(&kb, &q, n, &tol)
            .unwrap()
            .unwrap();
        println!("  N = {n:<5} Pr = {v:.6}  (1/N = {:.6})", 1.0 / n as f64);
    }

    println!("\n── F6: learning curves — uniform vs propensity priors (§7.3) ──");
    use rw_propensity::{Prior, PropensityEngine};
    let s = rw_propensity::sampling(75);
    let tol = Tolerances::uniform(Rat::new(1, 10));
    let ns = [16usize, 32, 48];
    print!("  random worlds   ");
    for n in ns {
        let v = rw_unary::degree_of_belief_at(&s.kb, &s.query, n, &tol)
            .unwrap()
            .unwrap();
        print!("  N={n}: {v:.4}");
    }
    println!();
    for (label, prior) in [
        ("BGHK92 propensity", Prior::PerPredicate),
        ("Carnap m*       ", Prior::CarnapStar),
    ] {
        let eng = PropensityEngine::new(prior);
        print!("  {label}");
        for n in ns {
            let v = eng
                .degree_of_belief_at(&s.kb, &s.query, n, &tol)
                .unwrap()
                .unwrap();
            print!("  N={n}: {v:.4}");
        }
        println!();
    }
}

fn main() {
    let engine = RandomWorlds::default();
    println!("random-worlds experiment harness — paper-vs-measured\n");
    println!(
        "{:<8} {:<10} {:<38} {:<14} measured (provenance)",
        "id", "paper", "experiment", "expected"
    );
    println!("{}", "─".repeat(120));
    let mut rows = run_examples(&engine);
    rows.extend(run_comparators(&engine));
    let mut failures = 0;
    for r in &rows {
        println!(
            "{:<8} {:<10} {:<38} {:<14} {} {}",
            r.id,
            r.source,
            r.description,
            r.expected,
            if r.ok { "✓" } else { "✗" },
            r.measured
        );
        if !r.ok {
            failures += 1;
        }
    }
    println!("{}", "─".repeat(120));
    println!("{} experiments, {} failures", rows.len(), failures);

    print_figures(&engine);

    if failures > 0 {
        std::process::exit(1);
    }
}
