//! A std-only micro-benchmark harness, plus the experiments binary
//! (`src/bin/experiments.rs`) and the benchmark suites under `benches/`.
//!
//! The workspace builds offline with no external dependencies, so the
//! benches cannot link Criterion. This module provides an API-compatible
//! subset — [`Criterion`], benchmark groups, [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — that measures with
//! plain [`std::time::Instant`] and reports the median time per iteration.
//! Bench sources written against Criterion's surface compile unchanged
//! apart from the `use` line.
//!
//! Methodology: each benchmark is warmed up, then timed over
//! `sample_size` batches whose iteration count is auto-scaled so a batch
//! takes roughly [`Criterion::BATCH_TARGET`]; the reported figure is the
//! median batch divided by the batch's iteration count. That is cruder
//! than Criterion's bootstrap, but stable enough to read scaling shapes
//! (the point of every suite in `benches/`).

use std::time::{Duration, Instant};

/// Top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Target wall-clock time for one measured batch.
    pub const BATCH_TARGET: Duration = Duration::from_millis(10);

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 30,
        }
    }

    /// A one-off benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group("").bench_function(name, f);
    }
}

/// A named set of benchmarks sharing a sample-size configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of measured batches per benchmark (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs `f` as a benchmark labelled `name` within this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let id: BenchmarkId = name.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.0);
    }

    /// Runs `f(bencher, input)` as a benchmark labelled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.0);
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `"<name>/<param>"`.
    pub fn new(name: &str, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Just the parameter, for single-axis groups.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, auto-scaling the per-batch iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and batch sizing: run until we know roughly how long one
        // iteration takes, then size batches near BATCH_TARGET.
        let mut iters = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        let batch =
            ((Criterion::BATCH_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, group: &str, name: &str) {
        let label = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let (lo, hi) = (s[0], s[s.len() - 1]);
        println!(
            "{label:<48} {:>12}  (min {}, max {})",
            fmt_time(median),
            fmt_time(lo),
            fmt_time(hi)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions under one name, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Entry point: runs every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($name:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes CLI filters; this harness ignores them.
            let mut c = $crate::Criterion::default();
            $( $name(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("named", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("sys", 8).0, "sys/8");
        assert_eq!(BenchmarkId::from_parameter(3).0, "3");
    }
}
