//! Criterion benchmarks and the experiments harness (see benches/ and src/bin/).
