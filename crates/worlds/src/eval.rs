//! The `L≈` model checker: `(W, V, τ⃗) ⊨ φ` and exact rational evaluation of
//! proportion expressions (paper §4.1–4.2).
//!
//! Two semantic subtleties are implemented exactly as the paper prescribes:
//!
//! * **Conditional proportions are primitive.** `||φ | ψ||_x̄` evaluates to
//!   `|φ∧ψ| / |ψ|` when `|ψ| > 0` and is *undefined* otherwise; any
//!   comparison mentioning an undefined proportion is **true** (the
//!   convention that makes `∥ψ|θ∥ ≈ α` vacuous on measure-zero conditions).
//!   Example 4.2 of the paper shows why multiplying out across `≈` instead
//!   would be unsound.
//! * **Approximate comparisons are decided exactly.** Proportions inside a
//!   world of size `N` are rationals with denominator `N^k`; tolerances are
//!   rationals; `ζ ≈_i ζ'` means `|ζ - ζ'| ≤ τ_i` with exact arithmetic, so
//!   boundary cases (which matter when τ-sweeping toward the limit) are never
//!   decided by floating-point rounding.

use crate::world::World;
use rw_logic::ast::{CmpOp, Formula, PropExpr, Term};
use rw_logic::{Tolerances, VarId, Vocabulary};
use rw_util::Rat;

/// The value of a proportion expression: a rational, or undefined (a
/// conditional proportion whose condition has measure zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropValue {
    Def(Rat),
    Undef,
}

impl PropValue {
    pub fn map2(self, other: PropValue, f: impl FnOnce(Rat, Rat) -> Rat) -> PropValue {
        match (self, other) {
            (PropValue::Def(a), PropValue::Def(b)) => PropValue::Def(f(a, b)),
            _ => PropValue::Undef,
        }
    }

    pub fn as_rat(self) -> Option<Rat> {
        match self {
            PropValue::Def(r) => Some(r),
            PropValue::Undef => None,
        }
    }
}

/// A reusable evaluation context over one world.
pub struct Evaluator<'a> {
    world: &'a World,
    vocab: &'a Vocabulary,
    tol: &'a Tolerances,
    valuation: Vec<Option<usize>>,
}

impl<'a> Evaluator<'a> {
    pub fn new(world: &'a World, vocab: &'a Vocabulary, tol: &'a Tolerances) -> Evaluator<'a> {
        Evaluator::with_valuation(world, vocab, tol, Vec::new())
    }

    /// As [`Evaluator::new`], reusing a caller-owned valuation buffer so
    /// hot loops (world enumeration, per-world cross-checks) evaluate
    /// without a fresh allocation per world. Recover the buffer with
    /// [`Evaluator::into_valuation`].
    pub fn with_valuation(
        world: &'a World,
        vocab: &'a Vocabulary,
        tol: &'a Tolerances,
        mut valuation: Vec<Option<usize>>,
    ) -> Evaluator<'a> {
        valuation.clear();
        valuation.resize(vocab.var_count(), None);
        Evaluator {
            world,
            vocab,
            tol,
            valuation,
        }
    }

    /// Releases the valuation buffer for reuse by the next
    /// [`Evaluator::with_valuation`] call.
    pub fn into_valuation(self) -> Vec<Option<usize>> {
        self.valuation
    }

    /// Binds a variable, returning the previous binding for restoration.
    fn bind(&mut self, v: VarId, elem: usize) -> Option<usize> {
        self.valuation[v.index()].replace(elem)
    }

    fn restore(&mut self, v: VarId, prev: Option<usize>) {
        self.valuation[v.index()] = prev;
    }

    fn eval_term(&self, t: &Term) -> usize {
        match t {
            Term::Var(v) => self.valuation[v.index()]
                .unwrap_or_else(|| panic!("unbound variable `{}`", self.vocab.var_name(*v))),
            Term::Const(c) => self.world.const_denotation(c.index()),
            Term::App(f, args) => {
                // Functions of arity ≤ 4 cover everything in practice; use a
                // small stack buffer to avoid allocating per application.
                let mut buf = [0usize; 8];
                assert!(args.len() <= buf.len(), "function arity too large");
                for (i, a) in args.iter().enumerate() {
                    buf[i] = self.eval_term(a);
                }
                self.world.apply_func(f.index(), &buf[..args.len()])
            }
        }
    }

    pub fn eval(&mut self, f: &Formula) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Pred(p, args) => {
                let mut buf = [0usize; 8];
                assert!(args.len() <= buf.len(), "predicate arity too large");
                for (i, a) in args.iter().enumerate() {
                    buf[i] = self.eval_term(a);
                }
                self.world.rel(*p).contains(&buf[..args.len()])
            }
            Formula::TermEq(a, b) => self.eval_term(a) == self.eval_term(b),
            Formula::Not(g) => !self.eval(g),
            Formula::And(a, b) => self.eval(a) && self.eval(b),
            Formula::Or(a, b) => self.eval(a) || self.eval(b),
            Formula::Implies(a, b) => !self.eval(a) || self.eval(b),
            Formula::Iff(a, b) => self.eval(a) == self.eval(b),
            Formula::Forall(v, g) => {
                let n = self.world.domain_size();
                let mut ok = true;
                let prev = self.valuation[v.index()];
                for e in 0..n {
                    self.valuation[v.index()] = Some(e);
                    if !self.eval(g) {
                        ok = false;
                        break;
                    }
                }
                self.restore(*v, prev);
                ok
            }
            Formula::Exists(v, g) => {
                let n = self.world.domain_size();
                let mut ok = false;
                let prev = self.valuation[v.index()];
                for e in 0..n {
                    self.valuation[v.index()] = Some(e);
                    if self.eval(g) {
                        ok = true;
                        break;
                    }
                }
                self.restore(*v, prev);
                ok
            }
            Formula::Cmp(lhs, op, rhs) => {
                let l = self.eval_prop(lhs);
                let r = self.eval_prop(rhs);
                match (l, r) {
                    (PropValue::Def(a), PropValue::Def(b)) => match op {
                        CmpOp::ApproxEq(t) => a.approx_eq(b, self.tol.get(*t)),
                        CmpOp::ApproxLeq(t) => a.approx_leq(b, self.tol.get(*t)),
                        CmpOp::Eq => a == b,
                        CmpOp::Leq => a <= b,
                    },
                    // The measure-zero convention: comparisons touching an
                    // undefined conditional proportion hold vacuously.
                    _ => true,
                }
            }
        }
    }

    pub fn eval_prop(&mut self, e: &PropExpr) -> PropValue {
        match e {
            PropExpr::Rat(r) => PropValue::Def(*r),
            PropExpr::Prop { body, cond, vars } => {
                self.eval_proportion(body, cond.as_deref(), vars)
            }
            PropExpr::Add(a, b) => {
                let x = self.eval_prop(a);
                let y = self.eval_prop(b);
                x.map2(y, |p, q| p + q)
            }
            PropExpr::Sub(a, b) => {
                let x = self.eval_prop(a);
                let y = self.eval_prop(b);
                x.map2(y, |p, q| p - q)
            }
            PropExpr::Mul(a, b) => {
                let x = self.eval_prop(a);
                let y = self.eval_prop(b);
                x.map2(y, |p, q| p * q)
            }
        }
    }

    fn eval_proportion(
        &mut self,
        body: &Formula,
        cond: Option<&Formula>,
        vars: &[VarId],
    ) -> PropValue {
        let n = self.world.domain_size();
        let k = vars.len();
        let total = (n as i128)
            .checked_pow(k as u32)
            .expect("proportion tuple space too large");
        let mut body_count: i128 = 0;
        let mut cond_count: i128 = 0;

        // Save outer bindings of the subscript variables (they are rebound).
        let saved: Vec<Option<usize>> = vars.iter().map(|v| self.valuation[v.index()]).collect();

        // Odometer over n^k assignments.
        let mut assignment = vec![0usize; k];
        loop {
            for (i, v) in vars.iter().enumerate() {
                self.valuation[v.index()] = Some(assignment[i]);
            }
            let in_cond = match cond {
                Some(c) => self.eval(c),
                None => true,
            };
            if in_cond {
                cond_count += 1;
                if self.eval(body) {
                    body_count += 1;
                }
            }
            // Advance odometer.
            let mut i = k;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                assignment[i] += 1;
                if assignment[i] < n {
                    break;
                }
                assignment[i] = 0;
                if i == 0 {
                    i = usize::MAX; // signal done
                    break;
                }
            }
            if k == 0 || i == usize::MAX {
                break;
            }
        }

        for (v, s) in vars.iter().zip(saved) {
            self.valuation[v.index()] = s;
        }

        match cond {
            None => PropValue::Def(Rat::new(body_count, total)),
            Some(_) => {
                if cond_count == 0 {
                    PropValue::Undef
                } else {
                    PropValue::Def(Rat::new(body_count, cond_count))
                }
            }
        }
    }
}

/// Evaluates a formula under an explicit valuation (variable → element).
pub fn evaluate(
    world: &World,
    vocab: &Vocabulary,
    tol: &Tolerances,
    f: &Formula,
    valuation: &[(VarId, usize)],
) -> bool {
    let mut ev = Evaluator::new(world, vocab, tol);
    for (v, e) in valuation {
        ev.bind(*v, *e);
    }
    ev.eval(f)
}

/// Evaluates a closed formula.
pub fn evaluate_closed(world: &World, vocab: &Vocabulary, tol: &Tolerances, f: &Formula) -> bool {
    Evaluator::new(world, vocab, tol).eval(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_logic::parse_formula;

    fn tol() -> Tolerances {
        Tolerances::uniform(Rat::new(1, 10))
    }

    /// Builds a world with Bird = {0,1,2}, Fly = {0,1}, Penguin = {2} over N=4.
    fn bird_world() -> (Vocabulary, World) {
        let mut v = Vocabulary::new();
        let bird = v.pred("Bird", 1).unwrap();
        let fly = v.pred("Fly", 1).unwrap();
        let peng = v.pred("Penguin", 1).unwrap();
        v.constant("Tweety").unwrap();
        let mut w = World::empty(&v, 4);
        for e in [0, 1, 2] {
            w.rel_mut(bird).set(&[e], true);
        }
        for e in [0, 1] {
            w.rel_mut(fly).set(&[e], true);
        }
        w.rel_mut(peng).set(&[2], true);
        w.set_const(0, 2); // Tweety is the penguin
        (v, w)
    }

    #[test]
    fn atoms_and_connectives() {
        let (mut v, w) = bird_world();
        let t = tol();
        for (src, expected) in [
            ("Bird(Tweety)", true),
            ("Fly(Tweety)", false),
            ("Penguin(Tweety) & !Fly(Tweety)", true),
            ("Fly(Tweety) or Bird(Tweety)", true),
            ("Fly(Tweety) => Penguin(Tweety)", true),
            ("Bird(Tweety) <=> Penguin(Tweety)", true),
            ("Tweety = Tweety", true),
        ] {
            let f = parse_formula(&mut v, src).unwrap();
            assert_eq!(evaluate_closed(&w, &v, &t, &f), expected, "{src}");
        }
    }

    #[test]
    fn quantifiers() {
        let (mut v, w) = bird_world();
        let t = tol();
        for (src, expected) in [
            ("forall x (Penguin(x) => Bird(x))", true),
            ("forall x (Bird(x) => Fly(x))", false),
            ("exists x (Bird(x) & !Fly(x))", true),
            ("exists x (Penguin(x) & Fly(x))", false),
            ("exists! x (Penguin(x))", true),
            ("exists! x (Bird(x))", false),
        ] {
            let f = parse_formula(&mut v, src).unwrap();
            assert_eq!(evaluate_closed(&w, &v, &t, &f), expected, "{src}");
        }
    }

    #[test]
    fn unconditional_proportions() {
        let (mut v, w) = bird_world();
        let t = tol();
        // |Bird| = 3 of 4.
        let f = parse_formula(&mut v, "||Bird(x)||_x = 3/4").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &f));
        // Approximate: within 1/10 of 0.7? |3/4 - 7/10| = 1/20 <= 1/10.
        let g = parse_formula(&mut v, "||Bird(x)||_x ~=_1 0.7").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &g));
        let h = parse_formula(&mut v, "||Bird(x)||_x ~=_1 0.6").unwrap();
        assert!(!evaluate_closed(&w, &v, &t, &h));
    }

    #[test]
    fn conditional_proportions() {
        let (mut v, w) = bird_world();
        let t = tol();
        // 2 of 3 birds fly.
        let f = parse_formula(&mut v, "||Fly(x) | Bird(x)||_x = 2/3").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &f));
        // 0 of 1 penguins fly.
        let g = parse_formula(&mut v, "||Fly(x) | Penguin(x)||_x ~=_1 0").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &g));
    }

    #[test]
    fn measure_zero_condition_is_vacuous() {
        // A world must interpret the whole vocabulary, so intern Dragon
        // before building it (empty relation = no dragons).
        let mut v = Vocabulary::new();
        let fly = v.pred("Fly", 1).unwrap();
        v.pred("Dragon", 1).unwrap();
        let mut w = World::empty(&v, 4);
        w.rel_mut(fly).set(&[0], true);
        let t = tol();
        // No dragons: any statement about the proportion of fliers among
        // dragons holds vacuously, with every comparison operator.
        for src in [
            "||Fly(x) | Dragon(x)||_x ~=_1 1",
            "||Fly(x) | Dragon(x)||_x ~=_1 0",
            "||Fly(x) | Dragon(x)||_x = 0.37",
            "||Fly(x) | Dragon(x)||_x <= 0",
        ] {
            let f = parse_formula(&mut v, src).unwrap();
            assert!(evaluate_closed(&w, &v, &t, &f), "{src}");
        }
    }

    #[test]
    fn example_4_2_multiplying_out_is_wrong() {
        // Paper Example 4.2: ||Penguin||_x ~= 0 and ||Fly|Penguin||_x ~= 0.
        // In a world with 1 penguin (of 20) that flies, the multiplied-out
        // reading ||Fly & Penguin||_x ~= 0 holds but the primitive
        // conditional reading correctly fails.
        let mut v = Vocabulary::new();
        let peng = v.pred("Penguin", 1).unwrap();
        let fly = v.pred("Fly", 1).unwrap();
        let mut w = World::empty(&v, 20);
        w.rel_mut(peng).set(&[0], true);
        w.rel_mut(fly).set(&[0], true);
        let t = tol();

        let primitive = parse_formula(&mut v, "||Fly(x) | Penguin(x)||_x ~=_2 0").unwrap();
        assert!(!evaluate_closed(&w, &v, &t, &primitive));

        let multiplied = parse_formula(
            &mut v,
            "||Fly(x) & Penguin(x)||_x ~=_2 0 * ||Penguin(x)||_x",
        )
        .unwrap();
        assert!(evaluate_closed(&w, &v, &t, &multiplied));
    }

    #[test]
    fn multi_variable_proportions() {
        let mut v = Vocabulary::new();
        let likes = v.pred("Likes", 2).unwrap();
        let mut w = World::empty(&v, 3);
        w.rel_mut(likes).set(&[0, 1], true);
        w.rel_mut(likes).set(&[1, 2], true);
        w.rel_mut(likes).set(&[2, 2], true);
        let t = tol();
        let f = parse_formula(&mut v, "||Likes(x, y)||_{x,y} = 3/9").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &f));
        // ||x = y||_{x,y} = 1/N.
        let g = parse_formula(&mut v, "||x = y||_{x,y} = 1/3").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &g));
    }

    #[test]
    fn proportions_with_free_outer_variable() {
        // ||Likes(x, y)||_x with y free: fraction of x liking a fixed y.
        let mut v = Vocabulary::new();
        let likes = v.pred("Likes", 2).unwrap();
        let mut w = World::empty(&v, 3);
        w.rel_mut(likes).set(&[0, 1], true);
        w.rel_mut(likes).set(&[2, 1], true);
        let t = tol();
        let f = parse_formula(&mut v, "forall y (||Likes(x, y)||_x <= 2/3)").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &f));
        let g = parse_formula(&mut v, "exists y (||Likes(x, y)||_x = 2/3)").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &g));
    }

    #[test]
    fn nested_proportions() {
        // The "normally rises late" pattern: individuals x such that
        // ||Rises(x,y) | Day(y)||_y ~= 1.
        let mut v = Vocabulary::new();
        let day = v.pred("Day", 1).unwrap();
        let rises = v.pred("Rises", 2).unwrap();
        // Domain: 0,1 are days; 2,3 are people. Person 2 rises late both
        // days; person 3 never does.
        let mut w = World::empty(&v, 4);
        w.rel_mut(day).set(&[0], true);
        w.rel_mut(day).set(&[1], true);
        w.rel_mut(rises).set(&[2, 0], true);
        w.rel_mut(rises).set(&[2, 1], true);
        let t = tol();
        let f = parse_formula(&mut v, "|| ||Rises(x, y) | Day(y)||_y ~=_1 1 ||_x = 1/4").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &f));
    }

    #[test]
    fn functions_in_terms() {
        let mut v = Vocabulary::new();
        let p = v.pred("P", 1).unwrap();
        v.func("Next", 1).unwrap();
        let mut w = World::empty(&v, 3);
        // Next = cyclic successor; P = {1}.
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            w.func_table_mut(0)[a] = b;
        }
        w.rel_mut(p).set(&[1], true);
        let t = tol();
        let f = parse_formula(&mut v, "exists x (P(Next(x)) & !P(x))").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &f));
        let g = parse_formula(&mut v, "forall x (P(Next(Next(Next(x)))) <=> P(x))").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &g));
    }

    #[test]
    fn arithmetic_on_proportions() {
        let (mut v, w) = bird_world();
        let t = tol();
        let f = parse_formula(&mut v, "||Bird(x)||_x + ||Penguin(x)||_x = 1").unwrap();
        assert!(evaluate_closed(&w, &v, &t, &f)); // 3/4 + 1/4
        let g = parse_formula(
            &mut v,
            "||Fly(x) & Bird(x)||_x = ||Fly(x) | Bird(x)||_x * ||Bird(x)||_x",
        )
        .unwrap();
        assert!(evaluate_closed(&w, &v, &t, &g)); // 1/2 = 2/3 * 3/4
    }
}
