//! Uniform Monte-Carlo estimation of `Pr_N^τ` beyond enumerable sizes.
//!
//! Sampling a world uniformly from `W_N(Φ)` is trivial by independence of
//! the slots: each predicate bit is a fair coin, each function entry and
//! each constant is uniform over the domain. Conditioning on `KB` is done by
//! rejection, which is exact but can be slow when `KB` is improbable — the
//! estimator reports its acceptance count so callers can judge reliability.
//! (For unary vocabularies the `rw-unary` crate computes the same quantity
//! exactly; this sampler is the fallback for non-unary KBs.)

use crate::eval::Evaluator;
use crate::world::World;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances, Vocabulary};
use rw_util::Rng;

/// Result of a rejection-sampling estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Estimated `Pr_N^τ(query | KB)` (`None` if no sample satisfied `KB`).
    pub value: Option<f64>,
    /// Samples drawn.
    pub drawn: usize,
    /// Samples satisfying `KB`.
    pub accepted: usize,
    /// Accepted samples also satisfying the query.
    pub hits: usize,
}

impl Estimate {
    /// Half-width of a 95% Wilson score confidence interval.
    ///
    /// The Wilson interval replaces the earlier normal approximation,
    /// which collapsed to zero width at `p ∈ {0, 1}` (claiming certainty
    /// off a handful of lucky draws) and misbehaved at small acceptance
    /// counts. See [`crate::mc::stats::wilson_half_width`].
    pub fn ci_half_width(&self) -> Option<f64> {
        crate::mc::stats::wilson_half_width(self.value?, self.accepted as f64)
    }
}

/// Draws one world uniformly at random.
pub fn sample_world(vocab: &Vocabulary, n: usize, rng: &mut impl Rng) -> World {
    let mut w = World::empty(vocab, n);
    for p in vocab.preds() {
        let size = w.rel(p).size();
        for idx in 0..size {
            w.rel_mut(p).set_raw(idx, rng.gen_bool(0.5));
        }
    }
    for f in 0..vocab.func_count() {
        let table = w.func_table_mut(f);
        for entry in table.iter_mut() {
            *entry = rng.gen_range(0..n);
        }
    }
    for c in 0..vocab.const_count() {
        w.set_const(c, rng.gen_range(0..n));
    }
    w
}

/// Estimates `Pr_N^τ(query | KB)` with `samples` uniform draws and rejection.
pub fn estimate_degree_of_belief(
    kb: &KnowledgeBase,
    query: &Formula,
    n: usize,
    tol: &Tolerances,
    samples: usize,
    rng: &mut impl Rng,
) -> Estimate {
    let kb_formula = kb.as_formula();
    let vocab = kb.vocab();
    let mut accepted = 0usize;
    let mut hits = 0usize;
    for _ in 0..samples {
        let w = sample_world(vocab, n, rng);
        let mut ev = Evaluator::new(&w, vocab, tol);
        if ev.eval(&kb_formula) {
            accepted += 1;
            if ev.eval(query) {
                hits += 1;
            }
        }
    }
    Estimate {
        value: if accepted > 0 {
            Some(hits as f64 / accepted as f64)
        } else {
            None
        },
        drawn: samples,
        accepted,
        hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::degree_of_belief_at;
    use rw_util::{Rat, StdRng};

    fn tol() -> Tolerances {
        Tolerances::uniform(Rat::new(1, 4))
    }

    #[test]
    fn estimate_matches_enumeration() {
        let mut kb = KnowledgeBase::parse("||P(x)||_x ~=_1 0.5; Q(C)").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        let exact = degree_of_belief_at(&kb, &q, 4, &tol()).unwrap().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let est = estimate_degree_of_belief(&kb, &q, 4, &tol(), 20_000, &mut rng);
        let v = est.value.unwrap();
        assert!(
            (v - exact).abs() < 3.0 * est.ci_half_width().unwrap().max(0.01),
            "exact {exact}, estimate {v}"
        );
    }

    #[test]
    fn estimate_non_unary_binary_predicate() {
        // Pr(Likes(A,B) | "most pairs like each other") should be high.
        let mut kb = KnowledgeBase::parse("||Likes(x, y)||_{x,y} ~=_1 0.9").unwrap();
        let q = kb.parse_query("Likes(A, B)").unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let est = estimate_degree_of_belief(&kb, &q, 6, &tol(), 40_000, &mut rng);
        assert!(est.accepted > 50, "rejection rate too high: {est:?}");
        assert!(est.value.unwrap() > 0.6, "{est:?}");
    }

    #[test]
    fn impossible_kb_yields_none() {
        let mut kb = KnowledgeBase::parse("P(C) & !P(C)").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let est = estimate_degree_of_belief(&kb, &q, 4, &tol(), 1000, &mut rng);
        assert_eq!(est.value, None);
        assert_eq!(est.accepted, 0);
    }

    #[test]
    fn ci_is_nonzero_at_unanimous_outcomes() {
        // Regression: the old normal approximation reported a zero-width
        // interval whenever every accepted sample agreed on the query.
        let est = Estimate {
            value: Some(1.0),
            drawn: 100,
            accepted: 40,
            hits: 40,
        };
        assert!(est.ci_half_width().unwrap() > 0.0, "{est:?}");
        let none = Estimate {
            value: None,
            drawn: 10,
            accepted: 0,
            hits: 0,
        };
        assert_eq!(none.ci_half_width(), None);
    }

    #[test]
    fn sampled_worlds_are_legal() {
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        v.func("f", 1).unwrap();
        v.constant("c").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let w = sample_world(&v, 5, &mut rng);
            assert!(w.const_denotation(0) < 5);
            for e in 0..5 {
                assert!(w.apply_func(0, &[e]) < 5);
            }
        }
    }
}
