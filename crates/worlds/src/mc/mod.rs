//! Monte-Carlo approximate inference: a production sampling subsystem
//! for `Pr_N^τ(query | KB)` and its `N → ∞` extrapolation.
//!
//! The paper *defines* the degree of belief as the limiting fraction of
//! KB-worlds satisfying the query, so sampling `W_N` estimates the
//! definition itself — the fallback of choice when neither a theorem
//! pattern nor exact counting applies ("Random Worlds and Maximum
//! Entropy", Grove–Halpern–Koller). This module industrializes the naive
//! rejection loop in [`crate::sample`]:
//!
//! * **KB-aware proposals** ([`plan::SamplePlan`]): asserted ground facts
//!   are forced, unary statistical constraints are sampled at their
//!   nominal rates, and importance weights keep the estimator exact.
//! * **Adaptive stopping** ([`estimate_point`]): draws proceed in fixed
//!   chunks and stop as soon as the 95% Wilson half-width undercuts the
//!   configured target, under a hard sample cap.
//! * **An `N`-sweep** ([`estimate_sweep`]): 2–4 domain sizes along a
//!   shrinking-τ schedule, with the same extrapolation shape the exact
//!   diagonal stages use applied to the estimates.
//! * **Parallel workers** (the `workers` module): a std-only scoped-thread pool
//!   over an atomic chunk index. Results are **bit-reproducible for a
//!   given seed at any thread count** — chunks own their RNG streams and
//!   are merged in index order.

pub mod plan;
pub mod stats;
mod workers;

pub use plan::SamplePlan;
pub use stats::{extrapolate, extrapolate_half_width, wilson_half_width, Tally, Z_95};

use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_util::Rat;
use workers::{run_chunks, ChunkCtx};

/// Tuning for a Monte-Carlo run. `Default` is the production
/// configuration the engine stage uses.
#[derive(Clone, Debug, PartialEq)]
pub struct McConfig {
    /// Root seed; a run is a pure function of `(seed, KB, query, sweep)`.
    pub seed: u64,
    /// Worker threads (0 = one per core). Never affects the result —
    /// only how fast it arrives. Effective parallelism is bounded by
    /// [`Self::wave`] (workers share one wave's chunks), so raise `wave`
    /// together with `threads` on wide machines.
    pub threads: usize,
    /// Hard cap on proposal draws across the whole sweep.
    pub max_samples: u64,
    /// Stop a sweep point once its 95% CI half-width is at or below this.
    pub target_ci: f64,
    /// Draws per chunk: the determinism (and scheduling) unit.
    pub chunk: u64,
    /// Chunks between adaptive-stopping checks — and therefore the upper
    /// bound on concurrent workers. Deliberately **not** derived from
    /// `threads`: the stopping boundary is part of the result, and tying
    /// it to worker count would break the identical-answers-at-any-
    /// thread-count contract.
    pub wave: u64,
}

impl McConfig {
    /// A stable rendering of every field that can affect a *result* —
    /// everything except `threads`, which only changes wall time. Cache
    /// keyspaces should fold in exactly this, so sessions differing only
    /// in worker count still share answers.
    pub fn result_fingerprint(&self) -> String {
        format!(
            "mc(seed={},samples={},ci={},chunk={},wave={})",
            self.seed, self.max_samples, self.target_ci, self.chunk, self.wave
        )
    }
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            seed: 0x5EED,
            threads: 1,
            max_samples: 1 << 18,
            target_ci: 0.02,
            chunk: 1024,
            wave: 4,
        }
    }
}

/// The estimate at one `(τ, N)` sweep point.
#[derive(Clone, Debug, PartialEq)]
pub struct PointEstimate {
    /// Domain size sampled.
    pub n: usize,
    /// Tolerance the KB was evaluated under.
    pub tau: Rat,
    /// `Pr_N^τ(query | KB)` estimate (`None` if no draw satisfied the KB).
    pub value: Option<f64>,
    /// 95% Wilson half-width at the effective sample size.
    pub ci_half_width: Option<f64>,
    /// The underlying sufficient statistics.
    pub tally: Tally,
}

/// A full sweep: per-point estimates plus the extrapolated belief.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepEstimate {
    /// Per-point results, in sweep order.
    pub points: Vec<PointEstimate>,
    /// The extrapolated estimate of `Pr∞(query | KB)` over the points
    /// that produced values.
    pub value: Option<f64>,
    /// Conservative half-width of the extrapolated estimate.
    pub ci_half_width: Option<f64>,
    /// Total draws across the sweep.
    pub drawn: u64,
    /// Total KB-satisfying draws across the sweep.
    pub accepted: u64,
}

/// Estimates `Pr_N^τ(query | KB)` at a single `(τ, N)` point with at
/// most `cap` draws, stopping early once the CI target is met.
///
/// Deterministic: the result depends only on `(cfg.seed, kb, query, tau,
/// n, cap, cfg.chunk, cfg.wave, cfg.target_ci)` — not on `cfg.threads`.
pub fn estimate_point(
    kb: &KnowledgeBase,
    query: &Formula,
    tau: Rat,
    n: usize,
    cap: u64,
    cfg: &McConfig,
) -> PointEstimate {
    let plan = SamplePlan::build(kb);
    estimate_point_planned(kb, &plan, query, tau, n, cap, cfg)
}

/// [`estimate_point`] with a pre-built [`SamplePlan`] (hoisted across a
/// sweep).
fn estimate_point_planned(
    kb: &KnowledgeBase,
    plan: &SamplePlan,
    query: &Formula,
    tau: Rat,
    n: usize,
    cap: u64,
    cfg: &McConfig,
) -> PointEstimate {
    let kb_formula = kb.as_formula();
    let tol = Tolerances::uniform(tau);
    let chunk_size = cfg.chunk.max(1);
    let ctx = ChunkCtx {
        kb_formula: &kb_formula,
        query,
        vocab: kb.vocab(),
        tol: &tol,
        plan,
        n,
        seed: cfg.seed,
        chunk_size,
        cap,
    };
    let total_chunks = cap.div_ceil(chunk_size);
    let wave = cfg.wave.max(1);
    let mut tally = Tally::default();
    let mut done = 0u64;
    while done < total_chunks {
        let end = (done + wave).min(total_chunks);
        for t in run_chunks(&ctx, done..end, cfg.threads) {
            tally.absorb(&t);
        }
        done = end;
        if let Some(hw) = tally.ci_half_width() {
            if hw <= cfg.target_ci {
                break;
            }
        }
    }
    PointEstimate {
        n,
        tau,
        value: tally.estimate(),
        ci_half_width: tally.ci_half_width(),
        tally,
    }
}

/// Runs the full `N`-sweep: estimates each `(τ, N)` point under a share
/// of the `cfg.max_samples` budget (unused budget from early-stopping
/// points rolls forward), then extrapolates the per-point estimates with
/// the exact stages' diagonal shape.
///
/// ```
/// use rw_logic::KnowledgeBase;
/// use rw_util::Rat;
/// use rw_worlds::mc::{estimate_sweep, McConfig};
///
/// let mut kb = KnowledgeBase::parse("||P(x)||_x ~=_1 0.7; Q(C)").unwrap();
/// let q = kb.parse_query("P(C)").unwrap();
/// let points = [(Rat::new(1, 4), 4), (Rat::new(1, 8), 8)];
/// let sweep = estimate_sweep(&kb, &q, &points, &McConfig::default());
/// let v = sweep.value.unwrap();
/// assert!((v - 0.7).abs() < 0.1, "{sweep:?}");
/// assert!(sweep.ci_half_width.unwrap() > 0.0);
/// ```
pub fn estimate_sweep(
    kb: &KnowledgeBase,
    query: &Formula,
    points: &[(Rat, usize)],
    cfg: &McConfig,
) -> SweepEstimate {
    let plan = SamplePlan::build(kb);
    let mut out = Vec::with_capacity(points.len());
    let mut remaining = cfg.max_samples;
    for (i, &(tau, n)) in points.iter().enumerate() {
        let left = (points.len() - i) as u64;
        let cap = (remaining / left.max(1)).min(remaining);
        let p = estimate_point_planned(kb, &plan, query, tau, n, cap, cfg);
        remaining = remaining.saturating_sub(p.tally.drawn);
        out.push(p);
    }
    let values: Vec<f64> = out.iter().filter_map(|p| p.value).collect();
    let half_widths: Vec<f64> = out
        .iter()
        .filter(|p| p.value.is_some())
        .map(|p| p.ci_half_width.unwrap_or(0.5))
        .collect();
    SweepEstimate {
        value: extrapolate(&values),
        ci_half_width: extrapolate_half_width(&half_widths),
        drawn: out.iter().map(|p| p.tally.drawn).sum(),
        accepted: out.iter().map(|p| p.tally.accepted).sum(),
        points: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::degree_of_belief_at;

    fn parsed(kb_src: &str, q_src: &str) -> (KnowledgeBase, Formula) {
        let mut kb = KnowledgeBase::parse(kb_src).unwrap();
        let q = kb.parse_query(q_src).unwrap();
        (kb, q)
    }

    #[test]
    fn point_estimate_matches_enumeration_within_ci() {
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5; Q(C)", "P(C)");
        let tau = Rat::new(1, 4);
        let tol = Tolerances::uniform(tau);
        let exact = degree_of_belief_at(&kb, &q, 4, &tol).unwrap().unwrap();
        let cfg = McConfig {
            target_ci: 0.01,
            ..McConfig::default()
        };
        let p = estimate_point(&kb, &q, tau, 4, 1 << 16, &cfg);
        let v = p.value.unwrap();
        let hw = p.ci_half_width.unwrap();
        assert!(
            (v - exact).abs() < 3.0 * hw.max(0.005),
            "exact {exact}, got {p:?}"
        );
    }

    #[test]
    fn adaptive_stopping_spends_less_than_the_cap() {
        let (kb, q) = parsed("P(C)", "P(C)");
        // Forced fact: every draw accepted, p̂ = 1 with tiny CI quickly.
        let cfg = McConfig {
            target_ci: 0.05,
            ..McConfig::default()
        };
        let p = estimate_point(&kb, &q, Rat::new(1, 4), 4, 1 << 18, &cfg);
        assert_eq!(p.value, Some(1.0));
        assert!(p.tally.drawn < 1 << 16, "stopped early: {p:?}");
        assert!(p.ci_half_width.unwrap() <= 0.05);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let (kb, q) = parsed(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Jaun(Tom)",
            "Hep(Eric) & Hep(Tom)",
        );
        let points = [(Rat::new(1, 4), 4), (Rat::new(1, 8), 8)];
        let base = McConfig {
            max_samples: 1 << 14,
            ..McConfig::default()
        };
        let reference = estimate_sweep(&kb, &q, &points, &base);
        for threads in [2usize, 4, 0] {
            let cfg = McConfig {
                threads,
                ..base.clone()
            };
            let sweep = estimate_sweep(&kb, &q, &points, &cfg);
            assert_eq!(sweep, reference, "diverged at {threads} threads");
        }
        assert!(reference.value.is_some(), "{reference:?}");
    }

    #[test]
    fn different_seeds_differ_but_agree_within_ci() {
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.6", "P(C)");
        let points = [(Rat::new(1, 4), 6)];
        let a = estimate_sweep(&kb, &q, &points, &McConfig::default());
        let b = estimate_sweep(
            &kb,
            &q,
            &points,
            &McConfig {
                seed: 999,
                ..McConfig::default()
            },
        );
        let (va, vb) = (a.value.unwrap(), b.value.unwrap());
        assert_ne!(a.points[0].tally, b.points[0].tally);
        let spread = a.ci_half_width.unwrap() + b.ci_half_width.unwrap();
        assert!((va - vb).abs() <= 3.0 * spread.max(0.005), "{va} vs {vb}");
    }

    #[test]
    fn impossible_kb_yields_no_value() {
        let (kb, q) = parsed("P(C) & !P(C)", "P(C)");
        let sweep = estimate_sweep(
            &kb,
            &q,
            &[(Rat::new(1, 4), 4)],
            &McConfig {
                max_samples: 2048,
                ..McConfig::default()
            },
        );
        assert_eq!(sweep.value, None);
        assert_eq!(sweep.accepted, 0);
        assert!(sweep.drawn > 0);
    }

    #[test]
    fn sweep_budget_is_respected() {
        // An improbable KB never meets the CI target, so the sweep runs
        // to its cap — and not beyond.
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.95; ||Q(x)||_x ~=_2 0.05", "P(C) & Q(C)");
        let cap = 8192u64;
        let cfg = McConfig {
            max_samples: cap,
            target_ci: 1e-6,
            ..McConfig::default()
        };
        let sweep = estimate_sweep(&kb, &q, &[(Rat::new(1, 4), 8), (Rat::new(1, 8), 16)], &cfg);
        assert!(sweep.drawn <= cap, "{}", sweep.drawn);
        assert!(sweep.drawn >= cap / 2, "{}", sweep.drawn);
    }
}
