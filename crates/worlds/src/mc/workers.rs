//! The sampling worker pool: std-only scoped threads over an atomic
//! chunk index, with per-chunk seeded RNGs.
//!
//! Determinism contract: the unit of work is a **chunk** of consecutive
//! draws whose RNG is seeded from `(seed, N, chunk index)` alone, so a
//! chunk's tally never depends on which worker ran it or on how many
//! workers exist. The pool returns tallies **indexed by chunk**, and the
//! caller merges them in chunk order — float summation order is
//! therefore fixed, making a run bit-reproducible for a given seed at
//! *any* thread count.

use super::plan::SamplePlan;
use super::stats::Tally;
use crate::eval::Evaluator;
use crate::world::World;
use rw_logic::ast::Formula;
use rw_logic::{Tolerances, Vocabulary};
use rw_util::StdRng;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Everything a chunk needs, shared read-only across workers.
pub(crate) struct ChunkCtx<'a> {
    pub kb_formula: &'a Formula,
    pub query: &'a Formula,
    pub vocab: &'a Vocabulary,
    pub tol: &'a Tolerances,
    pub plan: &'a SamplePlan,
    pub n: usize,
    pub seed: u64,
    /// Draws per full chunk.
    pub chunk_size: u64,
    /// Total draw cap for this sweep point (the last chunk truncates).
    pub cap: u64,
}

/// Mixes the run seed, domain size and chunk index into one RNG seed.
/// Chunk indices map injectively for a fixed `(seed, n)`, and
/// [`StdRng::seed_from_u64`] SplitMix-scrambles the result, so nearby
/// chunks get unrelated streams.
fn chunk_seed(seed: u64, n: usize, chunk: u64) -> u64 {
    seed ^ (n as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ chunk.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl ChunkCtx<'_> {
    fn chunk_draws(&self, chunk: u64) -> u64 {
        self.chunk_size
            .min(self.cap - (chunk * self.chunk_size).min(self.cap))
    }

    /// Runs one chunk to completion: `chunk_draws` proposal draws,
    /// rejection against the KB, query evaluation on acceptance.
    fn run_chunk(&self, chunk: u64) -> Tally {
        let mut rng = StdRng::seed_from_u64(chunk_seed(self.seed, self.n, chunk));
        let mut world = World::empty(self.vocab, self.n);
        let mut tally = Tally::default();
        for _ in 0..self.chunk_draws(chunk) {
            tally.drawn += 1;
            let Some(weight) = self.plan.draw(self.vocab, self.n, &mut world, &mut rng) else {
                continue; // forced-literal conflict: certain rejection
            };
            let mut ev = Evaluator::new(&world, self.vocab, self.tol);
            if !ev.eval(self.kb_formula) {
                continue;
            }
            tally.accepted += 1;
            tally.w_acc += weight;
            tally.w2_acc += weight * weight;
            if ev.eval(self.query) {
                tally.hits += 1;
                tally.w_hit += weight;
                tally.w2_hit += weight * weight;
            }
        }
        tally
    }
}

/// Runs the chunks in `range` across `threads` workers (0 = one per
/// core), returning their tallies **in chunk order** regardless of which
/// worker computed what.
pub(crate) fn run_chunks(ctx: &ChunkCtx<'_>, range: Range<u64>, threads: usize) -> Vec<Tally> {
    let count = (range.end - range.start) as usize;
    if count == 0 {
        return Vec::new();
    }
    let threads = match threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        t => t,
    }
    .min(count)
    .max(1);
    if threads == 1 {
        return range.map(|c| ctx.run_chunk(c)).collect();
    }
    let next = AtomicU64::new(range.start);
    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let range = range.clone();
                scope.spawn(move || {
                    let mut out: Vec<(u64, Tally)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= range.end {
                            break;
                        }
                        out.push((c, ctx.run_chunk(c)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sampling worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut ordered = vec![Tally::default(); count];
    for shard in shards {
        for (c, t) in shard {
            ordered[(c - range.start) as usize] = t;
        }
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_logic::KnowledgeBase;
    use rw_util::Rat;

    fn ctx_parts() -> (KnowledgeBase, Formula) {
        let mut kb = KnowledgeBase::parse("||P(x)||_x ~=_1 0.5; Q(C)").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        (kb, q)
    }

    #[test]
    fn chunk_tallies_are_identical_across_thread_counts() {
        let (kb, q) = ctx_parts();
        let plan = SamplePlan::build(&kb);
        let kbf = kb.as_formula();
        let tol = Tolerances::uniform(Rat::new(1, 4));
        let ctx = ChunkCtx {
            kb_formula: &kbf,
            query: &q,
            vocab: kb.vocab(),
            tol: &tol,
            plan: &plan,
            n: 4,
            seed: 77,
            chunk_size: 256,
            cap: 2048,
        };
        let sequential = run_chunks(&ctx, 0..8, 1);
        for threads in [2usize, 4, 0] {
            let parallel = run_chunks(&ctx, 0..8, threads);
            assert_eq!(sequential, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn last_chunk_truncates_to_the_cap() {
        let (kb, q) = ctx_parts();
        let plan = SamplePlan::build(&kb);
        let kbf = kb.as_formula();
        let tol = Tolerances::uniform(Rat::new(1, 4));
        let ctx = ChunkCtx {
            kb_formula: &kbf,
            query: &q,
            vocab: kb.vocab(),
            tol: &tol,
            plan: &plan,
            n: 4,
            seed: 1,
            chunk_size: 100,
            cap: 250,
        };
        let tallies = run_chunks(&ctx, 0..3, 2);
        assert_eq!(
            tallies.iter().map(|t| t.drawn).collect::<Vec<_>>(),
            vec![100, 100, 50]
        );
    }

    #[test]
    fn different_chunks_get_different_streams() {
        let (kb, q) = ctx_parts();
        let plan = SamplePlan::build(&kb);
        let kbf = kb.as_formula();
        let tol = Tolerances::uniform(Rat::new(1, 4));
        let ctx = ChunkCtx {
            kb_formula: &kbf,
            query: &q,
            vocab: kb.vocab(),
            tol: &tol,
            plan: &plan,
            n: 4,
            seed: 5,
            chunk_size: 512,
            cap: 1024,
        };
        let tallies = run_chunks(&ctx, 0..2, 1);
        assert_ne!(tallies[0], tallies[1]);
    }
}
