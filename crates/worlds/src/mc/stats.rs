//! Estimator statistics for the Monte-Carlo subsystem: weighted tallies,
//! Wilson score confidence intervals, and the diagonal extrapolation
//! shape shared with the exact finite-`N` stages.
//!
//! The sampler draws worlds from a KB-biased proposal (see
//! [`crate::mc::plan`]) and corrects with importance weights, so the
//! per-sample record is a *weighted* Bernoulli observation. A [`Tally`]
//! accumulates the sufficient statistics; the point estimate is the
//! self-normalized ratio `Σw·hit / Σw·accepted`, and the interval uses
//! the Wilson score with the *effective* sample size
//! `(Σw)² / Σw²` — the standard design-effect correction, which reduces
//! to the plain Wilson interval when every weight is 1 (pure rejection).

/// The 97.5% standard-normal quantile: a 95% two-sided interval.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Sufficient statistics of one stream (or merged streams) of weighted
/// rejection samples.
///
/// Merging is exact and associative on the integer fields; the floating
/// sums are merged in a fixed (chunk-index) order by the scheduler so a
/// run is bit-reproducible for a given seed regardless of thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Tally {
    /// Worlds drawn from the proposal.
    pub drawn: u64,
    /// Draws satisfying the knowledge base.
    pub accepted: u64,
    /// Accepted draws also satisfying the query.
    pub hits: u64,
    /// Σ weight over accepted draws.
    pub w_acc: f64,
    /// Σ weight over accepted draws satisfying the query.
    pub w_hit: f64,
    /// Σ weight² over accepted draws (for the effective sample size).
    pub w2_acc: f64,
    /// Σ weight² over accepted draws satisfying the query (for the
    /// ratio-estimator variance).
    pub w2_hit: f64,
}

impl Tally {
    /// Folds `other` into `self` (field-wise sums).
    pub fn absorb(&mut self, other: &Tally) {
        self.drawn += other.drawn;
        self.accepted += other.accepted;
        self.hits += other.hits;
        self.w_acc += other.w_acc;
        self.w_hit += other.w_hit;
        self.w2_acc += other.w2_acc;
        self.w2_hit += other.w2_hit;
    }

    /// The self-normalized estimate of `Pr(query | KB)`, `None` until at
    /// least one draw satisfied the KB.
    pub fn estimate(&self) -> Option<f64> {
        if self.accepted == 0 || self.w_acc <= 0.0 {
            return None;
        }
        Some((self.w_hit / self.w_acc).clamp(0.0, 1.0))
    }

    /// Kish's effective sample size `(Σw)²/Σw²`: the number of equally
    /// weighted samples carrying the same information. Equals `accepted`
    /// when all weights are 1.
    pub fn effective_n(&self) -> f64 {
        if self.w2_acc <= 0.0 {
            return 0.0;
        }
        self.w_acc * self.w_acc / self.w2_acc
    }

    /// Half-width of a 95% interval around [`Self::estimate`]: the larger
    /// of the Wilson score interval at the effective sample size and the
    /// delta-method standard error of the self-normalized ratio.
    ///
    /// The two cover each other's blind spots. Wilson alone assumes the
    /// weights carry no information about the hits, and understates the
    /// spread when they correlate (a biased proposal makes query-heavy
    /// worlds systematically lighter or heavier); the delta-method term
    /// `Var ≈ Σ w²(hit − p̂)² / (Σw)²` captures exactly that, but
    /// degenerates to zero width at `p̂ ∈ {0, 1}` where Wilson stays
    /// honest.
    pub fn ci_half_width(&self) -> Option<f64> {
        let p = self.estimate()?;
        let wilson = wilson_half_width(p, self.effective_n())?;
        // Σ w²(hit − p̂)² expands over the hit / non-hit partition.
        let spread =
            (1.0 - p) * (1.0 - p) * self.w2_hit + p * p * (self.w2_acc - self.w2_hit).max(0.0);
        let delta = Z_95 * (spread.max(0.0)).sqrt() / self.w_acc;
        Some(wilson.max(delta))
    }
}

/// Half-width of the 95% Wilson score interval for an observed
/// proportion `p_hat` out of `n` (possibly fractional, for weighted
/// samples) trials.
///
/// Unlike the Wald/normal approximation, the Wilson interval stays
/// strictly positive at `p_hat ∈ {0, 1}` (where the normal interval
/// collapses to width zero no matter how few samples were seen) and is
/// well behaved at small `n`.
pub fn wilson_half_width(p_hat: f64, n: f64) -> Option<f64> {
    if n.is_nan() || n <= 0.0 || !p_hat.is_finite() {
        return None;
    }
    let p = p_hat.clamp(0.0, 1.0);
    let z2 = Z_95 * Z_95;
    let denom = 1.0 + z2 / n;
    let spread = Z_95 * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Some(spread / denom)
}

/// Richardson-style extrapolation for a geometric (τ ∝ 2^-k) diagonal
/// with an `O(τ)` error model; one sample passes through, none is `None`.
///
/// This is the same shape the exact finite-`N` stages apply to their
/// diagonal values; the Monte-Carlo sweep applies it to its per-`N`
/// estimates.
pub fn extrapolate(values: &[f64]) -> Option<f64> {
    match values {
        [] => None,
        [v] => Some(*v),
        [.., a, b] => Some((2.0 * b - a).clamp(0.0, 1.0)),
    }
}

/// The half-width matching an [`extrapolate`] output, from the
/// half-widths of the same points: the extrapolated value `2b − a` is a
/// linear combination of the last two estimates, so its uncertainty is
/// (conservatively, treating the points as independent and adding in
/// absolute value) `2·hw_b + hw_a`.
pub fn extrapolate_half_width(half_widths: &[f64]) -> Option<f64> {
    match half_widths {
        [] => None,
        [h] => Some(*h),
        [.., a, b] => Some(2.0 * b + a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_is_positive_at_extremes() {
        let at_zero = wilson_half_width(0.0, 50.0).unwrap();
        let at_one = wilson_half_width(1.0, 50.0).unwrap();
        assert!(at_zero > 0.0, "{at_zero}");
        assert!((at_zero - at_one).abs() < 1e-12, "symmetric");
        // A plain normal interval would be exactly 0 here.
    }

    #[test]
    fn wilson_shrinks_with_n_and_none_without_samples() {
        let small = wilson_half_width(0.3, 10.0).unwrap();
        let large = wilson_half_width(0.3, 10_000.0).unwrap();
        assert!(large < small);
        assert!(large < 0.01, "{large}");
        assert_eq!(wilson_half_width(0.3, 0.0), None);
    }

    #[test]
    fn wilson_approaches_wald_at_large_n() {
        let n = 1e6;
        let p = 0.4f64;
        let wald = Z_95 * (p * (1.0 - p) / n).sqrt();
        let wilson = wilson_half_width(p, n).unwrap();
        assert!((wald - wilson).abs() / wald < 1e-3);
    }

    #[test]
    fn tally_merges_and_estimates() {
        let mut a = Tally {
            drawn: 10,
            accepted: 4,
            hits: 2,
            w_acc: 4.0,
            w_hit: 2.0,
            w2_acc: 4.0,
            w2_hit: 2.0,
        };
        let b = Tally {
            drawn: 10,
            accepted: 6,
            hits: 6,
            w_acc: 6.0,
            w_hit: 6.0,
            w2_acc: 6.0,
            w2_hit: 6.0,
        };
        a.absorb(&b);
        assert_eq!(a.drawn, 20);
        assert_eq!(a.accepted, 10);
        assert_eq!(a.estimate(), Some(0.8));
        // Unit weights: effective n equals the acceptance count.
        assert!((a.effective_n() - 10.0).abs() < 1e-12);
        assert!(a.ci_half_width().unwrap() > 0.0);
    }

    #[test]
    fn empty_tally_has_no_estimate() {
        let t = Tally::default();
        assert_eq!(t.estimate(), None);
        assert_eq!(t.ci_half_width(), None);
        assert_eq!(t.effective_n(), 0.0);
    }

    #[test]
    fn skewed_weights_reduce_effective_n() {
        let t = Tally {
            drawn: 3,
            accepted: 2,
            hits: 1,
            w_acc: 1.0 + 9.0,
            w_hit: 9.0,
            w2_acc: 1.0 + 81.0,
            w2_hit: 81.0,
        };
        assert!(t.effective_n() < 2.0);
        assert!(t.effective_n() > 1.0);
    }

    #[test]
    fn interval_covers_both_error_models() {
        // Hits systematically heavier than misses: the reported interval
        // must be at least each individual model's width.
        let heavy = 1.5f64;
        let k = 500u64;
        let t = Tally {
            drawn: 2 * k,
            accepted: 2 * k,
            hits: k,
            w_acc: k as f64 * (1.0 + heavy),
            w_hit: k as f64 * heavy,
            w2_acc: k as f64 * (1.0 + heavy * heavy),
            w2_hit: k as f64 * heavy * heavy,
        };
        let p = t.estimate().unwrap();
        let wilson = wilson_half_width(p, t.effective_n()).unwrap();
        let spread = (1.0 - p) * (1.0 - p) * t.w2_hit + p * p * (t.w2_acc - t.w2_hit);
        let delta = Z_95 * spread.sqrt() / t.w_acc;
        let hw = t.ci_half_width().unwrap();
        assert!(hw >= wilson && hw >= delta, "{hw} vs {wilson}/{delta}");
    }

    #[test]
    fn extrapolation_shapes() {
        assert_eq!(extrapolate(&[]), None);
        assert_eq!(extrapolate(&[0.3]), Some(0.3));
        assert_eq!(extrapolate(&[0.4, 0.45]), Some(0.5));
        assert_eq!(extrapolate(&[0.2, 0.7]), Some(1.0)); // clamped
        assert_eq!(extrapolate_half_width(&[]), None);
        assert_eq!(extrapolate_half_width(&[0.05]), Some(0.05));
        assert_eq!(extrapolate_half_width(&[0.9, 0.05, 0.02]), Some(0.09));
    }
}
