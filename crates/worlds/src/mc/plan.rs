//! KB-aware proposal construction: sample the knowledge base's unary
//! statistical constraints and asserted ground facts *directly* instead
//! of hoping a fair-coin world survives rejection.
//!
//! The proposal stays **exact** via importance weighting: every bit whose
//! proposal probability deviates from the uniform 1/2 contributes the
//! factor `0.5 / q(chosen)` to the draw's weight, and the estimator in
//! [`crate::mc::stats`] self-normalizes, so any bias (clamped away from 0
//! and 1 to keep the proposal's support full) yields a consistent
//! estimate. Rejection against the full KB remains the soundness gate —
//! the plan only concentrates the proposal where the KB's mass is.
//!
//! Three constraint shapes are compiled; everything else falls back to
//! uniform bits:
//!
//! * **asserted ground literals** (`P(c̄)`, `!Q(c)`, `!!R(c, d)` …):
//!   once the draw's constant denotations are fixed, the corresponding
//!   predicate bit is *forced* — every KB-satisfying world agrees on it,
//!   so forcing is plain conditioning (weight factor 0.5 per distinct
//!   forced bit). Two forced literals colliding on one bit with opposite
//!   values mean no world with those denotations satisfies the KB, and
//!   the draw is rejected outright.
//! * **unconditional unary proportions** `||P(x)||_x ≈ α`: every `P` bit
//!   is proposed at `α`, concentrating the empirical frequency inside
//!   the tolerance band (a fair coin leaves acceptance exponentially
//!   small in `N` for `α` far from 1/2).
//! * **conditional unary proportions** `||P(x) | Q(x)||_x ≈ α` with `P ≠
//!   Q`: `P(e)` is proposed at `α` when the already-drawn `Q(e)` holds
//!   (and at `P`'s base rate otherwise), with predicates ordered so `Q`'s
//!   bits exist first; dependency cycles demote the rule to its
//!   unconditional base.

use crate::world::World;
use rw_logic::ast::{CmpOp, Formula, PropExpr, Term};
use rw_logic::{analysis, KnowledgeBase, PredId, Vocabulary};
use rw_util::Rng;
use std::collections::BTreeMap;

/// Proposal biases are clamped into `[MIN_BIAS, 1 - MIN_BIAS]` so the
/// proposal's support covers every world (a hard 0/1 bias would assign
/// zero probability to worlds the posterior may still reach within the
/// tolerance band, biasing the estimator).
const MIN_BIAS: f64 = 0.05;

/// How one predicate's bits are proposed.
#[derive(Clone, Copy, Debug, PartialEq)]
enum BitRule {
    /// Fair coin (weight-neutral).
    Uniform,
    /// Bernoulli(bias) for every bit.
    Base(f64),
    /// Unary only: Bernoulli(`then`) where the already-drawn `on` bit of
    /// the same element holds, Bernoulli(`els`) otherwise.
    Cond { on: PredId, then: f64, els: f64 },
}

/// A ground literal asserted by the KB: predicate, constant arguments,
/// required truth value.
#[derive(Clone, Debug, PartialEq)]
struct ForcedLiteral {
    pred: PredId,
    args: Vec<usize>, // constant indices
    value: bool,
}

/// A compiled sampling proposal for one knowledge base (domain-size
/// independent; build once, draw at any `n`).
#[derive(Clone, Debug)]
pub struct SamplePlan {
    /// Per-predicate proposal rule, indexed by predicate id.
    rules: Vec<BitRule>,
    /// Predicate order honoring `Cond` dependencies.
    order: Vec<usize>,
    /// Asserted ground literals to force after constants are drawn.
    forced: Vec<ForcedLiteral>,
}

/// `P(c̄)` / `!P(c̄)` (modulo double negation) with all-constant
/// arguments, as `(pred, const indices, polarity)` — the shared
/// recognizer from `rw_logic::analysis`, with ids mapped to raw indices.
fn as_ground_literal(f: &Formula) -> Option<(PredId, Vec<usize>, bool)> {
    let (p, args, value) = analysis::as_ground_literal(f)?;
    Some((p, args.into_iter().map(|c| c.index()).collect(), value))
}

/// `||body(x)||_x` or `||body(x) | cond(x)||_x` compared (approximately)
/// equal to a rational: `(body pred, polarity, cond pred, α)`.
fn as_unary_stat(f: &Formula) -> Option<(PredId, bool, Option<PredId>, f64)> {
    let Formula::Cmp(lhs, op, rhs) = f else {
        return None;
    };
    if !matches!(op, CmpOp::ApproxEq(_) | CmpOp::Eq) {
        return None;
    }
    let (prop, alpha) = match (lhs, rhs) {
        (p @ PropExpr::Prop { .. }, PropExpr::Rat(r)) => (p, r.to_f64()),
        (PropExpr::Rat(r), p @ PropExpr::Prop { .. }) => (p, r.to_f64()),
        _ => return None,
    };
    let PropExpr::Prop { body, cond, vars } = prop else {
        return None;
    };
    let [x] = vars.as_slice() else {
        return None;
    };
    let unary_atom = |g: &Formula| match g {
        Formula::Pred(p, args) if args.as_slice() == [Term::Var(*x)] => Some(*p),
        _ => None,
    };
    let (body_pred, value) = match body.as_ref() {
        Formula::Not(inner) => (unary_atom(inner)?, false),
        other => (unary_atom(other)?, true),
    };
    let cond_pred = match cond {
        None => None,
        Some(c) => Some(unary_atom(c)?),
    };
    let alpha = if value { alpha } else { 1.0 - alpha };
    Some((body_pred, value, cond_pred, alpha))
}

impl SamplePlan {
    /// Compiles a proposal from the KB's flattened conjuncts.
    pub fn build(kb: &KnowledgeBase) -> SamplePlan {
        let vocab = kb.vocab();
        let pred_count = vocab.pred_count();
        let mut forced = Vec::new();
        let mut base: BTreeMap<usize, f64> = BTreeMap::new();
        let mut cond: BTreeMap<usize, (PredId, f64)> = BTreeMap::new();
        for conjunct in kb.conjuncts() {
            for f in conjunct.conjuncts() {
                if let Some((p, args, value)) = as_ground_literal(f) {
                    forced.push(ForcedLiteral {
                        pred: p,
                        args,
                        value,
                    });
                    continue;
                }
                if let Some((p, _, c, alpha)) = as_unary_stat(f) {
                    if vocab.pred_arity(p) != 1 {
                        continue;
                    }
                    match c {
                        None => {
                            base.entry(p.index()).or_insert(alpha);
                        }
                        Some(q) if q != p && vocab.pred_arity(q) == 1 => {
                            cond.entry(p.index()).or_insert((q, alpha));
                        }
                        _ => {}
                    }
                }
            }
        }
        let clamp = |a: f64| a.clamp(MIN_BIAS, 1.0 - MIN_BIAS);
        let mut rules: Vec<BitRule> = (0..pred_count)
            .map(|i| {
                if let Some(&(on, alpha)) = cond.get(&i) {
                    BitRule::Cond {
                        on,
                        then: clamp(alpha),
                        els: clamp(base.get(&i).copied().unwrap_or(0.5)),
                    }
                } else if let Some(&alpha) = base.get(&i) {
                    BitRule::Base(clamp(alpha))
                } else {
                    BitRule::Uniform
                }
            })
            .collect();

        // Kahn ordering over Cond dependencies; a cycle demotes the
        // remaining conditional rules to their unconditional base rate.
        let mut order = Vec::with_capacity(pred_count);
        let mut placed = vec![false; pred_count];
        loop {
            let mut progressed = false;
            for i in 0..pred_count {
                if placed[i] {
                    continue;
                }
                let ready = match rules[i] {
                    BitRule::Cond { on, .. } => placed[on.index()],
                    _ => true,
                };
                if ready {
                    placed[i] = true;
                    order.push(i);
                    progressed = true;
                }
            }
            if order.len() == pred_count {
                break;
            }
            if !progressed {
                for i in 0..pred_count {
                    if !placed[i] {
                        if let BitRule::Cond { els, .. } = rules[i] {
                            rules[i] = BitRule::Base(els);
                        }
                        placed[i] = true;
                        order.push(i);
                    }
                }
                break;
            }
        }

        SamplePlan {
            rules,
            order,
            forced,
        }
    }

    /// Predicates whose bits are proposed non-uniformly.
    pub fn biased_preds(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| !matches!(r, BitRule::Uniform))
            .count()
    }

    /// Asserted ground literals the plan forces.
    pub fn forced_literals(&self) -> usize {
        self.forced.len()
    }

    /// True when the plan is pure coin-flip rejection (no bias, nothing
    /// forced) — i.e. every draw has weight exactly 1.
    pub fn is_uniform(&self) -> bool {
        self.forced.is_empty() && self.biased_preds() == 0
    }

    /// Draws one world from the proposal into `world` (every slot is
    /// rewritten). Returns the draw's importance weight relative to the
    /// uniform distribution, or `None` when the drawn constant
    /// denotations make the forced literals contradictory (no world with
    /// those denotations satisfies the KB — an immediate rejection).
    pub fn draw(
        &self,
        vocab: &Vocabulary,
        n: usize,
        world: &mut World,
        rng: &mut impl Rng,
    ) -> Option<f64> {
        for c in 0..vocab.const_count() {
            world.set_const(c, rng.gen_range(0..n));
        }
        for f in 0..vocab.func_count() {
            for entry in world.func_table_mut(f).iter_mut() {
                *entry = rng.gen_range(0..n);
            }
        }
        // Forced bits under this draw's constant denotations, deduplicated
        // by raw bit index; an opposite-valued collision is a structural
        // rejection.
        let mut forced_bits: Vec<(usize, usize, bool)> = Vec::with_capacity(self.forced.len());
        for lit in &self.forced {
            let mut idx = 0usize;
            for &c in &lit.args {
                idx = idx * n + world.const_denotation(c);
            }
            forced_bits.push((lit.pred.index(), idx, lit.value));
        }
        forced_bits.sort_unstable();
        forced_bits.dedup();
        for pair in forced_bits.windows(2) {
            if pair[0].0 == pair[1].0 && pair[0].1 == pair[1].1 {
                return None; // same bit forced both ways
            }
        }

        let mut weight = 1.0f64;
        for &pi in &self.order {
            let pred = PredId(pi as u32);
            let size = world.rel(pred).size();
            let rule = self.rules[pi];
            for idx in 0..size {
                if let Ok(k) = forced_bits.binary_search_by(|&(p, i, _)| (p, i).cmp(&(pi, idx))) {
                    world.rel_mut(pred).set_raw(idx, forced_bits[k].2);
                    weight *= 0.5;
                    continue;
                }
                let q = match rule {
                    BitRule::Uniform => 0.5,
                    BitRule::Base(b) => b,
                    BitRule::Cond { on, then, els } => {
                        if world.rel(on).get_raw(idx) {
                            then
                        } else {
                            els
                        }
                    }
                };
                let value = rng.gen_bool(q);
                world.rel_mut(pred).set_raw(idx, value);
                if q != 0.5 {
                    weight *= 0.5 / if value { q } else { 1.0 - q };
                }
            }
        }
        Some(weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_util::StdRng;

    #[test]
    fn plan_compiles_stats_facts_and_conditionals() {
        let kb =
            KnowledgeBase::parse("||P(x)||_x ~=_1 0.8; ||R(x) | P(x)||_x ~=_2 0.9; Q(C); !P(D)")
                .unwrap();
        let plan = SamplePlan::build(&kb);
        assert_eq!(plan.forced_literals(), 2);
        assert_eq!(plan.biased_preds(), 2); // P base, R conditional on P
        assert!(!plan.is_uniform());
        // P must be ordered before R.
        let p = kb.vocab().lookup_pred("P").unwrap().index();
        let r = kb.vocab().lookup_pred("R").unwrap().index();
        let pos = |x| plan.order.iter().position(|&i| i == x).unwrap();
        assert!(pos(p) < pos(r), "{:?}", plan.order);
    }

    #[test]
    fn trivial_kb_is_uniform_with_unit_weights() {
        let kb = KnowledgeBase::parse("||P(x)||_x <~_1 0.9").unwrap(); // bound, not ≈
        let plan = SamplePlan::build(&kb);
        assert!(plan.is_uniform());
        let mut rng = StdRng::seed_from_u64(5);
        let mut w = World::empty(kb.vocab(), 4);
        for _ in 0..50 {
            assert_eq!(plan.draw(kb.vocab(), 4, &mut w, &mut rng), Some(1.0));
        }
    }

    #[test]
    fn forced_literals_always_hold_in_drawn_worlds() {
        let kb = KnowledgeBase::parse("Likes(A, B); !Likes(B, A)").unwrap();
        let plan = SamplePlan::build(&kb);
        let vocab = kb.vocab();
        let likes = vocab.lookup_pred("Likes").unwrap();
        let a = vocab.lookup_const("A").unwrap().index();
        let b = vocab.lookup_const("B").unwrap().index();
        let mut rng = StdRng::seed_from_u64(9);
        let mut w = World::empty(vocab, 5);
        let mut viable = 0;
        for _ in 0..200 {
            let Some(weight) = plan.draw(vocab, 5, &mut w, &mut rng) else {
                // Structural rejection only when A and B collide.
                assert_eq!(w.const_denotation(a), w.const_denotation(b));
                continue;
            };
            viable += 1;
            assert!(weight > 0.0);
            let (ea, eb) = (w.const_denotation(a), w.const_denotation(b));
            assert!(w.rel(likes).contains(&[ea, eb]));
            assert!(!w.rel(likes).contains(&[eb, ea]));
        }
        assert!(viable > 100);
    }

    #[test]
    fn double_negated_facts_are_forced_too() {
        let kb = KnowledgeBase::parse("!!P(C)").unwrap();
        let plan = SamplePlan::build(&kb);
        assert_eq!(plan.forced_literals(), 1);
        assert!(plan.forced[0].value);
    }

    #[test]
    fn biased_bits_carry_compensating_weights() {
        let kb = KnowledgeBase::parse("||P(x)||_x ~=_1 0.8").unwrap();
        let plan = SamplePlan::build(&kb);
        let vocab = kb.vocab();
        let p = vocab.lookup_pred("P").unwrap();
        let n = 6usize;
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = World::empty(vocab, n);
        for _ in 0..100 {
            let weight = plan.draw(vocab, n, &mut w, &mut rng).unwrap();
            let k = w.rel(p).count() as i32;
            let expect = (0.5f64 / 0.8).powi(k) * (0.5f64 / (1.0 - 0.8)).powi(n as i32 - k);
            assert!((weight - expect).abs() < 1e-12, "{weight} vs {expect}");
        }
    }

    #[test]
    fn hard_biases_are_clamped_off_the_boundary() {
        let kb = KnowledgeBase::parse("||P(x)||_x ~=_1 1").unwrap();
        let plan = SamplePlan::build(&kb);
        match plan.rules[0] {
            BitRule::Base(b) => assert!((b - (1.0 - MIN_BIAS)).abs() < 1e-12, "{b}"),
            other => panic!("{other:?}"),
        }
    }
}
