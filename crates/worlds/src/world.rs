//! Explicit finite first-order models.
//!
//! A [`World`] interprets every symbol of a vocabulary over the domain
//! `{0..N-1}` (the paper uses `{1..N}`; the shift is immaterial):
//! predicates as bitsets over `N^arity` tuples, functions as dense tables,
//! constants as single elements.

use rw_logic::{PredId, Vocabulary};

/// A relation of a fixed arity stored as a bitset over row-major tuples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitRel {
    arity: usize,
    n: usize,
    size: usize,
    bits: Vec<u64>,
}

impl BitRel {
    pub fn new(arity: usize, n: usize) -> BitRel {
        let size = n.checked_pow(arity as u32).expect("relation too large");
        BitRel {
            arity,
            n,
            size,
            bits: vec![0; size.div_ceil(64)],
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuple slots (`n^arity`).
    pub fn size(&self) -> usize {
        self.size
    }

    fn index(&self, tuple: &[usize]) -> usize {
        debug_assert_eq!(tuple.len(), self.arity);
        let mut idx = 0usize;
        for &t in tuple {
            debug_assert!(t < self.n);
            idx = idx * self.n + t;
        }
        idx
    }

    pub fn contains(&self, tuple: &[usize]) -> bool {
        self.get_raw(self.index(tuple))
    }

    pub fn set(&mut self, tuple: &[usize], value: bool) {
        let idx = self.index(tuple);
        self.set_raw(idx, value);
    }

    pub fn get_raw(&self, idx: usize) -> bool {
        (self.bits[idx / 64] >> (idx % 64)) & 1 == 1
    }

    pub fn set_raw(&mut self, idx: usize, value: bool) {
        if value {
            self.bits[idx / 64] |= 1 << (idx % 64);
        } else {
            self.bits[idx / 64] &= !(1 << (idx % 64));
        }
    }

    /// Number of tuples in the relation.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn clear(&mut self) {
        self.bits.fill(0);
    }
}

/// A finite first-order model over `{0..N-1}`.
#[derive(Clone, Debug, PartialEq)]
pub struct World {
    n: usize,
    rels: Vec<BitRel>,
    funcs: Vec<Vec<usize>>, // per function: table indexed row-major, value = element
    consts: Vec<usize>,     // per constant: element
}

impl World {
    /// The world over `{0..n-1}` with empty relations, constant-0 functions
    /// and all constants denoting element 0.
    pub fn empty(vocab: &Vocabulary, n: usize) -> World {
        assert!(n > 0, "domain must be nonempty");
        let rels = vocab
            .preds()
            .map(|p| BitRel::new(vocab.pred_arity(p), n))
            .collect();
        let funcs = vocab
            .funcs()
            .map(|f| {
                let size = n
                    .checked_pow(vocab.func_arity(f) as u32)
                    .expect("function table too large");
                vec![0usize; size]
            })
            .collect();
        let consts = vec![0usize; vocab.const_count()];
        World {
            n,
            rels,
            funcs,
            consts,
        }
    }

    pub fn domain_size(&self) -> usize {
        self.n
    }

    pub fn rel(&self, p: PredId) -> &BitRel {
        &self.rels[p.index()]
    }

    pub fn rel_mut(&mut self, p: PredId) -> &mut BitRel {
        &mut self.rels[p.index()]
    }

    pub fn func_table(&self, f: usize) -> &[usize] {
        &self.funcs[f]
    }

    pub fn func_table_mut(&mut self, f: usize) -> &mut Vec<usize> {
        &mut self.funcs[f]
    }

    /// Applies function `f` (by index) to a tuple of elements.
    pub fn apply_func(&self, f: usize, args: &[usize]) -> usize {
        let mut idx = 0usize;
        for &a in args {
            idx = idx * self.n + a;
        }
        self.funcs[f][idx]
    }

    pub fn const_denotation(&self, c: usize) -> usize {
        self.consts[c]
    }

    pub fn set_const(&mut self, c: usize, elem: usize) {
        assert!(elem < self.n);
        self.consts[c] = elem;
    }

    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    pub fn pred_count(&self) -> usize {
        self.rels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrel_indexing_roundtrip() {
        let mut r = BitRel::new(2, 3);
        assert_eq!(r.size(), 9);
        r.set(&[1, 2], true);
        r.set(&[2, 0], true);
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[2, 0]));
        assert!(!r.contains(&[2, 1]));
        assert_eq!(r.count(), 2);
        r.set(&[1, 2], false);
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn bitrel_large_indices_cross_word_boundaries() {
        let mut r = BitRel::new(2, 9); // 81 slots: spans two u64 words
        for i in 0..9 {
            r.set(&[i, i], true);
        }
        assert_eq!(r.count(), 9);
        assert!(r.contains(&[8, 8]));
        assert!(!r.contains(&[8, 7]));
    }

    #[test]
    fn world_construction() {
        let mut v = Vocabulary::new();
        let bird = v.pred("Bird", 1).unwrap();
        v.func("Next", 1).unwrap();
        v.constant("Tweety").unwrap();
        let mut w = World::empty(&v, 4);
        assert_eq!(w.domain_size(), 4);
        w.rel_mut(bird).set(&[2], true);
        assert!(w.rel(bird).contains(&[2]));
        w.set_const(0, 3);
        assert_eq!(w.const_denotation(0), 3);
        assert_eq!(w.apply_func(0, &[1]), 0);
    }
}
