//! Symmetry-reduced exact counting: orbit enumeration over the
//! unnamed-element group.
//!
//! Worlds that differ only by a permutation of the domain elements *not*
//! denoted by constants satisfy exactly the same sentences, so the
//! symmetric group on unnamed elements partitions `W_N(Φ)` into orbits of
//! equivalent worlds. Instead of branching over `2^(N²)` predicate bits,
//! this module enumerates **canonical orbit representatives** and weights
//! each by its orbit size (orbit–stabilizer), so `#(KB ∧ q)` and `#KB`
//! are still exact while the number of representatives grows only
//! polynomially in `N` for the supported fragment.
//!
//! A representative is a triple:
//!
//! * a **coincidence partition** of the constants (which constants denote
//!   the same element — a restricted-growth string, generalizing the
//!   `const_block` of `rw_unary`'s profiles);
//! * an **atom-cell profile**: each block of constants sits in one of the
//!   `2^k` cells over the `k` tracked unary predicates, and each cell has
//!   a size `c_i` with `Σ c_i = N` (generalizing `rw_unary`'s counts);
//! * a **named-bit assignment** for the finitely many non-unary atoms the
//!   formula mentions on constants (the canonical adjacency form: under
//!   the unnamed-element group only bits on named tuples are
//!   distinguishable, the rest are interchangeable).
//!
//! Its weight is `multinomial(N; c⃗) · Π_i (c_i)_(b_i) · 2^(free bits)`:
//! the ways to realize the cell sizes, times the falling factorial
//! placing each cell's constant blocks on distinct elements, times the
//! unconstrained predicate bits multiplied out in one step. Counts reach
//! `2^(N²)` and beyond, far past `u128`, so they are carried as
//! [`ScaledCount`] values `coeff · 2^exp2`.
//!
//! # The supported fragment
//!
//! [`SymmetrySpec::detect`] accepts a conjunction whose conjuncts are
//! ground boolean combinations of constant atoms (any arity, plus
//! constant equalities) and single-variable unary proportion
//! constraints. Function symbols, quantifiers, and non-ground non-unary
//! atoms fall outside the group-action argument and return `None` — the
//! caller falls back to plain branch-and-count.
//!
//! # Parallelism and determinism
//!
//! Counting shards representatives into `N + 1` **chunks** by the size of
//! the first atom cell and merges results in chunk order with a fixed
//! per-chunk budget share — the same discipline as [`crate::count`], so
//! the count, its representative totals and its failure mode are
//! bit-identical at any thread count.

use crate::count::{CountError, CountOptions};
use rw_logic::ast::{CmpOp, Formula, PropExpr, Term};
use rw_logic::{Tolerances, VarId, Vocabulary};
use rw_util::Rat;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Cap on tracked unary predicates (cells are bitmasks in a `u64`, and
/// the profile space grows as `N^(2^k − 1)`).
pub const MAX_TRACKED_UNARY: usize = 6;
/// Cap on distinct non-unary constant atoms the formula may mention
/// (named bits are swept exhaustively per representative).
pub const MAX_NAMED_ATOMS: usize = 16;
/// Cap on constants (the coincidence partitions grow as the Bell number).
pub const MAX_CONSTANTS: usize = 8;

/// An exact world count `coeff · 2^exp2`, kept normalized with an odd
/// coefficient (or zero). Symmetry-reduced counts routinely exceed
/// `u128` — one spectator binary predicate contributes `2^(N²)` — but
/// they are always a modest odd part times a huge power of two.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScaledCount {
    /// The odd part (zero for a zero count).
    pub coeff: u128,
    /// The power-of-two exponent.
    pub exp2: u64,
}

fn shl_checked(c: u128, s: u64) -> Option<u128> {
    if c == 0 {
        Some(0)
    } else if s >= 128 || u64::from(c.leading_zeros()) < s {
        None
    } else {
        Some(c << s)
    }
}

impl ScaledCount {
    /// The zero count.
    pub const ZERO: ScaledCount = ScaledCount { coeff: 0, exp2: 0 };

    /// A normalized count with value `coeff · 2^exp2`.
    pub fn new(coeff: u128, exp2: u64) -> ScaledCount {
        let mut out = ScaledCount { coeff, exp2 };
        out.normalize();
        out
    }

    /// A plain (unscaled) count.
    pub fn from_u128(count: u128) -> ScaledCount {
        ScaledCount::new(count, 0)
    }

    fn normalize(&mut self) {
        if self.coeff == 0 {
            self.exp2 = 0;
            return;
        }
        let tz = u64::from(self.coeff.trailing_zeros());
        self.coeff >>= tz;
        self.exp2 += tz;
    }

    /// True for the zero count.
    pub fn is_zero(&self) -> bool {
        self.coeff == 0
    }

    /// Adds `coeff · 2^exp2`, failing with [`CountError::Overflow`] when
    /// the aligned coefficients no longer fit `u128`.
    pub fn accumulate(&mut self, coeff: u128, exp2: u64) -> Result<(), CountError> {
        if coeff == 0 {
            return Ok(());
        }
        if self.coeff == 0 {
            *self = ScaledCount::new(coeff, exp2);
            return Ok(());
        }
        if exp2 >= self.exp2 {
            let shifted = shl_checked(coeff, exp2 - self.exp2).ok_or(CountError::Overflow)?;
            self.coeff = self
                .coeff
                .checked_add(shifted)
                .ok_or(CountError::Overflow)?;
        } else {
            let shifted = shl_checked(self.coeff, self.exp2 - exp2).ok_or(CountError::Overflow)?;
            self.coeff = shifted.checked_add(coeff).ok_or(CountError::Overflow)?;
            self.exp2 = exp2;
        }
        self.normalize();
        Ok(())
    }

    /// Adds another scaled count.
    pub fn add(&mut self, other: ScaledCount) -> Result<(), CountError> {
        self.accumulate(other.coeff, other.exp2)
    }

    /// The exact value, when it fits `u128`.
    pub fn exact(&self) -> Option<u128> {
        shl_checked(self.coeff, self.exp2)
    }

    /// The ratio `num / den` as a float, `None` when `den` is zero. When
    /// both counts fit `u128` the division is performed on the exact
    /// values, so the result is bit-identical with a plain `u128` count.
    pub fn ratio(num: &ScaledCount, den: &ScaledCount) -> Option<f64> {
        if den.is_zero() {
            return None;
        }
        if num.is_zero() {
            return Some(0.0);
        }
        if let (Some(a), Some(b)) = (num.exact(), den.exact()) {
            return Some(a as f64 / b as f64);
        }
        let diff = i128::from(num.exp2) - i128::from(den.exp2);
        let p = diff.clamp(-(1 << 20), 1 << 20) as i32;
        Some((num.coeff as f64 / den.coeff as f64) * 2f64.powi(p))
    }
}

/// A ground boolean constraint, lowered onto representative data: unary
/// constant atoms read a block's cell, non-unary atoms read a named bit,
/// constant equalities read the coincidence partition.
#[derive(Clone, Debug)]
enum Ground {
    Bool(bool),
    /// `P(c)` for tracked unary `P`: bit `pred` of the cell of `c`'s block.
    Unary {
        pred: usize,
        konst: usize,
    },
    /// A non-unary constant atom: named bit `atom` (index into
    /// [`SymmetrySpec::atoms`], resolved per partition).
    Wide {
        atom: usize,
    },
    /// `c = d`: the constants share a block.
    ConstEq(usize, usize),
    Not(Box<Ground>),
    And(Box<Ground>, Box<Ground>),
    Or(Box<Ground>, Box<Ground>),
    Implies(Box<Ground>, Box<Ground>),
    Iff(Box<Ground>, Box<Ground>),
}

/// A proportion expression over the atom cells: a `Prop` leaf is the set
/// of cells (bitmask) satisfying its body/condition, so its value in a
/// representative is a pure function of the cell sizes.
#[derive(Clone, Debug)]
enum PropNode {
    Rat(Rat),
    Prop { body: u64, cond: Option<u64> },
    Add(Box<PropNode>, Box<PropNode>),
    Sub(Box<PropNode>, Box<PropNode>),
    Mul(Box<PropNode>, Box<PropNode>),
}

/// One statistical conjunct `lhs op rhs`.
#[derive(Clone, Debug)]
struct Stat {
    lhs: PropNode,
    op: CmpOp,
    rhs: PropNode,
}

/// A formula lowered for symmetry-reduced counting: the detected group
/// structure plus the constraints rewritten over representatives.
#[derive(Clone, Debug)]
pub struct SymmetrySpec {
    /// Mentioned unary predicate indices, sorted; bit `i` of a cell is
    /// the truth of `tracked[i]`.
    tracked: Vec<usize>,
    /// Unary predicates the formula never mentions: `2^N` free bits each.
    free_unary: u64,
    /// Arities of every non-unary predicate (free bits `N^arity` each,
    /// minus the named bits the formula pins).
    wide_arities: Vec<u32>,
    /// Number of constants.
    consts: usize,
    /// Distinct mentioned non-unary constant atoms `(pred, const args)`.
    atoms: Vec<(usize, Vec<usize>)>,
    /// Ground conjuncts.
    ground: Vec<Ground>,
    /// Statistical conjuncts.
    stats: Vec<Stat>,
}

/// One coincidence partition of the constants with its derived data.
struct Partition {
    /// Block of each constant (restricted-growth string).
    block_of: Vec<usize>,
    /// Number of blocks.
    blocks: usize,
    /// Named-bit index of each mentioned atom under this partition
    /// (atoms colliding after block substitution share a bit).
    atom_bit: Vec<usize>,
    /// Number of distinct named bits.
    named_bits: usize,
    /// Free predicate bits: `N·free_unary + Σ N^arity − named_bits`.
    exp2: u64,
}

/// A successful symmetry-reduced count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SymmetryOutcome {
    /// The exact model count.
    pub count: ScaledCount,
    /// Orbit representatives visited (the budget unit, mirroring
    /// [`crate::count::CountOutcome::visited`]).
    pub reps: u64,
}

impl SymmetrySpec {
    /// Lowers `formula` for orbit counting, or `None` when it falls
    /// outside the supported fragment (the caller then uses plain
    /// branch-and-count). Conjuncts of a conjunction are classified
    /// independently, so a spec for `KB ∧ q` exists whenever specs for
    /// the KB and the query both do.
    pub fn detect(vocab: &Vocabulary, formula: &Formula) -> Option<SymmetrySpec> {
        if vocab.func_count() > 0 || vocab.const_count() > MAX_CONSTANTS {
            return None;
        }
        let mut unary_set: BTreeSet<usize> = BTreeSet::new();
        let mut atoms: Vec<(usize, Vec<usize>)> = Vec::new();
        enum Conjunct<'a> {
            Ground(&'a Formula),
            Stat(&'a PropExpr, CmpOp, &'a PropExpr),
        }
        let mut conjuncts: Vec<Conjunct> = Vec::new();
        for c in formula.conjuncts() {
            if let Formula::Cmp(l, op, r) = c {
                if scan_prop(vocab, l, &mut unary_set) && scan_prop(vocab, r, &mut unary_set) {
                    conjuncts.push(Conjunct::Stat(l, *op, r));
                    continue;
                }
                return None;
            }
            if scan_ground(vocab, c, &mut unary_set, &mut atoms) {
                conjuncts.push(Conjunct::Ground(c));
            } else {
                return None;
            }
        }
        if unary_set.len() > MAX_TRACKED_UNARY || atoms.len() > MAX_NAMED_ATOMS {
            return None;
        }
        let tracked: Vec<usize> = unary_set.into_iter().collect();
        let mut free_unary = 0u64;
        let mut wide_arities = Vec::new();
        for p in vocab.preds() {
            let arity = vocab.pred_arity(p);
            if arity == 1 {
                if !tracked.contains(&p.index()) {
                    free_unary += 1;
                }
            } else {
                wide_arities.push(arity as u32);
            }
        }
        let mut ground = Vec::new();
        let mut stats = Vec::new();
        for c in conjuncts {
            match c {
                Conjunct::Ground(f) => ground.push(build_ground(f, &tracked, &atoms)),
                Conjunct::Stat(l, op, r) => stats.push(Stat {
                    lhs: build_prop(l, &tracked),
                    op,
                    rhs: build_prop(r, &tracked),
                }),
            }
        }
        Some(SymmetrySpec {
            tracked,
            free_unary,
            wide_arities,
            consts: vocab.const_count(),
            atoms,
            ground,
            stats,
        })
    }

    /// Number of atom cells (`2^k` over the tracked unary predicates).
    pub fn cells(&self) -> usize {
        1 << self.tracked.len()
    }

    /// Counts the models of the lowered formula over `W_n(Φ)` by
    /// weighted orbit-representative enumeration.
    ///
    /// Deterministic at any [`CountOptions::threads`] value: the count,
    /// the [`SymmetryOutcome::reps`] total and the failure mode are
    /// identical across thread counts for fixed `(spec, n, budget)`.
    pub fn count(
        &self,
        n: usize,
        tol: &Tolerances,
        opts: &CountOptions,
    ) -> Result<SymmetryOutcome, CountError> {
        assert!(n >= 1, "domain size must be positive");
        let partitions = self.partitions(n)?;
        let chunks = (n + 1) as u64;
        let chunk_budget = (opts.max_visited / chunks).max(1);

        let run_chunk = |c0: u64| self.run_chunk(&partitions, n, c0 as usize, tol, chunk_budget);

        let threads = match opts.threads {
            0 => std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1),
            t => t,
        }
        .min(chunks as usize)
        .max(1);

        type ChunkResult = Result<(ScaledCount, u64), CountError>;
        let results: Vec<Option<ChunkResult>> = if threads == 1 {
            let mut out: Vec<Option<ChunkResult>> = Vec::with_capacity(chunks as usize);
            for c in 0..chunks {
                let r = run_chunk(c);
                let failed = r.is_err();
                out.push(Some(r));
                if failed {
                    break;
                }
            }
            out.resize_with(chunks as usize, || None);
            out
        } else {
            let next = AtomicU64::new(0);
            let aborted = AtomicBool::new(false);
            let shards = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let next = &next;
                        let aborted = &aborted;
                        let run_chunk = &run_chunk;
                        scope.spawn(move || {
                            let mut out: Vec<(u64, ChunkResult)> = Vec::new();
                            loop {
                                if aborted.load(Ordering::Relaxed) {
                                    break;
                                }
                                let c = next.fetch_add(1, Ordering::Relaxed);
                                if c >= chunks {
                                    break;
                                }
                                let r = run_chunk(c);
                                if r.is_err() {
                                    aborted.store(true, Ordering::Relaxed);
                                }
                                out.push((c, r));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("symmetry worker panicked"))
                    .collect::<Vec<_>>()
            });
            let mut ordered: Vec<Option<ChunkResult>> = vec![None; chunks as usize];
            for shard in shards {
                for (c, r) in shard {
                    ordered[c as usize] = Some(r);
                }
            }
            ordered
        };

        let mut count = ScaledCount::ZERO;
        let mut reps = 0u64;
        for r in results {
            match r {
                Some(Ok((sum, chunk_reps))) => {
                    count.add(sum)?;
                    reps += chunk_reps;
                }
                Some(Err(e)) => return Err(e),
                // Skipped after an abort elsewhere: the error below (or
                // earlier in chunk order) is the outcome.
                None => return Err(CountError::BudgetExhausted),
            }
        }
        Ok(SymmetryOutcome { count, reps })
    }

    /// Enumerates the coincidence partitions with their per-partition
    /// named-bit tables and free-bit exponents at domain size `n`.
    fn partitions(&self, n: usize) -> Result<Vec<Partition>, CountError> {
        let mut wide_bits = 0u64;
        for &arity in &self.wide_arities {
            let bits = (n as u64).checked_pow(arity).ok_or(CountError::Overflow)?;
            wide_bits = wide_bits.checked_add(bits).ok_or(CountError::Overflow)?;
        }
        let base = (self.free_unary)
            .checked_mul(n as u64)
            .and_then(|u| u.checked_add(wide_bits))
            .ok_or(CountError::Overflow)?;

        let mut out = Vec::new();
        let mut block_of = Vec::with_capacity(self.consts);
        self.partitions_rec(&mut block_of, 0, n, base, &mut out)?;
        Ok(out)
    }

    fn partitions_rec(
        &self,
        block_of: &mut Vec<usize>,
        blocks: usize,
        n: usize,
        base_exp: u64,
        out: &mut Vec<Partition>,
    ) -> Result<(), CountError> {
        if block_of.len() == self.consts {
            // More blocks than elements cannot be realized (the falling
            // factorial would vanish for every profile).
            if blocks > n {
                return Ok(());
            }
            let mut bit_tuples: Vec<(usize, Vec<usize>)> = Vec::new();
            let mut atom_bit = Vec::with_capacity(self.atoms.len());
            for (pred, args) in &self.atoms {
                let tuple: Vec<usize> = args.iter().map(|&c| block_of[c]).collect();
                let key = (*pred, tuple);
                let bit = match bit_tuples.iter().position(|k| *k == key) {
                    Some(i) => i,
                    None => {
                        bit_tuples.push(key);
                        bit_tuples.len() - 1
                    }
                };
                atom_bit.push(bit);
            }
            let named_bits = bit_tuples.len();
            let exp2 = base_exp
                .checked_sub(named_bits as u64)
                .ok_or(CountError::Overflow)?;
            out.push(Partition {
                block_of: block_of.clone(),
                blocks,
                atom_bit,
                named_bits,
                exp2,
            });
            return Ok(());
        }
        // Restricted growth: the next constant joins an existing block or
        // opens the next fresh one.
        for b in 0..=blocks {
            block_of.push(b);
            self.partitions_rec(block_of, blocks.max(b + 1), n, base_exp, out)?;
            block_of.pop();
        }
        Ok(())
    }

    /// Counts the representatives whose first atom cell has exactly `c0`
    /// elements — one deterministic chunk of the full enumeration.
    fn run_chunk(
        &self,
        partitions: &[Partition],
        n: usize,
        c0: usize,
        tol: &Tolerances,
        budget: u64,
    ) -> Result<(ScaledCount, u64), CountError> {
        let cells = self.cells();
        let mut sum = ScaledCount::ZERO;
        let mut reps = 0u64;
        let mut occ = vec![0u64; cells];
        let mut counts = vec![0u64; cells];
        for part in partitions {
            let b = part.blocks;
            let mut assign = vec![0usize; b];
            loop {
                reps += 1;
                if reps > budget {
                    return Err(CountError::BudgetExhausted);
                }
                occ.iter_mut().for_each(|o| *o = 0);
                for &a in &assign {
                    occ[a] += 1;
                }
                if occ[0] <= c0 as u64 {
                    reps = reps.saturating_add(1u64 << part.named_bits);
                    if reps > budget {
                        return Err(CountError::BudgetExhausted);
                    }
                    let mut sat: u128 = 0;
                    'sigma: for sigma in 0u64..(1u64 << part.named_bits) {
                        for g in &self.ground {
                            if !eval_ground(g, part, &assign, sigma) {
                                continue 'sigma;
                            }
                        }
                        sat += 1;
                    }
                    if sat > 0 {
                        let profiles =
                            self.profile_sum(n, c0, &occ, &mut counts, tol, &mut reps, budget)?;
                        if profiles > 0 {
                            let coeff = sat.checked_mul(profiles).ok_or(CountError::Overflow)?;
                            sum.accumulate(coeff, part.exp2)?;
                        }
                    }
                }
                // Advance the block → cell odometer.
                let mut i = b;
                loop {
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                    assign[i] += 1;
                    if assign[i] < cells {
                        break;
                    }
                    assign[i] = 0;
                    if i == 0 {
                        i = usize::MAX; // signal done
                        break;
                    }
                }
                if b == 0 || i == usize::MAX {
                    break;
                }
            }
        }
        Ok((sum, reps))
    }

    /// Sums `multinomial(n; c⃗) · Π (c_i)_(occ_i)` over the profiles with
    /// `c_0 = c0` that satisfy every statistical conjunct.
    #[allow(clippy::too_many_arguments)]
    fn profile_sum(
        &self,
        n: usize,
        c0: usize,
        occ: &[u64],
        counts: &mut [u64],
        tol: &Tolerances,
        reps: &mut u64,
        budget: u64,
    ) -> Result<u128, CountError> {
        let c0 = c0 as u64;
        let n = n as u64;
        if c0 > n || occ[0] > c0 {
            return Ok(0);
        }
        // With a single cell the whole domain is that cell: only the
        // `c0 = n` chunk carries profiles.
        if occ.len() == 1 && c0 != n {
            return Ok(0);
        }
        counts[0] = c0;
        let w0 = binomial(n, c0)
            .and_then(|w| w.checked_mul(falling(c0, occ[0])))
            .ok_or(CountError::Overflow)?;
        if w0 == 0 {
            return Ok(0);
        }
        let mut acc = 0u128;
        self.profile_rec(n, occ, counts, 1, n - c0, w0, tol, reps, budget, &mut acc)?;
        Ok(acc)
    }

    #[allow(clippy::too_many_arguments)]
    fn profile_rec(
        &self,
        n: u64,
        occ: &[u64],
        counts: &mut [u64],
        idx: usize,
        remaining: u64,
        weight: u128,
        tol: &Tolerances,
        reps: &mut u64,
        budget: u64,
        acc: &mut u128,
    ) -> Result<(), CountError> {
        let cells = occ.len();
        if idx == cells {
            debug_assert_eq!(remaining, 0);
            *reps += 1;
            if *reps > budget {
                return Err(CountError::BudgetExhausted);
            }
            if weight > 0 && self.stats_hold(counts, n, tol) {
                *acc = acc.checked_add(weight).ok_or(CountError::Overflow)?;
            }
            return Ok(());
        }
        if idx == cells - 1 {
            // The last cell takes whatever remains.
            if remaining < occ[idx] {
                return Ok(());
            }
            counts[idx] = remaining;
            let w = weight
                .checked_mul(falling(remaining, occ[idx]))
                .ok_or(CountError::Overflow)?;
            return self.profile_rec(n, occ, counts, idx + 1, 0, w, tol, reps, budget, acc);
        }
        // Sizes below the block occupancy have weight zero: skip them.
        for c in occ[idx]..=remaining {
            counts[idx] = c;
            let w = binomial(remaining, c)
                .and_then(|b| weight.checked_mul(b))
                .and_then(|w| w.checked_mul(falling(c, occ[idx])))
                .ok_or(CountError::Overflow)?;
            self.profile_rec(
                n,
                occ,
                counts,
                idx + 1,
                remaining - c,
                w,
                tol,
                reps,
                budget,
                acc,
            )?;
        }
        Ok(())
    }

    /// Evaluates every statistical conjunct on a profile, with the
    /// measure-zero convention (an undefined conditional proportion makes
    /// its comparison vacuously true), exactly as `count`/`eval` do.
    fn stats_hold(&self, counts: &[u64], n: u64, tol: &Tolerances) -> bool {
        for stat in &self.stats {
            let l = eval_prop_node(&stat.lhs, counts, n);
            let r = eval_prop_node(&stat.rhs, counts, n);
            let ok = match (l, r) {
                (Some(a), Some(b)) => match stat.op {
                    CmpOp::ApproxEq(t) => a.approx_eq(b, tol.get(t)),
                    CmpOp::ApproxLeq(t) => a.approx_leq(b, tol.get(t)),
                    CmpOp::Eq => a == b,
                    CmpOp::Leq => a <= b,
                },
                _ => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

fn eval_ground(g: &Ground, part: &Partition, assign: &[usize], sigma: u64) -> bool {
    match g {
        Ground::Bool(b) => *b,
        Ground::Unary { pred, konst } => (assign[part.block_of[*konst]] >> pred) & 1 == 1,
        Ground::Wide { atom } => (sigma >> part.atom_bit[*atom]) & 1 == 1,
        Ground::ConstEq(a, b) => part.block_of[*a] == part.block_of[*b],
        Ground::Not(g) => !eval_ground(g, part, assign, sigma),
        Ground::And(a, b) => {
            eval_ground(a, part, assign, sigma) && eval_ground(b, part, assign, sigma)
        }
        Ground::Or(a, b) => {
            eval_ground(a, part, assign, sigma) || eval_ground(b, part, assign, sigma)
        }
        Ground::Implies(a, b) => {
            !eval_ground(a, part, assign, sigma) || eval_ground(b, part, assign, sigma)
        }
        Ground::Iff(a, b) => {
            eval_ground(a, part, assign, sigma) == eval_ground(b, part, assign, sigma)
        }
    }
}

/// The value of a proportion expression on a profile: `None` is the
/// undefined (measure-zero conditional) case, which `map2`-propagates
/// through arithmetic.
fn eval_prop_node(node: &PropNode, counts: &[u64], n: u64) -> Option<Rat> {
    match node {
        PropNode::Rat(r) => Some(*r),
        PropNode::Prop { body, cond } => match cond {
            None => Some(Rat::new(masked_sum(counts, *body) as i128, n as i128)),
            Some(cm) => {
                let cond_count = masked_sum(counts, *cm);
                if cond_count == 0 {
                    None
                } else {
                    Some(Rat::new(
                        masked_sum(counts, body & cm) as i128,
                        cond_count as i128,
                    ))
                }
            }
        },
        PropNode::Add(a, b) => Some(eval_prop_node(a, counts, n)? + eval_prop_node(b, counts, n)?),
        PropNode::Sub(a, b) => Some(eval_prop_node(a, counts, n)? - eval_prop_node(b, counts, n)?),
        PropNode::Mul(a, b) => Some(eval_prop_node(a, counts, n)? * eval_prop_node(b, counts, n)?),
    }
}

fn masked_sum(counts: &[u64], mask: u64) -> u64 {
    let mut sum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if (mask >> i) & 1 == 1 {
            sum += c;
        }
    }
    sum
}

/// `C(n, k)` exactly (the running product is divisible at every step).
fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut r: u128 = 1;
    for i in 1..=k {
        r = r.checked_mul(u128::from(n - k + i))?;
        r /= u128::from(i);
    }
    Some(r)
}

/// The falling factorial `(c)_k = c·(c−1)···(c−k+1)`; zero when `k > c`.
/// With `c ≤ 254` and `k ≤ 8` this never overflows `u128`.
fn falling(c: u64, k: u64) -> u128 {
    let mut r: u128 = 1;
    for i in 0..k {
        if i >= c {
            return 0;
        }
        r *= u128::from(c - i);
    }
    r
}

fn scan_ground(
    vocab: &Vocabulary,
    f: &Formula,
    unary: &mut BTreeSet<usize>,
    atoms: &mut Vec<(usize, Vec<usize>)>,
) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Pred(p, args) => {
            let mut consts = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    Term::Const(c) => consts.push(c.index()),
                    _ => return false,
                }
            }
            if vocab.pred_arity(*p) == 1 {
                unary.insert(p.index());
            } else {
                let key = (p.index(), consts);
                if !atoms.contains(&key) {
                    atoms.push(key);
                }
            }
            true
        }
        Formula::TermEq(a, b) => matches!((a, b), (Term::Const(_), Term::Const(_))),
        Formula::Not(g) => scan_ground(vocab, g, unary, atoms),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            scan_ground(vocab, a, unary, atoms) && scan_ground(vocab, b, unary, atoms)
        }
        _ => false,
    }
}

fn scan_prop(vocab: &Vocabulary, e: &PropExpr, unary: &mut BTreeSet<usize>) -> bool {
    match e {
        PropExpr::Rat(_) => true,
        PropExpr::Prop { body, cond, vars } => {
            if vars.len() != 1 {
                return false;
            }
            let v = vars[0];
            scan_unary_body(vocab, body, v, unary)
                && cond
                    .as_deref()
                    .is_none_or(|c| scan_unary_body(vocab, c, v, unary))
        }
        PropExpr::Add(a, b) | PropExpr::Sub(a, b) | PropExpr::Mul(a, b) => {
            scan_prop(vocab, a, unary) && scan_prop(vocab, b, unary)
        }
    }
}

fn scan_unary_body(vocab: &Vocabulary, f: &Formula, v: VarId, unary: &mut BTreeSet<usize>) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Pred(p, args) => match args.as_slice() {
            [Term::Var(w)] if *w == v && vocab.pred_arity(*p) == 1 => {
                unary.insert(p.index());
                true
            }
            _ => false,
        },
        Formula::Not(g) => scan_unary_body(vocab, g, v, unary),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            scan_unary_body(vocab, a, v, unary) && scan_unary_body(vocab, b, v, unary)
        }
        _ => false,
    }
}

fn build_ground(f: &Formula, tracked: &[usize], atoms: &[(usize, Vec<usize>)]) -> Ground {
    match f {
        Formula::True => Ground::Bool(true),
        Formula::False => Ground::Bool(false),
        Formula::Pred(p, args) => {
            let consts: Vec<usize> = args
                .iter()
                .map(|a| match a {
                    Term::Const(c) => c.index(),
                    _ => unreachable!("scan admitted a non-constant argument"),
                })
                .collect();
            match tracked.binary_search(&p.index()) {
                Ok(bit) if consts.len() == 1 => Ground::Unary {
                    pred: bit,
                    konst: consts[0],
                },
                _ => {
                    let atom = atoms
                        .iter()
                        .position(|k| k.0 == p.index() && k.1 == consts)
                        .expect("scan recorded every non-unary atom");
                    Ground::Wide { atom }
                }
            }
        }
        Formula::TermEq(a, b) => match (a, b) {
            (Term::Const(x), Term::Const(y)) => Ground::ConstEq(x.index(), y.index()),
            _ => unreachable!("scan admitted a non-constant equality"),
        },
        Formula::Not(g) => Ground::Not(Box::new(build_ground(g, tracked, atoms))),
        Formula::And(a, b) => Ground::And(
            Box::new(build_ground(a, tracked, atoms)),
            Box::new(build_ground(b, tracked, atoms)),
        ),
        Formula::Or(a, b) => Ground::Or(
            Box::new(build_ground(a, tracked, atoms)),
            Box::new(build_ground(b, tracked, atoms)),
        ),
        Formula::Implies(a, b) => Ground::Implies(
            Box::new(build_ground(a, tracked, atoms)),
            Box::new(build_ground(b, tracked, atoms)),
        ),
        Formula::Iff(a, b) => Ground::Iff(
            Box::new(build_ground(a, tracked, atoms)),
            Box::new(build_ground(b, tracked, atoms)),
        ),
        _ => unreachable!("scan admitted an unsupported ground conjunct"),
    }
}

fn build_prop(e: &PropExpr, tracked: &[usize]) -> PropNode {
    match e {
        PropExpr::Rat(r) => PropNode::Rat(*r),
        PropExpr::Prop { body, cond, .. } => PropNode::Prop {
            body: body_mask(body, tracked),
            cond: cond.as_deref().map(|c| body_mask(c, tracked)),
        },
        PropExpr::Add(a, b) => PropNode::Add(
            Box::new(build_prop(a, tracked)),
            Box::new(build_prop(b, tracked)),
        ),
        PropExpr::Sub(a, b) => PropNode::Sub(
            Box::new(build_prop(a, tracked)),
            Box::new(build_prop(b, tracked)),
        ),
        PropExpr::Mul(a, b) => PropNode::Mul(
            Box::new(build_prop(a, tracked)),
            Box::new(build_prop(b, tracked)),
        ),
    }
}

/// The set of cells (bitmask) whose atom assignment satisfies `body`.
fn body_mask(body: &Formula, tracked: &[usize]) -> u64 {
    let cells = 1u64 << tracked.len();
    let mut mask = 0u64;
    for cell in 0..cells {
        if eval_cell(body, tracked, cell) {
            mask |= 1 << cell;
        }
    }
    mask
}

fn eval_cell(f: &Formula, tracked: &[usize], cell: u64) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Pred(p, _) => {
            let bit = tracked
                .binary_search(&p.index())
                .expect("scan tracked every unary predicate in a proportion body");
            (cell >> bit) & 1 == 1
        }
        Formula::Not(g) => !eval_cell(g, tracked, cell),
        Formula::And(a, b) => eval_cell(a, tracked, cell) && eval_cell(b, tracked, cell),
        Formula::Or(a, b) => eval_cell(a, tracked, cell) || eval_cell(b, tracked, cell),
        Formula::Implies(a, b) => !eval_cell(a, tracked, cell) || eval_cell(b, tracked, cell),
        Formula::Iff(a, b) => eval_cell(a, tracked, cell) == eval_cell(b, tracked, cell),
        _ => unreachable!("scan admitted an unsupported proportion body"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::eval::Evaluator;
    use rw_logic::KnowledgeBase;

    fn tol() -> Tolerances {
        Tolerances::uniform(Rat::new(1, 4))
    }

    /// The naive oracle: enumerate every world and model-check.
    fn oracle_count(kb: &KnowledgeBase, f: &Formula, n: usize) -> u128 {
        let mut count = 0u128;
        enumerate::for_each_world(kb.vocab(), n, |w| {
            if Evaluator::new(w, kb.vocab(), &tol()).eval(f) {
                count += 1;
            }
        });
        count
    }

    #[test]
    fn scaled_counts_normalize_and_accumulate() {
        let mut a = ScaledCount::new(12, 0);
        assert_eq!((a.coeff, a.exp2), (3, 2));
        a.accumulate(1, 2).unwrap(); // 12 + 4 = 16
        assert_eq!(a.exact(), Some(16));
        a.accumulate(1, 0).unwrap(); // 17
        assert_eq!(a.exact(), Some(17));
        assert!(ScaledCount::ZERO.is_zero());
        assert_eq!(ScaledCount::ZERO.exact(), Some(0));
        // Far past u128: exact value unavailable, ratio still works.
        let big = ScaledCount::new(3, 400);
        assert_eq!(big.exact(), None);
        let half = ScaledCount::new(3, 399);
        assert_eq!(ScaledCount::ratio(&half, &big), Some(0.5));
        assert_eq!(ScaledCount::ratio(&big, &ScaledCount::ZERO), None);
        // Exact path divides the plain values.
        let num = ScaledCount::from_u128(196_608);
        let den = ScaledCount::from_u128(786_432);
        assert_eq!(
            ScaledCount::ratio(&num, &den),
            Some(196_608f64 / 786_432f64)
        );
    }

    #[test]
    fn orbit_counts_match_the_oracle_on_mixed_shapes() {
        for (kb_src, q_src, n_max) in [
            ("true", "P(C)", 5),
            ("P(C)", "P(C) or Q(C)", 5),
            ("P(C) & !P(C)", "P(C)", 4),
            ("||P(x)||_x ~=_1 0.5", "P(C)", 6),
            ("||P(x)||_x ~=_1 0.5; Likes(A, B)", "Likes(B, A)", 4),
            ("||Fly(x) | Bird(x)||_x ~=_1 1; Bird(C)", "Fly(C)", 5),
            ("Likes(A, B); A = B", "Likes(B, A)", 4),
            ("Likes(A, B) or Knows(B, A)", "!Likes(A, A)", 3),
            ("||P(x)||_x + ||Q(x)||_x <= 1; P(C)", "Q(C)", 5),
        ] {
            let mut kb = KnowledgeBase::parse(kb_src).unwrap();
            let q = kb.parse_query(q_src).unwrap();
            let kb_f = kb.as_formula();
            let both = Formula::and(kb_f.clone(), q);
            for f in [&kb_f, &both] {
                let spec = SymmetrySpec::detect(kb.vocab(), f)
                    .unwrap_or_else(|| panic!("`{kb_src}` should be in the symmetry fragment"));
                for n in 1..=n_max {
                    let out = spec.count(n, &tol(), &CountOptions::default()).unwrap();
                    assert_eq!(
                        out.count.exact().expect("small-N count fits u128"),
                        oracle_count(&kb, f, n),
                        "diverged on `{kb_src}` ⊢ `{q_src}` at N={n}"
                    );
                    assert!(out.reps > 0);
                }
            }
        }
    }

    #[test]
    fn detection_rejects_shapes_outside_the_fragment() {
        for src in [
            "forall x (P(x) => Q(x))",
            "exists x (P(x))",
            "||Likes(x, y)||_{x,y} ~=_1 0.25",
            "P(Next(C))",
            "||P(x) & Likes(x, C)||_x ~=_1 0.5",
            "!(||P(x)||_x ~=_1 0.5)",
            "|| ||Rises(x, y) | Day(y)||_y ~=_1 1 ||_x ~=_1 0.5",
        ] {
            let kb = match KnowledgeBase::parse(src) {
                Ok(kb) => kb,
                Err(_) => continue, // free variables may not even parse
            };
            let f = kb.as_formula();
            assert!(
                SymmetrySpec::detect(kb.vocab(), &f).is_none(),
                "`{src}` should be outside the symmetry fragment"
            );
        }
    }

    #[test]
    fn thread_counts_never_change_the_outcome() {
        for (kb_src, n) in [
            ("||P(x)||_x ~=_1 0.5; Q(C)", 12),
            ("||P(x)||_x ~=_1 0.5; Likes(A, B); !Likes(B, A)", 10),
            ("||Fly(x) | Bird(x)||_x ~=_1 1; Bird(C)", 14),
        ] {
            let kb = KnowledgeBase::parse(kb_src).unwrap();
            let f = kb.as_formula();
            let spec = SymmetrySpec::detect(kb.vocab(), &f).unwrap();
            let base = spec.count(n, &tol(), &CountOptions::default()).unwrap();
            for threads in [2usize, 4, 0] {
                let opts = CountOptions {
                    threads,
                    ..CountOptions::default()
                };
                assert_eq!(
                    spec.count(n, &tol(), &opts).unwrap(),
                    base,
                    "`{kb_src}` diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_reported_and_thread_invariant() {
        let kb = KnowledgeBase::parse("||P(x)||_x ~=_1 0.5; ||Q(x)||_x ~=_1 0.5").unwrap();
        let f = kb.as_formula();
        let spec = SymmetrySpec::detect(kb.vocab(), &f).unwrap();
        for threads in [1usize, 2, 4] {
            let err = spec
                .count(
                    24,
                    &tol(),
                    &CountOptions {
                        max_visited: 40,
                        threads,
                    },
                )
                .unwrap_err();
            assert_eq!(err, CountError::BudgetExhausted);
        }
    }

    #[test]
    fn deep_domains_are_reachable_within_the_default_budget() {
        // Acceptance shapes: one unary KB and one unary+binary KB at
        // N ≥ 32 under the default visited budget.
        let unary = KnowledgeBase::parse("||P(x)||_x ~=_1 0.5; P(C)").unwrap();
        let mixed = KnowledgeBase::parse("||P(x)||_x ~=_1 0.5; Likes(A, B); P(A)").unwrap();
        for (kb, n) in [(&unary, 40usize), (&mixed, 40)] {
            let f = kb.as_formula();
            let spec = SymmetrySpec::detect(kb.vocab(), &f).unwrap();
            let out = spec.count(n, &tol(), &CountOptions::default()).unwrap();
            assert!(!out.count.is_zero(), "count vanished at N={n}");
            assert!(out.reps < crate::count::DEFAULT_MAX_VISITED);
        }
    }

    #[test]
    fn ground_boolean_structure_is_honored() {
        // `P(C) or Q(C)` at N=3: 2^3·2^3 unary bit patterns, minus the
        // quarter where C's element has neither P nor Q.
        let kb = KnowledgeBase::parse("P(C) or Q(C)").unwrap();
        let f = kb.as_formula();
        let spec = SymmetrySpec::detect(kb.vocab(), &f).unwrap();
        for n in 1..=5 {
            let out = spec.count(n, &tol(), &CountOptions::default()).unwrap();
            assert_eq!(
                out.count.exact().unwrap(),
                oracle_count(&kb, &f, n),
                "N={n}"
            );
        }
    }
}
