//! Compilation of closed `L≈` formulas into flat **slot programs**.
//!
//! The world space `W_N(Φ)` is a product of independent *slots*: one bit
//! per predicate tuple, one element choice per function-table entry and
//! per constant (the same layout [`crate::enumerate::for_each_world`]'s
//! odometer walks). A [`Program`] lowers a formula *once* for a fixed
//! domain size `N` into a flat arena of nodes over those slot indices:
//! quantifiers and proportion subscripts are grounded (N is tiny on the
//! enumeration path), terms become slot-lookup programs, and ground
//! atoms with fully static arguments collapse to a single bit reference.
//!
//! The payoff is in [`crate::count`]: a program can be evaluated under a
//! *partial* slot assignment with three-valued (Kleene) logic, which is
//! what lets branch-and-count prune entire subtrees and multiply out
//! unconstrained slots instead of enumerating them. Compilation also
//! extracts the **unit literals** (top-level ground-literal conjuncts)
//! whose slot values are forced, and a **support-ordered branch order**
//! (slots feeding term evaluation first, then directly-referenced bits,
//! then bits only reachable through dynamic atoms).
//!
//! Semantics are mirrored from [`crate::eval::Evaluator`] exactly —
//! including the measure-zero convention (comparisons touching an
//! undefined conditional proportion hold vacuously) — so a compiled
//! count always equals the oracle count.

use rw_logic::ast::{CmpOp, Formula, PropExpr, Term};
use rw_logic::{Tolerances, Vocabulary};
use rw_util::Rat;

/// Sentinel for "no node" (an unconditional count instance).
pub(crate) const NO_NODE: u32 = u32::MAX;

/// The slot layout of `W_N(Φ)`: predicates first (one bit per tuple,
/// row-major), then function tables (one entry per tuple), then
/// constants — identical to the odometer's order in `enumerate`.
#[derive(Clone, Debug)]
pub struct SlotLayout {
    pred_base: Vec<usize>,
    func_base: Vec<usize>,
    const_base: usize,
    slot_count: usize,
    n: usize,
}

impl SlotLayout {
    /// Builds the layout, or `None` when the slot space itself overflows
    /// `usize` (far beyond countable either way).
    pub fn new(vocab: &Vocabulary, n: usize) -> Option<SlotLayout> {
        let mut next = 0usize;
        let mut pred_base = Vec::with_capacity(vocab.pred_count());
        for p in vocab.preds() {
            pred_base.push(next);
            let size = n.checked_pow(u32::try_from(vocab.pred_arity(p)).ok()?)?;
            next = next.checked_add(size)?;
        }
        let mut func_base = Vec::with_capacity(vocab.func_count());
        for f in vocab.funcs() {
            func_base.push(next);
            let size = n.checked_pow(u32::try_from(vocab.func_arity(f)).ok()?)?;
            next = next.checked_add(size)?;
        }
        let const_base = next;
        next = next.checked_add(vocab.const_count())?;
        Some(SlotLayout {
            pred_base,
            func_base,
            const_base,
            slot_count: next,
            n,
        })
    }

    /// Total number of slots.
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The domain size the layout was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// How many values the slot ranges over (2 for predicate bits, `n`
    /// for function entries and constants).
    pub fn domain(&self, slot: usize) -> usize {
        if slot < self.func_start() {
            2
        } else {
            self.n
        }
    }

    fn func_start(&self) -> usize {
        self.func_base.first().copied().unwrap_or(self.const_base)
    }

    pub(crate) fn pred_slot(&self, pred: usize, tuple_index: usize) -> usize {
        self.pred_base[pred] + tuple_index
    }

    pub(crate) fn func_slot(&self, func: usize, tuple_index: usize) -> usize {
        self.func_base[func] + tuple_index
    }

    pub(crate) fn const_slot(&self, c: usize) -> usize {
        self.const_base + c
    }

    /// `Π domain(slot)` over every slot — the interpretation count —
    /// `None` on `u128` overflow.
    pub fn total_assignments(&self) -> Option<u128> {
        let mut total: u128 = 1;
        for s in 0..self.slot_count {
            total = total.checked_mul(self.domain(s) as u128)?;
        }
        Some(total)
    }
}

/// A compiled term: evaluates to a domain element, or to "unknown" while
/// a slot it reads is unassigned.
#[derive(Clone, Debug)]
pub(crate) enum CTerm {
    /// A fixed element (a grounded variable).
    Elem(usize),
    /// The denotation of a constant: reads one constant slot.
    ConstSlot(usize),
    /// A function application: reads a table entry chosen by its
    /// (recursively evaluated) arguments.
    App { func: usize, args: Vec<u32> },
}

/// A compiled formula node (three-valued under partial assignments).
#[derive(Clone, Debug)]
pub(crate) enum CNode {
    Bool(bool),
    /// A ground atom whose tuple is static: one predicate bit.
    Lit {
        slot: usize,
    },
    /// A ground atom whose tuple depends on constant/function slots.
    Atom {
        pred: usize,
        args: Vec<u32>,
    },
    /// Term equality (static cases are folded to `Bool` at compile time).
    Eq(u32, u32),
    Not(u32),
    And(Vec<u32>),
    Or(Vec<u32>),
    Iff(u32, u32),
    Cmp {
        lhs: u32,
        op: CmpOp,
        rhs: u32,
    },
}

/// One grounded instance of a proportion: `cond == NO_NODE` means the
/// instance's condition is statically true (or the proportion is
/// unconditional).
#[derive(Clone, Debug)]
pub(crate) struct CountInst {
    pub(crate) body: u32,
    pub(crate) cond: u32,
}

/// A compiled proportion expression.
#[derive(Clone, Debug)]
pub(crate) enum CProp {
    Rat(Rat),
    /// `||body||` / `||body | cond||` grounded over its subscript tuple
    /// space. `base_body`/`base_cond` pre-count the instances that folded
    /// to constants at compile time; `insts` holds the rest.
    Count {
        insts: Vec<CountInst>,
        base_body: i128,
        base_cond: i128,
        conditional: bool,
        /// `n^k`, the unconditional denominator.
        total: i128,
    },
    Add(u32, u32),
    Sub(u32, u32),
    Mul(u32, u32),
}

/// A forced ground literal extracted from the program's top-level
/// conjunction: once the referenced node's slot is resolvable, the slot
/// value is implied.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Unit {
    /// A `Lit` or `Atom` node.
    pub(crate) node: u32,
    /// The implied truth value.
    pub(crate) value: bool,
}

/// How a slot participates in the program — drives the branch order.
const CLASS_TERM: u8 = 0; // feeds term evaluation (constants, function entries)
const CLASS_LIT: u8 = 1; // directly referenced predicate bit
const CLASS_DYN: u8 = 2; // reachable only through a dynamic atom
const CLASS_NONE: u8 = 3; // not in the program at all (free)

/// A closed formula lowered over a fixed vocabulary and domain size.
pub struct Program {
    pub(crate) layout: SlotLayout,
    pub(crate) terms: Vec<CTerm>,
    pub(crate) nodes: Vec<CNode>,
    pub(crate) props: Vec<CProp>,
    pub(crate) root: u32,
    /// Support slots in branch order (term-feeding slots first, then by
    /// descending occurrence count, then by slot index — deterministic).
    pub(crate) branch_order: Vec<u32>,
    pub(crate) units: Vec<Unit>,
    pub(crate) tol: Tolerances,
}

impl Program {
    /// Lowers `formula` for counting over `W_n(Φ)` under `tol`. `None`
    /// when the slot space overflows `usize`.
    pub fn compile(
        vocab: &Vocabulary,
        n: usize,
        tol: &Tolerances,
        formula: &Formula,
    ) -> Option<Program> {
        assert!(n > 0, "domain must be nonempty");
        let layout = SlotLayout::new(vocab, n)?;
        let mut c = Compiler {
            layout,
            n,
            terms: Vec::new(),
            nodes: Vec::new(),
            props: Vec::new(),
            env: vec![None; vocab.var_count()],
        };
        let root = c.formula(formula);
        let mut prog = Program {
            layout: c.layout,
            terms: c.terms,
            nodes: c.nodes,
            props: c.props,
            root,
            branch_order: Vec::new(),
            units: Vec::new(),
            tol: tol.clone(),
        };
        prog.finish();
        Some(prog)
    }

    /// The domain size the program was compiled for.
    pub fn n(&self) -> usize {
        self.layout.n
    }

    /// The slot layout.
    pub fn layout(&self) -> &SlotLayout {
        &self.layout
    }

    /// Number of slots the search may have to branch over (the support).
    pub fn support_len(&self) -> usize {
        self.branch_order.len()
    }

    /// `Π domain(slot)` over the support slots, saturating: the
    /// worst-case size of the branch tree, used to predict whether the
    /// next domain size is worth attempting.
    pub fn support_assignments(&self) -> u128 {
        let mut total: u128 = 1;
        for &s in &self.branch_order {
            total = match total.checked_mul(self.layout.domain(s as usize) as u128) {
                Some(t) => t,
                None => return u128::MAX,
            };
        }
        total
    }

    /// Computes the branch order and unit literals after lowering.
    fn finish(&mut self) {
        let slot_count = self.layout.slot_count;
        let mut class = vec![CLASS_NONE; slot_count];
        let mut occ = vec![0u32; slot_count];
        let mut seen_nodes = vec![false; self.nodes.len()];
        let mut seen_props = vec![false; self.props.len()];
        self.mark_node(
            self.root,
            &mut class,
            &mut occ,
            &mut seen_nodes,
            &mut seen_props,
        );

        let mut order: Vec<u32> = (0..slot_count as u32)
            .filter(|&s| class[s as usize] != CLASS_NONE)
            .collect();
        order.sort_by_key(|&s| (class[s as usize], u32::MAX - occ[s as usize], s));
        self.branch_order = order;
        self.units = self.extract_units();
    }

    fn mark_term(&self, t: u32, class: &mut [u8], occ: &mut [u32]) {
        match &self.terms[t as usize] {
            CTerm::Elem(_) => {}
            CTerm::ConstSlot(slot) => {
                class[*slot] = CLASS_TERM;
                occ[*slot] += 1;
            }
            CTerm::App { func, args } => {
                let base = self.layout.func_base[*func];
                let end = self
                    .layout
                    .func_base
                    .get(*func + 1)
                    .copied()
                    .unwrap_or(self.layout.const_base);
                for s in base..end {
                    class[s] = CLASS_TERM;
                    occ[s] += 1;
                }
                for &a in args {
                    self.mark_term(a, class, occ);
                }
            }
        }
    }

    fn mark_node(
        &self,
        id: u32,
        class: &mut [u8],
        occ: &mut [u32],
        seen_nodes: &mut [bool],
        seen_props: &mut [bool],
    ) {
        if seen_nodes[id as usize] {
            return;
        }
        seen_nodes[id as usize] = true;
        match &self.nodes[id as usize] {
            CNode::Bool(_) => {}
            CNode::Lit { slot } => {
                class[*slot] = class[*slot].min(CLASS_LIT);
                occ[*slot] += 1;
            }
            CNode::Atom { pred, args } => {
                let base = self.layout.pred_base[*pred];
                let end = self
                    .layout
                    .pred_base
                    .get(*pred + 1)
                    .copied()
                    .unwrap_or_else(|| self.layout.func_start());
                for c in &mut class[base..end] {
                    *c = (*c).min(CLASS_DYN);
                }
                for &a in args {
                    self.mark_term(a, class, occ);
                }
            }
            CNode::Eq(a, b) => {
                self.mark_term(*a, class, occ);
                self.mark_term(*b, class, occ);
            }
            CNode::Not(g) => self.mark_node(*g, class, occ, seen_nodes, seen_props),
            CNode::And(children) | CNode::Or(children) => {
                for &ch in children {
                    self.mark_node(ch, class, occ, seen_nodes, seen_props);
                }
            }
            CNode::Iff(a, b) => {
                self.mark_node(*a, class, occ, seen_nodes, seen_props);
                self.mark_node(*b, class, occ, seen_nodes, seen_props);
            }
            CNode::Cmp { lhs, rhs, .. } => {
                self.mark_prop(*lhs, class, occ, seen_nodes, seen_props);
                self.mark_prop(*rhs, class, occ, seen_nodes, seen_props);
            }
        }
    }

    fn mark_prop(
        &self,
        id: u32,
        class: &mut [u8],
        occ: &mut [u32],
        seen_nodes: &mut [bool],
        seen_props: &mut [bool],
    ) {
        if seen_props[id as usize] {
            return;
        }
        seen_props[id as usize] = true;
        match &self.props[id as usize] {
            CProp::Rat(_) => {}
            CProp::Count { insts, .. } => {
                for inst in insts {
                    self.mark_node(inst.body, class, occ, seen_nodes, seen_props);
                    if inst.cond != NO_NODE {
                        self.mark_node(inst.cond, class, occ, seen_nodes, seen_props);
                    }
                }
            }
            CProp::Add(a, b) | CProp::Sub(a, b) | CProp::Mul(a, b) => {
                self.mark_prop(*a, class, occ, seen_nodes, seen_props);
                self.mark_prop(*b, class, occ, seen_nodes, seen_props);
            }
        }
    }

    /// Walks the root conjunction for literals whose slot value is
    /// forced in every model.
    fn extract_units(&self) -> Vec<Unit> {
        let mut units = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id as usize] {
                CNode::And(children) => stack.extend(children.iter().copied()),
                CNode::Lit { .. } | CNode::Atom { .. } => units.push(Unit {
                    node: id,
                    value: true,
                }),
                CNode::Not(g) => match &self.nodes[*g as usize] {
                    CNode::Lit { .. } | CNode::Atom { .. } => units.push(Unit {
                        node: *g,
                        value: false,
                    }),
                    _ => {}
                },
                _ => {}
            }
        }
        units
    }
}

struct Compiler {
    layout: SlotLayout,
    n: usize,
    terms: Vec<CTerm>,
    nodes: Vec<CNode>,
    props: Vec<CProp>,
    /// Variable grounding environment (quantifiers and proportion
    /// subscripts bind elements at compile time).
    env: Vec<Option<usize>>,
}

impl Compiler {
    fn push_term(&mut self, t: CTerm) -> u32 {
        self.terms.push(t);
        (self.terms.len() - 1) as u32
    }

    fn push_node(&mut self, n: CNode) -> u32 {
        self.nodes.push(n);
        (self.nodes.len() - 1) as u32
    }

    fn push_prop(&mut self, p: CProp) -> u32 {
        self.props.push(p);
        (self.props.len() - 1) as u32
    }

    fn boolean(&mut self, b: bool) -> u32 {
        self.push_node(CNode::Bool(b))
    }

    fn as_bool(&self, id: u32) -> Option<bool> {
        match self.nodes[id as usize] {
            CNode::Bool(b) => Some(b),
            _ => None,
        }
    }

    fn term(&mut self, t: &Term) -> u32 {
        match t {
            Term::Var(v) => {
                let e = self.env[v.index()]
                    .expect("compiled formulas must be closed (unbound variable)");
                self.push_term(CTerm::Elem(e))
            }
            Term::Const(c) => {
                let slot = self.layout.const_slot(c.index());
                self.push_term(CTerm::ConstSlot(slot))
            }
            Term::App(f, args) => {
                let cargs: Vec<u32> = args.iter().map(|a| self.term(a)).collect();
                self.push_term(CTerm::App {
                    func: f.index(),
                    args: cargs,
                })
            }
        }
    }

    fn static_elem(&self, t: u32) -> Option<usize> {
        match self.terms[t as usize] {
            CTerm::Elem(e) => Some(e),
            _ => None,
        }
    }

    fn not_of(&mut self, g: u32) -> u32 {
        if let Some(b) = self.as_bool(g) {
            return self.boolean(!b);
        }
        if let CNode::Not(inner) = self.nodes[g as usize] {
            return inner;
        }
        self.push_node(CNode::Not(g))
    }

    /// N-ary conjunction with constant folding and flattening.
    fn and_of(&mut self, children: Vec<u32>) -> u32 {
        let mut flat = Vec::with_capacity(children.len());
        for ch in children {
            match &self.nodes[ch as usize] {
                CNode::Bool(false) => return self.boolean(false),
                CNode::Bool(true) => {}
                CNode::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(ch),
            }
        }
        match flat.len() {
            0 => self.boolean(true),
            1 => flat[0],
            _ => self.push_node(CNode::And(flat)),
        }
    }

    fn or_of(&mut self, children: Vec<u32>) -> u32 {
        let mut flat = Vec::with_capacity(children.len());
        for ch in children {
            match &self.nodes[ch as usize] {
                CNode::Bool(true) => return self.boolean(true),
                CNode::Bool(false) => {}
                CNode::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(ch),
            }
        }
        match flat.len() {
            0 => self.boolean(false),
            1 => flat[0],
            _ => self.push_node(CNode::Or(flat)),
        }
    }

    fn formula(&mut self, f: &Formula) -> u32 {
        match f {
            Formula::True => self.boolean(true),
            Formula::False => self.boolean(false),
            Formula::Pred(p, args) => {
                let cargs: Vec<u32> = args.iter().map(|a| self.term(a)).collect();
                if cargs.iter().all(|&a| self.static_elem(a).is_some()) {
                    let mut idx = 0usize;
                    for &a in &cargs {
                        idx = idx * self.n + self.static_elem(a).unwrap();
                    }
                    let slot = self.layout.pred_slot(p.index(), idx);
                    self.push_node(CNode::Lit { slot })
                } else {
                    self.push_node(CNode::Atom {
                        pred: p.index(),
                        args: cargs,
                    })
                }
            }
            Formula::TermEq(a, b) => {
                let ca = self.term(a);
                let cb = self.term(b);
                match (self.static_elem(ca), self.static_elem(cb)) {
                    (Some(x), Some(y)) => self.boolean(x == y),
                    _ => self.push_node(CNode::Eq(ca, cb)),
                }
            }
            Formula::Not(g) => {
                let cg = self.formula(g);
                self.not_of(cg)
            }
            Formula::And(a, b) => {
                let ca = self.formula(a);
                let cb = self.formula(b);
                self.and_of(vec![ca, cb])
            }
            Formula::Or(a, b) => {
                let ca = self.formula(a);
                let cb = self.formula(b);
                self.or_of(vec![ca, cb])
            }
            Formula::Implies(a, b) => {
                let ca = self.formula(a);
                let na = self.not_of(ca);
                let cb = self.formula(b);
                self.or_of(vec![na, cb])
            }
            Formula::Iff(a, b) => {
                let ca = self.formula(a);
                let cb = self.formula(b);
                match (self.as_bool(ca), self.as_bool(cb)) {
                    (Some(x), Some(y)) => self.boolean(x == y),
                    (Some(true), None) => cb,
                    (None, Some(true)) => ca,
                    (Some(false), None) => self.not_of(cb),
                    (None, Some(false)) => self.not_of(ca),
                    (None, None) => self.push_node(CNode::Iff(ca, cb)),
                }
            }
            Formula::Forall(v, g) => {
                let prev = self.env[v.index()];
                let mut children = Vec::with_capacity(self.n);
                for e in 0..self.n {
                    self.env[v.index()] = Some(e);
                    children.push(self.formula(g));
                }
                self.env[v.index()] = prev;
                self.and_of(children)
            }
            Formula::Exists(v, g) => {
                let prev = self.env[v.index()];
                let mut children = Vec::with_capacity(self.n);
                for e in 0..self.n {
                    self.env[v.index()] = Some(e);
                    children.push(self.formula(g));
                }
                self.env[v.index()] = prev;
                self.or_of(children)
            }
            Formula::Cmp(lhs, op, rhs) => {
                let cl = self.prop(lhs);
                let cr = self.prop(rhs);
                self.push_node(CNode::Cmp {
                    lhs: cl,
                    op: *op,
                    rhs: cr,
                })
            }
        }
    }

    fn prop(&mut self, e: &PropExpr) -> u32 {
        match e {
            PropExpr::Rat(r) => self.push_prop(CProp::Rat(*r)),
            PropExpr::Add(a, b) => {
                let ca = self.prop(a);
                let cb = self.prop(b);
                self.push_prop(CProp::Add(ca, cb))
            }
            PropExpr::Sub(a, b) => {
                let ca = self.prop(a);
                let cb = self.prop(b);
                self.push_prop(CProp::Sub(ca, cb))
            }
            PropExpr::Mul(a, b) => {
                let ca = self.prop(a);
                let cb = self.prop(b);
                self.push_prop(CProp::Mul(ca, cb))
            }
            PropExpr::Prop { body, cond, vars } => {
                let k = vars.len();
                let total = (self.n as i128)
                    .checked_pow(k as u32)
                    .expect("proportion tuple space too large");
                let saved: Vec<Option<usize>> = vars.iter().map(|v| self.env[v.index()]).collect();
                let mut insts = Vec::new();
                let mut base_body: i128 = 0;
                let mut base_cond: i128 = 0;
                let mut assignment = vec![0usize; k];
                loop {
                    for (i, v) in vars.iter().enumerate() {
                        self.env[v.index()] = Some(assignment[i]);
                    }
                    let ccond = match cond {
                        Some(c) => {
                            let cc = self.formula(c);
                            match self.as_bool(cc) {
                                Some(false) => None, // instance statically excluded
                                Some(true) => Some(NO_NODE),
                                None => Some(cc),
                            }
                        }
                        None => Some(NO_NODE),
                    };
                    if let Some(cnode) = ccond {
                        let cbody = self.formula(body);
                        match (cnode, self.as_bool(cbody)) {
                            (NO_NODE, Some(b)) => {
                                base_cond += 1;
                                base_body += b as i128;
                            }
                            (cnode, _) => insts.push(CountInst {
                                body: cbody,
                                cond: cnode,
                            }),
                        }
                    }
                    // Advance the odometer over the subscript tuple.
                    let mut i = k;
                    loop {
                        if i == 0 {
                            break;
                        }
                        i -= 1;
                        assignment[i] += 1;
                        if assignment[i] < self.n {
                            break;
                        }
                        assignment[i] = 0;
                        if i == 0 {
                            i = usize::MAX;
                            break;
                        }
                    }
                    if k == 0 || i == usize::MAX {
                        break;
                    }
                }
                for (v, s) in vars.iter().zip(saved) {
                    self.env[v.index()] = s;
                }
                self.push_prop(CProp::Count {
                    insts,
                    base_body,
                    base_cond,
                    conditional: cond.is_some(),
                    total,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_logic::KnowledgeBase;

    fn tol() -> Tolerances {
        Tolerances::uniform(Rat::new(1, 4))
    }

    #[test]
    fn layout_matches_enumeration_order() {
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        v.pred("R", 2).unwrap();
        v.func("f", 1).unwrap();
        v.constant("c").unwrap();
        let l = SlotLayout::new(&v, 3).unwrap();
        // 3 P-bits, 9 R-bits, 3 f-entries, 1 constant.
        assert_eq!(l.slot_count(), 3 + 9 + 3 + 1);
        assert_eq!(l.domain(0), 2);
        assert_eq!(l.domain(3 + 9), 3); // first f entry
        assert_eq!(l.domain(3 + 9 + 3), 3); // the constant
        assert_eq!(
            l.total_assignments().unwrap(),
            crate::enumerate::count_interpretations(&v, 3).unwrap()
        );
    }

    #[test]
    fn ground_atoms_with_static_args_become_lits() {
        let kb = KnowledgeBase::parse("forall x (P(x))").unwrap();
        let f = kb.conjuncts()[0].clone();
        let p = Program::compile(kb.vocab(), 3, &tol(), &f).unwrap();
        // The grounded ∀ is an And of three Lit nodes.
        match &p.nodes[p.root as usize] {
            CNode::And(children) => {
                assert_eq!(children.len(), 3);
                for &ch in children {
                    assert!(matches!(p.nodes[ch as usize], CNode::Lit { .. }));
                }
            }
            other => panic!("{other:?}"),
        }
        // ...and they are all unit literals.
        assert_eq!(p.units.len(), 3);
        assert!(p.units.iter().all(|u| u.value));
    }

    #[test]
    fn constant_atoms_are_dynamic_and_constants_branch_first() {
        let kb = KnowledgeBase::parse("Likes(A, B)").unwrap();
        let f = kb.conjuncts()[0].clone();
        let p = Program::compile(kb.vocab(), 4, &tol(), &f).unwrap();
        assert!(matches!(p.nodes[p.root as usize], CNode::Atom { .. }));
        assert_eq!(p.units.len(), 1);
        // Branch order: the two constant slots (term class) come before
        // any predicate bit.
        let const_start = p.layout.const_base;
        assert!(p.branch_order.len() >= 2);
        assert!((p.branch_order[0] as usize) >= const_start);
        assert!((p.branch_order[1] as usize) >= const_start);
    }

    #[test]
    fn proportions_ground_to_count_props() {
        let kb = KnowledgeBase::parse("||P(x)||_x ~=_1 0.5").unwrap();
        let f = kb.conjuncts()[0].clone();
        let p = Program::compile(kb.vocab(), 4, &tol(), &f).unwrap();
        let CNode::Cmp { lhs, .. } = &p.nodes[p.root as usize] else {
            panic!("expected Cmp root");
        };
        let CProp::Count {
            insts,
            total,
            conditional,
            ..
        } = &p.props[*lhs as usize]
        else {
            panic!("expected Count lhs");
        };
        assert_eq!(insts.len(), 4);
        assert_eq!(*total, 4);
        assert!(!conditional);
    }

    #[test]
    fn boolean_folding_collapses_static_structure() {
        let mut kb = KnowledgeBase::parse("P(C) or !P(C)").unwrap();
        // `forall x (x = x)` folds to true at compile time.
        let f = kb.parse_query("forall x (x = x)").unwrap();
        let p = Program::compile(kb.vocab(), 3, &tol(), &f).unwrap();
        assert!(matches!(p.nodes[p.root as usize], CNode::Bool(true)));
        assert!(p.branch_order.is_empty());
    }
}
