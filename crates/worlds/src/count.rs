//! Branch-and-count: exact model counting over compiled slot programs.
//!
//! [`crate::enumerate::count_worlds`] walks every interpretation with an
//! odometer and re-evaluates the whole formula per world. This module
//! replaces that blind walk with a **search over slots**: assign slots in
//! the program's support order, evaluate the compiled program
//! three-valued under the partial assignment, and
//!
//! * **prune** a branch the instant the program evaluates false (every
//!   completion of the partial assignment is a non-model — Kleene
//!   evaluation is monotone under extension);
//! * **force** slots implied by the program's unit literals (ground
//!   facts) instead of branching on them;
//! * **multiply out** the remaining slots the instant the program
//!   evaluates true: every completion is a model, so the branch
//!   contributes `Π domain(slot)` over the unassigned slots
//!   (`2^k · N^m`) in O(1) instead of being enumerated.
//!
//! The cost unit is a **visited search node**, which is what
//! [`CountOptions::max_visited`] bounds — orders of magnitude fewer than
//! interpretations on structured formulas.
//!
//! # Parallelism and determinism
//!
//! Counting shards the top of the branch tree into **chunks** — fixed
//! assignments of a prefix of the branch order — and runs them on a
//! scoped-thread pool over an atomic chunk index (the same discipline as
//! `mc::workers`). The chunk decomposition depends only on the program
//! (never on the thread count), each chunk's sub-budget is a fixed share
//! of the total, and results merge in chunk order, so a count, its
//! visited/branched totals, and even its failure mode are identical at
//! any thread count.

use crate::compile::{CNode, CProp, CTerm, CountInst, Program, NO_NODE};
use rw_logic::ast::CmpOp;
use rw_util::Rat;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default cap on visited search nodes (branch-and-count visits far
/// fewer nodes than there are interpretations, so this reaches much
/// deeper than [`crate::enumerate::DEFAULT_MAX_WORLDS`] ever could).
pub const DEFAULT_MAX_VISITED: u64 = 1 << 24;

/// Tuning for one count.
#[derive(Clone, Copy, Debug)]
pub struct CountOptions {
    /// Cap on visited search nodes (shared across the chunks: each chunk
    /// gets an equal share, so the cap is thread-count independent).
    pub max_visited: u64,
    /// Worker threads (0 = one per core, 1 = sequential).
    pub threads: usize,
}

impl Default for CountOptions {
    fn default() -> CountOptions {
        CountOptions {
            max_visited: DEFAULT_MAX_VISITED,
            threads: 1,
        }
    }
}

/// A successful count with its search-effort accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CountOutcome {
    /// Number of models of the program.
    pub count: u128,
    /// Search nodes visited.
    pub visited: u64,
    /// Visited nodes that branched over a slot (the rest were decided by
    /// evaluation or propagation alone).
    pub branched: u64,
}

/// Why a count failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountError {
    /// The visited-node budget ran out before the search finished.
    BudgetExhausted,
    /// The model count (or the slot-space product) overflows `u128`.
    Overflow,
}

impl std::fmt::Display for CountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountError::BudgetExhausted => write!(f, "visited-branch budget exhausted"),
            CountError::Overflow => write!(f, "model count overflows u128"),
        }
    }
}

impl std::error::Error for CountError {}

/// Three-valued (Kleene) truth under a partial assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tri {
    False,
    True,
    Unknown,
}

/// A memoized proportion value: `Known` persists down the subtree
/// (decided values never change under extension).
#[derive(Clone, Copy, Debug, PartialEq)]
enum PropKnow {
    Unknown,
    Def(Rat),
    Undef,
}

/// Backtrack-trail entries.
enum Trail {
    Slot(u32),
    Node(u32),
    Prop(u32),
}

const UNASSIGNED: u8 = u8::MAX;

struct Search<'p> {
    prog: &'p Program,
    assign: Vec<u8>,
    node_memo: Vec<Tri>,
    prop_memo: Vec<PropKnow>,
    trail: Vec<Trail>,
    free_product: u128,
    visited: u64,
    branched: u64,
    budget: u64,
}

impl<'p> Search<'p> {
    fn new(prog: &'p Program, budget: u64) -> Result<Search<'p>, CountError> {
        if prog.layout().n() >= UNASSIGNED as usize {
            // Slot values are stored as `u8`; a domain this large is far
            // beyond countable anyway.
            return Err(CountError::Overflow);
        }
        let total = prog
            .layout()
            .total_assignments()
            .ok_or(CountError::Overflow)?;
        Ok(Search {
            prog,
            assign: vec![UNASSIGNED; prog.layout().slot_count()],
            node_memo: vec![Tri::Unknown; prog.nodes.len()],
            prop_memo: vec![PropKnow::Unknown; prog.props.len()],
            trail: Vec::new(),
            free_product: total,
            visited: 0,
            branched: 0,
            budget,
        })
    }

    fn assign_slot(&mut self, slot: usize, value: u8) {
        debug_assert_eq!(self.assign[slot], UNASSIGNED);
        self.assign[slot] = value;
        self.free_product /= self.prog.layout().domain(slot) as u128;
        self.trail.push(Trail::Slot(slot as u32));
    }

    fn pop_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail underflow") {
                Trail::Slot(s) => {
                    self.assign[s as usize] = UNASSIGNED;
                    self.free_product *= self.prog.layout().domain(s as usize) as u128;
                }
                Trail::Node(id) => self.node_memo[id as usize] = Tri::Unknown,
                Trail::Prop(id) => self.prop_memo[id as usize] = PropKnow::Unknown,
            }
        }
    }

    fn eval_term(&self, id: u32) -> Option<usize> {
        match &self.prog.terms[id as usize] {
            CTerm::Elem(e) => Some(*e),
            CTerm::ConstSlot(slot) => match self.assign[*slot] {
                UNASSIGNED => None,
                v => Some(v as usize),
            },
            CTerm::App { func, args } => {
                let n = self.prog.layout().n();
                let mut idx = 0usize;
                for &a in args {
                    idx = idx * n + self.eval_term(a)?;
                }
                let slot = self.prog.layout().func_slot(*func, idx);
                match self.assign[slot] {
                    UNASSIGNED => None,
                    v => Some(v as usize),
                }
            }
        }
    }

    /// Resolves the slot a `Lit`/`Atom` node refers to, when its tuple
    /// is fully determined.
    fn atom_slot(&self, id: u32) -> Option<usize> {
        match &self.prog.nodes[id as usize] {
            CNode::Lit { slot } => Some(*slot),
            CNode::Atom { pred, args } => {
                let n = self.prog.layout().n();
                let mut idx = 0usize;
                for &a in args {
                    idx = idx * n + self.eval_term(a)?;
                }
                Some(self.prog.layout().pred_slot(*pred, idx))
            }
            _ => None,
        }
    }

    fn eval_node(&mut self, id: u32) -> Tri {
        match self.node_memo[id as usize] {
            Tri::Unknown => {}
            decided => return decided,
        }
        // `prog` is a shared reference with the search's lifetime, so
        // program data can be borrowed independently of `&mut self`.
        let prog = self.prog;
        let v = match &prog.nodes[id as usize] {
            CNode::Bool(b) => Tri::from(*b),
            CNode::Lit { .. } | CNode::Atom { .. } => match self.atom_slot(id) {
                Some(slot) => match self.assign[slot] {
                    UNASSIGNED => Tri::Unknown,
                    v => Tri::from(v == 1),
                },
                None => Tri::Unknown,
            },
            CNode::Eq(a, b) => match (self.eval_term(*a), self.eval_term(*b)) {
                (Some(x), Some(y)) => Tri::from(x == y),
                _ => Tri::Unknown,
            },
            CNode::Not(g) => match self.eval_node(*g) {
                Tri::True => Tri::False,
                Tri::False => Tri::True,
                Tri::Unknown => Tri::Unknown,
            },
            CNode::And(children) => {
                let mut any_unknown = false;
                let mut out = Tri::True;
                for &ch in children {
                    match self.eval_node(ch) {
                        Tri::False => {
                            out = Tri::False;
                            break;
                        }
                        Tri::Unknown => any_unknown = true,
                        Tri::True => {}
                    }
                }
                if out == Tri::True && any_unknown {
                    Tri::Unknown
                } else {
                    out
                }
            }
            CNode::Or(children) => {
                let mut any_unknown = false;
                let mut out = Tri::False;
                for &ch in children {
                    match self.eval_node(ch) {
                        Tri::True => {
                            out = Tri::True;
                            break;
                        }
                        Tri::Unknown => any_unknown = true,
                        Tri::False => {}
                    }
                }
                if out == Tri::False && any_unknown {
                    Tri::Unknown
                } else {
                    out
                }
            }
            CNode::Iff(a, b) => match (self.eval_node(*a), self.eval_node(*b)) {
                (Tri::Unknown, _) | (_, Tri::Unknown) => Tri::Unknown,
                (x, y) => Tri::from(x == y),
            },
            CNode::Cmp { lhs, op, rhs } => {
                let l = self.eval_prop(*lhs);
                let r = self.eval_prop(*rhs);
                // The measure-zero convention: a comparison touching an
                // undefined conditional proportion holds vacuously, no
                // matter what the other side is.
                match (l, r) {
                    (PropKnow::Undef, _) | (_, PropKnow::Undef) => Tri::True,
                    (PropKnow::Def(a), PropKnow::Def(b)) => {
                        let tol = &prog.tol;
                        Tri::from(match op {
                            CmpOp::ApproxEq(t) => a.approx_eq(b, tol.get(*t)),
                            CmpOp::ApproxLeq(t) => a.approx_leq(b, tol.get(*t)),
                            CmpOp::Eq => a == b,
                            CmpOp::Leq => a <= b,
                        })
                    }
                    _ => Tri::Unknown,
                }
            }
        };
        if v != Tri::Unknown {
            self.node_memo[id as usize] = v;
            self.trail.push(Trail::Node(id));
        }
        v
    }

    fn eval_prop(&mut self, id: u32) -> PropKnow {
        match self.prop_memo[id as usize] {
            PropKnow::Unknown => {}
            known => return known,
        }
        let prog = self.prog;
        // `PropValue::map2`: any Undef operand makes the result Undef
        // regardless of the other side.
        let arith = |l: PropKnow, r: PropKnow, f: fn(Rat, Rat) -> Rat| match (l, r) {
            (PropKnow::Undef, _) | (_, PropKnow::Undef) => PropKnow::Undef,
            (PropKnow::Def(x), PropKnow::Def(y)) => PropKnow::Def(f(x, y)),
            _ => PropKnow::Unknown,
        };
        let v = match &prog.props[id as usize] {
            CProp::Rat(r) => PropKnow::Def(*r),
            CProp::Add(a, b) => {
                let l = self.eval_prop(*a);
                let r = self.eval_prop(*b);
                arith(l, r, |x, y| x + y)
            }
            CProp::Sub(a, b) => {
                let l = self.eval_prop(*a);
                let r = self.eval_prop(*b);
                arith(l, r, |x, y| x - y)
            }
            CProp::Mul(a, b) => {
                let l = self.eval_prop(*a);
                let r = self.eval_prop(*b);
                arith(l, r, |x, y| x * y)
            }
            CProp::Count {
                insts,
                base_body,
                base_cond,
                conditional,
                total,
            } => self.eval_count(insts, *base_body, *base_cond, *conditional, *total),
        };
        if v != PropKnow::Unknown {
            self.prop_memo[id as usize] = v;
            self.trail.push(Trail::Prop(id));
        }
        v
    }

    fn eval_count(
        &mut self,
        insts: &[CountInst],
        base_body: i128,
        base_cond: i128,
        conditional: bool,
        total: i128,
    ) -> PropKnow {
        let mut body_count = base_body;
        let mut cond_count = base_cond;
        let mut unknown = false;
        for inst in insts {
            let cond = if inst.cond == NO_NODE {
                Tri::True
            } else {
                self.eval_node(inst.cond)
            };
            match cond {
                Tri::False => continue,
                Tri::Unknown => {
                    unknown = true;
                    continue;
                }
                Tri::True => {}
            }
            cond_count += 1;
            match self.eval_node(inst.body) {
                Tri::True => body_count += 1,
                Tri::False => {}
                Tri::Unknown => unknown = true,
            }
        }
        if unknown {
            return PropKnow::Unknown;
        }
        if conditional {
            if cond_count == 0 {
                PropKnow::Undef
            } else {
                PropKnow::Def(Rat::new(body_count, cond_count))
            }
        } else {
            PropKnow::Def(Rat::new(body_count, total))
        }
    }

    /// One pass of unit propagation: forces every resolvable, unassigned
    /// unit-literal slot. Returns whether anything was forced.
    /// Conflicting assignments are left to evaluation (the unit's
    /// conjunct makes the root false).
    fn propagate_units(&mut self) -> bool {
        let mut progress = false;
        for i in 0..self.prog.units.len() {
            let unit = self.prog.units[i];
            let Some(slot) = self.atom_slot(unit.node) else {
                continue;
            };
            if self.assign[slot] == UNASSIGNED {
                self.assign_slot(slot, unit.value as u8);
                progress = true;
            }
        }
        progress
    }

    /// Counts the models extending the current partial assignment.
    /// `cursor` indexes into the branch order (everything before it is
    /// already assigned or skipped).
    fn run(&mut self, mut cursor: usize) -> Result<u128, CountError> {
        self.visited += 1;
        if self.visited > self.budget {
            return Err(CountError::BudgetExhausted);
        }
        loop {
            match self.eval_node(self.prog.root) {
                Tri::False => return Ok(0),
                Tri::True => return Ok(self.free_product),
                Tri::Unknown => {}
            }
            if !self.propagate_units() {
                break;
            }
        }
        let order = &self.prog.branch_order;
        while cursor < order.len() && self.assign[order[cursor] as usize] != UNASSIGNED {
            cursor += 1;
        }
        let slot = if cursor < order.len() {
            order[cursor] as usize
        } else {
            // Defensive: with every support slot assigned the program is
            // always decided, but fall back to any unassigned slot
            // rather than trusting that invariant with a panic.
            match self.assign.iter().position(|&v| v == UNASSIGNED) {
                Some(s) => s,
                None => return Ok(0), // fully assigned yet Unknown: unreachable
            }
        };
        self.branched += 1;
        let domain = self.prog.layout().domain(slot);
        let mut total: u128 = 0;
        for v in 0..domain {
            let mark = self.trail.len();
            self.assign_slot(slot, v as u8);
            let sub = self.run(cursor + 1)?;
            total = total.checked_add(sub).ok_or(CountError::Overflow)?;
            self.pop_to(mark);
        }
        Ok(total)
    }
}

impl From<bool> for Tri {
    fn from(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }
}

/// The fixed chunk decomposition of a program's branch tree: the longest
/// prefix of the branch order whose assignment product stays at or below
/// the target. Depends only on the program, never on the thread count —
/// the root of the determinism contract.
fn chunk_prefix(prog: &Program) -> (usize, u64) {
    const TARGET: u64 = 64;
    let mut len = 0usize;
    let mut product = 1u64;
    for &s in &prog.branch_order {
        if product >= TARGET {
            break;
        }
        product *= prog.layout().domain(s as usize) as u64;
        len += 1;
    }
    (len, product)
}

/// One chunk's `(count, visited, branched)` totals, or its failure.
type ChunkResult = Result<(u128, u64, u64), CountError>;

/// Counts the models of a compiled [`Program`] by branch-and-count.
///
/// Deterministic at any [`CountOptions::threads`] value: the count,
/// [`CountOutcome::visited`]/[`CountOutcome::branched`] totals and the
/// failure mode are all identical across thread counts for a fixed
/// program and budget.
pub fn count_models(prog: &Program, opts: &CountOptions) -> Result<CountOutcome, CountError> {
    // Chunking costs up to one visit per chunk (the prefix assignment
    // bypasses top-of-tree propagation), so only searches big enough to
    // amortize it are sharded. The threshold reads the *program*, never
    // the thread count — counts stay identical at any parallelism.
    const CHUNK_THRESHOLD: u128 = 4096;
    let (prefix_len, chunks) = if prog.support_assignments() >= CHUNK_THRESHOLD {
        chunk_prefix(prog)
    } else {
        (0, 1)
    };
    let chunk_budget = (opts.max_visited / chunks.max(1)).max(1);
    if chunks <= 1 {
        let mut search = Search::new(prog, opts.max_visited)?;
        let count = search.run(0)?;
        return Ok(CountOutcome {
            count,
            visited: search.visited,
            branched: search.branched,
        });
    }

    let run_chunk = |chunk: u64| -> ChunkResult {
        let mut search = Search::new(prog, chunk_budget)?;
        // Decode the chunk index into prefix-slot values (mixed radix,
        // first branch-order slot least significant).
        let mut rest = chunk;
        for i in 0..prefix_len {
            let slot = prog.branch_order[i] as usize;
            let d = prog.layout().domain(slot) as u64;
            search.assign_slot(slot, (rest % d) as u8);
            rest /= d;
        }
        let count = search.run(prefix_len)?;
        Ok((count, search.visited, search.branched))
    };

    let threads = match opts.threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        t => t,
    }
    .min(chunks as usize)
    .max(1);

    let results: Vec<Option<ChunkResult>> = if threads == 1 {
        let mut out = Vec::with_capacity(chunks as usize);
        for c in 0..chunks {
            let r = run_chunk(c);
            let failed = r.is_err();
            out.push(Some(r));
            if failed {
                break;
            }
        }
        out.resize_with(chunks as usize, || None);
        out
    } else {
        let next = AtomicU64::new(0);
        let aborted = AtomicBool::new(false);
        let shards = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let aborted = &aborted;
                    let run_chunk = &run_chunk;
                    scope.spawn(move || {
                        let mut out: Vec<(u64, ChunkResult)> = Vec::new();
                        loop {
                            if aborted.load(Ordering::Relaxed) {
                                break;
                            }
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= chunks {
                                break;
                            }
                            let r = run_chunk(c);
                            if r.is_err() {
                                aborted.store(true, Ordering::Relaxed);
                            }
                            out.push((c, r));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("counting worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut ordered: Vec<Option<ChunkResult>> = vec![None; chunks as usize];
        for shard in shards {
            for (c, r) in shard {
                ordered[c as usize] = Some(r);
            }
        }
        ordered
    };

    let mut outcome = CountOutcome {
        count: 0,
        visited: 0,
        branched: 0,
    };
    for r in results {
        match r {
            Some(Ok((count, visited, branched))) => {
                outcome.count = outcome
                    .count
                    .checked_add(count)
                    .ok_or(CountError::Overflow)?;
                outcome.visited += visited;
                outcome.branched += branched;
            }
            Some(Err(e)) => return Err(e),
            // Skipped after an abort elsewhere: the error below (or
            // earlier in chunk order) is the outcome.
            None => return Err(CountError::BudgetExhausted),
        }
    }
    Ok(outcome)
}

/// Compiles `formula` over `W_n(Φ)` and counts its models.
///
/// The convenience entry the exact-inference stage uses twice per
/// `(query, N)` point: once for `#(KB)` (the cacheable denominator) and
/// once for `#(KB ∧ query)`.
pub fn count_formula_models(
    vocab: &rw_logic::Vocabulary,
    n: usize,
    tol: &rw_logic::Tolerances,
    formula: &rw_logic::ast::Formula,
    opts: &CountOptions,
) -> Result<CountOutcome, CountError> {
    let prog = Program::compile(vocab, n, tol, formula).ok_or(CountError::Overflow)?;
    count_models(&prog, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::eval::Evaluator;
    use rw_logic::ast::Formula;
    use rw_logic::{KnowledgeBase, Tolerances};

    fn tol() -> Tolerances {
        Tolerances::uniform(Rat::new(1, 4))
    }

    /// The naive oracle: enumerate every world and model-check.
    fn oracle_count(kb: &KnowledgeBase, f: &Formula, n: usize) -> u128 {
        let mut count = 0u128;
        enumerate::for_each_world(kb.vocab(), n, |w| {
            if Evaluator::new(w, kb.vocab(), &tol()).eval(f) {
                count += 1;
            }
        });
        count
    }

    fn counted(kb: &KnowledgeBase, f: &Formula, n: usize) -> CountOutcome {
        count_formula_models(kb.vocab(), n, &tol(), f, &CountOptions::default()).unwrap()
    }

    #[test]
    fn counts_match_the_oracle_on_mixed_shapes() {
        for (kb_src, q_src, n) in [
            ("true", "P(C)", 3),
            ("P(C)", "P(C)", 3),
            ("P(C) & !P(C)", "P(C)", 3),
            ("||P(x)||_x ~=_1 0.5; Q(C)", "P(C)", 4),
            ("Likes(A, B)", "Likes(B, A)", 3),
            ("C1 = C2 or C2 = C3 or C1 = C3", "C1 = C2", 4),
            ("forall x (P(x) => Q(x)); P(C)", "Q(C)", 3),
            ("exists x (P(x) & !Q(x))", "P(C)", 3),
            ("||Fly(x) | Bird(x)||_x ~=_1 1; Bird(C)", "Fly(C)", 4),
            ("||Likes(x, y)||_{x,y} ~=_1 0.25", "Likes(A, A)", 3),
        ] {
            let mut kb = KnowledgeBase::parse(kb_src).unwrap();
            let q = kb.parse_query(q_src).unwrap();
            let kb_f = kb.as_formula();
            let both = Formula::and(kb_f.clone(), q);
            assert_eq!(
                counted(&kb, &kb_f, n).count,
                oracle_count(&kb, &kb_f, n),
                "#KB diverged on `{kb_src}` at N={n}"
            );
            assert_eq!(
                counted(&kb, &both, n).count,
                oracle_count(&kb, &both, n),
                "#(KB ∧ q) diverged on `{kb_src}` ⊢ `{q_src}` at N={n}"
            );
        }
    }

    #[test]
    fn functions_and_nested_proportions_match_the_oracle() {
        for (kb_src, n) in [
            ("P(Next(C))", 3),
            ("forall x (P(Next(x)) <=> P(x))", 3),
            ("|| ||Rises(x, y) | Day(y)||_y ~=_1 1 ||_x ~=_1 0.5", 3),
        ] {
            let kb = KnowledgeBase::parse(kb_src).unwrap();
            let f = kb.as_formula();
            assert_eq!(
                counted(&kb, &f, n).count,
                oracle_count(&kb, &f, n),
                "diverged on `{kb_src}` at N={n}"
            );
        }
    }

    #[test]
    fn free_slots_are_multiplied_not_enumerated() {
        // `P(C)` with a fat spectator predicate: the R bits and the D
        // constant never constrain anything, so the visited count must
        // stay tiny while the model count covers the full product.
        let mut kb = KnowledgeBase::parse("P(C)").unwrap();
        kb.parse_query("Likes(D, D)").unwrap(); // interns Likes/2 and D
        let f = kb.as_formula();
        let n = 4usize;
        let out = counted(&kb, &f, n);
        let total = enumerate::count_interpretations(kb.vocab(), n).unwrap();
        assert_eq!(out.count, total / 2);
        assert!(
            out.visited < 64,
            "expected branch-and-count to multiply out free slots, visited {}",
            out.visited
        );
    }

    #[test]
    fn unsatisfiable_programs_prune_to_zero_quickly() {
        let kb = KnowledgeBase::parse("P(C) & !P(C); Likes(A, B)").unwrap();
        let f = kb.as_formula();
        let out = counted(&kb, &f, 4);
        assert_eq!(out.count, 0);
        assert!(out.visited < 128, "visited {}", out.visited);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let kb = KnowledgeBase::parse("||Likes(x, y)||_{x,y} ~=_1 0.5").unwrap();
        let f = kb.as_formula();
        let prog = Program::compile(kb.vocab(), 4, &tol(), &f).unwrap();
        let err = count_models(
            &prog,
            &CountOptions {
                max_visited: 8,
                threads: 1,
            },
        )
        .unwrap_err();
        assert_eq!(err, CountError::BudgetExhausted);
    }

    #[test]
    fn thread_counts_never_change_the_outcome() {
        for (kb_src, n) in [
            ("||P(x)||_x ~=_1 0.5; Q(C)", 4),
            ("Likes(A, B)", 4),
            ("||Likes(x, y)||_{x,y} ~=_1 0.25", 3),
        ] {
            let kb = KnowledgeBase::parse(kb_src).unwrap();
            let f = kb.as_formula();
            let prog = Program::compile(kb.vocab(), n, &tol(), &f).unwrap();
            let base = count_models(&prog, &CountOptions::default()).unwrap();
            for threads in [2usize, 4, 0] {
                let opts = CountOptions {
                    threads,
                    ..CountOptions::default()
                };
                assert_eq!(
                    count_models(&prog, &opts).unwrap(),
                    base,
                    "`{kb_src}` diverged at {threads} threads"
                );
            }
        }
    }
}
