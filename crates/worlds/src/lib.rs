//! Finite possible worlds: explicit first-order models over `{1..N}` and a
//! complete model checker for `L≈`.
//!
//! This crate is the *semantic ground truth* of the workspace. The paper
//! defines `Pr_N^τ(φ|KB)` as the fraction of the worlds in `W_N(Φ)` (all
//! interpretations of the vocabulary over a domain of size `N`) that satisfy
//! `KB` which also satisfy `φ`. Everything else — the unary atom engine, the
//! maximum-entropy engine, the theorem engine — is an asymptotically faster
//! route to the same number, and each is cross-validated against the
//! enumeration implemented here on small instances.
//!
//! The number of worlds grows doubly exponentially (one binary predicate
//! alone contributes `2^(N²)`), so blind enumeration is only feasible for
//! tiny `N`; [`enumerate::count_interpretations`] reports the cost up
//! front, [`sample`] provides naive uniform Monte-Carlo estimates beyond
//! it, and [`mc`] is the production sampling subsystem (KB-aware
//! proposals, Wilson confidence intervals, `N`-sweep extrapolation,
//! parallel workers).
//!
//! The production *exact* path is [`compile`] + [`count`]: formulas are
//! lowered once into flat slot programs and counted by branch-and-count
//! search (prune on falsity, force unit literals, multiply out free
//! slots), which visits orders of magnitude fewer nodes than there are
//! interpretations. [`enumerate::for_each_world`] remains the oracle the
//! compiled counts are cross-checked against.

pub mod compile;
pub mod count;
pub mod enumerate;
pub mod eval;
pub mod mc;
pub mod sample;
pub mod symmetry;
pub mod world;

pub use compile::{Program, SlotLayout};
pub use count::{count_formula_models, count_models, CountError, CountOptions, CountOutcome};
pub use enumerate::{count_interpretations, count_worlds, degree_of_belief_at, for_each_world};
pub use eval::{evaluate, evaluate_closed, PropValue};
pub use symmetry::{ScaledCount, SymmetryOutcome, SymmetrySpec};
pub use world::World;
