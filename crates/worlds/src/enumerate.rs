//! Exhaustive enumeration of `W_N(Φ)` and exact finite-`N` degrees of belief.
//!
//! `Pr_N^τ(φ | KB) = #worlds_N^τ(φ ∧ KB) / #worlds_N^τ(KB)` — Definition 4.2
//! of the paper, computed literally. The world space is a product over
//! independent "slots" (one bit per predicate tuple, one element choice per
//! function entry and per constant), enumerated with an odometer that
//! mutates a single [`World`] in place.

use crate::eval::Evaluator;
use crate::world::World;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances, Vocabulary};

/// How many interpretations exist over this vocabulary and domain size
/// (`None` on overflow of `u128` — far beyond enumerable anyway).
pub fn count_interpretations(vocab: &Vocabulary, n: usize) -> Option<u128> {
    let mut total: u128 = 1;
    for p in vocab.preds() {
        let bits = (n as u128).checked_pow(vocab.pred_arity(p) as u32)?;
        // `checked_shl` keeps every representable count exact: a single
        // ~127-bit relation still reports its concrete size instead of
        // collapsing to "overflow".
        let tables = u32::try_from(bits)
            .ok()
            .and_then(|b| 1u128.checked_shl(b))?;
        total = total.checked_mul(tables)?;
    }
    for f in vocab.funcs() {
        let entries = (n as u128).checked_pow(vocab.func_arity(f) as u32)?;
        let mut table_count: u128 = 1;
        for _ in 0..entries {
            table_count = table_count.checked_mul(n as u128)?;
        }
        total = total.checked_mul(table_count)?;
    }
    for _ in 0..vocab.const_count() {
        total = total.checked_mul(n as u128)?;
    }
    Some(total)
}

enum Slot {
    PredBit { pred: usize, idx: usize },
    FuncEntry { func: usize, idx: usize },
    Const { idx: usize },
}

fn build_slots(vocab: &Vocabulary, n: usize) -> (Vec<Slot>, Vec<usize>) {
    let mut slots = Vec::new();
    let mut maxes = Vec::new();
    for p in vocab.preds() {
        let size = n.pow(vocab.pred_arity(p) as u32);
        for idx in 0..size {
            slots.push(Slot::PredBit {
                pred: p.index(),
                idx,
            });
            maxes.push(2);
        }
    }
    for f in vocab.funcs() {
        let size = n.pow(vocab.func_arity(f) as u32);
        for idx in 0..size {
            slots.push(Slot::FuncEntry {
                func: f.index(),
                idx,
            });
            maxes.push(n);
        }
    }
    for c in 0..vocab.const_count() {
        slots.push(Slot::Const { idx: c });
        maxes.push(n);
    }
    (slots, maxes)
}

fn apply_slot(world: &mut World, slot: &Slot, value: usize) {
    match slot {
        Slot::PredBit { pred, idx } => {
            let p = rw_logic::PredId(*pred as u32);
            world.rel_mut(p).set_raw(*idx, value == 1);
        }
        Slot::FuncEntry { func, idx } => {
            world.func_table_mut(*func)[*idx] = value;
        }
        Slot::Const { idx } => {
            world.set_const(*idx, value);
        }
    }
}

/// Visits every world in `W_N(Φ)` exactly once.
///
/// Check [`count_interpretations`] first: the count is doubly exponential.
pub fn for_each_world(vocab: &Vocabulary, n: usize, mut f: impl FnMut(&World)) {
    let (slots, maxes) = build_slots(vocab, n);
    let mut values = vec![0usize; slots.len()];
    let mut world = World::empty(vocab, n);
    loop {
        f(&world);
        let mut i = 0;
        loop {
            if i == slots.len() {
                return;
            }
            let next = values[i] + 1;
            if next < maxes[i] {
                values[i] = next;
                apply_slot(&mut world, &slots[i], next);
                break;
            }
            values[i] = 0;
            apply_slot(&mut world, &slots[i], 0);
            i += 1;
        }
    }
}

/// Counts worlds satisfying `cond`, and among those, how many also satisfy
/// `body`: returns `(#(body ∧ cond), #cond)`.
pub fn count_worlds(
    vocab: &Vocabulary,
    n: usize,
    tol: &Tolerances,
    body: &Formula,
    cond: &Formula,
) -> (u128, u128) {
    let mut both: u128 = 0;
    let mut cond_count: u128 = 0;
    // One valuation buffer for the whole count: the evaluator is rebuilt
    // per world (its world borrow must be), but the allocation is not.
    let mut valuation: Vec<Option<usize>> = Vec::new();
    for_each_world(vocab, n, |w| {
        let mut ev = Evaluator::with_valuation(w, vocab, tol, std::mem::take(&mut valuation));
        if ev.eval(cond) {
            cond_count += 1;
            if ev.eval(body) {
                both += 1;
            }
        }
        valuation = ev.into_valuation();
    });
    (both, cond_count)
}

/// Default guard on enumeration size (≈ 64M interpretations).
pub const DEFAULT_MAX_WORLDS: u128 = 1 << 26;

/// Errors from exact finite-`N` computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnumError {
    /// The world space is too large to enumerate (contains the count if it
    /// fits in `u128`).
    TooLarge(Option<u128>),
}

impl std::fmt::Display for EnumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnumError::TooLarge(Some(n)) => write!(
                f,
                "world space too large to enumerate ({n} interpretations)"
            ),
            EnumError::TooLarge(None) => write!(
                f,
                "world space too large to enumerate (count overflows u128)"
            ),
        }
    }
}

impl std::error::Error for EnumError {}

/// Exact `Pr_N^τ(query | KB)` by brute-force enumeration.
///
/// Returns `Ok(None)` when no world of size `N` satisfies the KB at this
/// tolerance (the degree of belief is undefined there — Definition 4.2).
pub fn degree_of_belief_at(
    kb: &KnowledgeBase,
    query: &Formula,
    n: usize,
    tol: &Tolerances,
) -> Result<Option<f64>, EnumError> {
    degree_of_belief_at_bounded(kb, query, n, tol, DEFAULT_MAX_WORLDS)
}

/// As [`degree_of_belief_at`] with an explicit enumeration budget.
pub fn degree_of_belief_at_bounded(
    kb: &KnowledgeBase,
    query: &Formula,
    n: usize,
    tol: &Tolerances,
    max_worlds: u128,
) -> Result<Option<f64>, EnumError> {
    match count_interpretations(kb.vocab(), n) {
        Some(total) if total <= max_worlds => {}
        other => return Err(EnumError::TooLarge(other)),
    }
    let kb_formula = kb.as_formula();
    let (both, cond) = count_worlds(kb.vocab(), n, tol, query, &kb_formula);
    if cond == 0 {
        return Ok(None);
    }
    Ok(Some(both as f64 / cond as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_util::Rat;

    fn tol() -> Tolerances {
        Tolerances::uniform(Rat::new(1, 4))
    }

    #[test]
    fn interpretation_counts() {
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        assert_eq!(count_interpretations(&v, 3), Some(8)); // 2^3
        v.constant("c").unwrap();
        assert_eq!(count_interpretations(&v, 3), Some(24)); // 2^3 * 3
        v.pred("R", 2).unwrap();
        assert_eq!(count_interpretations(&v, 3), Some(24 * 512)); // * 2^9
        v.func("f", 1).unwrap();
        assert_eq!(count_interpretations(&v, 3), Some(24 * 512 * 27)); // * 3^3
    }

    #[test]
    fn interpretation_counts_near_the_u128_edge_stay_exact() {
        // A 127-bit relation: the count is exactly 2^127, which fits in
        // u128 and must be reported — not collapsed to `None`.
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        assert_eq!(count_interpretations(&v, 127), Some(1u128 << 127));
        // A ~100-bit relation composes with smaller factors for as long
        // as the product is representable...
        let mut v = Vocabulary::new();
        v.pred("R", 2).unwrap(); // 10^2 = 100 bits
        v.constant("c").unwrap();
        assert_eq!(count_interpretations(&v, 10), Some((1u128 << 100) * 10));
        // ...and overflows to `None` only when the product truly does.
        let mut v = Vocabulary::new();
        v.pred("R", 2).unwrap();
        v.pred("S", 2).unwrap(); // 2^200 total
        assert_eq!(count_interpretations(&v, 10), None);
        // A single relation beyond 2^127 overflows too (128+ bits).
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        assert_eq!(count_interpretations(&v, 128), None);
    }

    #[test]
    fn enumeration_visits_every_world_once() {
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        v.constant("c").unwrap();
        let mut seen = std::collections::HashSet::new();
        for_each_world(&v, 2, |w| {
            let key = (
                (0..2)
                    .map(|e| w.rel(rw_logic::PredId(0)).contains(&[e]))
                    .collect::<Vec<_>>(),
                w.const_denotation(0),
            );
            assert!(seen.insert(key), "duplicate world");
        });
        assert_eq!(seen.len() as u128, count_interpretations(&v, 2).unwrap());
    }

    #[test]
    fn unconditional_beliefs_are_half_by_symmetry() {
        // With an empty KB, Pr_N(P(C)) = 1/2 for every N: element membership
        // bits are symmetric under complementation.
        let mut kb = KnowledgeBase::parse("true").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        for n in 1..=4 {
            let d = degree_of_belief_at(&kb, &q, n, &tol()).unwrap().unwrap();
            assert!((d - 0.5).abs() < 1e-12, "N={n}: {d}");
        }
    }

    #[test]
    fn conditioning_on_facts() {
        // Pr(P(C) | P(C)) = 1; Pr(P(C) | !P(C)) = 0.
        let mut kb = KnowledgeBase::parse("P(C)").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        let d = degree_of_belief_at(&kb, &q, 3, &tol()).unwrap().unwrap();
        assert_eq!(d, 1.0);
    }

    #[test]
    fn unsatisfiable_kb_has_no_degree() {
        let mut kb = KnowledgeBase::parse("P(C) & !P(C)").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        assert_eq!(degree_of_belief_at(&kb, &q, 3, &tol()).unwrap(), None);
    }

    #[test]
    fn unique_names_bias() {
        // Paper §5.5: Pr_N(C1 = C2 | true) = 1/N.
        let mut kb = KnowledgeBase::parse("P(C1) or !P(C1); P(C2) or !P(C2)").unwrap();
        let q = kb.parse_query("C1 = C2").unwrap();
        for n in 1..=4 {
            let d = degree_of_belief_at(&kb, &q, n, &tol()).unwrap().unwrap();
            assert!((d - 1.0 / n as f64).abs() < 1e-12, "N={n}: {d}");
        }
    }

    #[test]
    fn lifschitz_disjunction_gives_third() {
        // Pr(C1 = C2 | (c1=c2) or (c2=c3) or (c1=c3)) → 1/3 as N → ∞
        // (paper §5.5). At finite N the exact value is (2N-1)/(4N-3):
        // each disjunct alone has N² patterns of (c1,c2,c3)... we just
        // check the large-N trend against 1/3 plus the exact N=4 value.
        let mut kb = KnowledgeBase::parse("C1 = C2 or C2 = C3 or C1 = C3").unwrap();
        let q = kb.parse_query("C1 = C2").unwrap();
        let d4 = degree_of_belief_at(&kb, &q, 4, &tol()).unwrap().unwrap();
        let d6 = degree_of_belief_at(&kb, &q, 6, &tol()).unwrap().unwrap();
        // Trend toward 1/3 from above.
        assert!(d6 < d4);
        assert!((d6 - 1.0 / 3.0).abs() < (d4 - 1.0 / 3.0).abs());
        assert!(d6 > 1.0 / 3.0);
    }

    #[test]
    fn statistical_conditioning_small_domain() {
        // KB: exactly half the domain is P (N=4, tolerance 1/4 around 1/2
        // admits proportions in [1/4, 3/4] → 1, 2 or 3 of 4 elements).
        // Pr(P(C)) must equal the average proportion of P among worlds
        // weighted by count — computed independently here.
        let mut kb = KnowledgeBase::parse("||P(x)||_x ~=_1 0.5; Q(C)").unwrap();
        let q = kb.parse_query("P(C)").unwrap();
        let d = degree_of_belief_at(&kb, &q, 4, &tol()).unwrap().unwrap();
        // Worlds by |P| = k: C(4,k) subsets, k in {1,2,3}; c uniform, Q free.
        // Pr(P(C)) = Σ_k C(4,k) (k/4) / Σ_k C(4,k) = (4·1/4+6·2/4+4·3/4)/14 = 1/2.
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_large_is_reported() {
        let mut kb = KnowledgeBase::parse("Likes(A, B)").unwrap();
        let q = kb.parse_query("Likes(B, A)").unwrap();
        let err = degree_of_belief_at_bounded(&kb, &q, 6, &tol(), 1 << 20).unwrap_err();
        assert!(matches!(err, EnumError::TooLarge(_)));
    }
}
