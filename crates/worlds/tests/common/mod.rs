//! Shared helpers for the worlds property tests.
//!
//! The KB generators below all emit proportion constraints
//! `||…||_x ≈_τ p`. A constraint is satisfiable at domain size `N` only
//! when the closed interval `[N·(p−τ), N·(p+τ)]` contains an integer —
//! and for tight τ that holds at some `N` and fails at others (e.g.
//! `p = 0.5, τ = 1/16` fails at every odd `N < 8`). A generated KB
//! that flips satisfiability mid-scan makes any engine comparing
//! adjacent `N` points decline with "inconsistent satisfiability",
//! which reads as a test flake even though both engines are right.
//! These helpers let generators draw proportions that are *stable* —
//! satisfiable at every domain size the test will visit.

use rw_util::Rat;

/// True iff the proportion constraint `≈_τ p` admits at least one
/// satisfying count at domain size `n`: some integer `k ∈ [0, n]` lies
/// in the closed interval `[n·(p−τ), n·(p+τ)]`.
pub fn proportion_satisfiable_at(p: Rat, tau: Rat, n: usize) -> bool {
    let n = n as i128;
    let (a, b) = (p.num(), p.den());
    let (c, d) = (tau.num(), tau.den());
    // Interval bounds as fractions over the common denominator b·d.
    let den = b * d;
    let lo_num = n * (a * d - c * b);
    let hi_num = n * (a * d + c * b);
    let ceil_div = |x: i128, y: i128| -> i128 {
        if x >= 0 {
            (x + y - 1) / y
        } else {
            x / y
        }
    };
    let floor_div = |x: i128, y: i128| -> i128 {
        if x >= 0 {
            x / y
        } else {
            (x - y + 1) / y
        }
    };
    let lo = ceil_div(lo_num, den).max(0);
    let hi = floor_div(hi_num, den).min(n);
    lo <= hi
}

/// True iff the constraint is satisfiable at *every* domain size in
/// `lo..=hi` — KBs built from such proportions can never produce the
/// "inconsistent satisfiability" decline while an engine scans that
/// window.
pub fn proportion_stable_over(p: Rat, tau: Rat, lo: usize, hi: usize) -> bool {
    (lo..=hi).all(|n| proportion_satisfiable_at(p, tau, n))
}

/// The tenths digits `k` (`p = k/10`, `1 ≤ k ≤ 9`) stable over
/// `lo..=hi` at tolerance `τ` — the alphabet the KB generators draw
/// their proportions from.
pub fn stable_tenths(tau: Rat, lo: usize, hi: usize) -> Vec<u64> {
    (1..=9)
        .filter(|&k| proportion_stable_over(Rat::new(k as i128, 10), tau, lo, hi))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_known_flake_shape_is_detected() {
        // p = 0.5 at τ = 1/16: [N·7/16, N·9/16] misses every integer at
        // odd N < 8 (e.g. N=5 → [2.19, 2.81]) but not at N ≥ 8.
        let p = Rat::new(1, 2);
        let tau = Rat::new(1, 16);
        assert!(!proportion_satisfiable_at(p, tau, 5));
        assert!(proportion_satisfiable_at(p, tau, 6));
        assert!(!proportion_stable_over(p, tau, 2, 8));
        assert!(proportion_stable_over(p, tau, 8, 64));
    }

    #[test]
    fn wide_tolerances_keep_every_tenth() {
        // τ = 1/4 swallows a whole unit for N ≥ 2, so every tenth digit
        // is stable — the generators' historical alphabet is unchanged.
        assert_eq!(
            stable_tenths(Rat::new(1, 4), 2, 8),
            (1..=9).collect::<Vec<_>>()
        );
        // τ = 1/20 is tighter than the tenths grid at small N.
        assert!(stable_tenths(Rat::new(1, 20), 2, 8).len() < 9);
    }
}
