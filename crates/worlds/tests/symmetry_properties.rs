//! Property tests for the symmetry-reduced counting subsystem's
//! exactness contract:
//!
//! * on generated in-fragment knowledge bases the orbit-weighted count
//!   (`Σ weight(rep)` over canonical representatives) is **exactly
//!   equal** to the `for_each_world` oracle and to the plain compiled
//!   branch-and-count — for both the `#KB` denominator and the
//!   `#(KB ∧ query)` numerator, so symmetry mode can never shift a
//!   Definition 4.2 ratio;
//! * a [`rw_worlds::SymmetryOutcome`] (count *and* representative
//!   total) is **bit-identical** across 1/2/4 worker threads.
//!
//! Domain sizes stay small enough for the naive oracle: `N ≤ 6` on
//! unary shapes, `N ≤ 3` once a binary predicate multiplies the world
//! space by `2^(N²)`.

mod common;

use proptest::prelude::*;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_util::Rat;
use rw_worlds::eval::Evaluator;
use rw_worlds::{count_models, for_each_world, CountOptions, Program, SymmetrySpec};

fn tolerances() -> Tolerances {
    Tolerances::uniform(Rat::new(1, 4))
}

/// In-fragment KBs: single-variable unary proportions (conditional and
/// plain), ground unary and non-unary constant atoms, and boolean
/// combinations thereof. Proportions are drawn from the `N`-stable
/// alphabet ([`common::stable_tenths`]) so satisfiability cannot flip
/// inside the scanned window.
fn cases() -> impl Strategy<Value = (String, String, usize)> {
    let ks = common::stable_tenths(Rat::new(1, 4), 2, 6);
    let ks2 = ks.clone();
    let ks3 = ks.clone();
    prop_oneof![
        (0usize..ks.len(), 2usize..7).prop_map(move |(i, n)| (
            format!("||P(x)||_x ~=_1 0.{}; Q(C)", ks[i]),
            "P(C) & !Q(D)".to_string(),
            n
        )),
        (0usize..ks2.len(), 3usize..7).prop_map(move |(i, n)| (
            format!("||Hep(x) | Jaun(x)||_x ~=_1 0.{}; Jaun(C); Jaun(D)", ks2[i]),
            "Hep(C) & Hep(D)".to_string(),
            n
        )),
        // Non-unary constant atoms alone: the named-bit σ sweep.
        (2usize..4).prop_map(|n| (
            "Likes(A, B); !Likes(B, B)".to_string(),
            "Likes(B, A) or Likes(A, A)".to_string(),
            n
        )),
        // Unary proportion and binary ground atoms together.
        (0usize..ks3.len(), 2usize..4).prop_map(move |(i, n)| (
            format!("||P(x)||_x ~=_1 0.{}; Likes(A, B); P(A)", ks3[i]),
            "Likes(B, A) => P(B)".to_string(),
            n
        )),
    ]
}

/// The naive oracle: walk every interpretation, model-check `f`.
fn oracle_count(kb: &KnowledgeBase, f: &Formula, n: usize) -> u128 {
    let tol = tolerances();
    let mut count = 0u128;
    let mut valuation: Vec<Option<usize>> = Vec::new();
    for_each_world(kb.vocab(), n, |w| {
        let mut ev = Evaluator::with_valuation(w, kb.vocab(), &tol, std::mem::take(&mut valuation));
        if ev.eval(f) {
            count += 1;
        }
        valuation = ev.into_valuation();
    });
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn orbit_weighted_counts_equal_oracle_and_plain((kb_src, q_src, n) in cases()) {
        let mut kb = KnowledgeBase::parse(&kb_src).unwrap();
        let q = kb.parse_query(&q_src).unwrap();
        let tol = tolerances();
        let kb_formula = kb.as_formula();
        let numerator = Formula::and(kb_formula.clone(), q);
        for f in [&kb_formula, &numerator] {
            let spec = SymmetrySpec::detect(kb.vocab(), f)
                .expect("generated cases stay inside the symmetry fragment");
            let sym = spec.count(n, &tol, &CountOptions::default()).unwrap();
            let sym_count = sym.count.exact().expect("small-N counts fit u128");
            let oracle = oracle_count(&kb, f, n);
            prop_assert_eq!(
                sym_count, oracle,
                "symmetry vs oracle diverged on `{}` ⊢ `{}` at N={} ({} reps)",
                kb_src, q_src, n, sym.reps
            );
            let prog = Program::compile(kb.vocab(), n, &tol, f).unwrap();
            let plain = count_models(&prog, &CountOptions::default()).unwrap();
            prop_assert_eq!(
                sym_count, plain.count,
                "symmetry vs branch-and-count diverged on `{}` ⊢ `{}` at N={}",
                kb_src, q_src, n
            );
        }
    }

    #[test]
    fn symmetry_outcomes_are_bit_identical_across_thread_counts(
        (kb_src, q_src, n) in cases()
    ) {
        let mut kb = KnowledgeBase::parse(&kb_src).unwrap();
        let q = kb.parse_query(&q_src).unwrap();
        let tol = tolerances();
        let f = Formula::and(kb.as_formula(), q);
        let spec = SymmetrySpec::detect(kb.vocab(), &f)
            .expect("generated cases stay inside the symmetry fragment");
        let base = spec
            .count(n, &tol, &CountOptions { threads: 1, ..CountOptions::default() })
            .unwrap();
        for threads in [2usize, 4] {
            let par = spec
                .count(n, &tol, &CountOptions { threads, ..CountOptions::default() })
                .unwrap();
            // Not just the count: the representative total surfaced in
            // provenance must match too, or serving output would depend
            // on the worker count.
            prop_assert_eq!(
                par, base,
                "`{}` ⊢ `{}` at N={} diverged at {} threads",
                kb_src, q_src, n, threads
            );
        }
    }
}
