//! Property tests for the Monte-Carlo subsystem's statistical contract:
//!
//! * on small-`N` knowledge bases the sampler's estimate agrees with the
//!   exact enumeration value to within 3σ of its own reported interval
//!   (σ derived from the 95% Wilson half-width);
//! * a sweep is bit-identical across worker thread counts for a fixed
//!   seed — the scheduler, not the statistics, absorbs the parallelism.

mod common;

use proptest::prelude::*;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_util::Rat;
use rw_worlds::enumerate::degree_of_belief_at;
use rw_worlds::mc::{estimate_point, estimate_sweep, McConfig, Z_95};

/// Small unary KBs with a biased proportion, a conditional proportion
/// and asserted facts — every proposal shape the plan compiles — paired
/// with queries that miss the fast paths. Proportions come from the
/// `N`-stable alphabet ([`common::stable_tenths`]) over both sweep
/// points, so the exact reference can never decline a generated case.
fn cases() -> impl Strategy<Value = (String, String)> {
    let ks = common::stable_tenths(Rat::new(1, 4), 4, 8);
    let ks2 = ks.clone();
    let ks3 = ks.clone();
    prop_oneof![
        (0usize..ks.len()).prop_map(move |i| (
            format!("||P(x)||_x ~=_1 0.{}; Q(C)", ks[i]),
            "P(C)".to_string()
        )),
        (0usize..ks2.len()).prop_map(move |i| (
            format!("||P(x)||_x ~=_1 0.{}; Q(C)", ks2[i]),
            "P(C) & Q(C)".to_string()
        )),
        (0usize..ks3.len()).prop_map(move |i| (
            format!("||Hep(x) | Jaun(x)||_x ~=_1 0.{}; Jaun(C); Jaun(D)", ks3[i]),
            "Hep(C) & Hep(D)".to_string()
        )),
        Just(("Likes(A, B)".to_string(), "Likes(B, A)".to_string())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn estimates_agree_with_enumeration_within_three_sigma(
        (kb_src, q_src) in cases(),
        seed in 0u64..1_000_000,
    ) {
        let mut kb = KnowledgeBase::parse(&kb_src).unwrap();
        let q = kb.parse_query(&q_src).unwrap();
        let n = 4usize;
        let tau = Rat::new(1, 4);
        let exact = degree_of_belief_at(&kb, &q, n, &Tolerances::uniform(tau))
            .unwrap()
            .expect("test KBs are satisfiable at N=4");
        let cfg = McConfig { seed, target_ci: 0.01, ..McConfig::default() };
        let p = estimate_point(&kb, &q, tau, n, 1 << 16, &cfg);
        let est = p.value.expect("sampler must accept at N=4");
        let sigma = p.ci_half_width.unwrap() / Z_95;
        prop_assert!(
            (est - exact).abs() <= 3.0 * sigma.max(0.003),
            "kb `{}` q `{}`: exact {}, estimate {} (σ {})",
            kb_src, q_src, exact, est, sigma
        );
    }

    #[test]
    fn sweeps_are_bit_identical_across_thread_counts(
        (kb_src, q_src) in cases(),
        seed in 0u64..1_000_000,
    ) {
        let mut kb = KnowledgeBase::parse(&kb_src).unwrap();
        let q = kb.parse_query(&q_src).unwrap();
        let points = [(Rat::new(1, 4), 4), (Rat::new(1, 8), 8)];
        let base = McConfig { seed, max_samples: 1 << 13, ..McConfig::default() };
        let reference = estimate_sweep(&kb, &q, &points, &base);
        for threads in [2usize, 4] {
            let cfg = McConfig { threads, ..base.clone() };
            prop_assert_eq!(
                &estimate_sweep(&kb, &q, &points, &cfg),
                &reference,
                "kb `{}` q `{}` diverged at {} threads",
                kb_src, q_src, threads
            );
        }
    }
}
