//! Property tests for the compiled branch-and-count engine's exactness
//! contract:
//!
//! * on generated small-`N` knowledge bases, compiled counts are
//!   **exactly equal** to the `for_each_world` oracle (both the `#KB`
//!   denominator and the `#(KB ∧ query)` numerator — so the Definition
//!   4.2 ratio can never drift);
//! * a count (value *and* visited/branched totals) is **bit-identical**
//!   across 1/2/4 worker threads.

mod common;

use proptest::prelude::*;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_util::Rat;
use rw_worlds::eval::Evaluator;
use rw_worlds::{count_models, for_each_world, CountOptions, Program};

fn tolerances() -> Tolerances {
    Tolerances::uniform(Rat::new(1, 4))
}

/// Small KBs spanning every compiled shape: unary and conditional
/// statistics, ground facts over constants, binary predicates (which the
/// unary engine rejects), equalities, quantifiers and disjunction.
/// Proportions are drawn from the `N`-stable alphabet
/// ([`common::stable_tenths`]) so no generated constraint can flip
/// satisfiability inside the scanned window and fail as a spurious
/// "inconsistent satisfiability" flake.
fn cases() -> impl Strategy<Value = (String, String, usize)> {
    let ks = common::stable_tenths(Rat::new(1, 4), 2, 6);
    let ks2 = ks.clone();
    prop_oneof![
        (0usize..ks.len(), 2usize..5).prop_map(move |(i, n)| (
            format!("||P(x)||_x ~=_1 0.{}; Q(C)", ks[i]),
            "P(C)".to_string(),
            n
        )),
        (0usize..ks2.len(), 3usize..5).prop_map(move |(i, n)| (
            format!("||Hep(x) | Jaun(x)||_x ~=_1 0.{}; Jaun(C); Jaun(D)", ks2[i]),
            "Hep(C) & Hep(D)".to_string(),
            n
        )),
        (2usize..5).prop_map(|n| ("Likes(A, B)".to_string(), "Likes(B, A)".to_string(), n)),
        (2usize..4).prop_map(|n| (
            "||Likes(x, y)||_{x,y} ~=_1 0.25; Likes(A, B)".to_string(),
            "Likes(B, A)".to_string(),
            n
        )),
        (2usize..5).prop_map(|n| (
            "C1 = C2 or C2 = C3 or C1 = C3".to_string(),
            "C1 = C2".to_string(),
            n
        )),
        (2usize..4).prop_map(|n| (
            "forall x (Penguin(x) => Bird(x)); Penguin(T)".to_string(),
            "exists x (Bird(x) & !Penguin(x))".to_string(),
            n
        )),
        (2usize..4).prop_map(|n| ("P(Next(C))".to_string(), "P(C)".to_string(), n)),
    ]
}

/// The naive oracle: walk every interpretation, model-check `f`.
fn oracle_count(kb: &KnowledgeBase, f: &Formula, n: usize) -> u128 {
    let tol = tolerances();
    let mut count = 0u128;
    let mut valuation: Vec<Option<usize>> = Vec::new();
    for_each_world(kb.vocab(), n, |w| {
        let mut ev = Evaluator::with_valuation(w, kb.vocab(), &tol, std::mem::take(&mut valuation));
        if ev.eval(f) {
            count += 1;
        }
        valuation = ev.into_valuation();
    });
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_counts_equal_the_oracle((kb_src, q_src, n) in cases()) {
        let mut kb = KnowledgeBase::parse(&kb_src).unwrap();
        let q = kb.parse_query(&q_src).unwrap();
        let tol = tolerances();
        let kb_formula = kb.as_formula();
        let numerator = Formula::and(kb_formula.clone(), q);
        for f in [&kb_formula, &numerator] {
            let prog = Program::compile(kb.vocab(), n, &tol, f).unwrap();
            let compiled = count_models(&prog, &CountOptions::default()).unwrap();
            let oracle = oracle_count(&kb, f, n);
            prop_assert_eq!(
                compiled.count, oracle,
                "count diverged on `{}` ⊢ `{}` at N={} (visited {})",
                kb_src, q_src, n, compiled.visited
            );
        }
    }

    #[test]
    fn parallel_counts_are_bit_identical((kb_src, q_src, n) in cases()) {
        let mut kb = KnowledgeBase::parse(&kb_src).unwrap();
        let q = kb.parse_query(&q_src).unwrap();
        let tol = tolerances();
        let f = Formula::and(kb.as_formula(), q);
        let prog = Program::compile(kb.vocab(), n, &tol, &f).unwrap();
        let base = count_models(&prog, &CountOptions { threads: 1, ..CountOptions::default() })
            .unwrap();
        for threads in [2usize, 4] {
            let par = count_models(&prog, &CountOptions { threads, ..CountOptions::default() })
                .unwrap();
            // Not just the count: the effort accounting surfaced in
            // traces must match too, or serving output would depend on
            // the worker count.
            prop_assert_eq!(
                par, base,
                "`{}` ⊢ `{}` at N={} diverged at {} threads",
                kb_src, q_src, n, threads
            );
        }
    }
}
