//! Reference-class reasoning baselines (paper §2).
//!
//! Before random worlds, the standard route from statistics to degrees of
//! belief was Reichenbach's: find a *single* reference class containing the
//! individual, with "suitable statistics", and adopt its statistic —
//! refined by a specificity rule (prefer the narrowest class; Reichenbach,
//! Kyburg, Pollock) and by Kyburg's *strength* rule (prefer a tighter
//! interval from a broader class when it does not contradict the narrower
//! class). The paper's §2 argues these systems fail exactly where no single
//! class summarizes the evidence: this crate implements the classical
//! selection rules so the experiment harness can show, side by side, where
//! they answer `[0, 1]` (no opinion) and random worlds still produces a
//! well-motivated value (e.g. Dempster combination for the Nixon diamond,
//! §2.3/Thm 5.26).
//!
//! The implementation reuses the workspace's statistical-statement
//! classifier and atom-set taxonomy, so a `KnowledgeBase` written for the
//! random-worlds engine can be handed to the baseline unchanged.

use rw_core::patterns::{classify, const_atom_set, synthetic_var, Taxonomy};
use rw_logic::{analysis, KnowledgeBase, ParseError};
use rw_unary::atoms::compile_atom_set;
use rw_unary::AtomSet;
use rw_util::Rat;
use std::collections::BTreeMap;

/// Which classical selection discipline to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionRule {
    /// Reichenbach: narrowest class only; incomparable survivors → no opinion.
    Specificity,
    /// Kyburg: specificity, then adopt a broader class's strictly tighter
    /// interval when it is nested in the narrower class's interval.
    SpecificityThenStrength,
}

/// A full reference-class policy: the selection rule plus Kyburg's and
/// Pollock's *syntactic restriction* on permissible classes.
///
/// §2.2: to block spurious classes like `Jaun ∧ (¬Hep ∨ x = Eric)`, Kyburg
/// and Pollock disallow **disjunctive** reference classes — and thereby
/// also lose legitimate ones like the Tay-Sachs population
/// `EEJ(x) ∨ FC(x)`. Setting `allow_disjunctive: false` reproduces that
/// restriction (and its cost); random worlds needs no such restriction
/// (Examples 5.11 / 5.22).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefClassPolicy {
    pub rule: SelectionRule,
    pub allow_disjunctive: bool,
}

impl Default for RefClassPolicy {
    fn default() -> RefClassPolicy {
        RefClassPolicy {
            rule: SelectionRule::SpecificityThenStrength,
            allow_disjunctive: true,
        }
    }
}

/// Does the class-defining formula use a disjunction (counting `⇒`/`⇔`,
/// which hide one)?
fn is_disjunctive(f: &rw_logic::Formula) -> bool {
    use rw_logic::Formula::*;
    match f {
        Or(..) | Implies(..) | Iff(..) => true,
        Not(g) | Forall(_, g) | Exists(_, g) => is_disjunctive(g),
        And(a, b) => is_disjunctive(a) || is_disjunctive(b),
        True | False | Pred(..) | TermEq(..) | Cmp(..) => false,
    }
}

/// A reference-class answer.
#[derive(Clone, Debug, PartialEq)]
pub enum RefClassAnswer {
    /// A single class was selected; its interval is the degree of belief.
    Interval { lo: f64, hi: f64, class: String },
    /// Competing incomparable classes (or no class at all): the classical
    /// systems return the trivial interval.
    NoOpinion { reason: String },
}

impl RefClassAnswer {
    pub fn as_interval(&self) -> Option<(f64, f64)> {
        match self {
            RefClassAnswer::Interval { lo, hi, .. } => Some((*lo, *hi)),
            RefClassAnswer::NoOpinion { .. } => None,
        }
    }
}

#[derive(Clone)]
struct Class {
    atoms: AtomSet,
    lo: Rat,
    hi: Rat,
    label: String,
}

/// Computes the classical reference-class degree of belief for `query`
/// (a single-constant unary query) against the KB, permitting disjunctive
/// classes.
pub fn reference_class_belief(
    kb: &KnowledgeBase,
    query: &str,
    rule: SelectionRule,
) -> Result<RefClassAnswer, ParseError> {
    reference_class_belief_policy(
        kb,
        query,
        &RefClassPolicy {
            rule,
            allow_disjunctive: true,
        },
    )
}

/// [`reference_class_belief`] under a full [`RefClassPolicy`].
pub fn reference_class_belief_policy(
    kb: &KnowledgeBase,
    query: &str,
    policy: &RefClassPolicy,
) -> Result<RefClassAnswer, ParseError> {
    let rule = policy.rule;
    let mut kb = kb.clone();
    let q = kb.parse_query(query)?;
    let consts: Vec<_> = analysis::constants(&q).into_iter().collect();
    if consts.len() != 1 {
        return Ok(RefClassAnswer::NoOpinion {
            reason: "query must concern a single individual".to_string(),
        });
    }
    let c = consts[0];
    let vocab = kb.vocab();
    let cls = classify(&kb);
    let Some(taxonomy) = Taxonomy::build(&cls, vocab) else {
        return Ok(RefClassAnswer::NoOpinion {
            reason: "vocabulary too large for class analysis".to_string(),
        });
    };
    let phi = analysis::generalize_const(&q, c, synthetic_var(0));
    let phi_map: BTreeMap<_, _> = [(synthetic_var(0), 0usize)].into_iter().collect();
    let phi_canon = rw_core::patterns::canon(&phi, &phi_map);

    // Candidate classes: statistics about φ whose class contains c.
    let facts = const_atom_set(&cls, c, vocab);
    let mut classes: Vec<Class> = Vec::new();
    for s in &cls.stats {
        if s.vars.len() != 1 {
            continue;
        }
        let their: BTreeMap<_, _> = [(s.vars[0], 0usize)].into_iter().collect();
        if rw_core::patterns::canon(&s.body, &their) != phi_canon {
            continue;
        }
        let Some(atoms) = compile_atom_set(&s.cond, s.vars[0], vocab) else {
            continue;
        };
        if !policy.allow_disjunctive && is_disjunctive(&s.cond) {
            continue; // Kyburg/Pollock: disjunctive classes impermissible.
        }
        if !taxonomy.entails(&facts, &atoms) {
            continue; // c is not known to belong to this class
        }
        // "Suitable statistics": a nontrivial interval (paper §2.1).
        if s.lo == Rat::ZERO && s.hi == Rat::ONE {
            continue;
        }
        classes.push(Class {
            atoms,
            lo: s.lo,
            hi: s.hi,
            label: format!("{}", rw_logic::Pretty::new(vocab, &s.cond)),
        });
    }
    if classes.is_empty() {
        return Ok(RefClassAnswer::NoOpinion {
            reason: "no reference class with suitable statistics".to_string(),
        });
    }

    // Specificity: keep classes with no strictly narrower competitor.
    let strictly_narrower = |a: &Class, b: &Class| {
        taxonomy.entails(&a.atoms, &b.atoms) && !taxonomy.entails(&b.atoms, &a.atoms)
    };
    let minimal: Vec<Class> = classes
        .iter()
        .filter(|a| !classes.iter().any(|b| strictly_narrower(b, a)))
        .cloned()
        .collect();

    let mut selected = minimal;
    if rule == SelectionRule::SpecificityThenStrength {
        // Kyburg's strength rule: a broader class with a strictly tighter
        // interval nested in the selected class's interval replaces it.
        let mut improved = Vec::new();
        for m in &selected {
            let mut best = m.clone();
            for b in &classes {
                let broader = taxonomy.entails(&m.atoms, &b.atoms);
                let tighter =
                    b.lo >= best.lo && b.hi <= best.hi && (b.lo > best.lo || b.hi < best.hi);
                if broader && tighter {
                    best = b.clone();
                }
            }
            improved.push(best);
        }
        selected = improved;
    }

    // All survivors must agree (identical intervals); otherwise the
    // classical systems give up.
    let (lo, hi) = (selected[0].lo, selected[0].hi);
    if selected.iter().all(|s| s.lo == lo && s.hi == hi) {
        Ok(RefClassAnswer::Interval {
            lo: lo.to_f64(),
            hi: hi.to_f64(),
            class: selected[0].label.clone(),
        })
    } else {
        Ok(RefClassAnswer::NoOpinion {
            reason: format!(
                "{} incomparable reference classes with conflicting statistics",
                selected.len()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(src: &str) -> KnowledgeBase {
        KnowledgeBase::parse(src).unwrap()
    }

    #[test]
    fn basic_direct_inference() {
        // Reichenbach handles the textbook case just like random worlds.
        let k = kb("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)");
        let a = reference_class_belief(&k, "Hep(Eric)", SelectionRule::Specificity).unwrap();
        assert_eq!(a.as_interval(), Some((0.8, 0.8)));
    }

    #[test]
    fn specificity_prefers_subclass() {
        let k = kb("Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)");
        let a = reference_class_belief(&k, "Fly(Tweety)", SelectionRule::Specificity).unwrap();
        assert_eq!(a.as_interval(), Some((0.0, 0.0)));
    }

    #[test]
    fn strength_rule_magpies() {
        // Paper §2.3: the magpie interval [0, 0.99] is replaced by the
        // tighter bird interval [0.7, 0.8] under Kyburg's strength rule —
        // but NOT under pure specificity.
        let k = kb("0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8; \
             0 <~_3 ||Chirps(x) | Magpie(x)||_x <~_4 0.99; \
             forall x (Magpie(x) => Bird(x)); Magpie(Tweety)");
        let strict =
            reference_class_belief(&k, "Chirps(Tweety)", SelectionRule::Specificity).unwrap();
        assert_eq!(strict.as_interval(), Some((0.0, 0.99)));
        let strong =
            reference_class_belief(&k, "Chirps(Tweety)", SelectionRule::SpecificityThenStrength)
                .unwrap();
        assert_eq!(strong.as_interval(), Some((0.7, 0.8)));
    }

    #[test]
    fn incomparable_classes_give_up() {
        // Paper §2.3 (Fred the smoker with high cholesterol): neither class
        // dominates, so the baseline answers "no opinion" — random worlds
        // combines the evidence via Thm 5.26 instead.
        let k = kb("||Heart-disease(x) | Cholesterol(x)||_x ~=_1 0.15; \
             ||Heart-disease(x) | Smoker(x)||_x ~=_2 0.09; \
             Cholesterol(Fred); Smoker(Fred)");
        let a = reference_class_belief(
            &k,
            "Heart-disease(Fred)",
            SelectionRule::SpecificityThenStrength,
        )
        .unwrap();
        assert!(matches!(a, RefClassAnswer::NoOpinion { .. }), "{a:?}");
    }

    #[test]
    fn agreeing_incomparable_classes_still_answer() {
        // Footnote 14: Republican bankers — both classes say 0.2, Kyburg
        // answers 0.2 (random worlds disagrees: δ(0.2, 0.2) = 1/17 ≈ 0.059).
        let k = kb("||Pacifist(x) | Republican(x)||_x ~=_1 0.2; \
             ||Pacifist(x) | Banker(x)||_x ~=_2 0.2; \
             Republican(Morgan); Banker(Morgan)");
        let a = reference_class_belief(
            &k,
            "Pacifist(Morgan)",
            SelectionRule::SpecificityThenStrength,
        )
        .unwrap();
        assert_eq!(a.as_interval(), Some((0.2, 0.2)));
        let rw = rw_core::theorems::dempster_rule(&[0.2, 0.2]);
        assert!((rw - 1.0 / 17.0).abs() < 1e-9); // 0.04/(0.04+0.64)
    }

    #[test]
    fn no_class_at_all() {
        let k = kb("Jaun(Eric)");
        let a = reference_class_belief(&k, "Hep(Eric)", SelectionRule::Specificity).unwrap();
        assert!(matches!(a, RefClassAnswer::NoOpinion { .. }));
    }

    #[test]
    fn trivial_statistics_are_not_suitable() {
        // A [0,1] interval is not a "suitable statistic" (paper §2.1).
        let k = kb("0 <~_1 ||Hep(x) | Jaun(x)||_x <~_2 1; Jaun(Eric)");
        let a = reference_class_belief(&k, "Hep(Eric)", SelectionRule::Specificity).unwrap();
        assert!(matches!(a, RefClassAnswer::NoOpinion { .. }));
    }

    #[test]
    fn disallowing_disjunctive_classes_loses_tay_sachs() {
        // §2.2: the Tay-Sachs population is a disjunction. Kyburg's and
        // Pollock's restriction throws the statistic away; permitting the
        // class recovers the paper's answer 0.02 (Example 5.22).
        let k = kb("||TS(x) | EEJ(x) or FC(x)||_x ~=_1 0.02; EEJ(Eric)");
        let permissive =
            reference_class_belief_policy(&k, "TS(Eric)", &RefClassPolicy::default()).unwrap();
        assert_eq!(permissive.as_interval(), Some((0.02, 0.02)));
        let restricted = reference_class_belief_policy(
            &k,
            "TS(Eric)",
            &RefClassPolicy {
                allow_disjunctive: false,
                ..RefClassPolicy::default()
            },
        )
        .unwrap();
        assert!(
            matches!(restricted, RefClassAnswer::NoOpinion { .. }),
            "{restricted:?}"
        );
    }

    #[test]
    fn implication_classes_count_as_disjunctive() {
        // `A ⇒ B` hides `¬A ∨ B`; the restriction must catch it. Eric is
        // known to satisfy the class via ¬Q.
        let k = kb("||P(x) | Q(x) => R(x)||_x ~=_1 0.4; !Q(Eric)");
        let permissive =
            reference_class_belief_policy(&k, "P(Eric)", &RefClassPolicy::default()).unwrap();
        assert_eq!(permissive.as_interval(), Some((0.4, 0.4)));
        let restricted = reference_class_belief_policy(
            &k,
            "P(Eric)",
            &RefClassPolicy {
                allow_disjunctive: false,
                ..RefClassPolicy::default()
            },
        )
        .unwrap();
        assert!(matches!(restricted, RefClassAnswer::NoOpinion { .. }));
    }
}
