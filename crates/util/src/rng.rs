//! A small, deterministic, std-only random number generator.
//!
//! The workspace is offline-first: it cannot pull the `rand` crate, and the
//! only randomness it needs is Monte-Carlo world sampling (`rw-worlds`) and
//! benchmark input shuffling. This module provides the minimal surface those
//! callers use — [`Rng::gen_bool`], [`Rng::gen_range`] and a seedable
//! generator — backed by xoshiro256** seeded through SplitMix64, the
//! standard construction for fast, high-quality non-cryptographic streams.
//!
//! Not suitable for cryptography.

/// A stream of pseudo-random numbers.
///
/// Implementors supply [`Rng::next_u64`]; the derived helpers mirror the
/// fragment of the `rand` crate's API the workspace historically used.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits gives an exact dyadic uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniform draw from `range` (which must be non-empty).
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range over empty range");
        let span = (range.end - range.start) as u64;
        // Rejection sampling over the largest multiple of `span` avoids
        // modulo bias; the loop rejects < 1 draw on average.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + (v % span) as usize;
            }
        }
    }
}

/// The workspace's default generator: xoshiro256**.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// A generator whose full 256-bit state is derived from `seed` by
    /// SplitMix64 (so nearby seeds give unrelated streams).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "{p}");
        let mut rng = StdRng::seed_from_u64(8);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_is_uniform_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            let v = rng.gen_range(2..7);
            assert!((2..7).contains(&v));
            counts[v - 2] += 1;
        }
        for c in counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.2).abs() < 0.02, "{counts:?}");
        }
    }
}
