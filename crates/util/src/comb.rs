//! Log-domain combinatorics: factorials, binomials, multinomials and falling
//! factorials.
//!
//! The unary counting engine weighs each atom-count profile `(n₁..n_A)` by
//! `multinomial(N; n₁..n_A) · Π_a (n_a)_{k_a}` (the falling factorials place
//! the distinct constant blocks). `N` can be in the thousands, so weights are
//! [`LogWeight`]s computed from a shared `ln(k!)` table.

use crate::logweight::LogWeight;

/// A precomputed table of `ln(k!)` for `k ≤ max_n`.
///
/// Build one per counting pass sized to the domain; lookups are then O(1)
/// and allocation-free in the inner composition loop.
#[derive(Clone, Debug)]
pub struct FactTable {
    ln_fact: Vec<f64>,
}

impl FactTable {
    pub fn new(max_n: usize) -> FactTable {
        let mut ln_fact = Vec::with_capacity(max_n + 1);
        ln_fact.push(0.0);
        let mut acc = 0.0;
        for k in 1..=max_n {
            acc += (k as f64).ln();
            ln_fact.push(acc);
        }
        FactTable { ln_fact }
    }

    pub fn max_n(&self) -> usize {
        self.ln_fact.len() - 1
    }

    /// `ln(n!)`.
    pub fn ln_factorial(&self, n: usize) -> f64 {
        self.ln_fact[n]
    }

    /// `C(n, k)` as a log-domain weight (zero when `k > n`).
    pub fn binomial(&self, n: usize, k: usize) -> LogWeight {
        if k > n {
            return LogWeight::ZERO;
        }
        LogWeight::from_ln(self.ln_fact[n] - self.ln_fact[k] - self.ln_fact[n - k])
    }

    /// `multinomial(n; parts)` where `parts` must sum to `n`.
    pub fn multinomial(&self, n: usize, parts: &[usize]) -> LogWeight {
        debug_assert_eq!(
            parts.iter().sum::<usize>(),
            n,
            "multinomial parts must sum to n"
        );
        let mut ln = self.ln_fact[n];
        for &p in parts {
            ln -= self.ln_fact[p];
        }
        LogWeight::from_ln(ln)
    }

    /// Falling factorial `(n)_k = n (n-1) ... (n-k+1)` (zero when `k > n`).
    pub fn falling(&self, n: usize, k: usize) -> LogWeight {
        if k > n {
            return LogWeight::ZERO;
        }
        LogWeight::from_ln(self.ln_fact[n] - self.ln_fact[n - k])
    }
}

/// Exact `C(n, k)` in `u128`; panics on overflow. Useful for tests and for
/// the small exact counts in the enumeration engine.
pub fn binomial_exact(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result
            .checked_mul((n - i) as u128)
            .expect("binomial_exact overflow");
        result /= (i + 1) as u128;
    }
    result
}

/// Exact number of weak compositions of `n` into `parts` parts,
/// `C(n + parts - 1, parts - 1)`.
pub fn weak_compositions_count(n: u64, parts: u64) -> u128 {
    if parts == 0 {
        return if n == 0 { 1 } else { 0 };
    }
    binomial_exact(n + parts - 1, parts - 1)
}

/// The `n`-th Bell number (number of set partitions), exact for `n ≤ 25`.
pub fn bell_number(n: usize) -> u128 {
    // Bell triangle.
    let mut row = vec![1u128];
    for _ in 1..=n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().unwrap());
        for &v in &row {
            let last = *next.last().unwrap();
            next.push(last.checked_add(v).expect("bell_number overflow"));
        }
        row = next;
    }
    row[0]
}

/// `ln Γ(x)` for `x > 0` via the Lanczos approximation (g = 7, n = 9).
///
/// Needed by the Carnap λ-continuum weights in the random-propensities
/// engine, whose pseudo-counts `n_a + λ/A` are not integers. Accurate to
/// ~1e-13 relative error over the range the engines use; agrees with
/// `ln(n!)` at integer arguments (tested below).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    // Canonical Lanczos(g=7) coefficients, kept at published precision.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1-x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn factorial_table() {
        let t = FactTable::new(10);
        assert!(close(t.ln_factorial(0), 0.0));
        assert!(close(t.ln_factorial(5), 120f64.ln()));
        assert!(close(t.ln_factorial(10), 3_628_800f64.ln()));
    }

    #[test]
    fn binomial_log_vs_exact() {
        let t = FactTable::new(40);
        for n in 0..=40u64 {
            for k in 0..=n {
                let exact = binomial_exact(n, k) as f64;
                assert!(
                    close(t.binomial(n as usize, k as usize).ln(), exact.ln()),
                    "C({n},{k})"
                );
            }
        }
        assert!(t.binomial(5, 9).is_zero());
    }

    #[test]
    fn multinomial_small() {
        let t = FactTable::new(10);
        // 10! / (2! 3! 5!) = 2520
        assert!(close(t.multinomial(10, &[2, 3, 5]).ln(), 2520f64.ln()));
        // Degenerate: single part.
        assert!(close(t.multinomial(7, &[7]).ln(), 0.0));
    }

    #[test]
    fn falling_factorial() {
        let t = FactTable::new(10);
        assert!(close(t.falling(5, 0).ln(), 0.0));
        assert!(close(t.falling(5, 2).ln(), 20f64.ln()));
        assert!(close(t.falling(5, 5).ln(), 120f64.ln()));
        assert!(t.falling(3, 4).is_zero());
    }

    #[test]
    fn binomial_exact_values() {
        assert_eq!(binomial_exact(0, 0), 1);
        assert_eq!(binomial_exact(52, 5), 2_598_960);
        assert_eq!(binomial_exact(10, 11), 0);
    }

    #[test]
    fn composition_counts() {
        assert_eq!(weak_compositions_count(5, 1), 1);
        assert_eq!(weak_compositions_count(5, 2), 6);
        assert_eq!(weak_compositions_count(4, 3), 15);
        assert_eq!(weak_compositions_count(0, 0), 1);
        assert_eq!(weak_compositions_count(3, 0), 0);
    }

    #[test]
    fn bell_numbers() {
        let expected = [1u128, 1, 2, 5, 15, 52, 203, 877, 4140];
        for (n, &e) in expected.iter().enumerate() {
            assert_eq!(bell_number(n), e, "B({n})");
        }
    }

    #[test]
    fn ln_gamma_matches_factorials_at_integers() {
        let fact = FactTable::new(200);
        for n in 1usize..=200 {
            let lg = ln_gamma(n as f64);
            let lf = fact.ln_factorial(n - 1);
            assert!(
                (lg - lf).abs() < 1e-10 * (1.0 + lf.abs()),
                "ln_gamma({n}) = {lg}, ln({}!) = {lf}",
                n - 1
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer_values() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2, Γ(5/2) = 3√π/4.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(close(ln_gamma(0.5), sqrt_pi.ln()));
        assert!(close(ln_gamma(1.5), (sqrt_pi / 2.0).ln()));
        assert!(close(ln_gamma(2.5), (3.0 * sqrt_pi / 4.0).ln()));
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) over a spread of non-integer points.
        for &x in &[0.1, 0.37, 0.9, 1.21, 3.99, 10.5, 55.25] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!(close(lhs, rhs), "recurrence at {x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
