//! Exact rational arithmetic on `i128`.
//!
//! Proportions in a world of size `N` are quotients with denominator `N^k`
//! for small `k`, and tolerances are user-supplied rationals such as `1/100`.
//! All truth-value decisions in the model checker go through this type so
//! that borderline comparisons (e.g. is `4/5` within `1/10` of `0.9`?) are
//! decided exactly rather than by floating point luck.
//!
//! Arithmetic is checked: overflow panics with a clear message rather than
//! silently wrapping. The magnitudes that arise in practice (numerators
//! bounded by `N^k` with `N ≤ 10^4`, `k ≤ 4`) are far below `i128::MAX`,
//! and every operation normalizes by the gcd to keep them that way.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number with an `i128` numerator and denominator.
///
/// Invariants: the denominator is strictly positive and `gcd(num, den) == 1`
/// (with `0` represented as `0/1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num / den`, normalizing sign and gcd. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "Rat denominator must be nonzero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    pub fn num(&self) -> i128 {
        self.num
    }

    pub fn den(&self) -> i128 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Parses a decimal literal such as `0.8`, `1`, `-0.25` or a fraction
    /// `4/5` into an exact rational.
    pub fn parse(s: &str) -> Option<Rat> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n.trim().parse().ok()?;
            let d: i128 = d.trim().parse().ok()?;
            if d == 0 {
                return None;
            }
            return Some(Rat::new(n, d));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let neg = int_part.trim_start().starts_with('-');
            let int_val: i128 = if int_part.is_empty() || int_part == "-" {
                0
            } else {
                int_part.parse().ok()?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let scale = 10i128.checked_pow(frac_part.len() as u32)?;
            let frac_val: i128 = frac_part.parse().ok()?;
            let mag = int_val.abs().checked_mul(scale)?.checked_add(frac_val)?;
            let signed = if neg || int_val < 0 { -mag } else { mag };
            return Some(Rat::new(signed, scale));
        }
        let n: i128 = s.parse().ok()?;
        Some(Rat::int(n))
    }

    /// `|self - other| <= tol`, decided exactly.
    pub fn approx_eq(&self, other: Rat, tol: Rat) -> bool {
        (*self - other).abs() <= tol
    }

    /// `self - other <= tol`, i.e. `self ⪯ other` under tolerance `tol`.
    pub fn approx_leq(&self, other: Rat, tol: Rat) -> bool {
        *self - other <= tol
    }

    fn checked_bin(a: i128, b: i128, op: &str, f: impl Fn(i128, i128) -> Option<i128>) -> i128 {
        f(a, b).unwrap_or_else(|| panic!("Rat {op} overflow: {a} {op} {b}"))
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Use the lcm-style formulation to delay overflow.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = Rat::checked_bin(
            Rat::checked_bin(self.num, lhs_scale, "*", i128::checked_mul),
            Rat::checked_bin(rhs.num, rhs_scale, "*", i128::checked_mul),
            "+",
            i128::checked_add,
        );
        let den = Rat::checked_bin(self.den, lhs_scale, "*", i128::checked_mul);
        Rat::new(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-cancel before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = Rat::checked_bin(self.num / g1, rhs.num / g2, "*", i128::checked_mul);
        let den = Rat::checked_bin(self.den / g2, rhs.den / g1, "*", i128::checked_mul);
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    // Division by the reciprocal is the intended arithmetic here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b vs c/d  (b,d > 0)  ⇔  a*d vs c*b, with cross-cancellation by the
        // (non-negative) gcds to delay overflow. Dividing by positive common
        // factors preserves the ordering of the cross products.
        let g1 = gcd(self.num, other.num).max(1);
        let g2 = gcd(self.den, other.den);
        let lhs = Rat::checked_bin(self.num / g1, other.den / g2, "*", i128::checked_mul);
        let rhs = Rat::checked_bin(other.num / g1, self.den / g2, "*", i128::checked_mul);
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::int(2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::new(4, 5) > Rat::new(3, 4));
        assert_eq!(Rat::new(2, 6).cmp(&Rat::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn parse_literals() {
        assert_eq!(Rat::parse("0.8"), Some(Rat::new(4, 5)));
        assert_eq!(Rat::parse("1"), Some(Rat::ONE));
        assert_eq!(Rat::parse("-0.25"), Some(Rat::new(-1, 4)));
        assert_eq!(Rat::parse("4/5"), Some(Rat::new(4, 5)));
        assert_eq!(Rat::parse("7/0"), None);
        assert_eq!(Rat::parse("x"), None);
    }

    #[test]
    fn tolerance_comparisons_exact() {
        let p = Rat::new(4, 5); // 0.8
        assert!(p.approx_eq(Rat::new(9, 10), Rat::new(1, 10))); // |0.8-0.9| = 0.1 <= 0.1
        assert!(!p.approx_eq(Rat::new(9, 10), Rat::new(99, 1000))); // 0.1 > 0.099
        assert!(p.approx_leq(Rat::new(7, 10), Rat::new(1, 10)));
        assert!(!p.approx_leq(Rat::new(7, 10), Rat::new(99, 1000)));
    }

    proptest! {
        #[test]
        fn field_axioms(an in -1000i128..1000, ad in 1i128..1000,
                        bn in -1000i128..1000, bd in 1i128..1000,
                        cn in -1000i128..1000, cd in 1i128..1000) {
            let a = Rat::new(an, ad);
            let b = Rat::new(bn, bd);
            let c = Rat::new(cn, cd);
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + Rat::ZERO, a);
            prop_assert_eq!(a * Rat::ONE, a);
            prop_assert_eq!(a - a, Rat::ZERO);
            if !b.is_zero() {
                prop_assert_eq!(a / b * b, a);
            }
        }

        #[test]
        fn ordering_matches_f64(an in -10_000i128..10_000, ad in 1i128..10_000,
                                bn in -10_000i128..10_000, bd in 1i128..10_000) {
            let a = Rat::new(an, ad);
            let b = Rat::new(bn, bd);
            let fa = an as f64 / ad as f64;
            let fb = bn as f64 / bd as f64;
            if (fa - fb).abs() > 1e-9 {
                prop_assert_eq!(a < b, fa < fb);
            }
        }

        #[test]
        fn display_parse_roundtrip(n in -100_000i128..100_000, d in 1i128..100_000) {
            let r = Rat::new(n, d);
            prop_assert_eq!(Rat::parse(&r.to_string()), Some(r));
        }
    }
}
