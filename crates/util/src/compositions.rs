//! Iterator over weak compositions: all ways to write `n` as an ordered sum
//! of `parts` non-negative integers.
//!
//! The unary engine enumerates atom-count profiles `(n₁..n_A)` with
//! `Σ n_a = N`; this iterator visits them in lexicographic order, reusing a
//! single buffer (callers receive `&[usize]` and must copy if they need to
//! keep a profile).

/// Lexicographic iterator over weak compositions of `n` into `parts` parts.
///
/// ```
/// use rw_util::Compositions;
/// let mut seen = Vec::new();
/// let mut it = Compositions::new(2, 2);
/// while let Some(c) = it.next() {
///     seen.push(c.to_vec());
/// }
/// assert_eq!(seen, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);
/// ```
#[derive(Clone, Debug)]
pub struct Compositions {
    buf: Vec<usize>,
    n: usize,
    started: bool,
    done: bool,
}

impl Compositions {
    pub fn new(n: usize, parts: usize) -> Compositions {
        Compositions {
            buf: vec![0; parts],
            n,
            started: false,
            done: parts == 0 && n > 0,
        }
    }

    /// Advances to the next composition, returning a view of it.
    ///
    /// This is a lending iterator (the standard `Iterator` trait cannot
    /// express the borrow), hence the inherent `next` method.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.buf.is_empty() {
                // Exactly one empty composition of 0.
                self.done = true;
                return Some(&self.buf);
            }
            let last = self.buf.len() - 1;
            self.buf[last] = self.n;
            return Some(&self.buf);
        }
        // Lexicographic successor: locate the rightmost positive entry `i`.
        // If i == 0 the weight is all the way left and we are done; otherwise
        // move one unit from `i` to `i-1` and flush the remainder of `i` to
        // the last slot (the invariant keeps everything right of the pivot in
        // the final position, so no other entries need clearing).
        let len = self.buf.len();
        if len == 1 {
            self.done = true;
            return None;
        }
        let mut i = len - 1;
        while i > 0 && self.buf[i] == 0 {
            i -= 1;
        }
        if i == 0 {
            self.done = true;
            return None;
        }
        self.buf[i - 1] += 1;
        let rest = self.buf[i] - 1;
        self.buf[i] = 0;
        self.buf[len - 1] += rest;
        Some(&self.buf)
    }

    /// Collects all compositions (for tests and small cases).
    pub fn collect_all(n: usize, parts: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut it = Compositions::new(n, parts);
        while let Some(c) = it.next() {
            out.push(c.to_vec());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::weak_compositions_count;

    #[test]
    fn small_cases() {
        assert_eq!(Compositions::collect_all(0, 0), vec![Vec::<usize>::new()]);
        assert_eq!(Compositions::collect_all(3, 1), vec![vec![3]]);
        assert_eq!(
            Compositions::collect_all(2, 2),
            vec![vec![0, 2], vec![1, 1], vec![2, 0]]
        );
        assert_eq!(
            Compositions::collect_all(2, 3),
            vec![
                vec![0, 0, 2],
                vec![0, 1, 1],
                vec![0, 2, 0],
                vec![1, 0, 1],
                vec![1, 1, 0],
                vec![2, 0, 0],
            ]
        );
    }

    #[test]
    fn counts_match_closed_form() {
        for n in 0..7usize {
            for parts in 1..5usize {
                let got = Compositions::collect_all(n, parts).len() as u128;
                assert_eq!(
                    got,
                    weak_compositions_count(n as u64, parts as u64),
                    "n={n} parts={parts}"
                );
            }
        }
    }

    #[test]
    fn all_sum_to_n_and_unique() {
        let all = Compositions::collect_all(6, 4);
        for c in &all {
            assert_eq!(c.iter().sum::<usize>(), 6);
        }
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
        // Lexicographic order.
        assert_eq!(sorted, all);
    }

    #[test]
    fn zero_into_many_parts() {
        assert_eq!(Compositions::collect_all(0, 3), vec![vec![0, 0, 0]]);
    }
}
