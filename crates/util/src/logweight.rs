//! Non-negative real numbers stored in the log domain.
//!
//! The number of worlds of size `N` over a vocabulary with a single binary
//! predicate is `2^(N²)`; even atom-class weights `multinomial(N; n₁..n_A)`
//! overflow `u128` around `N ≈ 130`. Aggregated world counts therefore live
//! here: a [`LogWeight`] stores `ln(w)` and supports the two operations the
//! counting engines need, product (`+` of logs) and sum (log-sum-exp, always
//! anchored at the larger operand so precision loss is one ulp-scale event
//! per addition).

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign};

/// A non-negative real number `w`, stored as `ln(w)` (`-inf` encodes zero).
#[derive(Clone, Copy, PartialEq)]
pub struct LogWeight {
    ln: f64,
}

impl LogWeight {
    pub const ZERO: LogWeight = LogWeight {
        ln: f64::NEG_INFINITY,
    };
    pub const ONE: LogWeight = LogWeight { ln: 0.0 };

    /// Builds a weight directly from its natural logarithm.
    pub fn from_ln(ln: f64) -> LogWeight {
        LogWeight { ln }
    }

    /// Builds a weight from a plain non-negative value.
    pub fn from_value(v: f64) -> LogWeight {
        assert!(v >= 0.0, "LogWeight must be non-negative, got {v}");
        LogWeight { ln: v.ln() }
    }

    pub fn ln(&self) -> f64 {
        self.ln
    }

    pub fn is_zero(&self) -> bool {
        self.ln == f64::NEG_INFINITY
    }

    /// Returns `self / other` as an ordinary `f64`.
    ///
    /// This is how a degree of belief `#worlds(φ∧KB) / #worlds(KB)` leaves the
    /// log domain; the difference of logs is small even when both counts are
    /// astronomically large.
    pub fn ratio(&self, other: LogWeight) -> f64 {
        if other.is_zero() {
            return f64::NAN;
        }
        if self.is_zero() {
            return 0.0;
        }
        (self.ln - other.ln).exp()
    }
}

impl Add for LogWeight {
    type Output = LogWeight;
    fn add(self, rhs: LogWeight) -> LogWeight {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let (hi, lo) = if self.ln >= rhs.ln {
            (self.ln, rhs.ln)
        } else {
            (rhs.ln, self.ln)
        };
        LogWeight {
            ln: hi + (lo - hi).exp().ln_1p(),
        }
    }
}

impl AddAssign for LogWeight {
    fn add_assign(&mut self, rhs: LogWeight) {
        *self = *self + rhs;
    }
}

impl Mul for LogWeight {
    type Output = LogWeight;
    fn mul(self, rhs: LogWeight) -> LogWeight {
        if self.is_zero() || rhs.is_zero() {
            return LogWeight::ZERO;
        }
        LogWeight {
            ln: self.ln + rhs.ln,
        }
    }
}

impl MulAssign for LogWeight {
    fn mul_assign(&mut self, rhs: LogWeight) {
        *self = *self * rhs;
    }
}

impl Div for LogWeight {
    type Output = LogWeight;
    fn div(self, rhs: LogWeight) -> LogWeight {
        assert!(!rhs.is_zero(), "LogWeight division by zero");
        if self.is_zero() {
            return LogWeight::ZERO;
        }
        LogWeight {
            ln: self.ln - rhs.ln,
        }
    }
}

impl Sum for LogWeight {
    fn sum<I: Iterator<Item = LogWeight>>(iter: I) -> LogWeight {
        iter.fold(LogWeight::ZERO, |acc, w| acc + w)
    }
}

impl PartialOrd for LogWeight {
    fn partial_cmp(&self, other: &LogWeight) -> Option<Ordering> {
        self.ln.partial_cmp(&other.ln)
    }
}

impl fmt::Debug for LogWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "LogWeight(0)")
        } else {
            write!(f, "LogWeight(e^{:.6})", self.ln)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn add_matches_linear_domain() {
        let a = LogWeight::from_value(3.5);
        let b = LogWeight::from_value(0.25);
        assert!(close((a + b).ln(), 3.75f64.ln()));
    }

    #[test]
    fn zero_is_identity_for_add() {
        let a = LogWeight::from_value(7.0);
        assert!(close((a + LogWeight::ZERO).ln(), a.ln()));
        assert!(close((LogWeight::ZERO + a).ln(), a.ln()));
        assert!((LogWeight::ZERO + LogWeight::ZERO).is_zero());
    }

    #[test]
    fn mul_and_div() {
        let a = LogWeight::from_value(6.0);
        let b = LogWeight::from_value(1.5);
        assert!(close((a * b).ln(), 9.0f64.ln()));
        assert!(close((a / b).ln(), 4.0f64.ln()));
        assert!((a * LogWeight::ZERO).is_zero());
    }

    #[test]
    fn ratio_of_huge_counts() {
        // 2^(10_000) vs 2^(10_001): the ratio is exactly 1/2 even though both
        // counts are far beyond f64 range in the linear domain.
        let big = LogWeight::from_ln(10_000.0 * std::f64::consts::LN_2);
        let bigger = LogWeight::from_ln(10_001.0 * std::f64::consts::LN_2);
        assert!(close(big.ratio(bigger), 0.5));
    }

    #[test]
    fn ratio_edge_cases() {
        assert!(LogWeight::ONE.ratio(LogWeight::ZERO).is_nan());
        assert_eq!(LogWeight::ZERO.ratio(LogWeight::ONE), 0.0);
    }

    #[test]
    fn sum_iterator() {
        let total: LogWeight = (1..=4).map(|i| LogWeight::from_value(i as f64)).sum();
        assert!(close(total.ln(), 10.0f64.ln()));
    }
}
