//! Iterator over set partitions, encoded as restricted growth strings.
//!
//! The unary counting engine sums over *equality patterns* of the constant
//! symbols: which constants denote the same domain element. An equality
//! pattern is exactly a set partition of the constants. A partition of
//! `{0..n}` is encoded as a vector `a` with `a[0] = 0` and
//! `a[i] ≤ max(a[0..i]) + 1`: `a[i]` is the index of the block containing
//! element `i` (blocks numbered in order of first appearance).

/// Lexicographic iterator over restricted growth strings of length `n`.
///
/// ```
/// use rw_util::SetPartitions;
/// let all: Vec<_> = SetPartitions::collect_all(3);
/// assert_eq!(all.len(), 5); // Bell(3)
/// assert!(all.contains(&vec![0, 0, 0])); // all equal
/// assert!(all.contains(&vec![0, 1, 2])); // all distinct
/// ```
#[derive(Clone, Debug)]
pub struct SetPartitions {
    rgs: Vec<usize>,
    started: bool,
    done: bool,
}

impl SetPartitions {
    pub fn new(n: usize) -> SetPartitions {
        SetPartitions {
            rgs: vec![0; n],
            started: false,
            done: false,
        }
    }

    /// Advances to the next partition, returning the restricted growth string.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.rgs); // all zeros = single block (or empty)
        }
        let n = self.rgs.len();
        if n <= 1 {
            self.done = true;
            return None;
        }
        // Find the rightmost position we can increment while preserving the
        // restricted-growth property, reset everything after it to 0.
        let mut i = n - 1;
        loop {
            let max_prefix = self.rgs[..i].iter().copied().max().unwrap_or(0);
            if self.rgs[i] <= max_prefix {
                self.rgs[i] += 1;
                for j in i + 1..n {
                    self.rgs[j] = 0;
                }
                return Some(&self.rgs);
            }
            if i == 1 {
                self.done = true;
                return None;
            }
            i -= 1;
        }
    }

    /// Number of blocks in a restricted growth string.
    pub fn block_count(rgs: &[usize]) -> usize {
        rgs.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Collects all partitions of `{0..n}` (for tests and small `n`).
    pub fn collect_all(n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut it = SetPartitions::new(n);
        while let Some(p) = it.next() {
            out.push(p.to_vec());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::bell_number;

    #[test]
    fn counts_are_bell_numbers() {
        for n in 0..=8usize {
            let got = SetPartitions::collect_all(n).len() as u128;
            assert_eq!(got, bell_number(n), "n={n}");
        }
    }

    #[test]
    fn partitions_of_three() {
        let all = SetPartitions::collect_all(3);
        assert_eq!(
            all,
            vec![
                vec![0, 0, 0],
                vec![0, 0, 1],
                vec![0, 1, 0],
                vec![0, 1, 1],
                vec![0, 1, 2],
            ]
        );
    }

    #[test]
    fn restricted_growth_property() {
        for p in SetPartitions::collect_all(6) {
            assert_eq!(p[0], 0);
            for i in 1..p.len() {
                let max_prefix = p[..i].iter().copied().max().unwrap();
                assert!(p[i] <= max_prefix + 1, "violation in {p:?}");
            }
        }
    }

    #[test]
    fn block_counts() {
        assert_eq!(SetPartitions::block_count(&[]), 0);
        assert_eq!(SetPartitions::block_count(&[0, 0, 0]), 1);
        assert_eq!(SetPartitions::block_count(&[0, 1, 0, 2]), 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(SetPartitions::collect_all(0), vec![Vec::<usize>::new()]);
        assert_eq!(SetPartitions::collect_all(1), vec![vec![0]]);
    }
}
