//! Shared numeric and enumeration primitives for the random-worlds workspace.
//!
//! The random-worlds method (Bacchus–Grove–Halpern–Koller) computes degrees of
//! belief as ratios of world counts. Three low-level facts shape this crate:
//!
//! * proportions inside a finite world are *exact rationals* `k / N^m`, and
//!   tolerance comparisons (`ζ ≈_i ζ'`) must be decided exactly — so we provide
//!   an `i128`-backed [`rat::Rat`];
//! * world counts explode past `u128` almost immediately (there are
//!   `2^(N^2)` binary relations alone), so aggregate weights live in the
//!   log domain as [`logweight::LogWeight`];
//! * the unary counting engine sums over *weak compositions* of the domain
//!   size into atoms and over *set partitions* of constants (equality
//!   patterns), so we provide allocation-free iterators for both.

pub mod comb;
pub mod compositions;
pub mod logweight;
pub mod partitions;
pub mod rat;
pub mod rng;

pub use comb::{ln_gamma, FactTable};
pub use compositions::Compositions;
pub use logweight::LogWeight;
pub use partitions::SetPartitions;
pub use rat::Rat;
pub use rng::{Rng, StdRng};
