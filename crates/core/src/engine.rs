//! Engine orchestration: theorems → maximum entropy → exact finite-`N`
//! diagonals.

use crate::belief::{Belief, Provenance};
use crate::theorems;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, ParseError, Tolerances};
use rw_maxent::{LimitOutcome, MaxentError, SweepConfig};
use rw_util::Rat;
use std::fmt;

/// Configuration and entry point for random-worlds inference.
#[derive(Clone, Debug)]
pub struct RandomWorlds {
    /// Maximum-entropy τ-sweep configuration.
    pub sweep: SweepConfig,
    /// Budget for exact unary profile counting.
    pub unary_max_profiles: u128,
    /// Budget for brute-force world enumeration.
    pub enum_max_worlds: u128,
    /// The `(τ, N)` diagonal used by the exact finite-`N` fallbacks.
    pub diagonal: Vec<(Rat, usize)>,
}

impl Default for RandomWorlds {
    fn default() -> RandomWorlds {
        RandomWorlds {
            sweep: SweepConfig::default(),
            unary_max_profiles: 20_000_000,
            enum_max_worlds: 1 << 24,
            diagonal: vec![
                (Rat::new(1, 4), 8),
                (Rat::new(1, 8), 16),
                (Rat::new(1, 16), 32),
            ],
        }
    }
}

/// A degree of belief together with the method that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct BeliefResult {
    pub belief: Belief,
    pub provenance: Provenance,
}

impl fmt::Display for BeliefResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (via {})", self.belief, self.provenance)
    }
}

/// Engine-level failures.
#[derive(Debug)]
pub enum EngineError {
    Parse(ParseError),
    /// No engine could handle the KB/query pair within its budget.
    OutOfReach(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::OutOfReach(s) => write!(f, "no engine applicable: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> EngineError {
        EngineError::Parse(e)
    }
}

impl RandomWorlds {
    pub fn new() -> RandomWorlds {
        RandomWorlds::default()
    }

    /// Computes `Pr∞(query | KB)` for a textual query.
    pub fn degree_of_belief(
        &self,
        kb: &KnowledgeBase,
        query: &str,
    ) -> Result<BeliefResult, EngineError> {
        let mut kb = kb.clone();
        let q = kb.parse_query(query)?;
        self.degree_of_belief_formula(&kb, &q)
    }

    /// Computes `Pr∞(query | KB)` for an already-parsed query.
    pub fn degree_of_belief_formula(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
    ) -> Result<BeliefResult, EngineError> {
        // 1. Theorem engine (exact, includes non-unary KBs).
        let solver = |skb: &KnowledgeBase, sq: &Formula| -> Option<(Belief, Provenance)> {
            self.degree_of_belief_formula(skb, sq)
                .ok()
                .map(|r| (r.belief, r.provenance))
        };
        if let Some((belief, provenance)) = theorems::try_all(kb, query, &solver) {
            return Ok(BeliefResult { belief, provenance });
        }

        // 2. Maximum entropy (unary asymptotics, §6).
        match rw_maxent::degree_of_belief_limit(kb, query, &self.sweep) {
            Ok(LimitOutcome::Converged(v)) => {
                return Ok(BeliefResult {
                    belief: Belief::Point(v),
                    provenance: Provenance::MaxEnt,
                })
            }
            Ok(LimitOutcome::NonRobust(vs)) => {
                return Ok(BeliefResult {
                    belief: Belief::NonRobust(vs),
                    provenance: Provenance::MaxEnt,
                })
            }
            Ok(LimitOutcome::Infeasible) => {
                return Ok(BeliefResult {
                    belief: Belief::Undefined,
                    provenance: Provenance::MaxEnt,
                })
            }
            Err(MaxentError::Infeasible) => {
                return Ok(BeliefResult {
                    belief: Belief::Undefined,
                    provenance: Provenance::MaxEnt,
                })
            }
            Err(MaxentError::Compile(_)) | Err(MaxentError::Numeric(_)) => {}
        }

        // 3. Exact unary counting along the (τ, N) diagonal.
        if kb.vocab().is_unary() {
            if let Some(result) = self.unary_diagonal(kb, query) {
                return Ok(result);
            }
        }

        // 4. Brute-force enumeration along the diagonal (tiny N).
        if let Some(result) = self.enumeration_diagonal(kb, query) {
            return Ok(result);
        }

        Err(EngineError::OutOfReach(
            "KB outside theorem patterns and the maxent fragment, and too large for exact counting"
                .to_string(),
        ))
    }

    fn unary_diagonal(&self, kb: &KnowledgeBase, query: &Formula) -> Option<BeliefResult> {
        let engine = rw_unary::UnaryEngine {
            max_profiles: self.unary_max_profiles,
        };
        let mut values = Vec::new();
        let mut max_n = 0usize;
        let mut undefined_steps = 0usize;
        for (tau, n) in &self.diagonal {
            let tol = Tolerances::uniform(*tau);
            match engine.degree_of_belief_at(kb, query, *n, &tol) {
                Ok(Some(v)) => {
                    values.push(v);
                    max_n = (*n).max(max_n);
                }
                Ok(None) => undefined_steps += 1,
                Err(_) => break, // budget: use what we have
            }
        }
        if values.is_empty() {
            if undefined_steps > 0 {
                return Some(BeliefResult {
                    belief: Belief::Undefined,
                    provenance: Provenance::UnaryExact { max_n },
                });
            }
            return None;
        }
        Some(BeliefResult {
            belief: Belief::Point(extrapolate(&values)),
            provenance: Provenance::UnaryExact { max_n },
        })
    }

    fn enumeration_diagonal(&self, kb: &KnowledgeBase, query: &Formula) -> Option<BeliefResult> {
        // Domain sizes are capped hard by the doubly-exponential space; the
        // dominant error term is O(1/N), so evaluate at the two largest
        // feasible sizes and extrapolate linearly in 1/N (at the smallest
        // tolerance of the diagonal).
        let mut n_hi = None;
        for n in (2..=6usize).rev() {
            if let Some(c) = rw_worlds::count_interpretations(kb.vocab(), n) {
                if c <= self.enum_max_worlds {
                    n_hi = Some(n);
                    break;
                }
            }
        }
        let n_hi = n_hi?;
        let n_lo = n_hi - 1;
        let tau = self.diagonal.iter().map(|(t, _)| *t).min()?;
        let tol = Tolerances::uniform(tau);
        let eval = |n: usize| {
            rw_worlds::enumerate::degree_of_belief_at_bounded(
                kb,
                query,
                n,
                &tol,
                self.enum_max_worlds,
            )
        };
        match (eval(n_lo), eval(n_hi)) {
            (Ok(Some(v_lo)), Ok(Some(v_hi))) => {
                // v(N) = v∞ + c/N  ⇒  v∞ = v_hi + (v_hi − v_lo)·(1/N_hi)/(1/N_lo − 1/N_hi).
                let inv_lo = 1.0 / n_lo as f64;
                let inv_hi = 1.0 / n_hi as f64;
                let v = v_hi + (v_hi - v_lo) * inv_hi / (inv_lo - inv_hi);
                Some(BeliefResult {
                    belief: Belief::Point(v.clamp(0.0, 1.0)),
                    provenance: Provenance::Enumeration { max_n: n_hi },
                })
            }
            (Ok(None), Ok(None)) => Some(BeliefResult {
                belief: Belief::Undefined,
                provenance: Provenance::Enumeration { max_n: n_hi },
            }),
            _ => None,
        }
    }

    /// The default-inference relation `KB |~rw φ`: degree of belief 1
    /// (paper §5.1).
    pub fn follows_by_default(&self, kb: &KnowledgeBase, query: &str) -> Result<bool, EngineError> {
        Ok(self.degree_of_belief(kb, query)?.belief.is_one())
    }
}

/// Richardson-style extrapolation for a geometric (τ ∝ 2^-k) diagonal with
/// an `O(τ)` error model; falls back to the last value for one sample.
fn extrapolate(values: &[f64]) -> f64 {
    match values {
        [] => f64::NAN,
        [v] => *v,
        [.., a, b] => (2.0 * b - a).clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> RandomWorlds {
        RandomWorlds::default()
    }

    fn belief(kb_src: &str, query: &str) -> BeliefResult {
        let kb = KnowledgeBase::parse(kb_src).unwrap();
        engine().degree_of_belief(&kb, query).unwrap()
    }

    #[test]
    fn hepatitis_via_direct_inference() {
        let r = belief("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Hep(Eric)");
        assert_eq!(r.provenance, Provenance::DirectInference);
        assert_eq!(r.belief.as_point(), Some(0.8));
    }

    #[test]
    fn other_individuals_ignored() {
        // Paper Example 5.8: Hep(Tom) does not change Eric's belief.
        let r = belief(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Hep(Tom)",
            "Hep(Eric)",
        );
        assert_eq!(r.belief.as_point(), Some(0.8));
    }

    #[test]
    fn penguins_specificity() {
        // With Penguin(Tweety) as the only fact, Thm 5.6 applies directly
        // (the complement-normalized penguin default is an exact match).
        let r = belief(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
            "Fly(Tweety)",
        );
        assert_eq!(r.belief.as_point(), Some(0.0), "{r}");
        assert_eq!(r.provenance, Provenance::DirectInference);
    }

    #[test]
    fn yellow_penguins_via_minimal_class() {
        // Paper Example 5.19: the irrelevant Yellow(Tweety) fact defeats the
        // exact-class match, so Thm 5.16 carries the inference.
        let r = belief(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety); Yellow(Tweety)",
            "Fly(Tweety)",
        );
        assert_eq!(r.belief.as_point(), Some(0.0), "{r}");
        assert_eq!(r.provenance, Provenance::MinimalReferenceClass);
    }

    #[test]
    fn elephant_zookeeper_binary_predicates() {
        // Paper Example 5.12 — needs a binary predicate, so only the
        // theorem engine (Thm 5.6) can produce it.
        let kb_src = "||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1; \
                      ||Likes(x, Fred) | Elephant(x)||_x ~=_2 0; \
                      Zookeeper(Fred); Elephant(Clyde); Zookeeper(Eric)";
        let r1 = belief(kb_src, "Likes(Clyde, Eric)");
        assert_eq!(r1.belief.as_point(), Some(1.0), "{r1}");
        let r2 = belief(kb_src, "Likes(Clyde, Fred)");
        assert_eq!(r2.belief.as_point(), Some(0.0), "{r2}");
    }

    #[test]
    fn strength_rule_magpies() {
        // Paper Example 5.24.
        let r = belief(
            "0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8; \
             0 <~_3 ||Chirps(x) | Magpie(x)||_x <~_4 0.99; \
             forall x (Magpie(x) => Bird(x)); Magpie(Tweety)",
            "Chirps(Tweety)",
        );
        assert_eq!(r.provenance, Provenance::StrengthRule);
        assert_eq!(r.belief.as_interval(), Some((0.7, 0.8)));
    }

    #[test]
    fn nixon_diamond_dempster() {
        let kb_src = "||Pacifist(x) | Quaker(x)||_x ~=_1 0.8; \
                      ||Pacifist(x) | Republican(x)||_x ~=_2 0.8; \
                      Quaker(Nixon); Republican(Nixon); \
                      exists! x (Quaker(x) & Republican(x))";
        let r = belief(kb_src, "Pacifist(Nixon)");
        assert_eq!(r.provenance, Provenance::Dempster);
        let v = r.belief.as_point().unwrap();
        assert!((v - 16.0 / 17.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn nixon_conflicting_defaults_non_robust() {
        let kb_src = "||Pacifist(x) | Quaker(x)||_x ~=_1 1; \
                      ||Pacifist(x) | Republican(x)||_x ~=_2 0; \
                      Quaker(Nixon); Republican(Nixon); \
                      exists! x (Quaker(x) & Republican(x))";
        let r = belief(kb_src, "Pacifist(Nixon)");
        assert!(matches!(r.belief, Belief::NonRobust(_)), "{r}");
    }

    #[test]
    fn nixon_equal_strength_gives_half() {
        let kb_src = "||Pacifist(x) | Quaker(x)||_x ~=_1 1; \
                      ||Pacifist(x) | Republican(x)||_x ~=_1 0; \
                      Quaker(Nixon); Republican(Nixon); \
                      exists! x (Quaker(x) & Republican(x))";
        let r = belief(kb_src, "Pacifist(Nixon)");
        assert_eq!(r.belief.as_point(), Some(0.5), "{r}");
    }

    #[test]
    fn independence_product() {
        // Paper Example 5.28: 0.8 × 0.4 = 0.32.
        let r = belief(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
             ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
            "Hep(Eric) & Over60(Eric)",
        );
        let v = r.belief.as_point().unwrap();
        assert!((v - 0.32).abs() < 1e-9, "{r}");
        assert!(matches!(r.provenance, Provenance::Independence(_)));
    }

    #[test]
    fn unique_names_bias() {
        let r = belief("P(A) or !P(A)", "C1 = C2");
        assert_eq!(r.belief.as_point(), Some(0.0));
        assert_eq!(r.provenance, Provenance::UniqueNames);
        // Lifschitz C1.
        let r2 = belief("Ray = Reiter; Drew = McDermott", "!(Ray = Drew)");
        assert_eq!(r2.belief.as_point(), Some(1.0), "{r2}");
        let r3 = belief("Ray = Reiter; Drew = McDermott", "Ray = Reiter");
        assert_eq!(r3.belief.as_point(), Some(1.0));
    }

    #[test]
    fn nested_defaults_bed_late() {
        // Paper Examples 4.6 / 5.14.
        let kb_src = "|| ||Rises-late(x, y) | Day(y)||_y ~=_1 1 | ||To-bed-late(x, z) | Day(z)||_z ~=_2 1 ||_x ~=_3 1; \
                      ||To-bed-late(Alice, z) | Day(z)||_z ~=_2 1; \
                      Day(Tomorrow)";
        let r = belief(kb_src, "Rises-late(Alice, Tomorrow)");
        assert_eq!(r.belief.as_point(), Some(1.0), "{r}");
        assert_eq!(r.provenance, Provenance::NestedDefault);
    }

    #[test]
    fn tall_parent_via_direct_inference() {
        // Paper Example 5.13: existential reference class.
        let r = belief(
            "||Tall(x) | exists y (Child(x, y) & Tall(y))||_x ~=_1 1; \
             exists y (Child(Alice, y) & Tall(y))",
            "Tall(Alice)",
        );
        assert_eq!(r.belief.as_point(), Some(1.0), "{r}");
        assert_eq!(r.provenance, Provenance::DirectInference);
    }

    #[test]
    fn maxent_fallback_for_unary_without_theorem() {
        // No explicit statistics for the query: falls to maxent.
        let r = belief("||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1", "Black(Clyde)");
        assert_eq!(r.provenance, Provenance::MaxEnt);
        assert!((r.belief.as_point().unwrap() - 0.47).abs() < 0.005, "{r}");
    }

    #[test]
    fn enumeration_fallback_for_tiny_non_unary() {
        // Binary predicate, no theorem pattern: enumeration diagonal.
        let r = belief("Likes(A, B)", "Likes(B, A)");
        assert!(matches!(r.provenance, Provenance::Enumeration { .. }), "{r}");
        let v = r.belief.as_point().unwrap();
        assert!((v - 0.5).abs() < 0.05, "{r}");
    }

    #[test]
    fn inconsistent_kb_is_undefined() {
        let r = belief("forall x (P(x)); exists x (!P(x))", "P(C)");
        assert_eq!(r.belief, Belief::Undefined);
    }

    #[test]
    fn default_entailment_interface() {
        let kb = KnowledgeBase::parse(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
        )
        .unwrap();
        let e = engine();
        assert!(e.follows_by_default(&kb, "!Fly(Tweety)").unwrap());
        assert!(!e.follows_by_default(&kb, "Fly(Tweety)").unwrap());
    }
}
