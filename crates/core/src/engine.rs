//! Engine orchestration: a configurable pipeline of [`Solver`](crate::Solver)
//! stages with per-stage budgets, batched queries, an optional answer
//! cache, and full per-query traces.

use crate::belief::{Belief, Provenance};
use crate::cache::{AnswerCache, CachedAnswer, DenomCache};
use crate::solver::{Budget, Diagonal, SolverOutcome, Stage, StageStatus, Trace};
use crate::solvers::{
    EnumerationDiagonalSolver, MaxEntSolver, MonteCarloSolver, TheoremSolver, UnaryDiagonalSolver,
};
use rw_logic::ast::Formula;
use rw_logic::canon;
use rw_logic::{KnowledgeBase, ParseError};
use rw_maxent::SweepConfig;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Configuration and entry point for random-worlds inference.
///
/// The engine is a pipeline: an ordered list of [`Stage`]s, each a
/// [`Solver`](crate::Solver) plus the [`Budget`] it may spend. A query walks the stages
/// in order until one answers; the walk is recorded in the returned
/// [`Response::trace`]. By default the pipeline is the paper's cascade —
/// theorems, maximum entropy, exact unary counting, enumeration — built
/// from the public configuration fields at query time; [`Self::with_solvers`]
/// replaces it wholesale.
#[derive(Clone, Debug)]
pub struct RandomWorlds {
    /// Maximum-entropy τ-sweep configuration (used by the default
    /// pipeline's maxent stage).
    pub sweep: SweepConfig,
    /// Budget for exact unary profile counting.
    pub unary_max_profiles: u128,
    /// Budget for the exact counting stage. With [`Self::enum_compiled`]
    /// set (the default) this bounds *visited search nodes* of the
    /// branch-and-count engine — which prunes and multiplies out free
    /// slots, so its reach in domain size and vocabulary vastly exceeds
    /// the same number of blindly enumerated interpretations. In oracle
    /// mode it bounds interpretations, as it historically did.
    pub enum_max_worlds: u128,
    /// Use the compiled branch-and-count engine for the exact counting
    /// stage (default `true`). `false` restores the naive odometer
    /// oracle. Folded into the cache keyspace: the two modes can select
    /// different diagonal points and so different (equally exact)
    /// extrapolations.
    pub enum_compiled: bool,
    /// Worker threads for compiled counting (0 = one per core). Counting
    /// is chunk-deterministic, so — like the sampler's worker count —
    /// this never affects an answer and is *not* part of the cache
    /// keyspace.
    pub enum_threads: usize,
    /// Symmetry-reduced orbit counting for the exact counting stage
    /// (default `false`). When set and a query lands inside the orbit
    /// fragment, counting enumerates weighted orbit representatives of
    /// the unnamed-element group instead of branching over worlds, so
    /// the rising-`N` scan climbs toward
    /// [`crate::solvers::MAX_SYMMETRY_N`] instead of stopping near
    /// [`crate::solvers::MAX_COMPILED_N`]. Outside the fragment the
    /// stage behaves exactly as with the flag off. Folded into the cache
    /// keyspace: deeper scans select different (equally exact)
    /// extrapolation points.
    pub enum_symmetry: bool,
    /// Floor of the exact stage's rising-`N` scan (`None` = 2). Values
    /// below 2 are clamped up. Folded into the cache keyspace.
    pub enum_min_n: Option<usize>,
    /// Ceiling of the exact stage's rising-`N` scan (`None` = the mode
    /// default). Folded into the cache keyspace.
    pub enum_max_n: Option<usize>,
    /// The `(τ, N)` diagonal used by the exact finite-`N` stages (and, as
    /// the `N`-sweep, by the Monte-Carlo stage when one is enabled).
    pub diagonal: Diagonal,
    /// Approximate inference: `Some` inserts a [`MonteCarloSolver`] stage
    /// (sampling along the diagonal with the given configuration) right
    /// after the theorem stage, so un-matched queries get a bounded-cost
    /// estimated answer instead of falling into maxent/counting. The
    /// configuration is folded into the cache keyspace — an
    /// [`AnswerCache`] never mixes exact and approximate answers.
    pub approx: Option<rw_worlds::mc::McConfig>,
    /// A custom pipeline installed by [`Self::with_solvers`]; `None` means
    /// the default cascade is built from the fields above per query.
    custom: Option<Arc<Vec<Stage>>>,
    /// An answer cache installed by [`Self::with_cache`], consulted before
    /// the pipeline runs (and shared with batch workers).
    cache: Option<Arc<AnswerCache>>,
    /// The shared `#worlds_N^τ(KB)` denominator cache for the exact
    /// counting stage: one count per `(KB, vocabulary shape, N, τ)`
    /// sweep point instead of one per query. Always on — world counts
    /// are pure functions of their key, so sharing (including across
    /// engine clones in batch workers) can never serve a wrong value.
    denom_cache: Arc<DenomCache>,
}

impl RandomWorlds {
    /// The default engine: the paper's four-stage cascade with the
    /// standard diagonal and counting budgets.
    pub fn new() -> RandomWorlds {
        RandomWorlds {
            sweep: SweepConfig::default(),
            unary_max_profiles: 20_000_000,
            enum_max_worlds: 1 << 24,
            enum_compiled: true,
            enum_threads: 1,
            enum_symmetry: false,
            enum_min_n: None,
            enum_max_n: None,
            diagonal: Diagonal::default(),
            approx: None,
            custom: None,
            cache: None,
            denom_cache: Arc::new(DenomCache::new()),
        }
    }

    /// Enables the Monte-Carlo approximate-inference stage with the given
    /// sampler configuration (builder form of setting [`Self::approx`]).
    ///
    /// ```
    /// use rw_core::{Belief, Provenance, RandomWorlds};
    /// use rw_logic::KnowledgeBase;
    /// use rw_worlds::mc::McConfig;
    ///
    /// let kb = KnowledgeBase::parse(
    ///     "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Jaun(Tom)",
    /// ).unwrap();
    /// let engine = RandomWorlds::new().with_approx(McConfig::default());
    /// // A conjunction over individuals sharing statistics misses every
    /// // theorem pattern; the sampler answers it with a CI instead of a
    /// // multi-second maxent sweep.
    /// let r = engine.answer(&kb, "Hep(Eric) & Hep(Tom)").unwrap();
    /// assert!(matches!(r.belief, Belief::Approximate { .. }));
    /// assert!(matches!(r.provenance, Provenance::MonteCarlo { .. }));
    /// ```
    pub fn with_approx(mut self, config: rw_worlds::mc::McConfig) -> RandomWorlds {
        self.approx = Some(config);
        self
    }

    /// Replaces the pipeline with an explicit stage list (must be
    /// non-empty, so every answer still carries a non-empty trace).
    pub fn with_solvers(mut self, stages: Vec<Stage>) -> RandomWorlds {
        assert!(
            !stages.is_empty(),
            "a RandomWorlds pipeline needs at least one stage"
        );
        self.custom = Some(Arc::new(stages));
        self
    }

    /// Installs a shared [`AnswerCache`], consulted before the pipeline on
    /// every top-level query (single [`Self::answer`] calls and batches
    /// alike). The cache key is the canonical query form against the KB's
    /// fingerprint ([`rw_logic::canon`]), so syntactic variants — commuted
    /// conjunctions, double negations, alpha-renamed binders — share one
    /// entry. The engine's own configuration (stage list, budgets,
    /// diagonal, sweep) is folded into the key too, so mutating the
    /// configuration — or sharing one cache between differently
    /// configured engines — changes the keyspace instead of serving
    /// stale beliefs. A hit returns a [`Response`] with
    /// [`Response::cached`] set and a one-step `cache` trace.
    ///
    /// ```
    /// use rw_core::{cache::AnswerCache, RandomWorlds};
    /// use rw_logic::KnowledgeBase;
    /// use std::sync::Arc;
    ///
    /// let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
    /// let cache = Arc::new(AnswerCache::new());
    /// let engine = RandomWorlds::new().with_cache(Arc::clone(&cache));
    ///
    /// let cold = engine.answer(&kb, "Hep(Eric)").unwrap();
    /// assert!(!cold.cached);
    /// // A syntactic variant of the same query hits the cache.
    /// let warm = engine.answer(&kb, "!!Hep(Eric)").unwrap();
    /// assert!(warm.cached);
    /// assert_eq!(warm.belief, cold.belief);
    /// assert_eq!(cache.hits(), 1);
    /// ```
    pub fn with_cache(mut self, cache: Arc<AnswerCache>) -> RandomWorlds {
        self.cache = Some(cache);
        self
    }

    /// The installed answer cache, if any.
    pub fn cache(&self) -> Option<&Arc<AnswerCache>> {
        self.cache.as_ref()
    }

    /// The engine's `#worlds` denominator cache (always present), for
    /// callers that report its statistics or share it across engines.
    pub fn denom_cache(&self) -> &Arc<DenomCache> {
        &self.denom_cache
    }

    /// Replaces the denominator cache with a shared one, so several
    /// engines (e.g. per-KB serving sessions) pool their `#worlds_N^τ(KB)`
    /// counts. Always safe: entries are pure functions of their key, and
    /// the key carries the KB, vocabulary, budget, and counting mode.
    pub fn with_denom_cache(mut self, cache: Arc<DenomCache>) -> RandomWorlds {
        self.denom_cache = cache;
        self
    }

    /// The names of the effective pipeline's stages, in execution order.
    pub fn solvers(&self) -> Vec<String> {
        self.effective_stages()
            .iter()
            .map(|s| s.solver.name().to_string())
            .collect()
    }

    /// The default cascade, built from the current configuration fields.
    /// Useful as a base when composing a custom pipeline. With
    /// [`Self::approx`] set, the Monte-Carlo stage runs right after the
    /// theorem stage (its budget is the sampler's own draw cap).
    pub fn default_stages(&self) -> Vec<Stage> {
        let mut stages = vec![Stage::new(Box::new(TheoremSolver))];
        if let Some(cfg) = &self.approx {
            stages.push(Stage::budgeted(
                Box::new(MonteCarloSolver::new(cfg.clone(), self.diagonal.clone())),
                Budget::counting(cfg.max_samples as u128),
            ));
        }
        stages.push(Stage::new(Box::new(MaxEntSolver::new(self.sweep.clone()))));
        stages.push(Stage::budgeted(
            Box::new(UnaryDiagonalSolver::new(self.diagonal.clone())),
            Budget::counting(self.unary_max_profiles),
        ));
        stages.push(Stage::budgeted(
            Box::new(EnumerationDiagonalSolver {
                diagonal: self.diagonal.clone(),
                compiled: self.enum_compiled,
                symmetry: self.enum_symmetry,
                min_n: self.enum_min_n,
                max_n: self.enum_max_n,
                threads: self.enum_threads,
                denom_cache: Some(Arc::clone(&self.denom_cache)),
            }),
            Budget::counting(self.enum_max_worlds),
        ));
        stages
    }

    /// The pipeline a query will actually run: the custom stage list if
    /// one is installed, else the default cascade built from the current
    /// configuration fields (so field mutations keep taking effect).
    pub(crate) fn effective_stages(&self) -> Arc<Vec<Stage>> {
        match &self.custom {
            Some(s) => Arc::clone(s),
            None => Arc::new(self.default_stages()),
        }
    }

    /// A fingerprint of everything *besides* the KB and query that can
    /// influence an answer: the stage list (solver names + budgets) and
    /// the engine's public configuration fields. Folded into every cache
    /// key so a config mutation — or two differently configured engines
    /// sharing one [`AnswerCache`] — can never serve a stale belief.
    ///
    /// Custom solvers are identified by name and budget only; two custom
    /// solvers that share a name but answer differently must not share a
    /// cache.
    fn config_fingerprint(&self, stages: &[Stage]) -> u64 {
        let mut src = String::new();
        for s in stages {
            src.push_str(s.solver.name());
            src.push_str(&format!("#{};", s.budget.max_count));
        }
        src.push_str(&format!(
            "|{:?}|{}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.sweep,
            self.unary_max_profiles,
            self.enum_max_worlds,
            // The counting mode selects diagonal points and so answers;
            // `enum_threads` is excluded like the sampler's worker count
            // (counting is chunk-deterministic at any thread count).
            self.enum_compiled,
            // Symmetry and the scan window select how deep the rising-N
            // diagonal goes, and so the extrapolation points.
            self.enum_symmetry,
            self.enum_min_n,
            self.enum_max_n,
            self.diagonal,
            // Only the sampler fields that can affect an answer — worker
            // count is excluded, so sessions differing only in threads
            // share cache entries (sampling is thread-count
            // deterministic).
            self.approx.as_ref().map(|c| c.result_fingerprint())
        ));
        canon::fnv1a(src.as_bytes())
    }

    /// The full cache-key prefix: KB fingerprint combined with the
    /// engine-config fingerprint.
    pub(crate) fn key_prefix(&self, kb_fingerprint: u64, stages: &[Stage]) -> u64 {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&kb_fingerprint.to_le_bytes());
        bytes[8..].copy_from_slice(&self.config_fingerprint(stages).to_le_bytes());
        canon::fnv1a(&bytes)
    }

    /// The cache context for queries against `kb`: the installed cache
    /// plus the combined KB/config key prefix, computed once per KB
    /// rather than per query.
    pub(crate) fn cache_ctx<'e>(
        &'e self,
        kb: &KnowledgeBase,
        stages: &[Stage],
    ) -> Option<CacheCtx<'e>> {
        self.cache_ctx_fingerprinted(canon::kb_fingerprint(kb), stages)
    }

    /// [`Self::cache_ctx`] with a caller-supplied KB fingerprint (for
    /// callers that hoist the fingerprint across many queries).
    pub(crate) fn cache_ctx_fingerprinted<'e>(
        &'e self,
        kb_fingerprint: u64,
        stages: &[Stage],
    ) -> Option<CacheCtx<'e>> {
        self.cache.as_deref().map(|cache| CacheCtx {
            cache,
            key_prefix: self.key_prefix(kb_fingerprint, stages),
        })
    }

    /// Computes `Pr∞(query | KB)` for a textual query.
    ///
    /// ```
    /// use rw_core::{Provenance, RandomWorlds};
    /// use rw_logic::KnowledgeBase;
    ///
    /// let kb = KnowledgeBase::parse(
    ///     "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)",
    /// ).unwrap();
    /// let r = RandomWorlds::new().answer(&kb, "Hep(Eric)").unwrap();
    /// assert_eq!(r.belief.as_point(), Some(0.8));
    /// assert_eq!(r.provenance, Provenance::DirectInference);
    /// assert_eq!(r.trace.to_string(), "theorems answered");
    /// ```
    pub fn answer(&self, kb: &KnowledgeBase, query: &str) -> Result<Response, EngineError> {
        let stages = self.effective_stages();
        let ctx = self.cache_ctx(kb, &stages);
        self.answer_with(&stages, kb, query, ctx.as_ref())
    }

    /// [`Self::answer`] with the KB's fingerprint
    /// ([`rw_logic::canon::kb_fingerprint`]) supplied by the caller — the
    /// single-query analogue of the hoisting [`Self::answer_batch`] does,
    /// for serving loops (REPLs, streamed batches) that answer many
    /// queries against one unchanging KB through a cache. Without an
    /// installed cache the fingerprint is ignored. The caller must not
    /// mutate `kb` between fingerprinting and answering.
    pub fn answer_fingerprinted(
        &self,
        kb: &KnowledgeBase,
        query: &str,
        kb_fingerprint: u64,
    ) -> Result<Response, EngineError> {
        let stages = self.effective_stages();
        let ctx = self.cache_ctx_fingerprinted(kb_fingerprint, &stages);
        self.answer_with(&stages, kb, query, ctx.as_ref())
    }

    /// Computes `Pr∞(query | KB)` for an already-parsed query.
    pub fn answer_formula(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
    ) -> Result<Response, EngineError> {
        let stages = self.effective_stages();
        let ctx = self.cache_ctx(kb, &stages);
        self.answer_parsed(&stages, kb, query, ctx.as_ref())
    }

    /// Answers many queries against one knowledge base, sequentially.
    ///
    /// This is the serving-path primitive: the pipeline is built once and
    /// the knowledge base is fingerprinted once, then reused across all
    /// queries. Per-query failures (parse errors, out-of-reach) are
    /// returned in place so one bad query never voids the rest. For the
    /// threaded version with an aggregate report, see
    /// [`Self::answer_batch_report`](RandomWorlds::answer_batch_report).
    ///
    /// ```
    /// use rw_core::RandomWorlds;
    /// use rw_logic::KnowledgeBase;
    ///
    /// let kb = KnowledgeBase::parse(
    ///     "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)",
    /// ).unwrap();
    /// let results = RandomWorlds::new()
    ///     .answer_batch(&kb, &["Hep(Eric)", "Hep(", "!Hep(Eric)"]);
    /// assert_eq!(results[0].as_ref().unwrap().belief.as_point(), Some(0.8));
    /// assert!(results[1].is_err()); // parse error, isolated to its slot
    /// assert!((results[2].as_ref().unwrap().belief.as_point().unwrap() - 0.2).abs() < 1e-9);
    /// ```
    pub fn answer_batch<S: AsRef<str>>(
        &self,
        kb: &KnowledgeBase,
        queries: &[S],
    ) -> Vec<Result<Response, EngineError>> {
        let stages = self.effective_stages();
        let cache = self.cache_ctx(kb, &stages);
        queries
            .iter()
            .map(|q| self.answer_with(&stages, kb, q.as_ref(), cache.as_ref()))
            .collect()
    }

    pub(crate) fn answer_with(
        &self,
        stages: &[Stage],
        kb: &KnowledgeBase,
        query: &str,
        cache: Option<&CacheCtx<'_>>,
    ) -> Result<Response, EngineError> {
        // Queries may mention fresh constants, so each gets its own
        // vocabulary extension. Only the vocabulary is cloned up front;
        // the conjunct list is cloned after the cache lookup, so a hit
        // never pays for copying the knowledge base.
        let mut vocab = kb.vocab().clone();
        let q = rw_logic::parse_formula(&mut vocab, query)?;
        if let Some(ctx) = cache {
            let start = Instant::now();
            let key = AnswerCache::key(ctx.key_prefix, &canon::canonical_formula(&vocab, &q));
            let hit = ctx.cache.get(&key);
            observe_cache_lookup(start, hit.is_some());
            if let Some(hit) = hit {
                return Ok(Self::cached_response(hit, start));
            }
            let local = KnowledgeBase::from_parts(vocab, kb.conjuncts().to_vec());
            let response = self.run_pipeline(stages, &local, &q)?;
            ctx.cache.insert(key, CachedAnswer::of(&response));
            return Ok(response);
        }
        let local = KnowledgeBase::from_parts(vocab, kb.conjuncts().to_vec());
        self.run_pipeline(stages, &local, &q)
    }

    /// A [`Response`] materialized from a cache hit: a one-step `cache`
    /// trace covering the lookup time.
    fn cached_response(hit: CachedAnswer, lookup_start: Instant) -> Response {
        let mut trace = Trace::default();
        trace.push("cache", StageStatus::Answered, lookup_start.elapsed());
        Response {
            belief: hit.belief,
            provenance: hit.provenance,
            trace,
            cached: true,
        }
    }

    /// The common top-level path: consult the cache (if any), else run
    /// the pipeline and remember the semantic answer.
    fn answer_parsed(
        &self,
        stages: &[Stage],
        kb: &KnowledgeBase,
        query: &Formula,
        cache: Option<&CacheCtx<'_>>,
    ) -> Result<Response, EngineError> {
        let Some(ctx) = cache else {
            return self.run_pipeline(stages, kb, query);
        };
        let start = Instant::now();
        let key = AnswerCache::key(ctx.key_prefix, &canon::canonical_formula(kb.vocab(), query));
        let hit = ctx.cache.get(&key);
        observe_cache_lookup(start, hit.is_some());
        if let Some(hit) = hit {
            return Ok(Self::cached_response(hit, start));
        }
        let response = self.run_pipeline(stages, kb, query)?;
        ctx.cache.insert(key, CachedAnswer::of(&response));
        Ok(response)
    }

    fn run_pipeline(
        &self,
        stages: &[Stage],
        kb: &KnowledgeBase,
        query: &Formula,
    ) -> Result<Response, EngineError> {
        // Recursion (independence products, nested defaults) re-enters the
        // *same* stage list rather than rebuilding it per sub-query.
        let recurse = |skb: &KnowledgeBase, sq: &Formula| {
            self.run_pipeline(stages, skb, sq)
                .ok()
                .map(|r| (r.belief, r.provenance))
        };
        let mut trace = Trace::default();
        for stage in stages {
            let start = Instant::now();
            let outcome = stage.solver.solve(kb, query, &stage.budget, &recurse);
            let elapsed = start.elapsed();
            let name = stage.solver.name();
            match outcome {
                SolverOutcome::Answered { belief, provenance } => {
                    trace.push(name, StageStatus::Answered, elapsed);
                    observe_stage(name, "answered", elapsed);
                    observe_provenance(&provenance);
                    return Ok(Response {
                        belief,
                        provenance,
                        trace,
                        cached: false,
                    });
                }
                SolverOutcome::Declined { reason } => {
                    trace.push(name, StageStatus::Declined(reason), elapsed);
                    observe_stage(name, "declined", elapsed);
                }
                SolverOutcome::BudgetExhausted { reason } => {
                    trace.push(name, StageStatus::BudgetExhausted(reason), elapsed);
                    observe_stage(name, "budget_exhausted", elapsed);
                }
            }
        }
        Err(EngineError::OutOfReach {
            reason: "every pipeline stage declined or exhausted its budget".to_string(),
            trace,
        })
    }

    /// Computes `Pr∞(query | KB)` for a textual query.
    ///
    /// Compatibility wrapper for [`Self::answer`] (the historical name).
    pub fn degree_of_belief(
        &self,
        kb: &KnowledgeBase,
        query: &str,
    ) -> Result<Response, EngineError> {
        self.answer(kb, query)
    }

    /// Computes `Pr∞(query | KB)` for an already-parsed query.
    ///
    /// Compatibility wrapper for [`Self::answer_formula`].
    pub fn degree_of_belief_formula(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
    ) -> Result<Response, EngineError> {
        self.answer_formula(kb, query)
    }

    /// The default-inference relation `KB |~rw φ`: degree of belief 1
    /// (paper §5.1).
    pub fn follows_by_default(&self, kb: &KnowledgeBase, query: &str) -> Result<bool, EngineError> {
        Ok(self.answer(kb, query)?.belief.is_one())
    }
}

impl Default for RandomWorlds {
    fn default() -> RandomWorlds {
        RandomWorlds::new()
    }
}

/// Records one pipeline stage run into the global metrics registry: a
/// per-stage latency histogram (`stage.<name>.wall_us`) plus an outcome
/// counter (`stage.<name>.<outcome>`). Recursive sub-query stage runs
/// (independence products, nested defaults) are recorded like top-level
/// ones — the histograms measure solver work, not request counts.
///
/// Purely additive: metrics never feed back into an answer, so beliefs,
/// traces and rendered bytes are identical with recording on or off.
fn observe_stage(name: &str, outcome: &str, elapsed: std::time::Duration) {
    if !rw_obs::enabled() {
        return;
    }
    let reg = rw_obs::registry();
    reg.histogram(&format!("stage.{name}.wall_us"))
        .record_us(elapsed.as_micros() as u64);
    reg.counter(&format!("stage.{name}.{outcome}")).inc();
}

/// Records one [`AnswerCache`] consultation: canonicalize-and-probe
/// latency (`cache.answer.lookup_us`) plus hit/miss counters, matching
/// the cache's own lifetime counters but scoped to the global registry.
fn observe_cache_lookup(start: Instant, hit: bool) {
    if !rw_obs::enabled() {
        return;
    }
    let reg = rw_obs::registry();
    reg.histogram("cache.answer.lookup_us")
        .record_us(start.elapsed().as_micros() as u64);
    reg.counter(if hit {
        "cache.answer.hits"
    } else {
        "cache.answer.misses"
    })
    .inc();
}

/// Harvests the effort counters an answering stage reported through its
/// [`Provenance`]: branch-and-count / symmetry search node counts (total
/// and per reached `N`) and Monte-Carlo draw/accept/effective-N tallies.
fn observe_provenance(provenance: &Provenance) {
    if !rw_obs::enabled() {
        return;
    }
    let reg = rw_obs::registry();
    match provenance {
        Provenance::Enumeration {
            max_n,
            visited,
            branched,
            orbits,
        } => {
            reg.counter("enum.answers").inc();
            reg.counter("enum.visited").add(*visited);
            reg.counter("enum.branched").add(*branched);
            reg.counter("enum.orbits").add(*orbits);
            reg.counter(&format!("enum.n{max_n}.visited")).add(*visited);
            reg.counter(&format!("enum.n{max_n}.branched"))
                .add(*branched);
            if *orbits > 0 {
                reg.counter(&format!("enum.n{max_n}.orbits")).add(*orbits);
            }
        }
        Provenance::MonteCarlo {
            drawn,
            accepted,
            n_points,
        } => {
            reg.counter("mc.answers").inc();
            reg.counter("mc.drawn").add(*drawn);
            reg.counter("mc.accepted").add(*accepted);
            reg.counter("mc.points").add(*n_points as u64);
        }
        Provenance::Independence(parts) => {
            for p in parts {
                observe_provenance(p);
            }
        }
        _ => {}
    }
}

/// A degree of belief, the method that produced it, and the per-stage
/// trace of the pipeline walk that got there.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The degree of belief `Pr∞(query | KB)`.
    pub belief: Belief,
    /// Which method produced it.
    pub provenance: Provenance,
    /// What every stage up to (and including) the answering one did. On a
    /// cache hit this is the single synthetic step `cache answered`.
    pub trace: Trace,
    /// True when the answer came from an installed [`AnswerCache`] rather
    /// than a pipeline run this call.
    pub cached: bool,
}

/// An [`AnswerCache`] plus the combined KB/engine-config key prefix it is
/// being consulted under — computed once per KB and shared across a batch.
pub(crate) struct CacheCtx<'c> {
    pub(crate) cache: &'c AnswerCache,
    pub(crate) key_prefix: u64,
}

/// The historical name for [`Response`], kept so terse example code and
/// downstream crates keep compiling.
pub type BeliefResult = Response;

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (via {})", self.belief, self.provenance)
    }
}

/// Engine-level failures.
#[derive(Debug)]
pub enum EngineError {
    /// The query failed to parse.
    Parse(ParseError),
    /// No stage answered; the trace records what each one reported.
    OutOfReach {
        /// Summary line.
        reason: String,
        /// Per-stage outcomes, for diagnosis.
        trace: Trace,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::OutOfReach { reason, trace } => {
                write!(f, "no engine applicable: {reason}")?;
                if !trace.is_empty() {
                    write!(f, " [{trace}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> EngineError {
        EngineError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Recurse, Solver, StageTrace};

    fn engine() -> RandomWorlds {
        RandomWorlds::default()
    }

    fn belief(kb_src: &str, query: &str) -> Response {
        let kb = KnowledgeBase::parse(kb_src).unwrap();
        engine().degree_of_belief(&kb, query).unwrap()
    }

    #[test]
    fn hepatitis_via_direct_inference() {
        let r = belief("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Hep(Eric)");
        assert_eq!(r.provenance, Provenance::DirectInference);
        assert_eq!(r.belief.as_point(), Some(0.8));
    }

    #[test]
    fn other_individuals_ignored() {
        // Paper Example 5.8: Hep(Tom) does not change Eric's belief.
        let r = belief(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Hep(Tom)",
            "Hep(Eric)",
        );
        assert_eq!(r.belief.as_point(), Some(0.8));
    }

    #[test]
    fn penguins_specificity() {
        // With Penguin(Tweety) as the only fact, Thm 5.6 applies directly
        // (the complement-normalized penguin default is an exact match).
        let r = belief(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
            "Fly(Tweety)",
        );
        assert_eq!(r.belief.as_point(), Some(0.0), "{r}");
        assert_eq!(r.provenance, Provenance::DirectInference);
    }

    #[test]
    fn yellow_penguins_via_minimal_class() {
        // Paper Example 5.19: the irrelevant Yellow(Tweety) fact defeats the
        // exact-class match, so Thm 5.16 carries the inference.
        let r = belief(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety); Yellow(Tweety)",
            "Fly(Tweety)",
        );
        assert_eq!(r.belief.as_point(), Some(0.0), "{r}");
        assert_eq!(r.provenance, Provenance::MinimalReferenceClass);
    }

    #[test]
    fn elephant_zookeeper_binary_predicates() {
        // Paper Example 5.12 — needs a binary predicate, so only the
        // theorem engine (Thm 5.6) can produce it.
        let kb_src = "||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1; \
                      ||Likes(x, Fred) | Elephant(x)||_x ~=_2 0; \
                      Zookeeper(Fred); Elephant(Clyde); Zookeeper(Eric)";
        let r1 = belief(kb_src, "Likes(Clyde, Eric)");
        assert_eq!(r1.belief.as_point(), Some(1.0), "{r1}");
        let r2 = belief(kb_src, "Likes(Clyde, Fred)");
        assert_eq!(r2.belief.as_point(), Some(0.0), "{r2}");
    }

    #[test]
    fn strength_rule_magpies() {
        // Paper Example 5.24.
        let r = belief(
            "0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8; \
             0 <~_3 ||Chirps(x) | Magpie(x)||_x <~_4 0.99; \
             forall x (Magpie(x) => Bird(x)); Magpie(Tweety)",
            "Chirps(Tweety)",
        );
        assert_eq!(r.provenance, Provenance::StrengthRule);
        assert_eq!(r.belief.as_interval(), Some((0.7, 0.8)));
    }

    #[test]
    fn nixon_diamond_dempster() {
        let kb_src = "||Pacifist(x) | Quaker(x)||_x ~=_1 0.8; \
                      ||Pacifist(x) | Republican(x)||_x ~=_2 0.8; \
                      Quaker(Nixon); Republican(Nixon); \
                      exists! x (Quaker(x) & Republican(x))";
        let r = belief(kb_src, "Pacifist(Nixon)");
        assert_eq!(r.provenance, Provenance::Dempster);
        let v = r.belief.as_point().unwrap();
        assert!((v - 16.0 / 17.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn nixon_conflicting_defaults_non_robust() {
        let kb_src = "||Pacifist(x) | Quaker(x)||_x ~=_1 1; \
                      ||Pacifist(x) | Republican(x)||_x ~=_2 0; \
                      Quaker(Nixon); Republican(Nixon); \
                      exists! x (Quaker(x) & Republican(x))";
        let r = belief(kb_src, "Pacifist(Nixon)");
        assert!(matches!(r.belief, Belief::NonRobust(_)), "{r}");
    }

    #[test]
    fn nixon_equal_strength_gives_half() {
        let kb_src = "||Pacifist(x) | Quaker(x)||_x ~=_1 1; \
                      ||Pacifist(x) | Republican(x)||_x ~=_1 0; \
                      Quaker(Nixon); Republican(Nixon); \
                      exists! x (Quaker(x) & Republican(x))";
        let r = belief(kb_src, "Pacifist(Nixon)");
        assert_eq!(r.belief.as_point(), Some(0.5), "{r}");
    }

    #[test]
    fn independence_product() {
        // Paper Example 5.28: 0.8 × 0.4 = 0.32.
        let r = belief(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
             ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
            "Hep(Eric) & Over60(Eric)",
        );
        let v = r.belief.as_point().unwrap();
        assert!((v - 0.32).abs() < 1e-9, "{r}");
        assert!(matches!(r.provenance, Provenance::Independence(_)));
    }

    #[test]
    fn unique_names_bias() {
        let r = belief("P(A) or !P(A)", "C1 = C2");
        assert_eq!(r.belief.as_point(), Some(0.0));
        assert_eq!(r.provenance, Provenance::UniqueNames);
        // Lifschitz C1.
        let r2 = belief("Ray = Reiter; Drew = McDermott", "!(Ray = Drew)");
        assert_eq!(r2.belief.as_point(), Some(1.0), "{r2}");
        let r3 = belief("Ray = Reiter; Drew = McDermott", "Ray = Reiter");
        assert_eq!(r3.belief.as_point(), Some(1.0));
    }

    #[test]
    fn nested_defaults_bed_late() {
        // Paper Examples 4.6 / 5.14.
        let kb_src = "|| ||Rises-late(x, y) | Day(y)||_y ~=_1 1 | ||To-bed-late(x, z) | Day(z)||_z ~=_2 1 ||_x ~=_3 1; \
                      ||To-bed-late(Alice, z) | Day(z)||_z ~=_2 1; \
                      Day(Tomorrow)";
        let r = belief(kb_src, "Rises-late(Alice, Tomorrow)");
        assert_eq!(r.belief.as_point(), Some(1.0), "{r}");
        assert_eq!(r.provenance, Provenance::NestedDefault);
    }

    #[test]
    fn tall_parent_via_direct_inference() {
        // Paper Example 5.13: existential reference class.
        let r = belief(
            "||Tall(x) | exists y (Child(x, y) & Tall(y))||_x ~=_1 1; \
             exists y (Child(Alice, y) & Tall(y))",
            "Tall(Alice)",
        );
        assert_eq!(r.belief.as_point(), Some(1.0), "{r}");
        assert_eq!(r.provenance, Provenance::DirectInference);
    }

    #[test]
    fn asserted_ground_facts_answer_in_the_theorem_stage() {
        // The PR-2 serving trap: these shapes used to miss every theorem
        // pattern and fall into a multi-second maxent sweep.
        let kb_src = "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Patient(Eric); !Jaun(Tom)";
        for (q, expect) in [
            ("Jaun(Eric)", 1.0),                 // bare asserted fact
            ("!!Jaun(Eric)", 1.0),               // double negation
            ("Jaun(Eric) & Patient(Eric)", 1.0), // conjunction of asserted literals
            ("Patient(Eric) & !Jaun(Tom)", 1.0), // mixed polarity, both asserted
            ("!Jaun(Eric)", 0.0),                // complement of an asserted fact
            ("Jaun(Tom)", 0.0),                  // asserted negative
            ("Jaun(Eric) & Jaun(Tom)", 0.0),     // one conjunct contradicted
        ] {
            let r = belief(kb_src, q);
            assert_eq!(r.provenance, Provenance::Entailed, "{q}: {r}");
            assert_eq!(r.belief.as_point(), Some(expect), "{q}: {r}");
            assert_eq!(r.trace.steps().len(), 1, "{q} must not leave theorems");
        }
        // Unasserted literals still decline to the statistical machinery
        // (minimal reference class here, since Eric has extra facts).
        let r = belief(kb_src, "Hep(Eric)");
        assert_ne!(r.provenance, Provenance::Entailed, "{r}");
        assert_eq!(r.belief.as_point(), Some(0.8), "{r}");
    }

    #[test]
    fn directly_contradictory_kbs_bypass_the_fast_path() {
        let r = belief("P(C); !P(C)", "P(C)");
        assert_eq!(r.belief, Belief::Undefined, "{r}");
    }

    #[test]
    fn symbol_free_false_conjuncts_bypass_the_fast_path() {
        // `false` shares no symbols with the query but voids the KB; the
        // fast path must not certify past it.
        let r = belief("false; P(C)", "P(C)");
        assert_ne!(r.provenance, Provenance::Entailed, "{r}");
        assert_eq!(r.belief, Belief::Undefined, "{r}");
    }

    #[test]
    fn quantified_contradictions_bypass_the_fast_path_too() {
        // The KB is inconsistent through a universal, not a ground
        // literal pair: the fast path must not claim entailment where
        // the semantic stages report Undefined.
        let r = belief("forall x (!P(x)); P(C)", "P(C)");
        assert_ne!(r.provenance, Provenance::Entailed, "{r}");
        assert_eq!(r.belief, Belief::Undefined, "{r}");
        // A universal about the queried predicate blocks the shortcut
        // even when consistent — the stages that understand it answer.
        let r = belief("forall x (P(x)); P(C)", "P(C)");
        assert_ne!(r.provenance, Provenance::Entailed, "{r}");
        assert_eq!(r.belief.as_point(), Some(1.0), "{r}");
        // Tolerance-carrying statistics about the queried symbols are
        // the allowed shape: the motivating trap KB keeps its fast path.
        let r = belief("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Jaun(Eric)");
        assert_eq!(r.provenance, Provenance::Entailed, "{r}");
    }

    #[test]
    fn maxent_fallback_for_unary_without_theorem() {
        // No explicit statistics for the query: falls to maxent.
        let r = belief(
            "||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1",
            "Black(Clyde)",
        );
        assert_eq!(r.provenance, Provenance::MaxEnt);
        assert!((r.belief.as_point().unwrap() - 0.47).abs() < 0.005, "{r}");
    }

    #[test]
    fn enumeration_fallback_for_tiny_non_unary() {
        // Binary predicate, no theorem pattern: enumeration diagonal.
        let r = belief("Likes(A, B)", "Likes(B, A)");
        assert!(
            matches!(r.provenance, Provenance::Enumeration { .. }),
            "{r}"
        );
        let v = r.belief.as_point().unwrap();
        assert!((v - 0.5).abs() < 0.05, "{r}");
    }

    #[test]
    fn inconsistent_kb_is_undefined() {
        let r = belief("forall x (P(x)); exists x (!P(x))", "P(C)");
        assert_eq!(r.belief, Belief::Undefined);
    }

    #[test]
    fn default_entailment_interface() {
        let kb = KnowledgeBase::parse(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
        )
        .unwrap();
        let e = engine();
        assert!(e.follows_by_default(&kb, "!Fly(Tweety)").unwrap());
        assert!(!e.follows_by_default(&kb, "Fly(Tweety)").unwrap());
    }

    // ---- Pipeline API ----

    /// A test double answering every query with a fixed point belief.
    struct ConstSolver {
        name: &'static str,
        value: f64,
    }

    impl Solver for ConstSolver {
        fn name(&self) -> &str {
            self.name
        }

        fn solve(
            &self,
            _kb: &KnowledgeBase,
            _query: &Formula,
            _budget: &Budget,
            _recurse: &Recurse<'_>,
        ) -> SolverOutcome {
            SolverOutcome::Answered {
                belief: Belief::Point(self.value),
                provenance: Provenance::DirectInference,
            }
        }
    }

    /// A test double that always declines.
    struct DeclineSolver;

    impl Solver for DeclineSolver {
        fn name(&self) -> &str {
            "decline"
        }

        fn solve(
            &self,
            _kb: &KnowledgeBase,
            _query: &Formula,
            _budget: &Budget,
            _recurse: &Recurse<'_>,
        ) -> SolverOutcome {
            SolverOutcome::Declined {
                reason: "always declines".to_string(),
            }
        }
    }

    #[test]
    fn default_pipeline_exposes_stage_names() {
        assert_eq!(
            engine().solvers(),
            vec!["theorems", "maxent", "unary-exact", "enumeration"]
        );
    }

    #[test]
    fn custom_solver_ordering_is_honored() {
        let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        // The override runs *before* the theorem engine and wins.
        let e = engine().with_solvers(vec![
            Stage::new(Box::new(ConstSolver {
                name: "override",
                value: 0.42,
            })),
            Stage::new(Box::new(TheoremSolver)),
        ]);
        assert_eq!(e.solvers(), vec!["override", "theorems"]);
        let r = e.answer(&kb, "Hep(Eric)").unwrap();
        assert_eq!(r.belief.as_point(), Some(0.42));
        assert_eq!(r.trace.steps().len(), 1);
        assert_eq!(r.trace.steps()[0].stage, "override");
        // Swapped order: the theorem engine answers first.
        let e = engine().with_solvers(vec![
            Stage::new(Box::new(TheoremSolver)),
            Stage::new(Box::new(ConstSolver {
                name: "override",
                value: 0.42,
            })),
        ]);
        let r = e.answer(&kb, "Hep(Eric)").unwrap();
        assert_eq!(r.belief.as_point(), Some(0.8));
    }

    #[test]
    fn trace_records_declined_stages_before_the_answer() {
        // Binary predicate: theorems and maxent must both decline (maxent
        // cannot compile a non-unary KB), unary-exact declines, and the
        // enumeration stage answers — all of it visible in the trace.
        let r = belief("Likes(A, B)", "Likes(B, A)");
        let stages: Vec<(&str, &str)> = r
            .trace
            .steps()
            .iter()
            .map(|s: &StageTrace| (s.stage.as_str(), s.status.keyword()))
            .collect();
        assert_eq!(
            stages,
            vec![
                ("theorems", "declined"),
                ("maxent", "declined"),
                ("unary-exact", "declined"),
                ("enumeration", "answered"),
            ],
            "{:?}",
            r.trace
        );
        assert!(r.trace.stage("maxent").unwrap().status.reason().is_some());
    }

    #[test]
    fn every_response_carries_a_nonempty_trace() {
        for (kb_src, q) in [
            ("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Hep(Eric)"),
            (
                "||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1",
                "Black(Clyde)",
            ),
            ("Likes(A, B)", "Likes(B, A)"),
        ] {
            let r = belief(kb_src, q);
            assert!(!r.trace.is_empty(), "{kb_src} ⊢ {q}");
            assert_eq!(
                r.trace.steps().last().unwrap().status,
                StageStatus::Answered
            );
        }
    }

    #[test]
    fn declining_pipeline_reports_out_of_reach_with_trace() {
        let kb = KnowledgeBase::parse("P(C)").unwrap();
        let e = engine().with_solvers(vec![Stage::new(Box::new(DeclineSolver))]);
        match e.answer(&kb, "P(C)") {
            Err(EngineError::OutOfReach { trace, .. }) => {
                assert_eq!(trace.steps().len(), 1);
                assert_eq!(
                    trace.steps()[0].status,
                    StageStatus::Declined("always declines".to_string())
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn answer_batch_reuses_the_kb_and_isolates_failures() {
        let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        let results = engine().answer_batch(&kb, &["Hep(Eric)", "Hep(", "!Hep(Eric)"]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().belief.as_point(), Some(0.8));
        assert!(matches!(results[1], Err(EngineError::Parse(_))));
        let v = results[2].as_ref().unwrap().belief.as_point().unwrap();
        assert!((v - 0.2).abs() < 1e-9);
        // Vocabulary extensions from one query must not leak into others:
        // the shared KB still parses fresh constants the same way.
        let again = engine().answer_batch(&kb, &["Hep(Eric)"]);
        assert_eq!(again[0].as_ref().unwrap().belief.as_point(), Some(0.8));
    }

    #[test]
    fn single_query_answers_share_the_installed_cache() {
        let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        let cache = Arc::new(AnswerCache::new());
        let e = engine().with_cache(Arc::clone(&cache));
        let cold = e.answer(&kb, "Hep(Eric)").unwrap();
        assert!(!cold.cached);
        // Exact repeat and a syntactic variant both hit.
        let warm = e.answer(&kb, "Hep(Eric)").unwrap();
        assert!(warm.cached);
        assert_eq!(warm.belief, cold.belief);
        assert_eq!(warm.provenance, cold.provenance);
        assert_eq!(warm.trace.steps().len(), 1);
        assert_eq!(warm.trace.steps()[0].stage, "cache");
        assert!(e.answer(&kb, "!!Hep(Eric)").unwrap().cached);
        // A different KB must not see the entry.
        let other = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.3; Jaun(Eric)").unwrap();
        let r = e.answer(&other, "Hep(Eric)").unwrap();
        assert!(!r.cached);
        assert_eq!(r.belief.as_point(), Some(0.3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn config_mutations_invalidate_cache_entries() {
        let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        let cache = Arc::new(AnswerCache::new());
        let mut e = engine().with_cache(Arc::clone(&cache));
        assert!(!e.answer(&kb, "Hep(Eric)").unwrap().cached);
        assert!(e.answer(&kb, "Hep(Eric)").unwrap().cached);
        // Any configuration change keys a fresh entry: a stale belief
        // computed under the old budgets/diagonal must never be served.
        e.enum_max_worlds = 1 << 10;
        assert!(!e.answer(&kb, "Hep(Eric)").unwrap().cached);
        e.diagonal = Diagonal::geometric(rw_util::Rat::new(1, 4), 8, 2);
        assert!(!e.answer(&kb, "Hep(Eric)").unwrap().cached);
        // The symmetry flag and scan window are part of the keyspace too.
        e.enum_symmetry = true;
        assert!(!e.answer(&kb, "Hep(Eric)").unwrap().cached);
        e.enum_min_n = Some(3);
        assert!(!e.answer(&kb, "Hep(Eric)").unwrap().cached);
        e.enum_max_n = Some(12);
        assert!(!e.answer(&kb, "Hep(Eric)").unwrap().cached);
        // ...and each configuration's own entry still hits.
        assert!(e.answer(&kb, "Hep(Eric)").unwrap().cached);
        // Sharing the cache across engines keys by configuration: an
        // identically configured engine reuses the entry, a differently
        // configured one (custom stage list) does not.
        let same = engine().with_cache(Arc::clone(&cache));
        assert!(same.answer(&kb, "Hep(Eric)").unwrap().cached);
        let different = engine()
            .with_solvers(vec![Stage::new(Box::new(TheoremSolver))])
            .with_cache(Arc::clone(&cache));
        assert!(!different.answer(&kb, "Hep(Eric)").unwrap().cached);
    }

    #[test]
    fn approx_engines_insert_the_sampling_stage_after_theorems() {
        let e = engine().with_approx(rw_worlds::mc::McConfig::default());
        assert_eq!(
            e.solvers(),
            vec![
                "theorems",
                "montecarlo",
                "maxent",
                "unary-exact",
                "enumeration"
            ]
        );
        // Theorem-answerable queries still bypass the sampler entirely.
        let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        let r = e.answer(&kb, "Hep(Eric)").unwrap();
        assert_eq!(r.provenance, Provenance::DirectInference);
    }

    #[test]
    fn approx_and_exact_answers_never_share_cache_entries() {
        // A binary-predicate KB: exact inference lands on the (cheap at
        // N≤3) enumeration stage, the approx engine on the sampler.
        let kb = KnowledgeBase::parse("Likes(A, B)").unwrap();
        let cache = Arc::new(AnswerCache::new());
        let mut exact = engine().with_cache(Arc::clone(&cache));
        exact.enum_max_worlds = 1 << 13; // clamp enumeration to N=3
        let mut approx = exact
            .clone()
            .with_approx(rw_worlds::mc::McConfig::default());
        approx.diagonal = Diagonal::geometric(rw_util::Rat::new(1, 4), 4, 2);
        let q = "Likes(B, A)";
        let a = approx.answer(&kb, q).unwrap();
        assert!(!a.cached);
        assert!(matches!(a.belief, Belief::Approximate { .. }), "{a}");
        // The exact engine must not be served the sampled belief...
        let e1 = exact.answer(&kb, q).unwrap();
        assert!(
            !e1.cached,
            "approximate entry leaked into the exact keyspace"
        );
        assert!(!matches!(e1.belief, Belief::Approximate { .. }), "{e1}");
        // ...while each keyspace still hits itself.
        assert!(approx.answer(&kb, q).unwrap().cached);
        assert!(exact.answer(&kb, q).unwrap().cached);
        // A different sampling configuration keys differently too...
        let reseeded = RandomWorlds {
            approx: Some(rw_worlds::mc::McConfig {
                seed: 1234,
                ..rw_worlds::mc::McConfig::default()
            }),
            ..approx.clone()
        };
        assert!(!reseeded.answer(&kb, q).unwrap().cached);
        // ...but a different *worker count* does not: threads never
        // affect an answer (sampling is thread-count deterministic), so
        // sessions differing only in threads share cache entries.
        let rethreaded = RandomWorlds {
            approx: Some(rw_worlds::mc::McConfig {
                threads: 4,
                ..rw_worlds::mc::McConfig::default()
            }),
            ..approx.clone()
        };
        assert!(rethreaded.answer(&kb, q).unwrap().cached);
    }

    #[test]
    fn answer_fingerprinted_matches_answer() {
        let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        let e = engine().with_cache(Arc::new(AnswerCache::new()));
        let fp = rw_logic::canon::kb_fingerprint(&kb);
        let cold = e.answer_fingerprinted(&kb, "Hep(Eric)", fp).unwrap();
        assert!(!cold.cached);
        // Shares the keyspace with the self-fingerprinting entry point.
        assert!(e.answer(&kb, "Hep(Eric)").unwrap().cached);
        let warm = e.answer_fingerprinted(&kb, "!!Hep(Eric)", fp).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.belief, cold.belief);
    }

    #[test]
    fn answer_formula_consults_the_cache_too() {
        let mut kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        let e = engine().with_cache(Arc::new(AnswerCache::new()));
        let q = kb.parse_query("Hep(Eric)").unwrap();
        assert!(!e.answer_formula(&kb, &q).unwrap().cached);
        assert!(e.answer_formula(&kb, &q).unwrap().cached);
        // String and formula entry points share one keyspace.
        assert!(e.answer(&kb, "Hep(Eric)").unwrap().cached);
    }

    #[test]
    fn batch_matches_single_query_answers() {
        let kb = KnowledgeBase::parse("||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1")
            .unwrap();
        let queries = ["Black(Clyde)", "Bird(Clyde)"];
        let batch = engine().answer_batch(&kb, &queries);
        for (q, b) in queries.iter().zip(&batch) {
            let single = engine().answer(&kb, q).unwrap();
            assert_eq!(
                single.belief,
                b.as_ref().unwrap().belief,
                "batch diverged on {q}"
            );
        }
    }
}
