//! The theorem engine: syntactic pattern matchers, with checked side
//! conditions, for the paper's general theorems about random worlds.
//!
//! Each matcher returns `None` when its theorem does not apply — soundness
//! over completeness: a returned belief is always justified by the cited
//! theorem, and unverifiable side conditions reject the match (the engine
//! then falls back to the semantic computations in `rw-maxent` /
//! `rw-unary` / `rw-worlds`).

use crate::belief::{Belief, Provenance};
use crate::patterns::{
    canon, canon_conjunction, classify, conjuncts_mentioning, const_atom_set, synthetic_var,
    Classified, StatStatement, Taxonomy,
};
use rw_logic::ast::{Formula, PropExpr, Term};
use rw_logic::{analysis, ConstId, KnowledgeBase, PredId, VarId};
use rw_unary::atoms::compile_atom_set;
use rw_unary::AtomSet;
use rw_util::Rat;
use std::collections::BTreeMap;

/// A callback into the full engine, used by theorems that decompose the
/// problem (Thm 5.27 independence).
pub type Solver<'a> = dyn Fn(&KnowledgeBase, &Formula) -> Option<(Belief, Provenance)> + 'a;

/// Dempster's rule of combination (paper Thm 5.26):
/// `δ(ᾱ) = Π αᵢ / (Π αᵢ + Π (1-αᵢ))`.
pub fn dempster_rule(alphas: &[f64]) -> f64 {
    let num: f64 = alphas.iter().product();
    let den: f64 = num + alphas.iter().map(|a| 1.0 - a).product::<f64>();
    num / den
}

/// Tries every theorem pattern in order of specificity.
pub fn try_all(
    kb: &KnowledgeBase,
    query: &Formula,
    solver: &Solver<'_>,
) -> Option<(Belief, Provenance)> {
    let cls = classify(kb);
    try_ground_facts(query, &cls)
        .or_else(|| try_unique_names(kb, query, &cls))
        .or_else(|| try_dempster(kb, query, &cls))
        .or_else(|| try_strength(kb, query, &cls))
        .or_else(|| try_direct_inference(kb, query, &cls))
        .or_else(|| try_minimal_class(kb, query, &cls))
        .or_else(|| try_nested_default(kb, query, &cls))
        .or_else(|| try_independence(kb, query, &cls, solver))
}

fn interval_belief(lo: Rat, hi: Rat) -> Option<Belief> {
    if lo > hi {
        return None; // contradictory bounds: let the semantic engines decide
    }
    if lo == hi {
        Some(Belief::Point(lo.to_f64()))
    } else {
        Some(Belief::Interval(lo.to_f64(), hi.to_f64()))
    }
}

fn permutations(k: usize) -> Vec<Vec<usize>> {
    fn go(prefix: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
        let k = used.len();
        if prefix.len() == k {
            out.push(prefix.clone());
            return;
        }
        for i in 0..k {
            if !used[i] {
                used[i] = true;
                prefix.push(i);
                go(prefix, used, out);
                prefix.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    go(&mut Vec::new(), &mut vec![false; k], &mut out);
    out
}

// ---------------------------------------------------------------------------
// Asserted ground facts: direct entailment (Definition 4.2).
// ---------------------------------------------------------------------------

/// The cheapest pattern of all: the query is a conjunction of ground
/// literals each directly asserted by the KB (belief 1: every KB-world
/// satisfies each conjunct, Def 4.2) or with one conjunct asserted with
/// the opposite polarity (belief 0: no KB-world satisfies it).
///
/// This covers the serving-path traps that previously fell through to a
/// multi-second maxent sweep: bare asserted facts (`Jaun(Eric)`), double
/// negations (`!!P(c)`), and conjunctions of asserted ground literals.
///
/// Side conditions (all checked; any failure declines to the semantic
/// stages):
///
/// * every query conjunct is a ground literal, and each is asserted by
///   the KB one way or the other;
/// * no ground literal is asserted both ways (directly inconsistent KB,
///   so `Pr` may be undefined);
/// * every other KB conjunct *touching the query's symbols* (a predicate
///   or constant of some query literal) is a tolerance-carrying
///   statistical comparison — the one shape that cannot make an asserted
///   ground fact eventually inconsistent. Universals, equalities,
///   exact-proportion constraints and other quantified facts about those
///   symbols disable the fast path: `forall x (!P(x)); P(C)` must reach
///   the stages that can report `Undefined`. (Conjuncts over unrelated
///   symbols are not inspected — the same scope every other matcher
///   here uses.)
pub fn try_ground_facts(query: &Formula, cls: &Classified) -> Option<(Belief, Provenance)> {
    // Every query conjunct (after `!!` stripping) must be a ground literal.
    let stripped = analysis::strip_double_neg(query);
    let mut literals = Vec::new();
    for part in stripped.conjuncts() {
        literals.push(analysis::as_ground_literal(part)?);
    }
    if literals.is_empty() {
        return None;
    }
    let q_preds: std::collections::BTreeSet<PredId> = literals.iter().map(|(p, _, _)| *p).collect();
    let q_consts: std::collections::BTreeSet<ConstId> = literals
        .iter()
        .flat_map(|(_, args, _)| args.iter().copied())
        .collect();
    // The KB's asserted ground literals, with a direct-contradiction scan;
    // everything else sharing symbols with the query must be a
    // tolerance-carrying statistical statement.
    let mut asserted: BTreeMap<(PredId, Vec<ConstId>), bool> = BTreeMap::new();
    for f in &cls.conjuncts {
        if let Some((p, args, value)) = analysis::as_ground_literal(f) {
            match asserted.insert((p, args), value) {
                Some(prior) if prior != value => return None, // KB ⊨ ⊥ on this literal
                _ => {}
            }
            continue;
        }
        if matches!(f, Formula::True) {
            continue;
        }
        let syms = analysis::symbols(f);
        // A symbol-free conjunct other than `true` (e.g. a literal
        // `false`, or `!true`) can void the whole KB without ever
        // "touching" the query's symbols — never certify past one.
        if syms.preds.is_empty() && syms.consts.is_empty() && syms.funcs.is_empty() {
            return None;
        }
        let touches = !syms.preds.is_disjoint(&q_preds) || !syms.consts.is_disjoint(&q_consts);
        if !touches {
            continue;
        }
        // A proportion compared under a tolerance (`~=_i`, `<~_i`) is
        // satisfiable alongside any finite set of ground facts for all
        // large `N`; anything else could entail their negation.
        let Formula::Cmp(_, op, _) = f else {
            return None;
        };
        op.tolerance()?;
    }
    let mut all_match = true;
    for (p, args, value) in literals {
        match asserted.get(&(p, args)) {
            Some(&v) if v == value => {}
            // One conjunct entailed false bounds the whole conjunction:
            // Pr(φ ∧ ψ | KB) ≤ Pr(φ | KB) = 0.
            Some(_) => return Some((Belief::Point(0.0), Provenance::Entailed)),
            None => all_match = false,
        }
    }
    if all_match {
        Some((Belief::Point(1.0), Provenance::Entailed))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Theorem 5.6 / Corollary 5.7: direct inference.
// ---------------------------------------------------------------------------

/// Matches `KB = ψ(c̄) ∧ KB'` with an explicit statistical statement
/// `||φ(x̄) | ψ(x̄)||_x̄ ∈ [lo, hi]` in `KB'`, where the constants `c̄` (a
/// subset of the query's constants) occur nowhere else.
pub fn try_direct_inference(
    kb: &KnowledgeBase,
    query: &Formula,
    cls: &Classified,
) -> Option<(Belief, Provenance)> {
    let q_consts: Vec<ConstId> = analysis::constants(query).into_iter().collect();
    if q_consts.is_empty() || q_consts.len() > 3 {
        return None;
    }
    let _ = kb;
    // Subsets of the query constants, larger first (most information used).
    let mut masks: Vec<u32> = (1..(1u32 << q_consts.len())).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for mask in masks {
        let cbar: Vec<ConstId> = q_consts
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, c)| *c)
            .collect();
        let f_idx = conjuncts_mentioning(cls, &cbar);
        // Generalize c̄ → synthetic variables in the query and the facts.
        let generalize = |f: &Formula| {
            let mut g = f.clone();
            for (i, c) in cbar.iter().enumerate() {
                g = analysis::generalize_const(&g, *c, synthetic_var(i));
            }
            g
        };
        let phi = generalize(query);
        let psi = Formula::conjoin(f_idx.iter().map(|&i| generalize(&cls.conjuncts[i])));

        'stat: for s in &cls.stats {
            if s.vars.len() != cbar.len() {
                continue;
            }
            // The statistical statement itself must not mention c̄ (it would
            // have been swept into ψ otherwise).
            if s.sources.iter().any(|i| f_idx.contains(i)) {
                continue;
            }
            let their_map: BTreeMap<VarId, usize> =
                s.vars.iter().enumerate().map(|(j, &v)| (v, j)).collect();
            let their_body = canon(&s.body, &their_map);
            let their_cond = canon_conjunction(&s.cond, &their_map);
            for perm in permutations(cbar.len()) {
                let our_map: BTreeMap<VarId, usize> = (0..cbar.len())
                    .map(|i| (synthetic_var(i), perm[i]))
                    .collect();
                if canon(&phi, &our_map) == their_body
                    && canon_conjunction(&psi, &our_map) == their_cond
                {
                    let belief = match interval_belief(s.lo, s.hi) {
                        Some(b) => b,
                        None => continue 'stat,
                    };
                    return Some((belief, Provenance::DirectInference));
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Theorem 5.16 / Corollary 5.17: minimal reference class + irrelevance.
// ---------------------------------------------------------------------------

struct Candidate<'a> {
    stat: &'a StatStatement,
    class: AtomSet,
}

/// Reference-class candidates for a single-constant query: statistical
/// statements whose body alpha-matches the generalized query, with
/// compilable (quantifier-free unary) condition classes. Returns `None` if
/// some statement about `φ` has a class we cannot analyze (the theorems'
/// side conditions quantify over *all* such statements).
fn phi_candidates<'a>(
    kb: &KnowledgeBase,
    cls: &'a Classified,
    phi: &Formula,
) -> Option<Vec<Candidate<'a>>> {
    let vocab = kb.vocab();
    let our_map: BTreeMap<VarId, usize> = [(synthetic_var(0), 0)].into_iter().collect();
    let phi_canon = canon(phi, &our_map);
    let mut out = Vec::new();
    for s in &cls.stats {
        if s.vars.len() != 1 {
            continue;
        }
        let their_map: BTreeMap<VarId, usize> = [(s.vars[0], 0)].into_iter().collect();
        if canon(&s.body, &their_map) != phi_canon {
            continue;
        }
        let class = compile_atom_set(&s.cond, s.vars[0], vocab)?;
        out.push(Candidate { stat: s, class });
    }
    Some(out)
}

/// Condition (c) of Thm 5.16 (shared with Thm 5.23): the symbols of `φ`
/// occur in the KB only inside the bodies of the candidate statements.
fn phi_symbols_isolated(cls: &Classified, phi: &Formula, candidates: &[Candidate<'_>]) -> bool {
    let phi_syms = analysis::symbols(phi);
    let candidate_sources: Vec<usize> = candidates
        .iter()
        .flat_map(|c| c.stat.sources.iter().copied())
        .collect();
    for (idx, f) in cls.conjuncts.iter().enumerate() {
        let syms = analysis::symbols(f);
        let shares = !syms.preds.is_disjoint(&phi_syms.preds)
            || !syms.funcs.is_disjoint(&phi_syms.funcs)
            || !syms.consts.is_disjoint(&phi_syms.consts);
        if shares && !candidate_sources.contains(&idx) {
            return false;
        }
    }
    // ... and not inside the conditions of those statements.
    for c in candidates {
        let cond_syms = analysis::symbols(&c.stat.cond);
        if !cond_syms.preds.is_disjoint(&phi_syms.preds)
            || !cond_syms.consts.is_disjoint(&phi_syms.consts)
        {
            return false;
        }
    }
    true
}

fn single_query_constant(query: &Formula) -> Option<ConstId> {
    let cs = analysis::constants(query);
    if cs.len() == 1 {
        cs.into_iter().next()
    } else {
        None
    }
}

/// Theorem 5.16: if the statements about `φ` include a unique minimal class
/// `ψ₀` containing `c` — every other class a superset or disjoint — then the
/// degree of belief is `ψ₀`'s statistic, regardless of any other facts
/// about `c` (irrelevance / exceptional-subclass inheritance).
pub fn try_minimal_class(
    kb: &KnowledgeBase,
    query: &Formula,
    cls: &Classified,
) -> Option<(Belief, Provenance)> {
    let c = single_query_constant(query)?;
    let vocab = kb.vocab();
    let taxonomy = Taxonomy::build(cls, vocab)?;
    let phi = analysis::generalize_const(query, c, synthetic_var(0));
    let candidates = phi_candidates(kb, cls, &phi)?;
    if candidates.is_empty() || !phi_symbols_isolated(cls, &phi, &candidates) {
        return None;
    }
    let facts = const_atom_set(cls, c, vocab);
    if !taxonomy.satisfiable(&facts) {
        return None;
    }
    // Classes containing c.
    let mut best: Option<&Candidate> = None;
    for cand in &candidates {
        if !taxonomy.entails(&facts, &cand.class) {
            continue;
        }
        // Minimality against every candidate class.
        let minimal = candidates.iter().all(|other| {
            taxonomy.entails(&cand.class, &other.class)
                || taxonomy.disjoint(&cand.class, &other.class)
        });
        if minimal {
            match best {
                None => best = Some(cand),
                Some(b) => {
                    // Prefer the smaller class; merge equal classes by
                    // interval intersection.
                    if taxonomy.entails(&cand.class, &b.class)
                        && !taxonomy.entails(&b.class, &cand.class)
                    {
                        best = Some(cand);
                    }
                }
            }
        }
    }
    let b = best?;
    let belief = interval_belief(b.stat.lo, b.stat.hi)?;
    Some((belief, Provenance::MinimalReferenceClass))
}

// ---------------------------------------------------------------------------
// Theorem 5.23: the strength rule along a chain of reference classes.
// ---------------------------------------------------------------------------

/// Theorem 5.23: when the classes with statistics about `φ` form a chain
/// `ψ₁ ⊆ ... ⊆ ψ_m` containing `c` in the smallest, and one interval is
/// strictly nested inside all others, that tightest interval bounds the
/// degree of belief.
pub fn try_strength(
    kb: &KnowledgeBase,
    query: &Formula,
    cls: &Classified,
) -> Option<(Belief, Provenance)> {
    let c = single_query_constant(query)?;
    let vocab = kb.vocab();
    let taxonomy = Taxonomy::build(cls, vocab)?;
    let phi = analysis::generalize_const(query, c, synthetic_var(0));
    let candidates = phi_candidates(kb, cls, &phi)?;
    if candidates.len() < 2 || !phi_symbols_isolated(cls, &phi, &candidates) {
        return None;
    }
    // Chain check.
    for i in 0..candidates.len() {
        for j in i + 1..candidates.len() {
            let a = &candidates[i].class;
            let b = &candidates[j].class;
            if !taxonomy.entails(a, b) && !taxonomy.entails(b, a) {
                return None;
            }
        }
    }
    // c must lie in the minimal class of the chain.
    let facts = const_atom_set(cls, c, vocab);
    if !taxonomy.satisfiable(&facts) {
        return None;
    }
    let bottom = candidates.iter().find(|cand| {
        candidates
            .iter()
            .all(|other| taxonomy.entails(&cand.class, &other.class))
    })?;
    if !taxonomy.entails(&facts, &bottom.class) {
        return None;
    }
    // Strictly tightest interval.
    let tightest = candidates.iter().find(|cand| {
        candidates.iter().all(|other| {
            std::ptr::eq(*cand, other)
                || (other.stat.lo < cand.stat.lo && cand.stat.hi < other.stat.hi)
        })
    })?;
    let belief = interval_belief(tightest.stat.lo, tightest.stat.hi)?;
    Some((belief, Provenance::StrengthRule))
}

// ---------------------------------------------------------------------------
// Theorem 5.26: Dempster combination of essentially disjoint evidence.
// ---------------------------------------------------------------------------

/// Theorem 5.26: `KB = ∧ᵢ (||P(x)|ψᵢ(x)|| ≈ αᵢ ∧ ψᵢ(c)) ∧ ∧_{i≠j} ∃!x(ψᵢ∧ψⱼ)`
/// gives `Pr∞(P(c)) = δ(ᾱ)`. Conflicting extremes (`αᵢ = 1` and `αⱼ = 0`)
/// with distinct tolerance indices have no robust limit; with a shared
/// index the symmetric limit is 1/2 (paper §5.3).
pub fn try_dempster(
    kb: &KnowledgeBase,
    query: &Formula,
    cls: &Classified,
) -> Option<(Belief, Provenance)> {
    let (pred, c, negated) = match query {
        Formula::Pred(p, args) => match args.as_slice() {
            [Term::Const(c)] => (*p, *c, false),
            _ => return None,
        },
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Pred(p, args) => match args.as_slice() {
                [Term::Const(c)] => (*p, *c, true),
                _ => return None,
            },
            _ => return None,
        },
        _ => return None,
    };
    let vocab = kb.vocab();
    let taxonomy = Taxonomy::build(cls, vocab)?;
    let phi = analysis::generalize_const(query, c, synthetic_var(0));
    let phi_pos = if negated {
        match &phi {
            Formula::Not(inner) => inner.as_ref().clone(),
            _ => return None,
        }
    } else {
        phi.clone()
    };
    let candidates = phi_candidates(kb, cls, &phi_pos)?;
    if candidates.len() < 2 {
        return None;
    }
    // All statements must be points, classes must not mention P or c, and c
    // must be known to lie in every class.
    let facts = const_atom_set(cls, c, vocab);
    if !taxonomy.satisfiable(&facts) {
        return None;
    }
    let mut alphas = Vec::new();
    for cand in &candidates {
        if !cand.stat.is_point() {
            return None;
        }
        let cond_syms = analysis::symbols(&cand.stat.cond);
        if cond_syms.preds.contains(&pred) || cond_syms.consts.contains(&c) {
            return None;
        }
        if !taxonomy.entails(&facts, &cand.class) {
            return None;
        }
        alphas.push(cand.stat.lo);
    }
    // Pairwise ∃!x(ψᵢ ∧ ψⱼ) conjuncts must be present.
    for i in 0..candidates.len() {
        'next_pair: for j in i + 1..candidates.len() {
            let want: Vec<String> = {
                let mut parts = canon_conjunction(
                    &Formula::and(
                        candidates[i].stat.cond.clone(),
                        candidates[j].stat.cond.clone(),
                    ),
                    &[
                        (candidates[i].stat.vars[0], 0),
                        (candidates[j].stat.vars[0], 0),
                    ]
                    .into_iter()
                    .collect(),
                );
                parts.sort();
                parts
            };
            for (_, inner, v) in &cls.exists_unique {
                let map: BTreeMap<VarId, usize> = [(*v, 0)].into_iter().collect();
                let mut got = canon_conjunction(inner, &map);
                got.sort();
                if got == want {
                    continue 'next_pair;
                }
            }
            return None;
        }
    }
    // Strictness: every remaining conjunct must belong to the pattern.
    for (idx, f) in cls.conjuncts.iter().enumerate() {
        let is_stat_source = candidates
            .iter()
            .any(|cand| cand.stat.sources.contains(&idx));
        let is_exists = cls.exists_unique.iter().any(|(i, _, _)| *i == idx);
        let is_fact = {
            let cs = analysis::constants(f);
            cs.len() == 1
                && cs.contains(&c)
                && !analysis::symbols(f).preds.contains(&pred)
                && rw_unary::atoms::compile_atom_set_const(f, c, vocab).is_some()
        };
        if !(is_stat_source || is_exists || is_fact || matches!(f, Formula::True)) {
            return None;
        }
    }

    let ones = alphas.iter().filter(|a| **a == Rat::ONE).count();
    let zeros = alphas.iter().filter(|a| **a == Rat::ZERO).count();
    let belief = if ones > 0 && zeros > 0 {
        // Conflicting hard defaults.
        let tols: Vec<_> = candidates
            .iter()
            .map(|cand| {
                let mut ts = cand.stat.tols.clone();
                ts.dedup();
                ts
            })
            .collect();
        let shared = tols.iter().all(|ts| ts.len() == 1 && ts[0] == tols[0][0]);
        if shared && candidates.len() == 2 {
            Belief::Point(0.5)
        } else {
            Belief::NonRobust(vec![0.0, 1.0])
        }
    } else {
        let v = dempster_rule(&alphas.iter().map(|a| a.to_f64()).collect::<Vec<_>>());
        Belief::Point(v)
    };
    let belief = if negated {
        match belief {
            Belief::Point(v) => Belief::Point(1.0 - v),
            Belief::NonRobust(vs) => Belief::NonRobust(vs.iter().map(|v| 1.0 - v).collect()),
            other => other,
        }
    } else {
        belief
    };
    Some((belief, Provenance::Dempster))
}

// ---------------------------------------------------------------------------
// Theorem 5.27: independence across disjoint subvocabularies.
// ---------------------------------------------------------------------------

/// Theorem 5.27: if `KB ∧ query` splits into components over vocabularies
/// that are pairwise disjoint except for (at most) one shared constant, the
/// belief is the product of the components' beliefs.
pub fn try_independence(
    kb: &KnowledgeBase,
    query: &Formula,
    cls: &Classified,
    solver: &Solver<'_>,
) -> Option<(Belief, Provenance)> {
    let query_parts: Vec<Formula> = query.conjuncts().into_iter().cloned().collect();
    let n_kb = cls.conjuncts.len();
    let n_all = n_kb + query_parts.len();
    if n_all < 2 {
        return None;
    }
    let q_consts = analysis::constants(query);

    // Union-find over conjuncts + query parts; edges share a predicate, a
    // function, or a constant outside the query's constants.
    let mut parent: Vec<usize> = (0..n_all).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let sym_of = |i: usize| -> analysis::Symbols {
        if i < n_kb {
            analysis::symbols(&cls.conjuncts[i])
        } else {
            analysis::symbols(&query_parts[i - n_kb])
        }
    };
    let symbols: Vec<analysis::Symbols> = (0..n_all).map(sym_of).collect();
    for i in 0..n_all {
        for j in i + 1..n_all {
            let a = &symbols[i];
            let b = &symbols[j];
            let share_pred = !a.preds.is_disjoint(&b.preds) || !a.funcs.is_disjoint(&b.funcs);
            let share_other_const = a
                .consts
                .intersection(&b.consts)
                .any(|c| !q_consts.contains(c));
            if share_pred || share_other_const {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut components: BTreeMap<usize, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for i in 0..n_all {
        let r = find(&mut parent, i);
        let entry = components.entry(r).or_default();
        if i < n_kb {
            entry.0.push(i);
        } else {
            entry.1.push(i - n_kb);
        }
    }
    let with_query: Vec<_> = components.values().filter(|(_, q)| !q.is_empty()).collect();
    if with_query.len() < 2 {
        return None;
    }
    // At most one constant may be shared between any two components.
    let comp_consts: Vec<std::collections::BTreeSet<ConstId>> = components
        .values()
        .map(|(ks, qs)| {
            let mut s = std::collections::BTreeSet::new();
            for &k in ks {
                s.extend(analysis::constants(&cls.conjuncts[k]));
            }
            for &q in qs {
                s.extend(analysis::constants(&query_parts[q]));
            }
            s
        })
        .collect();
    let mut shared_total: std::collections::BTreeSet<ConstId> = Default::default();
    for i in 0..comp_consts.len() {
        for j in i + 1..comp_consts.len() {
            shared_total.extend(comp_consts[i].intersection(&comp_consts[j]).copied());
        }
    }
    if shared_total.len() > 1 {
        return None;
    }

    // Solve each component carrying a query part.
    let mut lo = 1.0f64;
    let mut hi = 1.0f64;
    let mut parts = Vec::new();
    for (kidxs, qidxs) in components.values() {
        if qidxs.is_empty() {
            continue;
        }
        let sub_kb = KnowledgeBase::from_parts(
            kb.vocab().clone(),
            kidxs.iter().map(|&i| cls.conjuncts[i].clone()).collect(),
        );
        let sub_q = Formula::conjoin(qidxs.iter().map(|&i| query_parts[i].clone()));
        let (belief, prov) = solver(&sub_kb, &sub_q)?;
        let (blo, bhi) = belief.as_interval()?;
        lo *= blo;
        hi *= bhi;
        parts.push(Box::new(prov));
    }
    let belief = if (hi - lo).abs() < 1e-12 {
        Belief::Point(lo)
    } else {
        Belief::Interval(lo, hi)
    };
    Some((belief, Provenance::Independence(parts)))
}

// ---------------------------------------------------------------------------
// §5.5: unique names.
// ---------------------------------------------------------------------------

/// The unique-names bias: `Pr∞(c₁ = c₂ | KB) = 0` when the KB constrains the
/// constants only through positive equality conjuncts (or not at all); the
/// equalities partition constants into blocks that behave like fresh names
/// (GHK94 Lemma D.1; Lifschitz benchmark C1).
pub fn try_unique_names(
    kb: &KnowledgeBase,
    query: &Formula,
    cls: &Classified,
) -> Option<(Belief, Provenance)> {
    let (a, b, negated) = match query {
        Formula::TermEq(Term::Const(a), Term::Const(b)) => (*a, *b, false),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::TermEq(Term::Const(a), Term::Const(b)) => (*a, *b, true),
            _ => return None,
        },
        _ => return None,
    };
    let n_consts = kb.vocab().const_count();
    let mut uf: Vec<usize> = (0..n_consts).collect();
    fn find(uf: &mut Vec<usize>, i: usize) -> usize {
        if uf[i] != i {
            let r = find(uf, uf[i]);
            uf[i] = r;
        }
        uf[i]
    }
    for f in &cls.conjuncts {
        match f {
            Formula::True => {}
            Formula::TermEq(Term::Const(x), Term::Const(y)) => {
                let (rx, ry) = (find(&mut uf, x.index()), find(&mut uf, y.index()));
                if rx != ry {
                    uf[rx] = ry;
                }
            }
            other => {
                // Any non-equality information about either constant blocks
                // the pattern (but information about *other* symbols is fine).
                let cs = analysis::constants(other);
                if cs.contains(&a) || cs.contains(&b) {
                    return None;
                }
            }
        }
    }
    let equal = find(&mut uf, a.index()) == find(&mut uf, b.index());
    let v = match (equal, negated) {
        (true, false) | (false, true) => 1.0,
        _ => 0.0,
    };
    Some((Belief::Point(v), Provenance::UniqueNames))
}

// ---------------------------------------------------------------------------
// Example 5.14: nested-default chaining.
// ---------------------------------------------------------------------------

/// The bed-late pattern: from a nested default
/// `|| ||R(x,y)|D(y)||_y ≈ 1 | C(x) ||_x ≈ 1`, a fact entailing `C(c₁)` and
/// a fact `D(c₂)`, conclude `R(c₁, c₂)` with belief 1 — the paper's
/// Example 5.14 derivation (Cor 5.9 twice through Prop 5.2).
pub fn try_nested_default(
    kb: &KnowledgeBase,
    query: &Formula,
    cls: &Classified,
) -> Option<(Belief, Provenance)> {
    let (r_pred, c1, c2) = match query {
        Formula::Pred(p, args) => match args.as_slice() {
            [Term::Const(c1), Term::Const(c2)] => (*p, *c1, *c2),
            _ => return None,
        },
        _ => return None,
    };
    let vocab = kb.vocab();
    for s in &cls.stats {
        if s.vars.len() != 1 || s.lo != Rat::ONE || s.hi != Rat::ONE {
            continue;
        }
        let x = s.vars[0];
        // Body must be the inner default ||R(x, y) | D(y)||_y ≈ 1.
        let Formula::Cmp(
            PropExpr::Prop {
                body,
                cond: Some(d),
                vars,
            },
            op,
            rhs,
        ) = &s.body
        else {
            continue;
        };
        if vars.len() != 1 || op.tolerance().is_none() {
            continue;
        }
        let y = vars[0];
        if !matches!(rhs, PropExpr::Rat(r) if *r == Rat::ONE) {
            continue;
        }
        let Formula::Pred(bp, bargs) = body.as_ref() else {
            continue;
        };
        if *bp != r_pred || bargs.as_slice() != [Term::Var(x), Term::Var(y)] {
            continue;
        }
        let Formula::Pred(dp, dargs) = d.as_ref() else {
            continue;
        };
        if dargs.as_slice() != [Term::Var(y)] {
            continue;
        }
        // A fact entailing C(c1): some conjunct alpha-matching cond at c1.
        let cond_map: BTreeMap<VarId, usize> = [(x, 0)].into_iter().collect();
        let cond_canon = canon_conjunction(&s.cond, &cond_map);
        let syn_map: BTreeMap<VarId, usize> = [(synthetic_var(0), 0)].into_iter().collect();
        let mut c1_ok = false;
        let mut d_c2_ok = false;
        for (idx, f) in cls.conjuncts.iter().enumerate() {
            if s.sources.contains(&idx) {
                continue;
            }
            let gen1 = analysis::generalize_const(f, c1, synthetic_var(0));
            if canon_conjunction(&gen1, &syn_map) == cond_canon {
                c1_ok = true;
            }
            if let Formula::Pred(p, args) = f {
                if *p == *dp && args.as_slice() == [Term::Const(c2)] {
                    d_c2_ok = true;
                }
            }
        }
        if !c1_ok || !d_c2_ok {
            continue;
        }
        // Side conditions: R and c2 appear nowhere else.
        let mut ok = true;
        for (idx, f) in cls.conjuncts.iter().enumerate() {
            if s.sources.contains(&idx) {
                continue;
            }
            let syms = analysis::symbols(f);
            if syms.preds.contains(&r_pred) {
                ok = false;
            }
            if syms.consts.contains(&c2) {
                if let Formula::Pred(p, args) = f {
                    if *p == *dp && args.as_slice() == [Term::Const(c2)] {
                        continue;
                    }
                }
                ok = false;
            }
        }
        let _ = vocab;
        if ok {
            return Some((Belief::Point(1.0), Provenance::NestedDefault));
        }
    }
    None
}
