//! Knowledge-base classification and matching machinery for the theorem
//! engine.
//!
//! The paper's theorems are stated over KBs of particular *shapes*
//! (statistical statements, universal taxonomy facts, facts about
//! constants). This module classifies conjuncts into those shapes, provides
//! a canonical-form matcher for formulas up to bound-variable renaming and
//! conjunct reordering, and decides class subsumption/disjointness under
//! the KB's universal statements by atom-set reasoning.

use rw_logic::ast::{CmpOp, Formula, PropExpr, TolId};
use rw_logic::{analysis, ConstId, KnowledgeBase, VarId, Vocabulary};
use rw_unary::atoms::{atom_count, compile_atom_set, compile_atom_set_const};
use rw_unary::AtomSet;
use rw_util::Rat;
use std::collections::BTreeMap;

/// Synthetic variables used for generalization during matching; never
/// interned, never printed.
pub fn synthetic_var(i: usize) -> VarId {
    VarId(u32::MAX - 1 - i as u32)
}

/// A statistical statement `lo ⪯ ||body | cond||_vars ⪯ hi` (with `cond =
/// true` for unconditional proportions), merged from one or more comparison
/// conjuncts about the same proportion. Bounds are the *nominal* values
/// (the `τ → 0` limits of the comparisons).
#[derive(Clone, Debug)]
pub struct StatStatement {
    /// Indices (into the flattened conjunct list) that contributed.
    pub sources: Vec<usize>,
    pub body: Formula,
    pub cond: Formula,
    pub vars: Vec<VarId>,
    pub lo: Rat,
    pub hi: Rat,
    /// Tolerance indices used by the contributing comparisons.
    pub tols: Vec<TolId>,
}

impl StatStatement {
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }
}

/// A conjunct-level classification of a knowledge base.
pub struct Classified {
    /// Flattened conjuncts, in order.
    pub conjuncts: Vec<Formula>,
    /// Statistical statements (merged bounds).
    pub stats: Vec<StatStatement>,
    /// Flattened-conjunct indices that are part of some statistical statement.
    pub stat_sources: Vec<bool>,
    /// Universal conjuncts `∀x φ(x)` with quantifier-free unary bodies,
    /// compiled to allowed-atom sets.
    pub universals: Vec<(usize, AtomSet)>,
    /// Conjuncts recognized as `∃!x φ(x)` (desugared), with the inner body.
    pub exists_unique: Vec<(usize, Formula, VarId)>,
}

/// Extracts `(x, φ)` from the desugared `∃x (φ ∧ ∀y (φ[y/x] ⇒ y = x))`.
pub fn match_exists_unique(f: &Formula) -> Option<(VarId, Formula)> {
    if let Formula::Exists(x, body) = f {
        if let Formula::And(phi, guard) = body.as_ref() {
            if let Formula::Forall(y, imp) = guard.as_ref() {
                if let Formula::Implies(phi_y, eq) = imp.as_ref() {
                    if let Formula::TermEq(l, r) = eq.as_ref() {
                        use rw_logic::Term;
                        let ok_eq = (*l == Term::Var(*y) && *r == Term::Var(*x))
                            || (*l == Term::Var(*x) && *r == Term::Var(*y));
                        if ok_eq && analysis::alpha_eq(&analysis::rename_var(phi, *x, *y), phi_y) {
                            return Some((*x, phi.as_ref().clone()));
                        }
                    }
                }
            }
        }
    }
    None
}

/// Canonical string form of a formula: bound variables de-Bruijn-numbered,
/// free variables looked up in `free_map`, symbols printed by id. Two
/// formulas have equal canonical forms iff they are alpha-equivalent with
/// corresponding free variables.
pub fn canon(f: &Formula, free_map: &BTreeMap<VarId, usize>) -> String {
    let mut out = String::new();
    let mut bound = Vec::new();
    canon_formula(f, free_map, &mut bound, &mut out);
    out
}

fn canon_var(v: VarId, free_map: &BTreeMap<VarId, usize>, bound: &[VarId], out: &mut String) {
    for (depth, bv) in bound.iter().rev().enumerate() {
        if *bv == v {
            out.push_str(&format!("b{depth}"));
            return;
        }
    }
    if let Some(i) = free_map.get(&v) {
        out.push_str(&format!("f{i}"));
    } else {
        out.push_str(&format!("v{}", v.0));
    }
}

fn canon_term(
    t: &rw_logic::Term,
    free_map: &BTreeMap<VarId, usize>,
    bound: &[VarId],
    out: &mut String,
) {
    use rw_logic::Term;
    match t {
        Term::Var(v) => canon_var(*v, free_map, bound, out),
        Term::Const(c) => out.push_str(&format!("c{}", c.0)),
        Term::App(f, args) => {
            out.push_str(&format!("g{}(", f.0));
            for a in args {
                canon_term(a, free_map, bound, out);
                out.push(',');
            }
            out.push(')');
        }
    }
}

fn canon_formula(
    f: &Formula,
    free_map: &BTreeMap<VarId, usize>,
    bound: &mut Vec<VarId>,
    out: &mut String,
) {
    match f {
        Formula::True => out.push('T'),
        Formula::False => out.push('F'),
        Formula::Pred(p, args) => {
            out.push_str(&format!("P{}(", p.0));
            for a in args {
                canon_term(a, free_map, bound, out);
                out.push(',');
            }
            out.push(')');
        }
        Formula::TermEq(a, b) => {
            out.push_str("eq(");
            canon_term(a, free_map, bound, out);
            out.push(',');
            canon_term(b, free_map, bound, out);
            out.push(')');
        }
        Formula::Not(g) => {
            out.push_str("!(");
            canon_formula(g, free_map, bound, out);
            out.push(')');
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            out.push_str(match f {
                Formula::And(..) => "and(",
                Formula::Or(..) => "or(",
                Formula::Implies(..) => "imp(",
                _ => "iff(",
            });
            canon_formula(a, free_map, bound, out);
            out.push(',');
            canon_formula(b, free_map, bound, out);
            out.push(')');
        }
        Formula::Forall(v, g) | Formula::Exists(v, g) => {
            out.push_str(if matches!(f, Formula::Forall(..)) {
                "all("
            } else {
                "ex("
            });
            bound.push(*v);
            canon_formula(g, free_map, bound, out);
            bound.pop();
            out.push(')');
        }
        Formula::Cmp(l, op, r) => {
            out.push_str("cmp(");
            canon_prop(l, free_map, bound, out);
            out.push_str(&format!(",{op:?},"));
            canon_prop(r, free_map, bound, out);
            out.push(')');
        }
    }
}

fn canon_prop(
    e: &PropExpr,
    free_map: &BTreeMap<VarId, usize>,
    bound: &mut Vec<VarId>,
    out: &mut String,
) {
    match e {
        PropExpr::Rat(r) => out.push_str(&format!("r{r:?}")),
        PropExpr::Prop { body, cond, vars } => {
            out.push_str("prop(");
            let depth = bound.len();
            bound.extend(vars.iter().copied());
            canon_formula(body, free_map, bound, out);
            if let Some(c) = cond {
                out.push('|');
                canon_formula(c, free_map, bound, out);
            }
            bound.truncate(depth);
            out.push_str(&format!(";{})", vars.len()));
        }
        PropExpr::Add(a, b) | PropExpr::Sub(a, b) | PropExpr::Mul(a, b) => {
            out.push_str(match e {
                PropExpr::Add(..) => "add(",
                PropExpr::Sub(..) => "sub(",
                _ => "mul(",
            });
            canon_prop(a, free_map, bound, out);
            out.push(',');
            canon_prop(b, free_map, bound, out);
            out.push(')');
        }
    }
}

/// Canonical multiset form of a conjunction (order-insensitive).
pub fn canon_conjunction(f: &Formula, free_map: &BTreeMap<VarId, usize>) -> Vec<String> {
    let mut parts: Vec<String> = f.conjuncts().iter().map(|c| canon(c, free_map)).collect();
    parts.retain(|s| s != "T");
    parts.sort();
    parts
}

/// Classifies a knowledge base's flattened conjuncts.
pub fn classify(kb: &KnowledgeBase) -> Classified {
    let vocab = kb.vocab();
    let mut conjuncts = Vec::new();
    for c in kb.conjuncts() {
        for part in c.conjuncts() {
            conjuncts.push(part.clone());
        }
    }
    let mut stats_map: BTreeMap<String, StatStatement> = BTreeMap::new();
    let mut stat_sources = vec![false; conjuncts.len()];
    let mut universals = Vec::new();
    let mut exists_unique = Vec::new();

    for (idx, f) in conjuncts.iter().enumerate() {
        if let Some((v, inner)) = match_exists_unique(f) {
            exists_unique.push((idx, inner, v));
            continue;
        }
        match f {
            Formula::Forall(v, body) if vocab.pred_count() <= 16 => {
                if let Some(s) = compile_atom_set(body, *v, vocab) {
                    universals.push((idx, s));
                }
            }
            Formula::Cmp(lhs, op, rhs) => {
                if let Some((PropExpr::Prop { body, cond, vars }, bound, prop_on_left)) =
                    split_comparison(lhs, rhs)
                {
                    let free_map: BTreeMap<VarId, usize> =
                        vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
                    let cond_f = cond
                        .as_ref()
                        .map(|c| c.as_ref().clone())
                        .unwrap_or(Formula::True);
                    let key = format!(
                        "{}|{}#{}",
                        canon(body, &free_map),
                        canon_conjunction(&cond_f, &free_map).join("&"),
                        vars.len()
                    );
                    let entry = stats_map.entry(key).or_insert_with(|| StatStatement {
                        sources: Vec::new(),
                        body: body.as_ref().clone(),
                        cond: cond_f,
                        vars: vars.clone(),
                        lo: Rat::ZERO,
                        hi: Rat::ONE,
                        tols: Vec::new(),
                    });
                    entry.sources.push(idx);
                    stat_sources[idx] = true;
                    if let Some(t) = op.tolerance() {
                        entry.tols.push(t);
                    }
                    match (op, prop_on_left) {
                        (CmpOp::ApproxEq(_) | CmpOp::Eq, _) => {
                            entry.lo = entry.lo.max(bound);
                            entry.hi = entry.hi.min(bound);
                        }
                        // prop ⪯ bound: upper bound.
                        (CmpOp::ApproxLeq(_) | CmpOp::Leq, true) => {
                            entry.hi = entry.hi.min(bound);
                        }
                        // bound ⪯ prop: lower bound.
                        (CmpOp::ApproxLeq(_) | CmpOp::Leq, false) => {
                            entry.lo = entry.lo.max(bound);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Complement normalization: `||¬φ|ψ|| ∈ [lo, hi]` is the same statement
    // as `||φ|ψ|| ∈ [1-hi, 1-lo]` (defaults `A ->_i !B` must be visible as
    // statistics about `B`). Derived statements keep their sources.
    let mut stats: Vec<StatStatement> = stats_map.into_values().collect();
    let derived: Vec<StatStatement> = stats
        .iter()
        .map(|s| {
            let body = match &s.body {
                Formula::Not(inner) => inner.as_ref().clone(),
                other => Formula::not(other.clone()),
            };
            StatStatement {
                sources: s.sources.clone(),
                body,
                cond: s.cond.clone(),
                vars: s.vars.clone(),
                lo: Rat::ONE - s.hi,
                hi: Rat::ONE - s.lo,
                tols: s.tols.clone(),
            }
        })
        .collect();
    stats.extend(derived);

    Classified {
        conjuncts,
        stats,
        stat_sources,
        universals,
        exists_unique,
    }
}

/// Splits a comparison into (proportion expression, rational bound,
/// prop-on-left flag) when one side is a proportion and the other a rational.
fn split_comparison<'a>(lhs: &'a PropExpr, rhs: &'a PropExpr) -> Option<(&'a PropExpr, Rat, bool)> {
    match (lhs, rhs) {
        (p @ PropExpr::Prop { .. }, PropExpr::Rat(r)) => Some((p, *r, true)),
        (PropExpr::Rat(r), p @ PropExpr::Prop { .. }) => Some((p, *r, false)),
        _ => None,
    }
}

/// Class subsumption and disjointness under the KB's universal statements,
/// decided over the unary-atom space.
pub struct Taxonomy {
    pub atoms: usize,
    /// Atoms consistent with every (unary, quantifier-free) universal.
    pub allowed: AtomSet,
}

impl Taxonomy {
    pub fn build(classified: &Classified, vocab: &Vocabulary) -> Option<Taxonomy> {
        if vocab.pred_count() > 16 {
            return None;
        }
        let n = atom_count(vocab);
        let mut allowed = AtomSet::full(n);
        for (_, s) in &classified.universals {
            allowed = allowed.intersect(s);
        }
        Some(Taxonomy { atoms: n, allowed })
    }

    /// `KB ⊨ ∀x (a(x) ⇒ b(x))` over the unary fragment.
    pub fn entails(&self, a: &AtomSet, b: &AtomSet) -> bool {
        a.intersect(&self.allowed).subset_of(b)
    }

    /// `KB ⊨ ∀x (a(x) ⇒ ¬b(x))`.
    pub fn disjoint(&self, a: &AtomSet, b: &AtomSet) -> bool {
        a.intersect(&self.allowed).is_disjoint(b)
    }

    /// Is the class non-empty in some allowed atom?
    pub fn satisfiable(&self, a: &AtomSet) -> bool {
        !a.intersect(&self.allowed).is_empty_set()
    }
}

/// The atom set a constant is known to inhabit, from its quantifier-free
/// unary facts (other facts are ignored — sound but incomplete).
pub fn const_atom_set(classified: &Classified, c: ConstId, vocab: &Vocabulary) -> AtomSet {
    let n = atom_count(vocab);
    let mut s = AtomSet::full(n);
    for f in &classified.conjuncts {
        let consts = analysis::constants(f);
        if consts.len() == 1 && consts.contains(&c) {
            if let Some(set) = compile_atom_set_const(f, c, vocab) {
                s = s.intersect(&set);
            }
        }
    }
    s
}

/// Indices of flattened conjuncts mentioning any of the given constants.
pub fn conjuncts_mentioning(classified: &Classified, consts: &[ConstId]) -> Vec<usize> {
    classified
        .conjuncts
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            let cs = analysis::constants(f);
            consts.iter().any(|c| cs.contains(c))
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_statements_are_merged() {
        let kb = KnowledgeBase::parse(
            "0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8; ||Fly(y) | Bird(y)||_y ~=_3 1",
        )
        .unwrap();
        let c = classify(&kb);
        // 2 statements plus their complement-normalized forms.
        assert_eq!(c.stats.len(), 4);
        let chirp = c
            .stats
            .iter()
            .find(|s| s.lo == Rat::new(7, 10))
            .expect("merged interval statement");
        assert_eq!(chirp.hi, Rat::new(4, 5));
        assert_eq!(chirp.sources.len(), 2);
        let fly = c.stats.iter().find(|s| s.lo == Rat::ONE).unwrap();
        assert!(fly.is_point());
        // The complement of the chirp statement is present.
        assert!(c
            .stats
            .iter()
            .any(|s| s.lo == Rat::new(1, 5) && s.hi == Rat::new(3, 10)));
    }

    #[test]
    fn alpha_variants_share_a_key() {
        let kb = KnowledgeBase::parse(
            "0.2 <~_1 ||Hep(x) | Jaun(x)||_x; ||Hep(z) | Jaun(z)||_z <~_2 0.9",
        )
        .unwrap();
        let c = classify(&kb);
        assert_eq!(c.stats.len(), 2); // statement + complement
        assert_eq!(c.stats[0].lo, Rat::new(1, 5));
        assert_eq!(c.stats[0].hi, Rat::new(9, 10));
    }

    #[test]
    fn universals_compile_to_atom_sets() {
        let kb = KnowledgeBase::parse("forall x (Penguin(x) => Bird(x)); Penguin(Tweety)").unwrap();
        let c = classify(&kb);
        assert_eq!(c.universals.len(), 1);
        let tax = Taxonomy::build(&c, kb.vocab()).unwrap();
        // Penguin ⊆ Bird must be entailed.
        let mut kb2 = kb.clone();
        let peng = kb2.parse_query("Penguin(x)").unwrap();
        let bird = kb2.parse_query("Bird(x)").unwrap();
        let xv = kb2.vocab_mut().var("x");
        let sp = compile_atom_set(&peng, xv, kb2.vocab()).unwrap();
        let sb = compile_atom_set(&bird, xv, kb2.vocab()).unwrap();
        assert!(tax.entails(&sp, &sb));
        assert!(!tax.entails(&sb, &sp));
        assert!(!tax.disjoint(&sp, &sb));
    }

    #[test]
    fn exists_unique_recognized() {
        let kb = KnowledgeBase::parse("exists! x (Quaker(x) & Republican(x))").unwrap();
        let c = classify(&kb);
        assert_eq!(c.exists_unique.len(), 1);
        assert!(matches!(c.exists_unique[0].1, Formula::And(..)));
    }

    #[test]
    fn const_atom_sets_from_facts() {
        let kb = KnowledgeBase::parse("Jaun(Eric); Fever(Eric); ||Hep(x) | Jaun(x)||_x ~=_1 0.8")
            .unwrap();
        let c = classify(&kb);
        let eric = kb.vocab().lookup_const("Eric").unwrap();
        let s = const_atom_set(&c, eric, kb.vocab());
        // Interning order: Jaun = bit 0, Fever = bit 1, Hep = bit 2; the
        // facts fix bits 0 and 1.
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0b011, 0b111]);
    }

    #[test]
    fn canon_distinguishes_and_identifies() {
        let mut kb = KnowledgeBase::parse("true").unwrap();
        let a = kb.parse_query("forall x (P(x) => Q(x))").unwrap();
        let b = kb.parse_query("forall y (P(y) => Q(y))").unwrap();
        let c = kb.parse_query("forall y (Q(y) => P(y))").unwrap();
        let empty = BTreeMap::new();
        assert_eq!(canon(&a, &empty), canon(&b, &empty));
        assert_ne!(canon(&a, &empty), canon(&c, &empty));
    }

    #[test]
    fn conjunction_multisets_ignore_order() {
        let mut kb = KnowledgeBase::parse("true").unwrap();
        let a = kb.parse_query("P(C) & Q(C) & R(C)").unwrap();
        let b = kb.parse_query("R(C) & P(C) & Q(C)").unwrap();
        let empty = BTreeMap::new();
        assert_eq!(canon_conjunction(&a, &empty), canon_conjunction(&b, &empty));
    }
}
