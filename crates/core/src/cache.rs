//! A sharded, thread-safe cache of answered queries, keyed by canonical
//! query form and knowledge-base fingerprint.
//!
//! "Random Worlds and Maximum Entropy" (Grove–Halpern–Koller) shows that
//! many distinct surface queries collapse to the same canonical
//! subproblem, so a serving path that normalizes before solving gets
//! reuse far beyond exact string repeats. The key is built from
//! [`rw_logic::canon`]: the canonical form identifies a query up to
//! commutation/reassociation/duplication of `&`/`or`, double negation,
//! alpha-renaming and symbol-interning order — every rewrite preserving
//! the degree of belief — and the KB fingerprint pins the knowledge base
//! the answer was computed against.
//!
//! Storage is sharded ([`AnswerCache::with_shards`]): each shard is a
//! small `Mutex<HashMap>`, so concurrent batch workers contend on
//! (1/shards) of the map instead of one global lock, and hits produced
//! by one worker are immediately visible to the others. Hit/miss
//! counters are lock-free atomics.
//!
//! What is cached is the *semantic* answer — [`Belief`] plus
//! [`Provenance`] — never the per-query [`crate::Trace`] (a cache hit
//! gets a one-step `cache` trace instead, and sets
//! [`crate::Response::cached`]).

use crate::belief::{Belief, Provenance};
use rw_logic::canon::fnv1a;
use rw_worlds::ScaledCount;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached semantic answer: what a [`crate::Response`] carries minus the
/// per-run trace.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedAnswer {
    /// The degree of belief.
    pub belief: Belief,
    /// The method that originally produced it.
    pub provenance: Provenance,
}

impl CachedAnswer {
    /// The cacheable part of a [`crate::Response`].
    pub fn of(response: &crate::Response) -> CachedAnswer {
        CachedAnswer {
            belief: response.belief.clone(),
            provenance: response.provenance.clone(),
        }
    }
}

/// A sharded map from `(KB fingerprint, canonical query)` to answers,
/// safe to share across batch workers (and across whole batches: a warm
/// cache keeps its entries).
///
/// ```
/// use rw_core::cache::{AnswerCache, CachedAnswer};
/// use rw_core::{Belief, Provenance};
///
/// let cache = AnswerCache::new();
/// let key = AnswerCache::key(0xfeed, "P:Hep(c:Eric)");
/// assert!(cache.get(&key).is_none());
/// cache.insert(key.clone(), CachedAnswer {
///     belief: Belief::Point(0.8),
///     provenance: Provenance::DirectInference,
/// });
/// assert_eq!(cache.get(&key).unwrap().belief, Belief::Point(0.8));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug)]
pub struct AnswerCache {
    shards: Vec<Mutex<HashMap<String, CachedAnswer>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnswerCache {
    /// A cache with the default shard count (16: enough that a typical
    /// worker pool rarely collides on a shard lock).
    pub fn new() -> AnswerCache {
        AnswerCache::with_shards(16)
    }

    /// A cache with an explicit shard count (minimum 1).
    pub fn with_shards(n: usize) -> AnswerCache {
        let n = n.max(1);
        AnswerCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Builds the cache key for a canonical query against a fingerprinted
    /// KB (see [`rw_logic::canon::canonical_formula`] and
    /// [`rw_logic::canon::kb_fingerprint`]).
    pub fn key(kb_fingerprint: u64, canonical_query: &str) -> String {
        format!("{kb_fingerprint:016x}|{canonical_query}")
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, CachedAnswer>> {
        let i = (fnv1a(key.as_bytes()) as usize) % self.shards.len();
        &self.shards[i]
    }

    /// Looks up a key, counting the outcome in [`Self::hits`] /
    /// [`Self::misses`].
    pub fn get(&self, key: &str) -> Option<CachedAnswer> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores an answer. Concurrent inserts of the same key are benign:
    /// both workers computed the same semantic answer.
    pub fn insert(&self, key: String, answer: CachedAnswer) {
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, answer);
    }

    /// Lookups that found an entry, since construction or [`Self::clear`].
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The number of shards the cache was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of cached answers across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every cached entry, cloned out and sorted by key — the stable
    /// iteration order snapshot files are written in. Does not count as
    /// lookups.
    pub fn export(&self) -> Vec<(String, CachedAnswer)> {
        let mut out: Vec<(String, CachedAnswer)> = Vec::with_capacity(self.len());
        for s in &self.shards {
            let shard = s.lock().expect("cache shard poisoned");
            out.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Bulk-inserts entries restored from a snapshot. Hit/miss counters
    /// are untouched: a reload is not a lookup, and the first real query
    /// against a restored entry must still count as a hit.
    pub fn restore(&self, entries: Vec<(String, CachedAnswer)>) {
        for (key, answer) in entries {
            self.insert(key, answer);
        }
    }

    /// Drops every entry and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Default for AnswerCache {
    fn default() -> AnswerCache {
        AnswerCache::new()
    }
}

/// The key of one denominator entry: which world count it is.
///
/// `#worlds_N^τ(KB)` is a pure function of the knowledge base *content*
/// (its canonical fingerprint), the **vocabulary shape** (each interned
/// symbol contributes slots whether or not the KB mentions it — queries
/// interning fresh constants grow the space by a factor of `N` each),
/// the domain size and the tolerance. Engine configuration is
/// deliberately absent: budgets decide whether a count *finishes*, never
/// what it equals, so every engine sharing a cache agrees on the value.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct DenomKey {
    /// [`rw_logic::canon::kb_fingerprint`] of the knowledge base.
    pub kb_fingerprint: u64,
    /// A fingerprint of the vocabulary shape (predicate/function arities
    /// in interning order plus the constant count).
    pub vocab_fingerprint: u64,
    /// The domain size `N`.
    pub n: usize,
    /// The uniform tolerance `τ` as `(numerator, denominator)`.
    pub tau: (i128, i128),
    /// The visited-node budget the count ran under. The *value* of a
    /// count is budget-independent, but whether it **finishes** is not —
    /// and the counting stage's domain-size scan reacts to failures. A
    /// budget-free key would let an entry computed under a large budget
    /// rescue a smaller-budget engine's scan past where a cold run
    /// stops, making answers depend on cache warmth. Keyed by budget, a
    /// hit only ever replaces a count that would have succeeded anyway.
    pub budget: u64,
    /// Whether the count came from the symmetry-reduced orbit counter.
    /// Both modes compute the same exact number when both finish, but
    /// their budget units differ (visited search nodes vs orbit
    /// representatives), so the same budget value means different
    /// reachability — keeping the modes keyed apart preserves the
    /// warmth-independence argument above.
    pub symmetry: bool,
}

/// A small shared cache of `#worlds_N^τ(KB)` denominator counts.
///
/// Definition 4.2 divides every query's numerator by the *same*
/// denominator; a τ-diagonal sweep answering many queries against one KB
/// recomputes it per query unless cached. Only **successful** counts are
/// stored (a count that fit one budget is valid under every budget), so
/// a hit can change how fast an answer arrives but never what it is.
/// Values are [`ScaledCount`]s because symmetry-reduced counts routinely
/// exceed `u128`; plain branch-and-count entries store their `u128`
/// exactly. Hit/miss counters are lock-free atomics, surfaced by the
/// server's `stats` op alongside the [`AnswerCache`]'s.
///
/// ```
/// use rw_core::cache::{DenomCache, DenomKey};
/// use rw_worlds::ScaledCount;
///
/// let cache = DenomCache::new();
/// let key = DenomKey {
///     kb_fingerprint: 0xfeed,
///     vocab_fingerprint: 0xbee,
///     n: 4,
///     tau: (1, 4),
///     budget: 1 << 24,
///     symmetry: false,
/// };
/// assert_eq!(cache.get(&key), None);
/// cache.insert(key.clone(), ScaledCount::from_u128(196_608));
/// assert_eq!(cache.get(&key).unwrap().exact(), Some(196_608));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct DenomCache {
    entries: Mutex<HashMap<DenomKey, ScaledCount>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DenomCache {
    /// An empty denominator cache.
    pub fn new() -> DenomCache {
        DenomCache::default()
    }

    /// Looks up a cached world count, counting the outcome in
    /// [`Self::hits`] / [`Self::misses`] (mirrored into the global
    /// metrics registry as `cache.denom.hits` / `cache.denom.misses`,
    /// with probe latency under `cache.denom.lookup_us`).
    pub fn get(&self, key: &DenomKey) -> Option<ScaledCount> {
        let start = std::time::Instant::now();
        let found = self
            .entries
            .lock()
            .expect("denominator cache poisoned")
            .get(key)
            .copied();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        if rw_obs::enabled() {
            let reg = rw_obs::registry();
            reg.histogram("cache.denom.lookup_us")
                .record_us(start.elapsed().as_micros() as u64);
            reg.counter(if found.is_some() {
                "cache.denom.hits"
            } else {
                "cache.denom.misses"
            })
            .inc();
        }
        found
    }

    /// Stores a successfully computed world count. Concurrent inserts of
    /// one key are benign: exact counting is deterministic.
    pub fn insert(&self, key: DenomKey, count: ScaledCount) {
        self.entries
            .lock()
            .expect("denominator cache poisoned")
            .insert(key, count);
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Every cached count, cloned out in a stable key order (snapshot
    /// files are diffable across saves). Does not count as lookups.
    pub fn export(&self) -> Vec<(DenomKey, ScaledCount)> {
        let entries = self.entries.lock().expect("denominator cache poisoned");
        let mut out: Vec<(DenomKey, ScaledCount)> =
            entries.iter().map(|(k, v)| (k.clone(), *v)).collect();
        drop(entries);
        out.sort_by_key(|(k, _)| {
            (
                k.kb_fingerprint,
                k.vocab_fingerprint,
                k.n,
                k.tau,
                k.budget,
                k.symmetry,
            )
        });
        out
    }

    /// Bulk-inserts counts restored from a snapshot, without touching
    /// the hit/miss counters.
    pub fn restore(&self, entries: Vec<(DenomKey, ScaledCount)>) {
        for (key, count) in entries {
            self.insert(key, count);
        }
    }

    /// Number of cached denominators.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("denominator cache poisoned")
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(v: f64) -> CachedAnswer {
        CachedAnswer {
            belief: Belief::Point(v),
            provenance: Provenance::DirectInference,
        }
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = AnswerCache::new();
        let k = AnswerCache::key(1, "q");
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), answer(0.5));
        assert_eq!(cache.get(&k), Some(answer(0.5)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_kb_fingerprints_do_not_collide() {
        let cache = AnswerCache::new();
        cache.insert(AnswerCache::key(1, "q"), answer(0.25));
        cache.insert(AnswerCache::key(2, "q"), answer(0.75));
        assert_eq!(
            cache.get(&AnswerCache::key(1, "q")).unwrap().belief,
            Belief::Point(0.25)
        );
        assert_eq!(
            cache.get(&AnswerCache::key(2, "q")).unwrap().belief,
            Belief::Point(0.75)
        );
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = AnswerCache::with_shards(4);
        let k = AnswerCache::key(9, "x");
        cache.insert(k.clone(), answer(1.0));
        let _ = cache.get(&k);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn shard_floor_is_one() {
        let cache = AnswerCache::with_shards(0);
        cache.insert(AnswerCache::key(0, "q"), answer(0.0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn denom_cache_counts_lookups_and_keys_modes_apart() {
        let cache = DenomCache::new();
        let key = DenomKey {
            kb_fingerprint: 1,
            vocab_fingerprint: 2,
            n: 4,
            tau: (1, 16),
            budget: 1 << 24,
            symmetry: false,
        };
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), ScaledCount::from_u128(42));
        assert_eq!(cache.get(&key).unwrap().exact(), Some(42));
        // The symmetry-mode twin of the same point is a distinct entry.
        let sym_key = DenomKey {
            symmetry: true,
            ..key.clone()
        };
        assert_eq!(cache.get(&sym_key), None);
        cache.insert(sym_key.clone(), ScaledCount::new(3, 200));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&sym_key), Some(ScaledCount::new(3, 200)));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn export_is_sorted_and_restore_rebuilds_without_counting() {
        let cache = AnswerCache::with_shards(4);
        cache.insert(AnswerCache::key(2, "zz"), answer(0.2));
        cache.insert(AnswerCache::key(1, "aa"), answer(0.1));
        let exported = cache.export();
        let keys: Vec<&str> = exported.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let fresh = AnswerCache::new();
        fresh.restore(exported.clone());
        assert_eq!(fresh.export(), exported);
        // Restoring is not a lookup: counters start cold.
        assert_eq!((fresh.hits(), fresh.misses()), (0, 0));

        let denoms = DenomCache::new();
        let key = DenomKey {
            kb_fingerprint: 7,
            vocab_fingerprint: 8,
            n: 3,
            tau: (1, 8),
            budget: 1 << 20,
            symmetry: true,
        };
        denoms.insert(key.clone(), ScaledCount::new(5, 100));
        let fresh = DenomCache::new();
        fresh.restore(denoms.export());
        assert_eq!(fresh.get(&key), Some(ScaledCount::new(5, 100)));
    }

    #[test]
    fn concurrent_workers_share_entries() {
        let cache = AnswerCache::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50 {
                        let k = AnswerCache::key(i % 8, "shared");
                        if cache.get(&k).is_none() {
                            cache.insert(k, answer(t as f64));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.hits() + cache.misses(), 200);
    }
}
