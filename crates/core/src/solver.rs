//! The composable inference pipeline: [`Solver`], per-stage [`Budget`]s,
//! and the per-query [`Trace`] that records what every stage did.
//!
//! The random-worlds method is a *cascade*: cheap exact theorems first,
//! then maximum entropy, then finite-`N` counting. Rather than hard-coding
//! that order, [`crate::RandomWorlds`] runs an ordered list of [`Stage`]s;
//! each stage wraps a [`Solver`] and the resource [`Budget`] it may spend.
//! A stage either answers, declines (the method does not apply), or
//! reports budget exhaustion — and the engine keeps the per-stage record
//! in the [`Trace`] attached to every [`crate::Response`], so callers can
//! always see *why* an answer came from the stage it did.

use crate::belief::{Belief, Provenance};
use rw_logic::ast::Formula;
use rw_logic::KnowledgeBase;
use rw_util::Rat;
use std::fmt;
use std::time::Duration;

/// Resource limits for one pipeline stage.
///
/// The single knob is a count cap, interpreted by the stage that spends
/// it: atom *profiles* for exact unary counting, *worlds* for brute-force
/// enumeration. Theorem and maxent stages do no open-ended counting and
/// ignore it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Cap on the stage's dominant enumeration count.
    pub max_count: u128,
}

impl Budget {
    /// No limit.
    pub const UNLIMITED: Budget = Budget {
        max_count: u128::MAX,
    };

    /// A budget capping the stage's enumeration at `max_count` items.
    pub fn counting(max_count: u128) -> Budget {
        Budget { max_count }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::UNLIMITED
    }
}

/// A recursion handle into the full pipeline.
///
/// Some theorems decompose a query and solve the pieces with the *whole*
/// engine again (vocabulary independence, Thm 5.27; nested defaults,
/// Ex 5.14). The pipeline passes this callback to every stage so custom
/// solvers can do the same.
pub type Recurse<'a> = dyn Fn(&KnowledgeBase, &Formula) -> Option<(Belief, Provenance)> + 'a;

/// What one stage did with a query.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverOutcome {
    /// The stage produced a degree of belief.
    Answered {
        /// The degree of belief.
        belief: Belief,
        /// The method that produced it.
        provenance: Provenance,
    },
    /// The stage's method does not apply to this KB/query pair.
    Declined {
        /// Why the stage does not apply.
        reason: String,
    },
    /// The stage's method would apply, but its [`Budget`] ran out.
    BudgetExhausted {
        /// What was exhausted.
        reason: String,
    },
}

/// One inference method in the pipeline.
///
/// Implementations must be *sound*: an `Answered` outcome is a claim that
/// the returned belief is the random-worlds degree of belief
/// `Pr∞(query | KB)` (or an interval/non-robust classification thereof).
/// Anything a solver cannot justify should be a `Declined`.
///
/// `Send + Sync` is required so a configured engine can be shared across
/// serving threads.
pub trait Solver: Send + Sync {
    /// A short, stable, lowercase identifier (used in traces and JSON).
    fn name(&self) -> &str;

    /// Attempts the query, spending at most `budget`. `recurse` re-enters
    /// the full pipeline for decomposed sub-queries.
    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        recurse: &Recurse<'_>,
    ) -> SolverOutcome;
}

/// A solver plus the budget it may spend: one slot of the pipeline.
pub struct Stage {
    /// The inference method.
    pub solver: Box<dyn Solver>,
    /// The method's resource cap.
    pub budget: Budget,
}

impl Stage {
    /// A stage with an unlimited budget.
    pub fn new(solver: Box<dyn Solver>) -> Stage {
        Stage {
            solver,
            budget: Budget::UNLIMITED,
        }
    }

    /// A stage with an explicit budget.
    pub fn budgeted(solver: Box<dyn Solver>, budget: Budget) -> Stage {
        Stage { solver, budget }
    }
}

impl fmt::Debug for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stage")
            .field("solver", &self.solver.name())
            .field("budget", &self.budget)
            .finish()
    }
}

/// How a stage concluded, as recorded in a [`Trace`].
#[derive(Clone, Debug, PartialEq)]
pub enum StageStatus {
    /// The stage answered the query.
    Answered,
    /// The stage declined, with its reason.
    Declined(String),
    /// The stage ran out of budget, with what was exhausted.
    BudgetExhausted(String),
}

impl StageStatus {
    /// The status keyword (`answered` / `declined` / `budget-exhausted`).
    pub fn keyword(&self) -> &'static str {
        match self {
            StageStatus::Answered => "answered",
            StageStatus::Declined(_) => "declined",
            StageStatus::BudgetExhausted(_) => "budget-exhausted",
        }
    }

    /// The reason string, if the stage did not answer.
    pub fn reason(&self) -> Option<&str> {
        match self {
            StageStatus::Answered => None,
            StageStatus::Declined(r) | StageStatus::BudgetExhausted(r) => Some(r),
        }
    }
}

/// One stage's record in a query's [`Trace`].
#[derive(Clone, Debug, PartialEq)]
pub struct StageTrace {
    /// The stage's [`Solver::name`].
    pub stage: String,
    /// How the stage concluded.
    pub status: StageStatus,
    /// Wall-clock time the stage spent.
    pub elapsed: Duration,
}

/// The per-stage record of one query's trip through the pipeline.
///
/// Every [`crate::Response`] carries a non-empty trace; the last entry is
/// always the stage that answered. [`crate::EngineError::OutOfReach`]
/// carries one too, so "no engine applicable" is diagnosable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    steps: Vec<StageTrace>,
}

impl Trace {
    /// Appends one stage record.
    pub fn push(&mut self, stage: &str, status: StageStatus, elapsed: Duration) {
        self.steps.push(StageTrace {
            stage: stage.to_string(),
            status,
            elapsed,
        });
    }

    /// The recorded stages, in execution order.
    pub fn steps(&self) -> &[StageTrace] {
        &self.steps
    }

    /// True when no stage has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The record for a named stage, if that stage ran.
    pub fn stage(&self, name: &str) -> Option<&StageTrace> {
        self.steps.iter().find(|s| s.stage == name)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{} {}", s.stage, s.status.keyword())?;
            if let Some(r) = s.status.reason() {
                write!(f, " ({r})")?;
            }
        }
        Ok(())
    }
}

/// The `(τ_k, N_k)` diagonal along which the finite-`N` stages evaluate
/// `Pr_N^τ` before extrapolating to the Definition 4.3 double limit.
///
/// Theorems 4.4/4.5 take `τ⃗ → 0` *after* `N → ∞`; a practical engine
/// walks a diagonal where the tolerance shrinks while the domain grows,
/// then extrapolates. Points must therefore be ordered with strictly
/// shrinking `τ` and strictly growing `N`.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagonal {
    points: Vec<(Rat, usize)>,
}

impl Diagonal {
    /// A diagonal from explicit `(τ, N)` points. Must be non-empty, with
    /// strictly shrinking `τ` and strictly growing `N` — the ordering the
    /// finite-`N` stages' extrapolation relies on.
    pub fn new(points: Vec<(Rat, usize)>) -> Diagonal {
        assert!(!points.is_empty(), "a Diagonal needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[1].0 < w[0].0 && w[1].1 > w[0].1,
                "Diagonal points must have strictly shrinking τ and strictly growing N, got {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        Diagonal { points }
    }

    /// The standard construction: `steps` points starting at `(τ0, n0)`,
    /// halving the tolerance and doubling the domain each step — the
    /// geometric schedule Richardson extrapolation assumes.
    pub fn geometric(tau0: Rat, n0: usize, steps: usize) -> Diagonal {
        assert!(steps > 0, "a Diagonal needs at least one point");
        let mut points = Vec::with_capacity(steps);
        let mut tau = tau0;
        let mut n = n0;
        for _ in 0..steps {
            points.push((tau, n));
            tau = tau * Rat::new(1, 2);
            n *= 2;
        }
        // Through `new` so degenerate arguments (τ0 = 0, n0 = 0) hit the
        // invariant check instead of silently building a bad diagonal.
        Diagonal::new(points)
    }

    /// The `(τ, N)` points, in sweep order.
    pub fn points(&self) -> &[(Rat, usize)] {
        &self.points
    }

    /// The smallest tolerance on the diagonal.
    pub fn finest_tau(&self) -> Rat {
        self.points
            .iter()
            .map(|(t, _)| *t)
            .min()
            .expect("Diagonal is non-empty by construction")
    }
}

impl Default for Diagonal {
    /// `(1/4, 8), (1/8, 16), (1/16, 32)`: three points keep the exact
    /// unary sweep under tens of millions of profiles for small KBs.
    fn default() -> Diagonal {
        Diagonal::geometric(Rat::new(1, 4), 8, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_diagonal_halves_tau_and_doubles_n() {
        let d = Diagonal::geometric(Rat::new(1, 4), 8, 3);
        assert_eq!(
            d.points(),
            &[
                (Rat::new(1, 4), 8),
                (Rat::new(1, 8), 16),
                (Rat::new(1, 16), 32)
            ]
        );
        assert_eq!(d.finest_tau(), Rat::new(1, 16));
        assert_eq!(d, Diagonal::default());
    }

    #[test]
    fn trace_records_and_finds_stages() {
        let mut t = Trace::default();
        assert!(t.is_empty());
        t.push("a", StageStatus::Declined("nope".into()), Duration::ZERO);
        t.push("b", StageStatus::Answered, Duration::ZERO);
        assert_eq!(t.steps().len(), 2);
        assert_eq!(t.stage("a").unwrap().status.reason(), Some("nope"));
        assert_eq!(t.stage("b").unwrap().status, StageStatus::Answered);
        assert!(t.stage("c").is_none());
        let shown = t.to_string();
        assert!(shown.contains("a declined (nope)"), "{shown}");
        assert!(shown.contains("b answered"), "{shown}");
    }

    #[test]
    fn explicit_diagonals_accept_valid_orderings() {
        let d = Diagonal::new(vec![(Rat::new(1, 3), 5), (Rat::new(1, 9), 10)]);
        assert_eq!(d.finest_tau(), Rat::new(1, 9));
    }

    #[test]
    #[should_panic(expected = "strictly shrinking")]
    fn reversed_diagonals_are_rejected() {
        let _ = Diagonal::new(vec![(Rat::new(1, 16), 32), (Rat::new(1, 4), 8)]);
    }

    #[test]
    fn budget_constructors() {
        assert_eq!(Budget::default(), Budget::UNLIMITED);
        assert_eq!(Budget::counting(10).max_count, 10);
    }
}
