//! Parallel sharded batch answering with an aggregate [`BatchReport`].
//!
//! The direct-inference pipeline is embarrassingly parallel across
//! queries: each query walks the stage cascade independently against one
//! shared, immutable [`KnowledgeBase`]. This module shards a batch across
//! a std-only worker pool (`std::thread::scope` plus an atomic work
//! index — no external dependencies, consistent with the offline
//! workspace) while keeping the output **deterministic**: results land in
//! input order regardless of which worker answered which query, and a
//! worker picking up query *i* always computes exactly what the
//! sequential path would.
//!
//! Workers can share an [`AnswerCache`] (the engine's installed cache, or
//! one passed per batch in [`BatchOptions::cache`]): the cache's sharded
//! interior mutability means a hit produced by one worker is immediately
//! visible to the rest, so duplicate and syntactically-variant queries
//! are answered once per batch instead of once per occurrence.
//!
//! Each worker aggregates the [`Trace`]s of the queries it answered into
//! per-stage totals; the totals are merged into the returned
//! [`BatchReport`] along with wall/CPU time and cache-hit counts.

use crate::cache::AnswerCache;
use crate::engine::{CacheCtx, EngineError, RandomWorlds, Response};
use crate::solver::{StageStatus, Trace};
use rw_logic::canon;
use rw_logic::KnowledgeBase;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a batch should be executed.
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads: `0` means one per available core, `1` (the
    /// default) runs inline on the calling thread.
    pub threads: usize,
    /// A cache for this batch. `None` falls back to the engine's
    /// installed cache ([`RandomWorlds::with_cache`]); to run a batch
    /// uncached on a cache-carrying engine, pass a fresh throwaway cache.
    pub cache: Option<Arc<AnswerCache>>,
}

impl BatchOptions {
    /// Sequential execution, no per-batch cache override.
    pub fn sequential() -> BatchOptions {
        BatchOptions::default()
    }

    /// `threads` workers (0 = one per core), no per-batch cache override.
    pub fn threaded(threads: usize) -> BatchOptions {
        BatchOptions {
            threads,
            ..BatchOptions::default()
        }
    }

    /// Replaces the batch's cache.
    pub fn with_cache(mut self, cache: Arc<AnswerCache>) -> BatchOptions {
        self.cache = Some(cache);
        self
    }
}

/// Aggregate per-stage totals across a whole batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// The stage name (a [`crate::Solver::name`], or `cache`).
    pub stage: String,
    /// Queries this stage answered.
    pub answered: usize,
    /// Queries this stage declined.
    pub declined: usize,
    /// Queries on which this stage exhausted its budget.
    pub budget_exhausted: usize,
    /// Total wall-clock time spent in this stage across the batch.
    pub elapsed: Duration,
}

impl StageTotals {
    /// Folds one query's [`Trace`] into a running totals list, appending
    /// slots for stages not seen before. Shared by the batch executor's
    /// per-worker shards and long-lived serving loops (`rw-server`) that
    /// aggregate per-stage totals across their whole lifetime.
    pub fn absorb(totals: &mut Vec<StageTotals>, trace: &Trace) {
        for step in trace.steps() {
            let slot = match totals.iter_mut().find(|t| t.stage == step.stage) {
                Some(slot) => slot,
                None => {
                    totals.push(StageTotals {
                        stage: step.stage.clone(),
                        ..StageTotals::default()
                    });
                    totals.last_mut().expect("just pushed")
                }
            };
            match step.status {
                StageStatus::Answered => slot.answered += 1,
                StageStatus::Declined(_) => slot.declined += 1,
                StageStatus::BudgetExhausted(_) => slot.budget_exhausted += 1,
            }
            slot.elapsed += step.elapsed;
        }
    }

    /// Folds the trace carried by a query result — success traces and
    /// out-of-reach traces both feed the totals; parse errors never
    /// entered the pipeline, so they contribute nothing.
    pub fn absorb_result(totals: &mut Vec<StageTotals>, result: &Result<Response, EngineError>) {
        match result {
            Ok(r) => StageTotals::absorb(totals, &r.trace),
            Err(EngineError::OutOfReach { trace, .. }) => StageTotals::absorb(totals, trace),
            Err(EngineError::Parse(_)) => {}
        }
    }
}

/// What a batch run did, in aggregate.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Queries submitted.
    pub queries: usize,
    /// Queries answered successfully.
    pub answered: usize,
    /// Queries that failed (parse error or out of reach).
    pub failed: usize,
    /// Answered queries served from the cache.
    pub cache_hits: usize,
    /// Queries that consulted a cache and missed (computed by the
    /// pipeline; parse errors never reach the cache and count in
    /// neither column). Zero when the batch ran uncached.
    pub cache_misses: usize,
    /// `#worlds` denominator-cache hits during this batch (the engine's
    /// [`crate::DenomCache`] counters, sampled around the run).
    pub denom_hits: u64,
    /// `#worlds` denominator-cache misses during this batch.
    pub denom_misses: u64,
    /// Worker threads actually used.
    pub threads: usize,
    /// End-to-end wall-clock time for the batch.
    pub wall: Duration,
    /// Summed per-query answer time across all workers (≈ CPU time; with
    /// `threads` workers saturated, `cpu / wall ≈ threads`).
    pub cpu: Duration,
    /// Per-stage totals, in pipeline order (`cache` first when present).
    pub stages: Vec<StageTotals>,
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries ({} answered, {} failed, {} cache hits) on {} thread(s) in {:?} wall / {:?} cpu",
            self.queries, self.answered, self.failed, self.cache_hits, self.threads, self.wall, self.cpu
        )
    }
}

/// A batch's per-query results (input order) plus the aggregate report.
#[derive(Debug)]
pub struct BatchRun {
    /// One result per input query, in input order.
    pub results: Vec<Result<Response, EngineError>>,
    /// The aggregate report.
    pub report: BatchReport,
}

/// Per-worker accumulator: results with their input indices, plus the
/// worker's share of the stage totals and CPU time.
struct WorkerShard {
    results: Vec<(usize, Result<Response, EngineError>)>,
    stages: Vec<StageTotals>,
    cpu: Duration,
}

impl WorkerShard {
    fn new(template: &[StageTotals]) -> WorkerShard {
        WorkerShard {
            results: Vec::new(),
            stages: template.to_vec(),
            cpu: Duration::ZERO,
        }
    }

    fn record(&mut self, idx: usize, result: Result<Response, EngineError>, elapsed: Duration) {
        self.cpu += elapsed;
        // Both success traces and out-of-reach traces feed the totals; a
        // custom solver outside the template (e.g. a name introduced by a
        // recursing stage) gets a slot appended on demand.
        StageTotals::absorb_result(&mut self.stages, &result);
        self.results.push((idx, result));
    }
}

impl RandomWorlds {
    /// Answers a batch of queries, optionally in parallel and through a
    /// shared answer cache, returning per-query results in input order
    /// plus a [`BatchReport`].
    ///
    /// Determinism: every result is byte-for-byte what the sequential
    /// [`Self::answer_batch`] path would produce (up to recorded wall
    /// times), regardless of thread count — workers only race on *who*
    /// answers a query, never on what the answer is. With a cache the
    /// set of `cached` flags may vary between runs (whichever occurrence
    /// of a duplicate lands first computes it), but the beliefs are the
    /// same either way because only semantic answers are cached.
    ///
    /// ```
    /// use rw_core::{batch::BatchOptions, cache::AnswerCache, RandomWorlds};
    /// use rw_logic::KnowledgeBase;
    /// use std::sync::Arc;
    ///
    /// let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
    /// let queries = ["Hep(Eric)", "Jaun(Eric) & Hep(Eric)", "Hep(Eric) & Jaun(Eric)"];
    /// let opts = BatchOptions::threaded(2).with_cache(Arc::new(AnswerCache::new()));
    /// let engine = RandomWorlds::new();
    ///
    /// let cold = engine.answer_batch_report(&kb, &queries, &opts);
    /// assert_eq!(cold.report.answered, 3);
    /// // The commuted conjunctions share one canonical form, so a warm
    /// // rerun is answered entirely from the cache...
    /// let warm = engine.answer_batch_report(&kb, &queries, &opts);
    /// assert_eq!(warm.report.cache_hits, 3);
    /// // ...with the same beliefs.
    /// for (c, w) in cold.results.iter().zip(&warm.results) {
    ///     assert_eq!(c.as_ref().unwrap().belief, w.as_ref().unwrap().belief);
    /// }
    /// ```
    pub fn answer_batch_report<S: AsRef<str> + Sync>(
        &self,
        kb: &KnowledgeBase,
        queries: &[S],
        opts: &BatchOptions,
    ) -> BatchRun {
        let start = Instant::now();
        let denoms_before = (self.denom_cache().hits(), self.denom_cache().misses());
        let stages = self.effective_stages();
        // Per-batch cache override, else the engine's installed cache.
        let cache = opts.cache.as_deref().or(self.cache().map(Arc::as_ref));
        let ctx = cache.map(|cache| CacheCtx {
            cache,
            key_prefix: self.key_prefix(canon::kb_fingerprint(kb), &stages),
        });
        let threads = match opts.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
        .min(queries.len())
        .max(1);

        // Stage-total template in pipeline order, `cache` slot first so
        // the report reads front-to-back like a query does.
        let mut template: Vec<StageTotals> = Vec::with_capacity(stages.len() + 1);
        if ctx.is_some() {
            template.push(StageTotals {
                stage: "cache".to_string(),
                ..StageTotals::default()
            });
        }
        template.extend(stages.iter().map(|s| StageTotals {
            stage: s.solver.name().to_string(),
            ..StageTotals::default()
        }));

        let shards = if threads == 1 {
            let mut shard = WorkerShard::new(&template);
            for (i, q) in queries.iter().enumerate() {
                let t = Instant::now();
                let r = self.answer_with(&stages, kb, q.as_ref(), ctx.as_ref());
                shard.record(i, r, t.elapsed());
            }
            vec![shard]
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let stages = &stages;
                        let ctx = ctx.as_ref();
                        let next = &next;
                        let template = &template;
                        scope.spawn(move || {
                            let mut shard = WorkerShard::new(template);
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(q) = queries.get(i) else { break };
                                let t = Instant::now();
                                let r = self.answer_with(stages, kb, q.as_ref(), ctx);
                                shard.record(i, r, t.elapsed());
                            }
                            shard
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect::<Vec<_>>()
            })
        };

        // Merge: results back into input order, shard totals summed.
        let mut slots: Vec<Option<Result<Response, EngineError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut totals = template;
        let mut cpu = Duration::ZERO;
        for shard in shards {
            cpu += shard.cpu;
            for (i, r) in shard.results {
                slots[i] = Some(r);
            }
            for st in shard.stages {
                match totals.iter_mut().find(|t| t.stage == st.stage) {
                    Some(t) => {
                        t.answered += st.answered;
                        t.declined += st.declined;
                        t.budget_exhausted += st.budget_exhausted;
                        t.elapsed += st.elapsed;
                    }
                    None => totals.push(st),
                }
            }
        }
        let results: Vec<_> = slots
            .into_iter()
            .map(|s| s.expect("every query index was claimed by exactly one worker"))
            .collect();

        let answered = results.iter().filter(|r| r.is_ok()).count();
        let cache_hits = results
            .iter()
            .filter(|r| matches!(r, Ok(resp) if resp.cached))
            .count();
        // A miss is a query that consulted the cache and then ran the
        // pipeline: computed answers and out-of-reach walks, but not
        // parse errors (those fail before the lookup).
        let cache_misses = if ctx.is_some() {
            results
                .iter()
                .filter(|r| {
                    matches!(r, Ok(resp) if !resp.cached)
                        || matches!(r, Err(EngineError::OutOfReach { .. }))
                })
                .count()
        } else {
            0
        };
        // Stages that never ran (e.g. everything answered by theorems)
        // still appear, zeroed — the report shape is stable per pipeline.
        let report = BatchReport {
            queries: queries.len(),
            answered,
            failed: queries.len() - answered,
            cache_hits,
            cache_misses,
            denom_hits: self.denom_cache().hits().saturating_sub(denoms_before.0),
            denom_misses: self.denom_cache().misses().saturating_sub(denoms_before.1),
            threads,
            wall: start.elapsed(),
            cpu,
            stages: totals,
        };
        BatchRun { results, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Belief;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::parse(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
             ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
        )
        .unwrap()
    }

    fn workload() -> Vec<String> {
        (0..24)
            .map(|i| match i % 4 {
                0 => "Hep(Eric)".to_string(),
                1 => "Over60(Eric)".to_string(),
                2 => "Hep(Eric) & Over60(Eric)".to_string(),
                _ => "!Hep(Eric)".to_string(),
            })
            .collect()
    }

    /// Responses compared up to recorded wall times.
    fn same_answer(a: &Result<Response, EngineError>, b: &Result<Response, EngineError>) -> bool {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                x.belief == y.belief
                    && x.provenance == y.provenance
                    && x.trace.steps().len() == y.trace.steps().len()
                    && x.trace
                        .steps()
                        .iter()
                        .zip(y.trace.steps())
                        .all(|(s, t)| s.stage == t.stage && s.status == t.status)
            }
            (Err(x), Err(y)) => x.to_string() == y.to_string(),
            _ => false,
        }
    }

    #[test]
    fn parallel_results_match_sequential_in_order() {
        let kb = kb();
        let queries = workload();
        let engine = RandomWorlds::new();
        let sequential = engine.answer_batch(&kb, &queries);
        for threads in [2usize, 4, 0] {
            let run = engine.answer_batch_report(&kb, &queries, &BatchOptions::threaded(threads));
            assert_eq!(run.results.len(), sequential.len());
            for (i, (s, p)) in sequential.iter().zip(&run.results).enumerate() {
                assert!(same_answer(s, p), "query {i} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn report_counts_and_isolated_failures() {
        let kb = kb();
        let queries = vec![
            "Hep(Eric)".to_string(),
            "Hep(".to_string(),
            "!Hep(Eric)".to_string(),
        ];
        let run =
            RandomWorlds::new().answer_batch_report(&kb, &queries, &BatchOptions::threaded(2));
        assert_eq!(run.report.queries, 3);
        assert_eq!(run.report.answered, 2);
        assert_eq!(run.report.failed, 1);
        assert!(matches!(run.results[1], Err(EngineError::Parse(_))));
        assert_eq!(
            run.results[0].as_ref().unwrap().belief,
            Belief::Point(0.8),
            "{}",
            run.report
        );
    }

    #[test]
    fn stage_totals_cover_every_recorded_step() {
        let kb = kb();
        let queries = workload();
        let run =
            RandomWorlds::new().answer_batch_report(&kb, &queries, &BatchOptions::sequential());
        let theorems = run
            .report
            .stages
            .iter()
            .find(|t| t.stage == "theorems")
            .unwrap();
        // Every query in this workload is theorem-answerable.
        assert_eq!(theorems.answered, queries.len());
        // Unused downstream stages are present but zeroed.
        let maxent = run
            .report
            .stages
            .iter()
            .find(|t| t.stage == "maxent")
            .unwrap();
        assert_eq!(
            maxent.answered + maxent.declined + maxent.budget_exhausted,
            0
        );
    }

    #[test]
    fn shared_cache_dedupes_semantic_variants() {
        let kb = kb();
        // 2 canonical queries under 12 surface forms (redundant parens
        // and commuted conjunctions; every form is also theorem-cheap on
        // a cache miss, so a racy miss never stalls the test).
        let queries: Vec<String> = (0..12)
            .map(|i| match i % 4 {
                0 => "Hep(Eric)".to_string(),
                1 => "(Hep(Eric))".to_string(),
                2 => "Hep(Eric) & Over60(Eric)".to_string(),
                _ => "Over60(Eric) & Hep(Eric)".to_string(),
            })
            .collect();
        let cache = Arc::new(AnswerCache::new());
        let opts = BatchOptions::threaded(4).with_cache(Arc::clone(&cache));
        let run = RandomWorlds::new().answer_batch_report(&kb, &queries, &opts);
        assert_eq!(run.report.answered, 12);
        // Only 2 distinct canonical forms get computed...
        assert_eq!(cache.len(), 2);
        // ...and everything else hits. In the worst interleaving each of
        // the 4 workers computes each form once before any insert lands,
        // so at least 12 - 2×4 = 4 hits are guaranteed.
        assert!(run.report.cache_hits >= 4, "{}", run.report);
        let cache_totals = run
            .report
            .stages
            .iter()
            .find(|t| t.stage == "cache")
            .unwrap();
        assert_eq!(cache_totals.answered, run.report.cache_hits);
    }

    #[test]
    fn warm_cache_answers_match_cold() {
        let kb = kb();
        let queries = workload();
        let engine = RandomWorlds::new();
        let cache = Arc::new(AnswerCache::new());
        let opts = BatchOptions::threaded(2).with_cache(Arc::clone(&cache));
        let cold = engine.answer_batch_report(&kb, &queries, &opts);
        let warm = engine.answer_batch_report(&kb, &queries, &opts);
        assert_eq!(warm.report.cache_hits, queries.len(), "fully warm");
        for (c, w) in cold.results.iter().zip(&warm.results) {
            assert_eq!(
                c.as_ref().unwrap().belief,
                w.as_ref().unwrap().belief,
                "warm answer diverged"
            );
        }
    }

    #[test]
    fn report_surfaces_cache_and_denominator_counters() {
        // A binary-predicate query lands on the enumeration stage, which
        // consults the engine's denominator cache; the tiny budget keeps
        // the scan debug-fast (N ≤ 3).
        let kb = KnowledgeBase::parse("Likes(A, B)").unwrap();
        let mut engine = RandomWorlds::new();
        engine.enum_max_worlds = 1 << 13;
        let queries = vec!["Likes(B, A)".to_string(), "Likes(B, A)".to_string()];
        let opts = BatchOptions::sequential().with_cache(Arc::new(AnswerCache::new()));
        let cold = engine.answer_batch_report(&kb, &queries, &opts);
        assert_eq!(cold.report.cache_hits + cold.report.cache_misses, 2);
        assert_eq!(cold.report.cache_misses, 1, "{}", cold.report);
        assert!(
            cold.report.denom_hits + cold.report.denom_misses > 0,
            "enumeration consulted the denominator cache"
        );
        let warm = engine.answer_batch_report(&kb, &queries, &opts);
        assert_eq!(warm.report.cache_hits, 2);
        assert_eq!(warm.report.cache_misses, 0);
        assert_eq!(
            warm.report.denom_hits + warm.report.denom_misses,
            0,
            "answer-cache hits skip the counting stages entirely"
        );
        // Uncached batches report no cache traffic at all.
        let uncached = engine.answer_batch_report(&kb, &queries, &BatchOptions::sequential());
        assert_eq!(uncached.report.cache_misses, 0);
    }

    #[test]
    fn engine_installed_cache_is_used_when_options_carry_none() {
        let kb = kb();
        let cache = Arc::new(AnswerCache::new());
        let engine = RandomWorlds::new().with_cache(Arc::clone(&cache));
        let queries = vec!["Hep(Eric)".to_string(), "Hep(Eric)".to_string()];
        let run = engine.answer_batch_report(&kb, &queries, &BatchOptions::sequential());
        assert_eq!(run.report.cache_hits, 1);
        assert!(run.results[1].as_ref().unwrap().cached);
    }

    #[test]
    fn thread_count_is_clamped_to_workload() {
        let kb = kb();
        let queries = vec!["Hep(Eric)".to_string()];
        let run =
            RandomWorlds::new().answer_batch_report(&kb, &queries, &BatchOptions::threaded(8));
        assert_eq!(run.report.threads, 1);
        assert_eq!(run.report.answered, 1);
    }

    #[test]
    fn empty_batch_reports_cleanly() {
        let kb = kb();
        let queries: Vec<String> = Vec::new();
        let run = RandomWorlds::new().answer_batch_report(&kb, &queries, &BatchOptions::default());
        assert_eq!(run.report.queries, 0);
        assert_eq!(run.report.threads, 1);
        assert!(run.results.is_empty());
    }
}
