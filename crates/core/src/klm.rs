//! Numeric checkers for the KLM-style properties of `|~rw` (paper §3.2 and
//! Theorem 5.3/5.5).
//!
//! These helpers *test* the postulates on concrete KBs rather than proving
//! them (the proofs are the paper's); the integration suite runs them over a
//! corpus of knowledge bases as an executable regression of Theorem 5.3.

use crate::engine::RandomWorlds;
use rw_logic::ast::Formula;
use rw_logic::KnowledgeBase;

/// Outcome of checking one instance of a postulate: `Holds`, `Violated`, or
/// `Inapplicable` when the premises of the rule are not satisfied by this
/// instance (a conditional postulate is vacuously fine then).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleCheck {
    Holds,
    Violated,
    Inapplicable,
}

fn kb_with(kb: &KnowledgeBase, extra: &Formula) -> KnowledgeBase {
    let mut kb2 = kb.clone();
    kb2.assert_formula(extra.clone());
    kb2
}

/// Parses a formula in (a clone of) the KB's vocabulary.
fn parse_in(kb: &KnowledgeBase, src: &str) -> (KnowledgeBase, Formula) {
    let mut kb2 = kb.clone();
    let f = kb2.parse_query(src).expect("formula parses");
    (kb2, f)
}

fn entails(engine: &RandomWorlds, kb: &KnowledgeBase, f: &Formula) -> Option<bool> {
    engine
        .degree_of_belief_formula(kb, f)
        .ok()
        .map(|r| r.belief.is_one())
}

/// **Cut** (Thm 5.3): if `KB |~ θ` and `KB ∧ θ |~ φ` then `KB |~ φ`.
pub fn check_cut(engine: &RandomWorlds, kb: &KnowledgeBase, theta: &str, phi: &str) -> RuleCheck {
    let (kb1, th) = parse_in(kb, theta);
    let (kb2, ph) = parse_in(&kb1, phi);
    let Some(p1) = entails(engine, &kb2, &th) else {
        return RuleCheck::Inapplicable;
    };
    let kb_th = kb_with(&kb2, &th);
    let Some(p2) = entails(engine, &kb_th, &ph) else {
        return RuleCheck::Inapplicable;
    };
    if !(p1 && p2) {
        return RuleCheck::Inapplicable;
    }
    match entails(engine, &kb2, &ph) {
        Some(true) => RuleCheck::Holds,
        Some(false) => RuleCheck::Violated,
        None => RuleCheck::Inapplicable,
    }
}

/// **Cautious Monotonicity** (Thm 5.3): if `KB |~ θ` and `KB |~ φ` then
/// `KB ∧ θ |~ φ`.
pub fn check_cautious_monotonicity(
    engine: &RandomWorlds,
    kb: &KnowledgeBase,
    theta: &str,
    phi: &str,
) -> RuleCheck {
    let (kb1, th) = parse_in(kb, theta);
    let (kb2, ph) = parse_in(&kb1, phi);
    match (entails(engine, &kb2, &th), entails(engine, &kb2, &ph)) {
        (Some(true), Some(true)) => {}
        (None, _) | (_, None) => return RuleCheck::Inapplicable,
        _ => return RuleCheck::Inapplicable,
    }
    let kb_th = kb_with(&kb2, &th);
    match entails(engine, &kb_th, &ph) {
        Some(true) => RuleCheck::Holds,
        Some(false) => RuleCheck::Violated,
        None => RuleCheck::Inapplicable,
    }
}

/// **And** (derived in Thm 5.3): if `KB |~ φ` and `KB |~ ψ` then
/// `KB |~ φ ∧ ψ`.
pub fn check_and(engine: &RandomWorlds, kb: &KnowledgeBase, phi: &str, psi: &str) -> RuleCheck {
    let (kb1, f) = parse_in(kb, phi);
    let (kb2, g) = parse_in(&kb1, psi);
    match (entails(engine, &kb2, &f), entails(engine, &kb2, &g)) {
        (Some(true), Some(true)) => {}
        (None, _) | (_, None) => return RuleCheck::Inapplicable,
        _ => return RuleCheck::Inapplicable,
    }
    let conj = Formula::and(f, g);
    match entails(engine, &kb2, &conj) {
        Some(true) => RuleCheck::Holds,
        Some(false) => RuleCheck::Violated,
        None => RuleCheck::Inapplicable,
    }
}

/// **Or** (Thm 5.3): if `KB₁ |~ φ` and `KB₂ |~ φ` then `KB₁ ∨ KB₂ |~ φ`.
pub fn check_or(
    engine: &RandomWorlds,
    kb1: &KnowledgeBase,
    kb2: &KnowledgeBase,
    phi: &str,
) -> RuleCheck {
    let (kb1c, f1) = parse_in(kb1, phi);
    let (kb2c, f2) = parse_in(kb2, phi);
    match (entails(engine, &kb1c, &f1), entails(engine, &kb2c, &f2)) {
        (Some(true), Some(true)) => {}
        (None, _) | (_, None) => return RuleCheck::Inapplicable,
        _ => return RuleCheck::Inapplicable,
    }
    // KB₁ ∨ KB₂ as a single disjunctive knowledge base, in kb1's vocabulary
    // extended with kb2's formulas re-parsed.
    let mut joint = kb1.clone();
    let kb2_formula_src = kb2.to_string().replace(";\n", " & ");
    let Ok(kb2_formula) = joint.parse_query(&kb2_formula_src) else {
        return RuleCheck::Inapplicable;
    };
    let disj = Formula::or(joint.as_formula(), kb2_formula);
    let joint_kb = KnowledgeBase::from_parts(joint.vocab().clone(), vec![disj]);
    let (mut jkb, _) = (joint_kb, ());
    let Ok(f) = jkb.parse_query(phi) else {
        return RuleCheck::Inapplicable;
    };
    match entails(engine, &jkb, &f) {
        Some(true) => RuleCheck::Holds,
        Some(false) => RuleCheck::Violated,
        None => RuleCheck::Inapplicable,
    }
}

/// **Rational Monotonicity**, weakened per Thm 5.5: if `KB |~ φ`,
/// `KB |̸~ ¬θ`, and `Pr∞(φ | KB ∧ θ)` exists, then `KB ∧ θ |~ φ`.
pub fn check_rational_monotonicity(
    engine: &RandomWorlds,
    kb: &KnowledgeBase,
    theta: &str,
    phi: &str,
) -> RuleCheck {
    let (kb1, th) = parse_in(kb, theta);
    let (kb2, ph) = parse_in(&kb1, phi);
    let Some(p_phi) = entails(engine, &kb2, &ph) else {
        return RuleCheck::Inapplicable;
    };
    let not_theta = Formula::not(th.clone());
    let Some(p_не) = entails(engine, &kb2, &not_theta) else {
        return RuleCheck::Inapplicable;
    };
    if !p_phi || p_не {
        return RuleCheck::Inapplicable;
    }
    let kb_th = kb_with(&kb2, &th);
    match engine.degree_of_belief_formula(&kb_th, &ph) {
        Ok(r)
            if matches!(
                r.belief,
                crate::belief::Belief::NonRobust(_) | crate::belief::Belief::Undefined
            ) =>
        {
            RuleCheck::Inapplicable // limit does not exist: Thm 5.5's proviso
        }
        Ok(r) => {
            if r.belief.is_one() {
                RuleCheck::Holds
            } else {
                RuleCheck::Violated
            }
        }
        Err(_) => RuleCheck::Inapplicable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> RandomWorlds {
        RandomWorlds::default()
    }

    fn penguin_kb() -> KnowledgeBase {
        KnowledgeBase::parse(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
        )
        .unwrap()
    }

    #[test]
    fn and_rule_on_defaults() {
        // Tweety doesn't fly and is a bird: both hold, so their conjunction
        // must (And rule).
        let kb = penguin_kb();
        assert_eq!(
            check_and(&engine(), &kb, "!Fly(Tweety)", "Bird(Tweety)"),
            RuleCheck::Holds
        );
    }

    #[test]
    fn cut_and_cautious_monotonicity() {
        let kb = penguin_kb();
        assert_eq!(
            check_cut(&engine(), &kb, "Bird(Tweety)", "!Fly(Tweety)"),
            RuleCheck::Holds
        );
        assert_eq!(
            check_cautious_monotonicity(&engine(), &kb, "Bird(Tweety)", "!Fly(Tweety)"),
            RuleCheck::Holds
        );
    }

    #[test]
    fn rational_monotonicity_yellow_penguin() {
        // Paper Example 5.19 through Thm 5.5's lens: Yellow(Tweety) is not
        // disbelieved, so adding it preserves not-flying.
        let kb = KnowledgeBase::parse(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety); \
             ||Yellow(x)||_x ~=_3 0.5",
        )
        .unwrap();
        assert_eq!(
            check_rational_monotonicity(&engine(), &kb, "Yellow(Tweety)", "!Fly(Tweety)"),
            RuleCheck::Holds
        );
    }

    #[test]
    fn inapplicable_when_premises_fail() {
        let kb = penguin_kb();
        // KB |~ Fly(Tweety) is false, so the rule instance is inapplicable.
        assert_eq!(
            check_cut(&engine(), &kb, "Fly(Tweety)", "Bird(Tweety)"),
            RuleCheck::Inapplicable
        );
    }
}
