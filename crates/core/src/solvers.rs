//! The built-in pipeline stages: theorem engine, Monte-Carlo sampling,
//! maximum entropy, exact unary counting, and brute-force enumeration.
//!
//! Each implements [`Solver`] and is sound on its own; the default
//! [`crate::RandomWorlds`] pipeline runs them in the order above (cheapest
//! and most exact first; the sampling stage only joins when approximate
//! inference is enabled). All are plain public structs so callers can
//! reorder, omit, re-budget, or interleave them with custom solvers via
//! [`crate::RandomWorlds::with_solvers`].

use crate::belief::{Belief, Provenance};
use crate::cache::{DenomCache, DenomKey};
use crate::solver::{Budget, Diagonal, Recurse, Solver, SolverOutcome};
use crate::theorems;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_maxent::{LimitOutcome, MaxentError, SweepConfig};
use rw_worlds::mc::{self, McConfig};
use rw_worlds::{ScaledCount, SymmetrySpec};
use std::sync::Arc;
// The diagonal-extrapolation shape is shared with the Monte-Carlo sweep;
// the single implementation lives in `rw_worlds::mc::stats`.
use rw_worlds::mc::stats::extrapolate;

/// Stage 1: the syntactic theorem engine (§5 of the paper).
///
/// Pattern matchers with fully checked side conditions for direct
/// inference, minimal reference classes, the strength rule, Dempster
/// combination, independence products, unique names, and nested defaults.
/// Exact, effectively instant, and the only stage that handles non-unary
/// KBs symbolically — but incomplete: it declines whenever no pattern
/// (soundly) matches.
#[derive(Clone, Copy, Debug, Default)]
pub struct TheoremSolver;

impl Solver for TheoremSolver {
    fn name(&self) -> &str {
        "theorems"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        _budget: &Budget,
        recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        match theorems::try_all(kb, query, recurse) {
            Some((belief, provenance)) => SolverOutcome::Answered { belief, provenance },
            None => SolverOutcome::Declined {
                reason: "no theorem pattern matched with verified side conditions".to_string(),
            },
        }
    }
}

/// Stage 2: the maximum-entropy asymptotics for unary KBs (§6).
///
/// Computes the entropy-maximizing atom distribution over a shrinking
/// τ-sweep and classifies the limit (converged / non-robust / infeasible).
/// Declines on KBs outside the essentially-propositional fragment it can
/// compile, or on numeric failure — both of which the exact finite-`N`
/// stages can still handle.
#[derive(Clone, Debug, Default)]
pub struct MaxEntSolver {
    /// The τ-sweep schedule and robustness probing configuration.
    pub sweep: SweepConfig,
}

impl MaxEntSolver {
    /// A maxent stage with the given sweep configuration.
    pub fn new(sweep: SweepConfig) -> MaxEntSolver {
        MaxEntSolver { sweep }
    }
}

impl Solver for MaxEntSolver {
    fn name(&self) -> &str {
        "maxent"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        _budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        match rw_maxent::degree_of_belief_limit(kb, query, &self.sweep) {
            Ok(LimitOutcome::Converged(v)) => SolverOutcome::Answered {
                belief: Belief::Point(v),
                provenance: Provenance::MaxEnt,
            },
            Ok(LimitOutcome::NonRobust(vs)) => SolverOutcome::Answered {
                belief: Belief::NonRobust(vs),
                provenance: Provenance::MaxEnt,
            },
            // Infeasibility is a *semantic* answer (Definition 4.3: the KB
            // is not eventually consistent), not a failure to apply.
            Ok(LimitOutcome::Infeasible) | Err(MaxentError::Infeasible) => {
                SolverOutcome::Answered {
                    belief: Belief::Undefined,
                    provenance: Provenance::MaxEnt,
                }
            }
            Err(e @ MaxentError::Compile(_)) | Err(e @ MaxentError::Numeric(_)) => {
                SolverOutcome::Declined {
                    reason: e.to_string(),
                }
            }
        }
    }
}

/// The sampling stage: Monte-Carlo estimation of the Definition 4.2
/// fraction along an `N`-sweep, with confidence intervals.
///
/// A bounded-cost, anytime stage for queries that miss every theorem
/// pattern and would otherwise fall into the (much slower) maxent or
/// counting stages. Sampling is KB-aware (asserted facts forced, unary
/// statistics proposed at their nominal rates — see
/// [`rw_worlds::mc::SamplePlan`]), stops adaptively once the 95% CI
/// half-width reaches the configured target, and answers with
/// [`Belief::Approximate`] so the uncertainty is part of the answer.
/// The stage [`Budget`] caps the total draws across the sweep.
///
/// Determinism: for a fixed [`McConfig::seed`] the answer is
/// bit-identical at any [`McConfig::threads`] count.
///
/// Declines when no draw satisfied the KB within the budget — an
/// improbable KB is indistinguishable from an inconsistent one by
/// sampling, so the exact stages get their turn.
#[derive(Clone, Debug, Default)]
pub struct MonteCarloSolver {
    /// Sampler tuning (seed, threads, caps, CI target).
    pub config: McConfig,
    /// The `(τ, N)` sweep points (2–4 domain sizes; the engine passes its
    /// configured diagonal).
    pub diagonal: Diagonal,
}

impl MonteCarloSolver {
    /// A sampling stage with the given configuration and sweep diagonal.
    pub fn new(config: McConfig, diagonal: Diagonal) -> MonteCarloSolver {
        MonteCarloSolver { config, diagonal }
    }
}

impl Solver for MonteCarloSolver {
    fn name(&self) -> &str {
        "montecarlo"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        // The stage budget is the hard sample cap; the config's own cap
        // still applies if tighter.
        let cap = u64::try_from(budget.max_count.min(u64::MAX as u128)).expect("clamped");
        let cfg = McConfig {
            max_samples: self.config.max_samples.min(cap),
            ..self.config.clone()
        };
        let sweep = mc::estimate_sweep(kb, query, self.diagonal.points(), &cfg);
        match sweep.value {
            Some(value) => SolverOutcome::Answered {
                belief: Belief::Approximate {
                    value,
                    ci_half_width: sweep.ci_half_width.unwrap_or(0.5),
                },
                provenance: Provenance::MonteCarlo {
                    drawn: sweep.drawn,
                    accepted: sweep.accepted,
                    n_points: sweep.points.iter().filter(|p| p.value.is_some()).count(),
                },
            },
            None => SolverOutcome::Declined {
                reason: format!(
                    "no sample satisfied the KB ({} drawn); cannot distinguish an \
                     improbable KB from an inconsistent one",
                    sweep.drawn
                ),
            },
        }
    }
}

/// Stage 3: exact unary profile counting along a `(τ, N)` diagonal.
///
/// Counts atom profiles exactly at each diagonal point and Richardson-
/// extrapolates the geometric τ-schedule. Declines on non-unary
/// vocabularies; reports budget exhaustion when the profile space
/// outgrows the stage budget before any point is computed.
#[derive(Clone, Debug, Default)]
pub struct UnaryDiagonalSolver {
    /// The `(τ, N)` evaluation points.
    pub diagonal: Diagonal,
}

impl UnaryDiagonalSolver {
    /// A unary counting stage over the given diagonal.
    pub fn new(diagonal: Diagonal) -> UnaryDiagonalSolver {
        UnaryDiagonalSolver { diagonal }
    }
}

impl Solver for UnaryDiagonalSolver {
    fn name(&self) -> &str {
        "unary-exact"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        if !kb.vocab().is_unary() {
            return SolverOutcome::Declined {
                reason: "vocabulary has functions or non-unary predicates".to_string(),
            };
        }
        let engine = rw_unary::UnaryEngine {
            max_profiles: budget.max_count,
        };
        let mut values = Vec::new();
        let mut max_n = 0usize;
        let mut undefined_steps = 0usize;
        let mut budget_hit = None;
        for &(tau, n) in self.diagonal.points() {
            let tol = Tolerances::uniform(tau);
            match engine.degree_of_belief_at(kb, query, n, &tol) {
                Ok(Some(v)) => {
                    values.push(v);
                    max_n = n.max(max_n);
                }
                Ok(None) => undefined_steps += 1,
                Err(e) => {
                    // Budget: extrapolate from the points already computed.
                    budget_hit = Some(e);
                    break;
                }
            }
        }
        if let Some(v) = extrapolate(&values) {
            return SolverOutcome::Answered {
                belief: Belief::Point(v),
                provenance: Provenance::UnaryExact { max_n },
            };
        }
        if undefined_steps > 0 {
            return SolverOutcome::Answered {
                belief: Belief::Undefined,
                provenance: Provenance::UnaryExact { max_n },
            };
        }
        match budget_hit {
            Some(e) => SolverOutcome::BudgetExhausted {
                reason: e.to_string(),
            },
            None => SolverOutcome::Declined {
                reason: "no diagonal point produced a value".to_string(),
            },
        }
    }
}

/// Stage 4: exact world counting along the diagonal (small `N`).
///
/// The last resort for non-unary KBs: compute the Definition 4.2 ratio
/// `#(KB ∧ query) / #KB` exactly at the two largest reachable domain
/// sizes and extrapolate the `O(1/N)` error term.
///
/// By default the counts come from the **compiled branch-and-count**
/// engine ([`rw_worlds::count`]): the KB and query are lowered once per
/// `(query, N)` into slot programs and counted by pruned search with
/// free-slot multiplication, so the stage [`Budget`] bounds *visited
/// search nodes* rather than interpretations — reaching domain sizes and
/// vocabularies (several binary predicates, functions) that blind
/// odometer enumeration never could. The `#KB` denominator is shared
/// across queries through an optional [`DenomCache`]. Counting is
/// bit-deterministic at any [`Self::threads`] count.
///
/// When [`Self::symmetry`] is set and the formula falls inside the
/// symmetry fragment ([`rw_worlds::SymmetrySpec`]), counting switches to
/// **orbit enumeration** over the unnamed-element group: polynomially
/// many weighted representatives instead of `2^(N²)` branches, which
/// lets the rising-`N` scan climb toward `N ≈ 40` instead of 8. Outside
/// the fragment the stage falls back to plain branch-and-count
/// unchanged.
///
/// Setting [`Self::compiled`] to `false` restores the historical
/// odometer path (`for_each_world`), kept as the oracle the compiled
/// engine is cross-checked against; there the budget bounds
/// interpretations, as before.
#[derive(Clone, Debug)]
pub struct EnumerationDiagonalSolver {
    /// The diagonal whose finest tolerance the counts evaluate at.
    pub diagonal: Diagonal,
    /// Use the compiled branch-and-count engine (default). `false`
    /// selects the naive odometer oracle.
    pub compiled: bool,
    /// Enable symmetry-reduced orbit counting for formulas inside the
    /// supported fragment (off by default; plain counting remains the
    /// fallback either way).
    pub symmetry: bool,
    /// Smallest domain size of the rising-`N` scan (`None` = 2; values
    /// below 2 are clamped up — `N = 1` has no extrapolation line).
    pub min_n: Option<usize>,
    /// Largest domain size the scan may attempt (`None` = the mode
    /// default: [`MAX_COMPILED_N`] plain, [`MAX_SYMMETRY_N`] when the
    /// symmetry mode applies). The scan still stops earlier when the
    /// visited budget would not survive the next point.
    pub max_n: Option<usize>,
    /// Worker threads for compiled counting (0 = one per core). Never
    /// affects an answer or its trace counters — counting is
    /// chunk-deterministic — so it is excluded from cache fingerprints.
    pub threads: usize,
    /// Shared cache of `#worlds_N^τ(KB)` denominators, so a sweep point's
    /// denominator is counted once per KB instead of once per query.
    pub denom_cache: Option<Arc<DenomCache>>,
}

impl Default for EnumerationDiagonalSolver {
    fn default() -> EnumerationDiagonalSolver {
        EnumerationDiagonalSolver {
            diagonal: Diagonal::default(),
            compiled: true,
            symmetry: false,
            min_n: None,
            max_n: None,
            threads: 1,
            denom_cache: None,
        }
    }
}

/// The largest domain size the plain compiled scan will attempt by
/// default. The rising-N scan stops earlier when the growth prediction
/// says the budget would not survive the next point.
pub const MAX_COMPILED_N: usize = 8;

/// The default ceiling of the symmetry-mode scan: representatives grow
/// polynomially, so the diagonal climbs far past [`MAX_COMPILED_N`]
/// before the budget bites.
pub const MAX_SYMMETRY_N: usize = 40;

/// Hard ceiling any configured `--max-n` is validated against (slot
/// values are `u8`, so plain counting cannot exceed `N = 254` anyway).
pub const MAX_SCAN_N: usize = 64;

impl EnumerationDiagonalSolver {
    /// A counting stage over the given diagonal, with the compiled
    /// engine enabled and no shared denominator cache.
    pub fn new(diagonal: Diagonal) -> EnumerationDiagonalSolver {
        EnumerationDiagonalSolver {
            diagonal,
            ..EnumerationDiagonalSolver::default()
        }
    }

    /// Builder: attach a shared denominator cache.
    pub fn with_denom_cache(mut self, cache: Arc<DenomCache>) -> EnumerationDiagonalSolver {
        self.denom_cache = Some(cache);
        self
    }

    /// One `(value, numerator-effort)` diagonal point at domain size `n`,
    /// or the counting error that stopped it. `Ok(None)` means the KB is
    /// unsatisfiable at this size (the degree of belief is undefined
    /// there — Definition 4.2).
    ///
    /// The numerator runs first under the (per-`N` laddered)
    /// `num_budget`; the denominator runs under the *full stage budget*
    /// and is shared through the [`DenomCache`]. Keeping the
    /// denominator's budget fixed — and part of its cache key — makes a
    /// point's outcome independent of cache warmth: a hit can only ever
    /// replace a count that would have succeeded anyway.
    #[allow(clippy::too_many_arguments)]
    fn compiled_point(
        &self,
        kb: &KnowledgeBase,
        n: usize,
        tol: &Tolerances,
        tau: rw_util::Rat,
        kb_formula: &Formula,
        num_prog: &rw_worlds::Program,
        num_budget: u64,
        full_budget: u64,
        fingerprints: Option<(u64, u64)>,
    ) -> Result<(Option<f64>, rw_worlds::CountOutcome), rw_worlds::CountError> {
        let numerator = rw_worlds::count_models(
            num_prog,
            &rw_worlds::CountOptions {
                max_visited: num_budget,
                threads: self.threads,
            },
        )?;
        let key = fingerprints.map(|(kb_fp, vocab_fp)| DenomKey {
            kb_fingerprint: kb_fp,
            vocab_fingerprint: vocab_fp,
            n,
            tau: (tau.num(), tau.den()),
            budget: full_budget,
            symmetry: false,
        });
        let cached = key
            .as_ref()
            .and_then(|k| self.denom_cache.as_ref().and_then(|c| c.get(k)));
        let denominator = match cached {
            Some(count) => count.exact().expect("plain counts fit u128"),
            None => {
                let out = rw_worlds::count_formula_models(
                    kb.vocab(),
                    n,
                    tol,
                    kb_formula,
                    &rw_worlds::CountOptions {
                        max_visited: full_budget,
                        threads: self.threads,
                    },
                )?;
                if let (Some(k), Some(cache)) = (key, self.denom_cache.as_ref()) {
                    cache.insert(k, ScaledCount::from_u128(out.count));
                }
                out.count
            }
        };
        let value = if denominator == 0 {
            None
        } else {
            Some(numerator.count as f64 / denominator as f64)
        };
        Ok((value, numerator))
    }

    /// One symmetry-mode diagonal point: numerator and denominator come
    /// from weighted orbit enumeration instead of branch-and-count, with
    /// the same budget discipline (laddered numerator, full-budget
    /// cacheable denominator keyed with `symmetry: true`). Returns the
    /// point value and the numerator's representative count.
    #[allow(clippy::too_many_arguments)]
    fn symmetry_point(
        &self,
        num_spec: &SymmetrySpec,
        kb_spec: &SymmetrySpec,
        n: usize,
        tol: &Tolerances,
        tau: rw_util::Rat,
        num_budget: u64,
        full_budget: u64,
        fingerprints: Option<(u64, u64)>,
    ) -> Result<(Option<f64>, u64), rw_worlds::CountError> {
        let numerator = num_spec.count(
            n,
            tol,
            &rw_worlds::CountOptions {
                max_visited: num_budget,
                threads: self.threads,
            },
        )?;
        let key = fingerprints.map(|(kb_fp, vocab_fp)| DenomKey {
            kb_fingerprint: kb_fp,
            vocab_fingerprint: vocab_fp,
            n,
            tau: (tau.num(), tau.den()),
            budget: full_budget,
            symmetry: true,
        });
        let cached = key
            .as_ref()
            .and_then(|k| self.denom_cache.as_ref().and_then(|c| c.get(k)));
        let denominator = match cached {
            Some(count) => count,
            None => {
                let out = kb_spec.count(
                    n,
                    tol,
                    &rw_worlds::CountOptions {
                        max_visited: full_budget,
                        threads: self.threads,
                    },
                )?;
                if let (Some(k), Some(cache)) = (key, self.denom_cache.as_ref()) {
                    cache.insert(k, out.count);
                }
                out.count
            }
        };
        Ok((
            ScaledCount::ratio(&numerator.count, &denominator),
            numerator.reps,
        ))
    }

    /// The `[min, max]` domain sizes the rising-`N` scan covers, after
    /// clamping: the floor never drops below 2 (no extrapolation line
    /// through `N = 1`) and the ceiling never drops below the floor.
    fn scan_bounds(&self, symmetry_applies: bool) -> (usize, usize) {
        let default_max = if symmetry_applies {
            MAX_SYMMETRY_N
        } else {
            MAX_COMPILED_N
        };
        let min = self.min_n.unwrap_or(2).max(2);
        let max = self.max_n.unwrap_or(default_max).max(min);
        (min, max)
    }

    fn solve_compiled(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
    ) -> SolverOutcome {
        let tau = self.diagonal.finest_tau();
        let tol = Tolerances::uniform(tau);
        let kb_formula = kb.as_formula();
        let numerator_formula = Formula::and(kb_formula.clone(), query.clone());
        let max_visited = u64::try_from(budget.max_count.min(u64::MAX as u128)).expect("clamped");
        let fingerprints = self.denom_cache.as_ref().map(|_| {
            (
                rw_logic::canon::kb_fingerprint(kb),
                rw_logic::canon::vocab_fingerprint(kb.vocab()),
            )
        });

        // Symmetry mode engages only when *both* formulas land in the
        // orbit-counting fragment — the ratio must divide counts produced
        // by the same method. Otherwise fall back to plain
        // branch-and-count, identical to the symmetry-off configuration.
        let specs = if self.symmetry {
            SymmetrySpec::detect(kb.vocab(), &numerator_formula)
                .zip(SymmetrySpec::detect(kb.vocab(), &kb_formula))
        } else {
            None
        };
        let (min_n, max_n) = self.scan_bounds(specs.is_some());

        let mut points: Vec<(usize, Option<f64>)> = Vec::new();
        let mut visited = 0u64;
        let mut branched = 0u64;
        let mut orbits = 0u64;
        let mut failure: Option<String> = None;
        let mut prev_effort: u64 = 0;
        for n in min_n..=max_n {
            // Iterative deepening up the diagonal: the first point's
            // numerator gets the whole budget, every later one a
            // generous multiple of the previous point's *measured*
            // effort. A point that blows through that allowance is
            // growing doubly-exponentially — stop with the points in
            // hand instead of burning the full budget to learn the same
            // thing. Deterministic: effort counts are thread-count
            // invariant and the (cached) denominator plays no part.
            let num_budget = if points.is_empty() {
                max_visited
            } else {
                prev_effort.max(64).saturating_mul(1024).min(max_visited)
            };
            let step = match specs.as_ref() {
                Some((num_spec, kb_spec)) => self
                    .symmetry_point(
                        num_spec,
                        kb_spec,
                        n,
                        &tol,
                        tau,
                        num_budget,
                        max_visited,
                        fingerprints,
                    )
                    .map(|(value, reps)| {
                        orbits += reps;
                        (value, reps)
                    }),
                None => {
                    let Some(num_prog) =
                        rw_worlds::Program::compile(kb.vocab(), n, &tol, &numerator_formula)
                    else {
                        failure = Some(format!("slot space at N={n} overflows the machine"));
                        break;
                    };
                    self.compiled_point(
                        kb,
                        n,
                        &tol,
                        tau,
                        &kb_formula,
                        &num_prog,
                        num_budget,
                        max_visited,
                        fingerprints,
                    )
                    .map(|(value, effort)| {
                        visited += effort.visited;
                        branched += effort.branched;
                        (value, effort.visited)
                    })
                }
            };
            match step {
                Ok((value, effort)) => {
                    points.push((n, value));
                    prev_effort = effort;
                }
                Err(e) => {
                    failure = Some(format!("counting at N={n} failed: {e}"));
                    break;
                }
            }
        }

        let provenance = |max_n: usize| Provenance::Enumeration {
            max_n,
            visited,
            branched,
            orbits,
        };
        match points.len() {
            0 => SolverOutcome::BudgetExhausted {
                reason: failure.unwrap_or_else(|| {
                    format!("even N={min_n} exceeded the {max_visited}-node visit budget")
                }),
            },
            // A single reachable size has nothing to extrapolate from —
            // the line through N=1 runs off the domain — so use the
            // point value.
            1 => match points[0] {
                (n, Some(v)) => SolverOutcome::Answered {
                    belief: Belief::Point(v),
                    provenance: provenance(n),
                },
                (n, None) => SolverOutcome::Answered {
                    belief: Belief::Undefined,
                    provenance: provenance(n),
                },
            },
            len => {
                let (n_lo, v_lo) = points[len - 2];
                let (n_hi, v_hi) = points[len - 1];
                match (v_lo, v_hi) {
                    (Some(v_lo), Some(v_hi)) => {
                        // v(N) = v∞ + c/N  ⇒
                        // v∞ = v_hi + (v_hi − v_lo)·(1/N_hi)/(1/N_lo − 1/N_hi).
                        let inv_lo = 1.0 / n_lo as f64;
                        let inv_hi = 1.0 / n_hi as f64;
                        let v = v_hi + (v_hi - v_lo) * inv_hi / (inv_lo - inv_hi);
                        SolverOutcome::Answered {
                            belief: Belief::Point(v.clamp(0.0, 1.0)),
                            provenance: provenance(n_hi),
                        }
                    }
                    (None, None) => SolverOutcome::Answered {
                        belief: Belief::Undefined,
                        provenance: provenance(n_hi),
                    },
                    (Some(_), None) | (None, Some(_)) => SolverOutcome::Declined {
                        reason: format!(
                            "inconsistent satisfiability between N={n_lo} and N={n_hi}"
                        ),
                    },
                }
            }
        }
    }

    /// The historical odometer path: enumerate every interpretation at
    /// the two largest sizes whose world count fits the budget.
    fn solve_oracle(&self, kb: &KnowledgeBase, query: &Formula, budget: &Budget) -> SolverOutcome {
        // The scan window honors the same `min_n`/`max_n` contract as
        // the compiled path (a pinned window makes both modes
        // extrapolate from the same diagonal points, so their answers
        // are bit-identical when both complete it), intersected with
        // the odometer's own hard ceiling — blind enumeration is doubly
        // exponential, so sizes past 6 are never feasible anyway.
        const MAX_ORACLE_N: usize = 6;
        let (min_n, max_n) = self.scan_bounds(false);
        let max_n = max_n.min(MAX_ORACLE_N).max(min_n);
        // Largest feasible size within the world budget.
        let mut n_hi = None;
        for n in (min_n..=max_n).rev() {
            if let Some(c) = rw_worlds::count_interpretations(kb.vocab(), n) {
                if c <= budget.max_count {
                    n_hi = Some(n);
                    break;
                }
            }
        }
        let Some(n_hi) = n_hi else {
            return SolverOutcome::BudgetExhausted {
                reason: format!(
                    "even N={min_n} needs more than {} interpretations",
                    budget.max_count
                ),
            };
        };
        let provenance = |max_n: usize| Provenance::Enumeration {
            max_n,
            visited: 0,
            branched: 0,
            orbits: 0,
        };
        let tol = Tolerances::uniform(self.diagonal.finest_tau());
        let eval = |n: usize| {
            rw_worlds::enumerate::degree_of_belief_at_bounded(kb, query, n, &tol, budget.max_count)
        };
        // The dominant error term is O(1/N): evaluate at the two largest
        // feasible sizes and extrapolate linearly in 1/N. A one-point
        // "diagonal" (n_hi == 2) has nothing to extrapolate from — the
        // line through N=1 runs off the domain — so use the point value.
        let n_lo = n_hi - 1;
        if n_lo < 2 {
            return match eval(n_hi) {
                Ok(Some(v)) => SolverOutcome::Answered {
                    belief: Belief::Point(v),
                    provenance: provenance(n_hi),
                },
                Ok(None) => SolverOutcome::Answered {
                    belief: Belief::Undefined,
                    provenance: provenance(n_hi),
                },
                Err(e) => SolverOutcome::BudgetExhausted {
                    reason: e.to_string(),
                },
            };
        }
        match (eval(n_lo), eval(n_hi)) {
            (Ok(Some(v_lo)), Ok(Some(v_hi))) => {
                // v(N) = v∞ + c/N  ⇒
                // v∞ = v_hi + (v_hi − v_lo)·(1/N_hi)/(1/N_lo − 1/N_hi).
                let inv_lo = 1.0 / n_lo as f64;
                let inv_hi = 1.0 / n_hi as f64;
                let v = v_hi + (v_hi - v_lo) * inv_hi / (inv_lo - inv_hi);
                SolverOutcome::Answered {
                    belief: Belief::Point(v.clamp(0.0, 1.0)),
                    provenance: provenance(n_hi),
                }
            }
            (Ok(None), Ok(None)) => SolverOutcome::Answered {
                belief: Belief::Undefined,
                provenance: provenance(n_hi),
            },
            (Err(e), _) | (_, Err(e)) => SolverOutcome::BudgetExhausted {
                reason: e.to_string(),
            },
            (Ok(Some(_)), Ok(None)) | (Ok(None), Ok(Some(_))) => SolverOutcome::Declined {
                reason: format!("inconsistent satisfiability between N={n_lo} and N={n_hi}"),
            },
        }
    }
}

impl Solver for EnumerationDiagonalSolver {
    fn name(&self) -> &str {
        "enumeration"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        if self.compiled {
            self.solve_compiled(kb, query, budget)
        } else {
            self.solve_oracle(kb, query, budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_recurse() -> impl Fn(&KnowledgeBase, &Formula) -> Option<(Belief, Provenance)> {
        |_, _| None
    }

    fn parsed(kb_src: &str, q_src: &str) -> (KnowledgeBase, Formula) {
        let mut kb = KnowledgeBase::parse(kb_src).unwrap();
        let q = kb.parse_query(q_src).unwrap();
        (kb, q)
    }

    #[test]
    fn theorem_solver_answers_direct_inference_and_declines_otherwise() {
        let s = TheoremSolver;
        let (kb, q) = parsed("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Hep(Eric)");
        match s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                assert_eq!(belief.as_point(), Some(0.8));
                assert_eq!(provenance, Provenance::DirectInference);
            }
            other => panic!("{other:?}"),
        }
        let (kb, q) = parsed("||Black(x) | Bird(x)||_x ~=_1 0.2", "Black(C)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    #[test]
    fn maxent_solver_declines_non_unary() {
        let s = MaxEntSolver::default();
        let (kb, q) = parsed("Likes(A, B)", "Likes(B, A)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    #[test]
    fn unary_solver_reports_budget_exhaustion() {
        let s = UnaryDiagonalSolver::default();
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        match s.solve(&kb, &q, &Budget::counting(1), &no_recurse()) {
            SolverOutcome::BudgetExhausted { reason } => {
                assert!(reason.contains("budget"), "{reason}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_solver_declines_binary_vocabulary() {
        let s = UnaryDiagonalSolver::default();
        let (kb, q) = parsed("Likes(A, B)", "Likes(B, A)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    fn oracle_solver() -> EnumerationDiagonalSolver {
        EnumerationDiagonalSolver {
            compiled: false,
            ..EnumerationDiagonalSolver::default()
        }
    }

    #[test]
    fn enumeration_single_point_fallback_when_only_n2_fits() {
        // Oracle mode, budget below the N=3 world count but above N=2:
        // the solver must use the single-point value instead of
        // extrapolating off N=1.
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        let n2 = rw_worlds::count_interpretations(kb.vocab(), 2).unwrap();
        let n3 = rw_worlds::count_interpretations(kb.vocab(), 3).unwrap();
        assert!(n2 < n3);
        let s = oracle_solver();
        match s.solve(&kb, &q, &Budget::counting(n2), &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                assert_eq!(
                    provenance,
                    Provenance::Enumeration {
                        max_n: 2,
                        visited: 0,
                        branched: 0,
                        orbits: 0
                    }
                );
                let v = belief.as_point().unwrap();
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compiled_counting_matches_the_oracle_where_both_reach() {
        // At a budget where oracle enumeration picks the same (N-1, N)
        // pair, the compiled engine's counts are exactly equal, so the
        // extrapolated beliefs are bit-identical.
        // KBs satisfiable at *every* N (a τ-tight statistic like
        // `||P||_x ≈ 0.5` is unsatisfiable at odd N, which makes the
        // deeper compiled scan legitimately decline).
        for (kb_src, q_src) in [
            ("Likes(A, B)", "Likes(B, A)"),
            ("P(C) or Q(C)", "P(C) & Q(C)"),
        ] {
            let (kb, q) = parsed(kb_src, q_src);
            let oracle = oracle_solver();
            // Clamp both to the oracle's N=4 reach (2^18 interpretations
            // covers the Likes KB at N=4, not N=5).
            let oracle_out = oracle.solve(&kb, &q, &Budget::counting(1 << 18), &no_recurse());
            let SolverOutcome::Answered {
                belief: oracle_belief,
                provenance: Provenance::Enumeration { max_n, .. },
            } = oracle_out
            else {
                panic!("{oracle_out:?}");
            };
            let compiled = EnumerationDiagonalSolver::default();
            let compiled_out = compiled.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse());
            let SolverOutcome::Answered {
                belief: compiled_belief,
                provenance:
                    Provenance::Enumeration {
                        max_n: compiled_n,
                        visited,
                        ..
                    },
            } = compiled_out
            else {
                panic!("{compiled_out:?}");
            };
            assert!(compiled_n >= max_n, "{kb_src}: {compiled_n} < {max_n}");
            assert!(visited > 0, "{kb_src}: compiled mode must report effort");
            // Both extrapolate v(N) = v∞ + c/N; deeper N can only move
            // the estimate closer to the true limit. These shapes are
            // exactly linear in 1/N, so the values agree tightly.
            let (a, b) = (
                oracle_belief.as_point().unwrap(),
                compiled_belief.as_point().unwrap(),
            );
            assert!((a - b).abs() < 1e-9, "{kb_src}: oracle {a} vs compiled {b}");
        }
    }

    #[test]
    fn compiled_counting_reaches_vocabularies_the_oracle_cannot() {
        // Three binary predicates: 3·2^(N²) interpretations put even N=2
        // beyond a 2^12 world budget, but branch-and-count answers well
        // within the same number as a *visited-node* budget.
        let (kb, q) = parsed(
            "Likes(A, B); Knows(B, C); Admires(C, A)",
            "Likes(B, A) & Knows(A, B)",
        );
        let oracle = oracle_solver();
        assert!(matches!(
            oracle.solve(&kb, &q, &Budget::counting(1 << 12), &no_recurse()),
            SolverOutcome::BudgetExhausted { .. }
        ));
        let compiled = EnumerationDiagonalSolver::default();
        match compiled.solve(&kb, &q, &Budget::counting(1 << 12), &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                let Provenance::Enumeration { max_n, visited, .. } = provenance else {
                    panic!("{provenance:?}");
                };
                assert!(max_n >= 3, "{max_n}");
                // `visited` totals the numerator effort across every
                // diagonal point; each point individually respected the
                // 2^12 budget.
                assert!(visited > 0, "{visited}");
                // Independent bits: Pr(Likes(B,A) ∧ Knows(A,B)) → 1/4
                // (plus O(1/N) constant-collision terms the
                // extrapolation removes).
                let v = belief.as_point().unwrap();
                assert!((v - 0.25).abs() < 0.05, "{v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn denominator_cache_is_filled_and_shared_across_queries() {
        let (mut kb, q) = parsed("Likes(A, B)", "Likes(B, A)");
        let cache = Arc::new(DenomCache::new());
        let s = EnumerationDiagonalSolver::default().with_denom_cache(Arc::clone(&cache));
        let first = s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse());
        assert!(matches!(first, SolverOutcome::Answered { .. }), "{first:?}");
        let filled = cache.len();
        assert!(filled >= 2, "one denominator per diagonal point: {filled}");
        // A second query against the same KB recounts nothing in the
        // denominator: the cache does not grow.
        let q2 = kb.parse_query("!Likes(B, A)").unwrap();
        let second = s.solve(&kb, &q2, &Budget::UNLIMITED, &no_recurse());
        assert!(
            matches!(second, SolverOutcome::Answered { .. }),
            "{second:?}"
        );
        assert_eq!(cache.len(), filled);
    }

    #[test]
    fn compiled_counting_is_thread_count_invariant() {
        // A bounded budget, not UNLIMITED: the visited-node budget is
        // also what stops the rising-N scan (an unbounded scan on a
        // binary statistic would try to count 2^(N²) branches).
        let budget = Budget::counting(1 << 18);
        let (kb, q) = parsed(
            "||Likes(x, y)||_{x,y} ~=_1 0.25; Likes(A, B)",
            "Likes(B, A)",
        );
        let base = EnumerationDiagonalSolver::default();
        let reference = base.solve(&kb, &q, &budget, &no_recurse());
        assert!(
            matches!(reference, SolverOutcome::Answered { .. }),
            "{reference:?}"
        );
        for threads in [2usize, 4, 0] {
            let s = EnumerationDiagonalSolver {
                threads,
                ..EnumerationDiagonalSolver::default()
            };
            let out = s.solve(&kb, &q, &budget, &no_recurse());
            assert_eq!(out, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn montecarlo_answers_with_ci_and_counts() {
        let (kb, q) = parsed(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Jaun(Tom)",
            "Hep(Eric) & Hep(Tom)",
        );
        let s = MonteCarloSolver::default();
        match s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                let Belief::Approximate {
                    value,
                    ci_half_width,
                } = belief
                else {
                    panic!("{belief:?}");
                };
                assert!((0.0..=1.0).contains(&value), "{value}");
                assert!(ci_half_width > 0.0);
                let Provenance::MonteCarlo {
                    drawn,
                    accepted,
                    n_points,
                } = provenance
                else {
                    panic!();
                };
                assert!(drawn > 0 && accepted > 0 && n_points > 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn montecarlo_budget_caps_the_draws() {
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.6", "P(C)");
        let s = MonteCarloSolver::default();
        match s.solve(&kb, &q, &Budget::counting(4096), &no_recurse()) {
            SolverOutcome::Answered { provenance, .. } => match provenance {
                Provenance::MonteCarlo { drawn, .. } => assert!(drawn <= 4096, "{drawn}"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn montecarlo_declines_on_unsatisfiable_kb() {
        let (kb, q) = parsed("P(C) & !P(C)", "P(C)");
        let s = MonteCarloSolver::default();
        match s.solve(&kb, &q, &Budget::counting(2048), &no_recurse()) {
            SolverOutcome::Declined { reason } => {
                assert!(reason.contains("no sample satisfied"), "{reason}")
            }
            other => panic!("{other:?}"),
        }
    }

    fn symmetry_solver() -> EnumerationDiagonalSolver {
        EnumerationDiagonalSolver {
            symmetry: true,
            ..EnumerationDiagonalSolver::default()
        }
    }

    #[test]
    fn symmetry_mode_matches_plain_counting_over_the_same_scan() {
        // Clamp both modes to the same rising-N range: the counts agree
        // exactly (proved against the odometer in rw-worlds), both ratio
        // paths divide the same u128s, so the beliefs are bit-identical.
        // KBs satisfiable at *every* scanned N (a τ-tight `≈ 0.5`
        // statistic is unsatisfiable when no integer lands in the
        // interval, which makes both modes legitimately decline).
        for (kb_src, q_src) in [
            ("P(C) or Q(C)", "P(C) & Q(C)"),
            ("||P(x)||_x ~=_1 1; Likes(A, B)", "Likes(B, A) & P(A)"),
        ] {
            let (kb, q) = parsed(kb_src, q_src);
            let plain = EnumerationDiagonalSolver {
                max_n: Some(6),
                ..EnumerationDiagonalSolver::default()
            };
            let sym = EnumerationDiagonalSolver {
                max_n: Some(6),
                ..symmetry_solver()
            };
            let plain_out = plain.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse());
            let sym_out = sym.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse());
            let SolverOutcome::Answered {
                belief: plain_belief,
                ..
            } = plain_out
            else {
                panic!("{kb_src}: {plain_out:?}");
            };
            let SolverOutcome::Answered {
                belief: sym_belief,
                provenance: Provenance::Enumeration { orbits, .. },
            } = sym_out
            else {
                panic!("{kb_src}: {sym_out:?}");
            };
            assert!(orbits > 0, "{kb_src}: symmetry mode must report orbits");
            assert_eq!(plain_belief.as_point(), sym_belief.as_point(), "{kb_src}");
        }
    }

    #[test]
    fn symmetry_mode_reaches_deep_domains_within_the_default_budget() {
        // The acceptance bar: one unary and one unary+binary KB past
        // N = 32 under the default visited budget — domain sizes plain
        // branch-and-count cannot approach (2^(N²) branches).
        for (kb_src, q_src) in [
            ("||P(x)||_x ~=_1 0.5; P(C)", "P(C)"),
            ("||P(x)||_x ~=_1 0.5; Likes(A, B); P(A)", "Likes(B, A)"),
        ] {
            let (kb, q) = parsed(kb_src, q_src);
            let s = symmetry_solver();
            let budget = Budget::counting(rw_worlds::count::DEFAULT_MAX_VISITED.into());
            match s.solve(&kb, &q, &budget, &no_recurse()) {
                SolverOutcome::Answered { belief, provenance } => {
                    let Provenance::Enumeration { max_n, orbits, .. } = provenance else {
                        panic!("{kb_src}: {provenance:?}");
                    };
                    assert!(max_n >= 32, "{kb_src}: only reached N={max_n}");
                    assert!(orbits > 0, "{kb_src}");
                    let v = belief.as_point().unwrap();
                    assert!((0.0..=1.0).contains(&v), "{kb_src}: {v}");
                }
                other => panic!("{kb_src}: {other:?}"),
            }
        }
    }

    #[test]
    fn symmetry_mode_is_thread_count_invariant() {
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5; Likes(A, B); P(A)", "Likes(B, A)");
        let budget = Budget::counting(rw_worlds::count::DEFAULT_MAX_VISITED.into());
        let reference = symmetry_solver().solve(&kb, &q, &budget, &no_recurse());
        assert!(
            matches!(reference, SolverOutcome::Answered { .. }),
            "{reference:?}"
        );
        for threads in [2usize, 4, 0] {
            let s = EnumerationDiagonalSolver {
                threads,
                ..symmetry_solver()
            };
            let out = s.solve(&kb, &q, &budget, &no_recurse());
            assert_eq!(out, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn symmetry_mode_falls_back_to_plain_counting_outside_the_fragment() {
        // A binary *statistic* is outside the orbit fragment: the
        // symmetry-enabled solver must produce the exact plain outcome,
        // trace counters included.
        let budget = Budget::counting(1 << 18);
        let (kb, q) = parsed(
            "||Likes(x, y)||_{x,y} ~=_1 0.25; Likes(A, B)",
            "Likes(B, A)",
        );
        let plain = EnumerationDiagonalSolver::default().solve(&kb, &q, &budget, &no_recurse());
        let sym = symmetry_solver().solve(&kb, &q, &budget, &no_recurse());
        assert_eq!(sym, plain);
    }

    #[test]
    fn scan_bounds_honor_the_configured_window() {
        let (kb, q) = parsed("Likes(A, B)", "Likes(B, A)");
        let s = EnumerationDiagonalSolver {
            min_n: Some(3),
            max_n: Some(4),
            ..EnumerationDiagonalSolver::default()
        };
        match s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()) {
            SolverOutcome::Answered { provenance, .. } => {
                let Provenance::Enumeration { max_n, .. } = provenance else {
                    panic!("{provenance:?}");
                };
                assert_eq!(max_n, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn enumeration_budget_exhaustion_below_n2() {
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        for s in [EnumerationDiagonalSolver::default(), oracle_solver()] {
            assert!(
                matches!(
                    s.solve(&kb, &q, &Budget::counting(1), &no_recurse()),
                    SolverOutcome::BudgetExhausted { .. }
                ),
                "compiled={}",
                s.compiled
            );
        }
    }
}
