//! The built-in pipeline stages: theorem engine, maximum entropy, exact
//! unary counting, and brute-force enumeration.
//!
//! Each implements [`Solver`] and is sound on its own; the default
//! [`crate::RandomWorlds`] pipeline runs them in the order above (cheapest
//! and most exact first). All four are plain public structs so callers can
//! reorder, omit, re-budget, or interleave them with custom solvers via
//! [`crate::RandomWorlds::with_solvers`].

use crate::belief::{Belief, Provenance};
use crate::solver::{Budget, Diagonal, Recurse, Solver, SolverOutcome};
use crate::theorems;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_maxent::{LimitOutcome, MaxentError, SweepConfig};

/// Stage 1: the syntactic theorem engine (§5 of the paper).
///
/// Pattern matchers with fully checked side conditions for direct
/// inference, minimal reference classes, the strength rule, Dempster
/// combination, independence products, unique names, and nested defaults.
/// Exact, effectively instant, and the only stage that handles non-unary
/// KBs symbolically — but incomplete: it declines whenever no pattern
/// (soundly) matches.
#[derive(Clone, Copy, Debug, Default)]
pub struct TheoremSolver;

impl Solver for TheoremSolver {
    fn name(&self) -> &str {
        "theorems"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        _budget: &Budget,
        recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        match theorems::try_all(kb, query, recurse) {
            Some((belief, provenance)) => SolverOutcome::Answered { belief, provenance },
            None => SolverOutcome::Declined {
                reason: "no theorem pattern matched with verified side conditions".to_string(),
            },
        }
    }
}

/// Stage 2: the maximum-entropy asymptotics for unary KBs (§6).
///
/// Computes the entropy-maximizing atom distribution over a shrinking
/// τ-sweep and classifies the limit (converged / non-robust / infeasible).
/// Declines on KBs outside the essentially-propositional fragment it can
/// compile, or on numeric failure — both of which the exact finite-`N`
/// stages can still handle.
#[derive(Clone, Debug, Default)]
pub struct MaxEntSolver {
    /// The τ-sweep schedule and robustness probing configuration.
    pub sweep: SweepConfig,
}

impl MaxEntSolver {
    /// A maxent stage with the given sweep configuration.
    pub fn new(sweep: SweepConfig) -> MaxEntSolver {
        MaxEntSolver { sweep }
    }
}

impl Solver for MaxEntSolver {
    fn name(&self) -> &str {
        "maxent"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        _budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        match rw_maxent::degree_of_belief_limit(kb, query, &self.sweep) {
            Ok(LimitOutcome::Converged(v)) => SolverOutcome::Answered {
                belief: Belief::Point(v),
                provenance: Provenance::MaxEnt,
            },
            Ok(LimitOutcome::NonRobust(vs)) => SolverOutcome::Answered {
                belief: Belief::NonRobust(vs),
                provenance: Provenance::MaxEnt,
            },
            // Infeasibility is a *semantic* answer (Definition 4.3: the KB
            // is not eventually consistent), not a failure to apply.
            Ok(LimitOutcome::Infeasible) | Err(MaxentError::Infeasible) => {
                SolverOutcome::Answered {
                    belief: Belief::Undefined,
                    provenance: Provenance::MaxEnt,
                }
            }
            Err(e @ MaxentError::Compile(_)) | Err(e @ MaxentError::Numeric(_)) => {
                SolverOutcome::Declined {
                    reason: e.to_string(),
                }
            }
        }
    }
}

/// Stage 3: exact unary profile counting along a `(τ, N)` diagonal.
///
/// Counts atom profiles exactly at each diagonal point and Richardson-
/// extrapolates the geometric τ-schedule. Declines on non-unary
/// vocabularies; reports budget exhaustion when the profile space
/// outgrows the stage budget before any point is computed.
#[derive(Clone, Debug, Default)]
pub struct UnaryDiagonalSolver {
    /// The `(τ, N)` evaluation points.
    pub diagonal: Diagonal,
}

impl UnaryDiagonalSolver {
    /// A unary counting stage over the given diagonal.
    pub fn new(diagonal: Diagonal) -> UnaryDiagonalSolver {
        UnaryDiagonalSolver { diagonal }
    }
}

impl Solver for UnaryDiagonalSolver {
    fn name(&self) -> &str {
        "unary-exact"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        if !kb.vocab().is_unary() {
            return SolverOutcome::Declined {
                reason: "vocabulary has functions or non-unary predicates".to_string(),
            };
        }
        let engine = rw_unary::UnaryEngine {
            max_profiles: budget.max_count,
        };
        let mut values = Vec::new();
        let mut max_n = 0usize;
        let mut undefined_steps = 0usize;
        let mut budget_hit = None;
        for &(tau, n) in self.diagonal.points() {
            let tol = Tolerances::uniform(tau);
            match engine.degree_of_belief_at(kb, query, n, &tol) {
                Ok(Some(v)) => {
                    values.push(v);
                    max_n = n.max(max_n);
                }
                Ok(None) => undefined_steps += 1,
                Err(e) => {
                    // Budget: extrapolate from the points already computed.
                    budget_hit = Some(e);
                    break;
                }
            }
        }
        if let Some(v) = extrapolate(&values) {
            return SolverOutcome::Answered {
                belief: Belief::Point(v),
                provenance: Provenance::UnaryExact { max_n },
            };
        }
        if undefined_steps > 0 {
            return SolverOutcome::Answered {
                belief: Belief::Undefined,
                provenance: Provenance::UnaryExact { max_n },
            };
        }
        match budget_hit {
            Some(e) => SolverOutcome::BudgetExhausted {
                reason: e.to_string(),
            },
            None => SolverOutcome::Declined {
                reason: "no diagonal point produced a value".to_string(),
            },
        }
    }
}

/// Stage 4: brute-force world enumeration along the diagonal (tiny `N`).
///
/// The last resort for non-unary KBs: enumerate every interpretation at
/// the two largest feasible domain sizes and extrapolate the `O(1/N)`
/// error term. Doubly exponential, so the budget binds almost
/// immediately — but it is complete on the sizes it can reach.
#[derive(Clone, Debug, Default)]
pub struct EnumerationDiagonalSolver {
    /// The diagonal whose finest tolerance the enumeration evaluates at.
    pub diagonal: Diagonal,
}

impl EnumerationDiagonalSolver {
    /// An enumeration stage over the given diagonal.
    pub fn new(diagonal: Diagonal) -> EnumerationDiagonalSolver {
        EnumerationDiagonalSolver { diagonal }
    }
}

impl Solver for EnumerationDiagonalSolver {
    fn name(&self) -> &str {
        "enumeration"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        // Largest feasible size within the world budget; the space is
        // doubly exponential, so the scan is tiny.
        let mut n_hi = None;
        for n in (2..=6usize).rev() {
            if let Some(c) = rw_worlds::count_interpretations(kb.vocab(), n) {
                if c <= budget.max_count {
                    n_hi = Some(n);
                    break;
                }
            }
        }
        let Some(n_hi) = n_hi else {
            return SolverOutcome::BudgetExhausted {
                reason: format!(
                    "even N=2 needs more than {} interpretations",
                    budget.max_count
                ),
            };
        };
        let tol = Tolerances::uniform(self.diagonal.finest_tau());
        let eval = |n: usize| {
            rw_worlds::enumerate::degree_of_belief_at_bounded(kb, query, n, &tol, budget.max_count)
        };
        // The dominant error term is O(1/N): evaluate at the two largest
        // feasible sizes and extrapolate linearly in 1/N. A one-point
        // "diagonal" (n_hi == 2) has nothing to extrapolate from — the
        // line through N=1 runs off the domain — so use the point value.
        let n_lo = n_hi - 1;
        if n_lo < 2 {
            return match eval(n_hi) {
                Ok(Some(v)) => SolverOutcome::Answered {
                    belief: Belief::Point(v),
                    provenance: Provenance::Enumeration { max_n: n_hi },
                },
                Ok(None) => SolverOutcome::Answered {
                    belief: Belief::Undefined,
                    provenance: Provenance::Enumeration { max_n: n_hi },
                },
                Err(e) => SolverOutcome::BudgetExhausted {
                    reason: e.to_string(),
                },
            };
        }
        match (eval(n_lo), eval(n_hi)) {
            (Ok(Some(v_lo)), Ok(Some(v_hi))) => {
                // v(N) = v∞ + c/N  ⇒
                // v∞ = v_hi + (v_hi − v_lo)·(1/N_hi)/(1/N_lo − 1/N_hi).
                let inv_lo = 1.0 / n_lo as f64;
                let inv_hi = 1.0 / n_hi as f64;
                let v = v_hi + (v_hi - v_lo) * inv_hi / (inv_lo - inv_hi);
                SolverOutcome::Answered {
                    belief: Belief::Point(v.clamp(0.0, 1.0)),
                    provenance: Provenance::Enumeration { max_n: n_hi },
                }
            }
            (Ok(None), Ok(None)) => SolverOutcome::Answered {
                belief: Belief::Undefined,
                provenance: Provenance::Enumeration { max_n: n_hi },
            },
            (Err(e), _) | (_, Err(e)) => SolverOutcome::BudgetExhausted {
                reason: e.to_string(),
            },
            (Ok(Some(_)), Ok(None)) | (Ok(None), Ok(Some(_))) => SolverOutcome::Declined {
                reason: format!("inconsistent satisfiability between N={n_lo} and N={n_hi}"),
            },
        }
    }
}

/// Richardson-style extrapolation for a geometric (τ ∝ 2^-k) diagonal
/// with an `O(τ)` error model; one sample passes through, none is `None`.
fn extrapolate(values: &[f64]) -> Option<f64> {
    match values {
        [] => None,
        [v] => Some(*v),
        [.., a, b] => Some((2.0 * b - a).clamp(0.0, 1.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_recurse() -> impl Fn(&KnowledgeBase, &Formula) -> Option<(Belief, Provenance)> {
        |_, _| None
    }

    fn parsed(kb_src: &str, q_src: &str) -> (KnowledgeBase, Formula) {
        let mut kb = KnowledgeBase::parse(kb_src).unwrap();
        let q = kb.parse_query(q_src).unwrap();
        (kb, q)
    }

    #[test]
    fn extrapolation_shapes() {
        assert_eq!(extrapolate(&[]), None);
        assert_eq!(extrapolate(&[0.3]), Some(0.3));
        assert_eq!(extrapolate(&[0.4, 0.45]), Some(0.5));
        // Clamped to the unit interval.
        assert_eq!(extrapolate(&[0.2, 0.7]), Some(1.0));
    }

    #[test]
    fn theorem_solver_answers_direct_inference_and_declines_otherwise() {
        let s = TheoremSolver;
        let (kb, q) = parsed("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Hep(Eric)");
        match s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                assert_eq!(belief.as_point(), Some(0.8));
                assert_eq!(provenance, Provenance::DirectInference);
            }
            other => panic!("{other:?}"),
        }
        let (kb, q) = parsed("||Black(x) | Bird(x)||_x ~=_1 0.2", "Black(C)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    #[test]
    fn maxent_solver_declines_non_unary() {
        let s = MaxEntSolver::default();
        let (kb, q) = parsed("Likes(A, B)", "Likes(B, A)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    #[test]
    fn unary_solver_reports_budget_exhaustion() {
        let s = UnaryDiagonalSolver::default();
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        match s.solve(&kb, &q, &Budget::counting(1), &no_recurse()) {
            SolverOutcome::BudgetExhausted { reason } => {
                assert!(reason.contains("budget"), "{reason}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_solver_declines_binary_vocabulary() {
        let s = UnaryDiagonalSolver::default();
        let (kb, q) = parsed("Likes(A, B)", "Likes(B, A)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    #[test]
    fn enumeration_single_point_fallback_when_only_n2_fits() {
        // Budget below the N=3 world count but above N=2: the solver must
        // use the single-point value instead of extrapolating off N=1.
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        let n2 = rw_worlds::count_interpretations(kb.vocab(), 2).unwrap();
        let n3 = rw_worlds::count_interpretations(kb.vocab(), 3).unwrap();
        assert!(n2 < n3);
        let s = EnumerationDiagonalSolver::default();
        match s.solve(&kb, &q, &Budget::counting(n2), &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                assert_eq!(provenance, Provenance::Enumeration { max_n: 2 });
                let v = belief.as_point().unwrap();
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn enumeration_budget_exhaustion_below_n2() {
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        let s = EnumerationDiagonalSolver::default();
        assert!(matches!(
            s.solve(&kb, &q, &Budget::counting(1), &no_recurse()),
            SolverOutcome::BudgetExhausted { .. }
        ));
    }
}
