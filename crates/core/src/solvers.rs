//! The built-in pipeline stages: theorem engine, Monte-Carlo sampling,
//! maximum entropy, exact unary counting, and brute-force enumeration.
//!
//! Each implements [`Solver`] and is sound on its own; the default
//! [`crate::RandomWorlds`] pipeline runs them in the order above (cheapest
//! and most exact first; the sampling stage only joins when approximate
//! inference is enabled). All are plain public structs so callers can
//! reorder, omit, re-budget, or interleave them with custom solvers via
//! [`crate::RandomWorlds::with_solvers`].

use crate::belief::{Belief, Provenance};
use crate::solver::{Budget, Diagonal, Recurse, Solver, SolverOutcome};
use crate::theorems;
use rw_logic::ast::Formula;
use rw_logic::{KnowledgeBase, Tolerances};
use rw_maxent::{LimitOutcome, MaxentError, SweepConfig};
use rw_worlds::mc::{self, McConfig};
// The diagonal-extrapolation shape is shared with the Monte-Carlo sweep;
// the single implementation lives in `rw_worlds::mc::stats`.
use rw_worlds::mc::stats::extrapolate;

/// Stage 1: the syntactic theorem engine (§5 of the paper).
///
/// Pattern matchers with fully checked side conditions for direct
/// inference, minimal reference classes, the strength rule, Dempster
/// combination, independence products, unique names, and nested defaults.
/// Exact, effectively instant, and the only stage that handles non-unary
/// KBs symbolically — but incomplete: it declines whenever no pattern
/// (soundly) matches.
#[derive(Clone, Copy, Debug, Default)]
pub struct TheoremSolver;

impl Solver for TheoremSolver {
    fn name(&self) -> &str {
        "theorems"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        _budget: &Budget,
        recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        match theorems::try_all(kb, query, recurse) {
            Some((belief, provenance)) => SolverOutcome::Answered { belief, provenance },
            None => SolverOutcome::Declined {
                reason: "no theorem pattern matched with verified side conditions".to_string(),
            },
        }
    }
}

/// Stage 2: the maximum-entropy asymptotics for unary KBs (§6).
///
/// Computes the entropy-maximizing atom distribution over a shrinking
/// τ-sweep and classifies the limit (converged / non-robust / infeasible).
/// Declines on KBs outside the essentially-propositional fragment it can
/// compile, or on numeric failure — both of which the exact finite-`N`
/// stages can still handle.
#[derive(Clone, Debug, Default)]
pub struct MaxEntSolver {
    /// The τ-sweep schedule and robustness probing configuration.
    pub sweep: SweepConfig,
}

impl MaxEntSolver {
    /// A maxent stage with the given sweep configuration.
    pub fn new(sweep: SweepConfig) -> MaxEntSolver {
        MaxEntSolver { sweep }
    }
}

impl Solver for MaxEntSolver {
    fn name(&self) -> &str {
        "maxent"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        _budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        match rw_maxent::degree_of_belief_limit(kb, query, &self.sweep) {
            Ok(LimitOutcome::Converged(v)) => SolverOutcome::Answered {
                belief: Belief::Point(v),
                provenance: Provenance::MaxEnt,
            },
            Ok(LimitOutcome::NonRobust(vs)) => SolverOutcome::Answered {
                belief: Belief::NonRobust(vs),
                provenance: Provenance::MaxEnt,
            },
            // Infeasibility is a *semantic* answer (Definition 4.3: the KB
            // is not eventually consistent), not a failure to apply.
            Ok(LimitOutcome::Infeasible) | Err(MaxentError::Infeasible) => {
                SolverOutcome::Answered {
                    belief: Belief::Undefined,
                    provenance: Provenance::MaxEnt,
                }
            }
            Err(e @ MaxentError::Compile(_)) | Err(e @ MaxentError::Numeric(_)) => {
                SolverOutcome::Declined {
                    reason: e.to_string(),
                }
            }
        }
    }
}

/// The sampling stage: Monte-Carlo estimation of the Definition 4.2
/// fraction along an `N`-sweep, with confidence intervals.
///
/// A bounded-cost, anytime stage for queries that miss every theorem
/// pattern and would otherwise fall into the (much slower) maxent or
/// counting stages. Sampling is KB-aware (asserted facts forced, unary
/// statistics proposed at their nominal rates — see
/// [`rw_worlds::mc::SamplePlan`]), stops adaptively once the 95% CI
/// half-width reaches the configured target, and answers with
/// [`Belief::Approximate`] so the uncertainty is part of the answer.
/// The stage [`Budget`] caps the total draws across the sweep.
///
/// Determinism: for a fixed [`McConfig::seed`] the answer is
/// bit-identical at any [`McConfig::threads`] count.
///
/// Declines when no draw satisfied the KB within the budget — an
/// improbable KB is indistinguishable from an inconsistent one by
/// sampling, so the exact stages get their turn.
#[derive(Clone, Debug, Default)]
pub struct MonteCarloSolver {
    /// Sampler tuning (seed, threads, caps, CI target).
    pub config: McConfig,
    /// The `(τ, N)` sweep points (2–4 domain sizes; the engine passes its
    /// configured diagonal).
    pub diagonal: Diagonal,
}

impl MonteCarloSolver {
    /// A sampling stage with the given configuration and sweep diagonal.
    pub fn new(config: McConfig, diagonal: Diagonal) -> MonteCarloSolver {
        MonteCarloSolver { config, diagonal }
    }
}

impl Solver for MonteCarloSolver {
    fn name(&self) -> &str {
        "montecarlo"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        // The stage budget is the hard sample cap; the config's own cap
        // still applies if tighter.
        let cap = u64::try_from(budget.max_count.min(u64::MAX as u128)).expect("clamped");
        let cfg = McConfig {
            max_samples: self.config.max_samples.min(cap),
            ..self.config.clone()
        };
        let sweep = mc::estimate_sweep(kb, query, self.diagonal.points(), &cfg);
        match sweep.value {
            Some(value) => SolverOutcome::Answered {
                belief: Belief::Approximate {
                    value,
                    ci_half_width: sweep.ci_half_width.unwrap_or(0.5),
                },
                provenance: Provenance::MonteCarlo {
                    drawn: sweep.drawn,
                    accepted: sweep.accepted,
                    n_points: sweep.points.iter().filter(|p| p.value.is_some()).count(),
                },
            },
            None => SolverOutcome::Declined {
                reason: format!(
                    "no sample satisfied the KB ({} drawn); cannot distinguish an \
                     improbable KB from an inconsistent one",
                    sweep.drawn
                ),
            },
        }
    }
}

/// Stage 3: exact unary profile counting along a `(τ, N)` diagonal.
///
/// Counts atom profiles exactly at each diagonal point and Richardson-
/// extrapolates the geometric τ-schedule. Declines on non-unary
/// vocabularies; reports budget exhaustion when the profile space
/// outgrows the stage budget before any point is computed.
#[derive(Clone, Debug, Default)]
pub struct UnaryDiagonalSolver {
    /// The `(τ, N)` evaluation points.
    pub diagonal: Diagonal,
}

impl UnaryDiagonalSolver {
    /// A unary counting stage over the given diagonal.
    pub fn new(diagonal: Diagonal) -> UnaryDiagonalSolver {
        UnaryDiagonalSolver { diagonal }
    }
}

impl Solver for UnaryDiagonalSolver {
    fn name(&self) -> &str {
        "unary-exact"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        if !kb.vocab().is_unary() {
            return SolverOutcome::Declined {
                reason: "vocabulary has functions or non-unary predicates".to_string(),
            };
        }
        let engine = rw_unary::UnaryEngine {
            max_profiles: budget.max_count,
        };
        let mut values = Vec::new();
        let mut max_n = 0usize;
        let mut undefined_steps = 0usize;
        let mut budget_hit = None;
        for &(tau, n) in self.diagonal.points() {
            let tol = Tolerances::uniform(tau);
            match engine.degree_of_belief_at(kb, query, n, &tol) {
                Ok(Some(v)) => {
                    values.push(v);
                    max_n = n.max(max_n);
                }
                Ok(None) => undefined_steps += 1,
                Err(e) => {
                    // Budget: extrapolate from the points already computed.
                    budget_hit = Some(e);
                    break;
                }
            }
        }
        if let Some(v) = extrapolate(&values) {
            return SolverOutcome::Answered {
                belief: Belief::Point(v),
                provenance: Provenance::UnaryExact { max_n },
            };
        }
        if undefined_steps > 0 {
            return SolverOutcome::Answered {
                belief: Belief::Undefined,
                provenance: Provenance::UnaryExact { max_n },
            };
        }
        match budget_hit {
            Some(e) => SolverOutcome::BudgetExhausted {
                reason: e.to_string(),
            },
            None => SolverOutcome::Declined {
                reason: "no diagonal point produced a value".to_string(),
            },
        }
    }
}

/// Stage 4: brute-force world enumeration along the diagonal (tiny `N`).
///
/// The last resort for non-unary KBs: enumerate every interpretation at
/// the two largest feasible domain sizes and extrapolate the `O(1/N)`
/// error term. Doubly exponential, so the budget binds almost
/// immediately — but it is complete on the sizes it can reach.
#[derive(Clone, Debug, Default)]
pub struct EnumerationDiagonalSolver {
    /// The diagonal whose finest tolerance the enumeration evaluates at.
    pub diagonal: Diagonal,
}

impl EnumerationDiagonalSolver {
    /// An enumeration stage over the given diagonal.
    pub fn new(diagonal: Diagonal) -> EnumerationDiagonalSolver {
        EnumerationDiagonalSolver { diagonal }
    }
}

impl Solver for EnumerationDiagonalSolver {
    fn name(&self) -> &str {
        "enumeration"
    }

    fn solve(
        &self,
        kb: &KnowledgeBase,
        query: &Formula,
        budget: &Budget,
        _recurse: &Recurse<'_>,
    ) -> SolverOutcome {
        // Largest feasible size within the world budget; the space is
        // doubly exponential, so the scan is tiny.
        let mut n_hi = None;
        for n in (2..=6usize).rev() {
            if let Some(c) = rw_worlds::count_interpretations(kb.vocab(), n) {
                if c <= budget.max_count {
                    n_hi = Some(n);
                    break;
                }
            }
        }
        let Some(n_hi) = n_hi else {
            return SolverOutcome::BudgetExhausted {
                reason: format!(
                    "even N=2 needs more than {} interpretations",
                    budget.max_count
                ),
            };
        };
        let tol = Tolerances::uniform(self.diagonal.finest_tau());
        let eval = |n: usize| {
            rw_worlds::enumerate::degree_of_belief_at_bounded(kb, query, n, &tol, budget.max_count)
        };
        // The dominant error term is O(1/N): evaluate at the two largest
        // feasible sizes and extrapolate linearly in 1/N. A one-point
        // "diagonal" (n_hi == 2) has nothing to extrapolate from — the
        // line through N=1 runs off the domain — so use the point value.
        let n_lo = n_hi - 1;
        if n_lo < 2 {
            return match eval(n_hi) {
                Ok(Some(v)) => SolverOutcome::Answered {
                    belief: Belief::Point(v),
                    provenance: Provenance::Enumeration { max_n: n_hi },
                },
                Ok(None) => SolverOutcome::Answered {
                    belief: Belief::Undefined,
                    provenance: Provenance::Enumeration { max_n: n_hi },
                },
                Err(e) => SolverOutcome::BudgetExhausted {
                    reason: e.to_string(),
                },
            };
        }
        match (eval(n_lo), eval(n_hi)) {
            (Ok(Some(v_lo)), Ok(Some(v_hi))) => {
                // v(N) = v∞ + c/N  ⇒
                // v∞ = v_hi + (v_hi − v_lo)·(1/N_hi)/(1/N_lo − 1/N_hi).
                let inv_lo = 1.0 / n_lo as f64;
                let inv_hi = 1.0 / n_hi as f64;
                let v = v_hi + (v_hi - v_lo) * inv_hi / (inv_lo - inv_hi);
                SolverOutcome::Answered {
                    belief: Belief::Point(v.clamp(0.0, 1.0)),
                    provenance: Provenance::Enumeration { max_n: n_hi },
                }
            }
            (Ok(None), Ok(None)) => SolverOutcome::Answered {
                belief: Belief::Undefined,
                provenance: Provenance::Enumeration { max_n: n_hi },
            },
            (Err(e), _) | (_, Err(e)) => SolverOutcome::BudgetExhausted {
                reason: e.to_string(),
            },
            (Ok(Some(_)), Ok(None)) | (Ok(None), Ok(Some(_))) => SolverOutcome::Declined {
                reason: format!("inconsistent satisfiability between N={n_lo} and N={n_hi}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_recurse() -> impl Fn(&KnowledgeBase, &Formula) -> Option<(Belief, Provenance)> {
        |_, _| None
    }

    fn parsed(kb_src: &str, q_src: &str) -> (KnowledgeBase, Formula) {
        let mut kb = KnowledgeBase::parse(kb_src).unwrap();
        let q = kb.parse_query(q_src).unwrap();
        (kb, q)
    }

    #[test]
    fn theorem_solver_answers_direct_inference_and_declines_otherwise() {
        let s = TheoremSolver;
        let (kb, q) = parsed("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)", "Hep(Eric)");
        match s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                assert_eq!(belief.as_point(), Some(0.8));
                assert_eq!(provenance, Provenance::DirectInference);
            }
            other => panic!("{other:?}"),
        }
        let (kb, q) = parsed("||Black(x) | Bird(x)||_x ~=_1 0.2", "Black(C)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    #[test]
    fn maxent_solver_declines_non_unary() {
        let s = MaxEntSolver::default();
        let (kb, q) = parsed("Likes(A, B)", "Likes(B, A)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    #[test]
    fn unary_solver_reports_budget_exhaustion() {
        let s = UnaryDiagonalSolver::default();
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        match s.solve(&kb, &q, &Budget::counting(1), &no_recurse()) {
            SolverOutcome::BudgetExhausted { reason } => {
                assert!(reason.contains("budget"), "{reason}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_solver_declines_binary_vocabulary() {
        let s = UnaryDiagonalSolver::default();
        let (kb, q) = parsed("Likes(A, B)", "Likes(B, A)");
        assert!(matches!(
            s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()),
            SolverOutcome::Declined { .. }
        ));
    }

    #[test]
    fn enumeration_single_point_fallback_when_only_n2_fits() {
        // Budget below the N=3 world count but above N=2: the solver must
        // use the single-point value instead of extrapolating off N=1.
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        let n2 = rw_worlds::count_interpretations(kb.vocab(), 2).unwrap();
        let n3 = rw_worlds::count_interpretations(kb.vocab(), 3).unwrap();
        assert!(n2 < n3);
        let s = EnumerationDiagonalSolver::default();
        match s.solve(&kb, &q, &Budget::counting(n2), &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                assert_eq!(provenance, Provenance::Enumeration { max_n: 2 });
                let v = belief.as_point().unwrap();
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn montecarlo_answers_with_ci_and_counts() {
        let (kb, q) = parsed(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); Jaun(Tom)",
            "Hep(Eric) & Hep(Tom)",
        );
        let s = MonteCarloSolver::default();
        match s.solve(&kb, &q, &Budget::UNLIMITED, &no_recurse()) {
            SolverOutcome::Answered { belief, provenance } => {
                let Belief::Approximate {
                    value,
                    ci_half_width,
                } = belief
                else {
                    panic!("{belief:?}");
                };
                assert!((0.0..=1.0).contains(&value), "{value}");
                assert!(ci_half_width > 0.0);
                let Provenance::MonteCarlo {
                    drawn,
                    accepted,
                    n_points,
                } = provenance
                else {
                    panic!();
                };
                assert!(drawn > 0 && accepted > 0 && n_points > 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn montecarlo_budget_caps_the_draws() {
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.6", "P(C)");
        let s = MonteCarloSolver::default();
        match s.solve(&kb, &q, &Budget::counting(4096), &no_recurse()) {
            SolverOutcome::Answered { provenance, .. } => match provenance {
                Provenance::MonteCarlo { drawn, .. } => assert!(drawn <= 4096, "{drawn}"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn montecarlo_declines_on_unsatisfiable_kb() {
        let (kb, q) = parsed("P(C) & !P(C)", "P(C)");
        let s = MonteCarloSolver::default();
        match s.solve(&kb, &q, &Budget::counting(2048), &no_recurse()) {
            SolverOutcome::Declined { reason } => {
                assert!(reason.contains("no sample satisfied"), "{reason}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn enumeration_budget_exhaustion_below_n2() {
        let (kb, q) = parsed("||P(x)||_x ~=_1 0.5", "P(C)");
        let s = EnumerationDiagonalSolver::default();
        assert!(matches!(
            s.solve(&kb, &q, &Budget::counting(1), &no_recurse()),
            SolverOutcome::BudgetExhausted { .. }
        ));
    }
}
