//! Degrees of belief and their provenance.

use std::fmt;

/// A random-worlds degree of belief `Pr∞(φ | KB)` (Definition 4.3).
#[derive(Clone, Debug, PartialEq)]
pub enum Belief {
    /// The double limit exists and equals this value.
    Point(f64),
    /// The limit is only pinned to an interval (interval-valued statistics,
    /// Theorems 5.6/5.23): every accumulation point lies inside.
    Interval(f64, f64),
    /// The limit depends on how `τ⃗ → 0` (conflicting defaults of
    /// unspecified relative strength, §5.3): no robust degree of belief.
    /// Carries the values observed along different tolerance paths.
    NonRobust(Vec<f64>),
    /// A Monte-Carlo point estimate with a 95% confidence half-width —
    /// the approximate-inference stage's answer shape. Unlike the exact
    /// variants this is a *statistical* claim: the true degree of belief
    /// lies within `value ± ci_half_width` at the reported confidence.
    Approximate {
        /// The sampled (and `N`-extrapolated) point estimate.
        value: f64,
        /// Half-width of the 95% confidence interval around `value`.
        ci_half_width: f64,
    },
    /// The KB is not eventually consistent: `Pr_N^τ` is undefined for all
    /// large `N`, small `τ⃗`.
    Undefined,
}

impl Belief {
    /// The point value, if the belief is (effectively) a point. For an
    /// [`Belief::Approximate`] belief this is the Monte-Carlo point
    /// estimate — callers needing the uncertainty should match on the
    /// variant or use [`Self::as_interval`].
    pub fn as_point(&self) -> Option<f64> {
        match self {
            Belief::Point(v) => Some(*v),
            Belief::Interval(lo, hi) if (hi - lo).abs() < 1e-9 => Some(*lo),
            Belief::Approximate { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The bounding interval, when one exists (for an approximate belief,
    /// the confidence interval clamped to `[0, 1]`).
    pub fn as_interval(&self) -> Option<(f64, f64)> {
        match self {
            Belief::Point(v) => Some((*v, *v)),
            Belief::Interval(lo, hi) => Some((*lo, *hi)),
            Belief::Approximate {
                value,
                ci_half_width,
            } => Some((
                (value - ci_half_width).max(0.0),
                (value + ci_half_width).min(1.0),
            )),
            _ => None,
        }
    }

    /// Does this belief license the default conclusion (`|~rw`, §5.1)?
    pub fn is_one(&self) -> bool {
        matches!(self.as_point(), Some(v) if (v - 1.0).abs() < 2e-3)
    }

    pub fn is_zero(&self) -> bool {
        matches!(self.as_point(), Some(v) if v.abs() < 2e-3)
    }

    /// Approximate equality between beliefs (for cross-engine validation).
    /// An [`Belief::Approximate`] belief widens the tolerance by its own
    /// confidence half-width.
    pub fn approx_eq(&self, other: &Belief, eps: f64) -> bool {
        match (self, other) {
            (Belief::Point(a), Belief::Point(b)) => (a - b).abs() <= eps,
            (Belief::Interval(a1, a2), Belief::Interval(b1, b2)) => {
                (a1 - b1).abs() <= eps && (a2 - b2).abs() <= eps
            }
            (Belief::Point(a), Belief::Interval(lo, hi))
            | (Belief::Interval(lo, hi), Belief::Point(a)) => *a >= lo - eps && *a <= hi + eps,
            (
                Belief::Approximate {
                    value: a,
                    ci_half_width: ha,
                },
                Belief::Approximate {
                    value: b,
                    ci_half_width: hb,
                },
            ) => (a - b).abs() <= eps + ha + hb,
            (
                Belief::Approximate {
                    value: a,
                    ci_half_width: ha,
                },
                other,
            )
            | (
                other,
                Belief::Approximate {
                    value: a,
                    ci_half_width: ha,
                },
            ) => match other.as_interval() {
                Some((lo, hi)) => *a >= lo - eps - ha && *a <= hi + eps + ha,
                None => false,
            },
            (Belief::Undefined, Belief::Undefined) => true,
            (Belief::NonRobust(_), Belief::NonRobust(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Belief {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Belief::Point(v) => write!(f, "{v:.6}"),
            Belief::Interval(lo, hi) => write!(f, "[{lo:.6}, {hi:.6}]"),
            Belief::NonRobust(vs) => {
                write!(f, "non-robust (candidates:")?;
                for v in vs {
                    write!(f, " {v:.4}")?;
                }
                write!(f, ")")
            }
            Belief::Approximate {
                value,
                ci_half_width,
            } => write!(f, "{value:.6} ± {ci_half_width:.4} (95% CI)"),
            Belief::Undefined => write!(f, "undefined (KB not eventually consistent)"),
        }
    }
}

/// Which method produced a belief.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Theorem 5.6 / Corollary 5.7 (direct inference).
    DirectInference,
    /// Theorem 5.16 / Corollary 5.17 (minimal reference class, irrelevance).
    MinimalReferenceClass,
    /// Theorem 5.23 (preference for stronger statistics along a chain).
    StrengthRule,
    /// Theorem 5.26 (Dempster's rule of combination).
    Dempster,
    /// Theorem 5.27 (vocabulary independence product).
    Independence(Vec<Box<Provenance>>),
    /// §5.5 unique-names bias.
    UniqueNames,
    /// Nested-default chaining (Example 5.14's derivation).
    NestedDefault,
    /// Maximum entropy τ-sweep (§6).
    MaxEnt,
    /// Exact unary counting along a `(τ, N)` diagonal with extrapolation.
    UnaryExact { max_n: usize },
    /// Exact world counting along a `(τ, N)` diagonal — compiled
    /// branch-and-count by default, brute-force odometer enumeration in
    /// oracle mode.
    Enumeration {
        /// The largest domain size the counts reached.
        max_n: usize,
        /// Search nodes visited computing the *numerator* counts
        /// (`#(KB ∧ query)` at both diagonal points). Deliberately
        /// excludes denominator work, which a warm
        /// [`crate::cache::DenomCache`] elides — numerator effort is the
        /// same on every run, so traces stay deterministic. `0` in
        /// oracle (odometer) mode.
        visited: u64,
        /// Visited nodes that branched over a slot (the rest were
        /// decided by propagation or pruning). `0` in oracle mode.
        branched: u64,
        /// Orbit representatives enumerated computing the numerator
        /// counts in symmetry-reduced mode (the analogue of `visited`
        /// there, with the same determinism guarantee). `0` in plain
        /// compiled and oracle modes.
        orbits: u64,
    },
    /// Direct entailment of asserted ground facts: every KB-world agrees,
    /// so the degree of belief is 0 or 1 outright (Def 4.2).
    Entailed,
    /// Monte-Carlo rejection sampling over an `N`-sweep
    /// (`rw_worlds::mc`), with the sampler's aggregate counts.
    MonteCarlo {
        /// Worlds drawn from the proposal across the sweep.
        drawn: u64,
        /// Draws that satisfied the KB.
        accepted: u64,
        /// Sweep points that produced an estimate.
        n_points: usize,
    },
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::DirectInference => write!(f, "direct inference (Thm 5.6)"),
            Provenance::MinimalReferenceClass => write!(f, "minimal reference class (Thm 5.16)"),
            Provenance::StrengthRule => write!(f, "strength rule (Thm 5.23)"),
            Provenance::Dempster => write!(f, "Dempster combination (Thm 5.26)"),
            Provenance::Independence(parts) => {
                write!(f, "independence product (Thm 5.27) of [")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "]")
            }
            Provenance::UniqueNames => write!(f, "unique-names bias (§5.5)"),
            Provenance::NestedDefault => write!(f, "nested-default chain (Ex 5.14)"),
            Provenance::MaxEnt => write!(f, "maximum entropy (§6)"),
            Provenance::UnaryExact { max_n } => write!(f, "exact unary counting (N ≤ {max_n})"),
            // The rendered form deliberately omits the effort counters:
            // provenance strings are stable serving output, and the
            // counters are surfaced structurally (the JSON `enum`
            // object) instead.
            Provenance::Enumeration { max_n, .. } => write!(f, "world enumeration (N ≤ {max_n})"),
            Provenance::Entailed => write!(f, "asserted ground fact (entailment)"),
            Provenance::MonteCarlo {
                drawn,
                accepted,
                n_points,
            } => write!(
                f,
                "Monte-Carlo sampling ({drawn} drawn, {accepted} accepted, {n_points} N-point(s))"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_extraction() {
        assert_eq!(Belief::Point(0.8).as_point(), Some(0.8));
        assert_eq!(Belief::Interval(0.3, 0.3).as_point(), Some(0.3));
        assert_eq!(Belief::Interval(0.3, 0.4).as_point(), None);
        assert_eq!(Belief::Undefined.as_point(), None);
    }

    #[test]
    fn one_and_zero() {
        assert!(Belief::Point(1.0).is_one());
        assert!(Belief::Point(0.9999999).is_one());
        assert!(!Belief::Point(0.99).is_one());
        assert!(Belief::Point(0.0).is_zero());
    }

    #[test]
    fn approx_equality() {
        assert!(Belief::Point(0.5).approx_eq(&Belief::Point(0.5005), 1e-2));
        assert!(Belief::Point(0.75).approx_eq(&Belief::Interval(0.7, 0.8), 1e-9));
        assert!(!Belief::Point(0.5).approx_eq(&Belief::Undefined, 1.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Belief::Point(0.8).to_string(), "0.800000");
        assert!(Belief::Interval(0.7, 0.8).to_string().starts_with('['));
        assert!(Belief::NonRobust(vec![0.0, 1.0])
            .to_string()
            .contains("non-robust"));
    }

    #[test]
    fn approximate_beliefs_carry_their_uncertainty() {
        let b = Belief::Approximate {
            value: 0.64,
            ci_half_width: 0.02,
        };
        assert_eq!(b.as_point(), Some(0.64));
        let (lo, hi) = b.as_interval().unwrap();
        assert!((lo - 0.62).abs() < 1e-12 && (hi - 0.66).abs() < 1e-12);
        assert!(b.to_string().contains("± 0.0200"), "{b}");
        // The CI is clamped to the unit interval.
        let edge = Belief::Approximate {
            value: 0.99,
            ci_half_width: 0.05,
        };
        assert_eq!(edge.as_interval().unwrap().1, 1.0);
    }

    #[test]
    fn approximate_equality_widens_by_the_ci() {
        let b = Belief::Approximate {
            value: 0.64,
            ci_half_width: 0.02,
        };
        assert!(b.approx_eq(&Belief::Point(0.65), 1e-3));
        assert!(!b.approx_eq(&Belief::Point(0.75), 1e-3));
        assert!(Belief::Point(0.65).approx_eq(&b, 1e-3));
        assert!(b.approx_eq(&Belief::Interval(0.6, 0.7), 1e-3));
        assert!(b.approx_eq(
            &Belief::Approximate {
                value: 0.67,
                ci_half_width: 0.02
            },
            1e-3
        ));
        assert!(!b.approx_eq(&Belief::Undefined, 1.0));
    }

    #[test]
    fn monte_carlo_provenance_displays_counts() {
        let p = Provenance::MonteCarlo {
            drawn: 4096,
            accepted: 512,
            n_points: 3,
        };
        let s = p.to_string();
        assert!(
            s.contains("4096 drawn") && s.contains("512 accepted"),
            "{s}"
        );
        assert!(Provenance::Entailed.to_string().contains("ground fact"));
    }
}
