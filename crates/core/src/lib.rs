//! The random-worlds inference engine — the paper's primary contribution.
//!
//! Given a knowledge base in `L≈` and a query, [`RandomWorlds`] computes the
//! degree of belief `Pr∞(query | KB)` of Definition 4.3, trying in order:
//!
//! 1. **The theorem engine** ([`theorems`]): syntactic pattern matchers with
//!    fully checked side conditions for the paper's general theorems —
//!    direct inference (Thm 5.6 / Cor 5.7), minimal reference classes with
//!    irrelevant information (Thm 5.16 / Cor 5.17), Kyburg-style strength
//!    (Thm 5.23), Dempster combination of essentially disjoint evidence
//!    (Thm 5.26), vocabulary independence (Thm 5.27) and the unique-names
//!    bias (§5.5). These apply to *non-unary* KBs too (the
//!    elephant–zookeeper example needs a binary predicate) and produce
//!    exact rationals.
//! 2. **Maximum entropy** (`rw-maxent`): the asymptotic computation for
//!    unary KBs, with τ-sweeps and robustness probing.
//! 3. **Exact finite-`N` sweeps** (`rw-unary` profile counting, then
//!    `rw-worlds` brute-force enumeration): a diagonal sweep
//!    `(τ_k ↓ 0, N_k ↑ ∞)` with Richardson extrapolation.
//!
//! Every answer carries a [`Provenance`] naming the method (and theorem)
//! that produced it.

pub mod belief;
pub mod engine;
pub mod klm;
pub mod patterns;
pub mod theorems;

pub use belief::{Belief, Provenance};
pub use engine::{BeliefResult, EngineError, RandomWorlds};
pub use theorems::dempster_rule;
