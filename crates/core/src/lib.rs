//! The random-worlds inference engine — the paper's primary contribution.
//!
//! Given a knowledge base in `L≈` and a query, [`RandomWorlds`] computes the
//! degree of belief `Pr∞(query | KB)` of Definition 4.3 by running a
//! **pipeline of [`Solver`] stages**. Each stage is an inference method
//! paired with a resource [`Budget`]; a query walks the stages in order
//! until one answers, and the walk is recorded stage-by-stage in the
//! [`Trace`] carried by every [`Response`] — so a caller can always see
//! which methods declined (and why) before one answered.
//!
//! The default pipeline is the paper's cascade, cheapest and most exact
//! first:
//!
//! 1. [`solvers::TheoremSolver`] — syntactic pattern matchers with fully
//!    checked side conditions for the paper's general theorems: direct
//!    inference (Thm 5.6 / Cor 5.7), minimal reference classes with
//!    irrelevant information (Thm 5.16 / Cor 5.17), Kyburg-style strength
//!    (Thm 5.23), Dempster combination (Thm 5.26), vocabulary independence
//!    (Thm 5.27) and the unique-names bias (§5.5). Handles non-unary KBs
//!    and produces exact rationals.
//! 2. [`solvers::MaxEntSolver`] — the §6 maximum-entropy asymptotics for
//!    unary KBs, with τ-sweeps and robustness probing.
//! 3. [`solvers::UnaryDiagonalSolver`] — exact unary profile counting
//!    along a [`Diagonal`] of `(τ_k ↓ 0, N_k ↑ ∞)` points with Richardson
//!    extrapolation.
//! 4. [`solvers::EnumerationDiagonalSolver`] — exact world counting at
//!    small `N`, the completeness backstop. By default it runs the
//!    compiled branch-and-count engine (`rw_worlds::count`): formulas
//!    are lowered into slot programs and counted by pruned search with
//!    free-slot multiplication, sharing `#worlds(KB)` denominators
//!    through a [`cache::DenomCache`] — orders of magnitude faster than
//!    the blind odometer enumeration it replaced (which survives as the
//!    cross-check oracle behind `compiled: false`).
//!
//! Enabling approximate inference ([`RandomWorlds::with_approx`], or the
//! `approx` field) inserts [`solvers::MonteCarloSolver`] between the
//! theorem and maxent stages: Monte-Carlo sampling of the Definition 4.2
//! fraction along the diagonal's `N`-sweep (`rw_worlds::mc`), answering
//! with [`Belief::Approximate`] — a point estimate plus a 95% confidence
//! half-width — in bounded time where the exact fallbacks can take
//! seconds. Sampling is deterministic for a fixed seed at any worker
//! thread count, and the sampler configuration is part of the cache
//! keyspace, so exact and approximate answers never mix in an
//! [`cache::AnswerCache`].
//!
//! The pipeline is open: [`RandomWorlds::with_solvers`] installs any stage
//! list (custom [`Solver`] implementations included), and
//! [`RandomWorlds::answer_batch`] answers many queries against one loaded
//! KB — the serving-path primitive.
//!
//! The serving path scales out in two orthogonal ways:
//!
//! * **Caching** ([`cache::AnswerCache`], installed via
//!   [`RandomWorlds::with_cache`]): answers are remembered under a
//!   canonical query key (`rw_logic::canon`), so repeats *and* syntactic
//!   variants — commuted conjunctions, double negations, alpha-renamed
//!   binders — are answered once. Cache hits set [`Response::cached`].
//! * **Parallel batches** ([`RandomWorlds::answer_batch_report`]): a
//!   std-only worker pool shards a batch across threads with
//!   deterministic, input-ordered results, sharing the cache between
//!   workers, and returns a [`batch::BatchReport`] aggregating per-stage
//!   totals, cache hits and wall/CPU time.
//!
//! Every answer carries a [`Provenance`] naming the method (and theorem)
//! that produced it, plus the full [`Trace`].

pub mod batch;
pub mod belief;
pub mod cache;
pub mod engine;
pub mod klm;
pub mod patterns;
pub mod solver;
pub mod solvers;
pub mod theorems;

pub use batch::{BatchOptions, BatchReport, BatchRun, StageTotals};
pub use belief::{Belief, Provenance};
pub use cache::{AnswerCache, CachedAnswer, DenomCache, DenomKey};
pub use engine::{BeliefResult, EngineError, RandomWorlds, Response};
pub use solver::{
    Budget, Diagonal, Recurse, Solver, SolverOutcome, Stage, StageStatus, StageTrace, Trace,
};
pub use solvers::MonteCarloSolver;
pub use theorems::dempster_rule;
// Re-exported so engine configuration (`RandomWorlds::approx`) does not
// force downstream crates to depend on `rw-worlds` directly.
pub use rw_worlds::mc::McConfig;
pub use rw_worlds::ScaledCount;
