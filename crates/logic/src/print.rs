//! Round-trippable pretty-printing of `L≈` formulas.
//!
//! Formulas store interned symbol ids, so printing needs the vocabulary;
//! [`Pretty`] pairs the two. The output re-parses to an alpha-equivalent
//! formula (verified by property tests in the parser round-trip suite).

use crate::ast::{CmpOp, Formula, PropExpr, Term};
use crate::vocab::Vocabulary;
use std::fmt;

/// A formula (or term / proportion expression) paired with its vocabulary
/// for display.
pub struct Pretty<'a, T: ?Sized> {
    pub vocab: &'a Vocabulary,
    pub item: &'a T,
}

impl<'a, T: ?Sized> Pretty<'a, T> {
    pub fn new(vocab: &'a Vocabulary, item: &'a T) -> Pretty<'a, T> {
        Pretty { vocab, item }
    }
}

// Precedence levels, loosest to tightest.
const PREC_IFF: u8 = 0;
const PREC_IMPLIES: u8 = 1;
const PREC_OR: u8 = 2;
const PREC_AND: u8 = 3;
const PREC_UNARY: u8 = 4;

fn fmt_formula(f: &Formula, v: &Vocabulary, prec: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mine = match f {
        Formula::Iff(..) => PREC_IFF,
        Formula::Implies(..) => PREC_IMPLIES,
        Formula::Or(..) => PREC_OR,
        Formula::And(..) => PREC_AND,
        _ => PREC_UNARY,
    };
    let parens = mine < prec;
    if parens {
        write!(out, "(")?;
    }
    match f {
        Formula::True => write!(out, "true")?,
        Formula::False => write!(out, "false")?,
        Formula::Pred(p, args) => {
            write!(out, "{}", v.pred_name(*p))?;
            if !args.is_empty() {
                write!(out, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    fmt_term(a, v, out)?;
                }
                write!(out, ")")?;
            }
        }
        Formula::TermEq(a, b) => {
            fmt_term(a, v, out)?;
            write!(out, " = ")?;
            fmt_term(b, v, out)?;
        }
        Formula::Not(g) => {
            write!(out, "!")?;
            fmt_formula(g, v, PREC_UNARY + 1, out)?;
        }
        Formula::And(a, b) => {
            fmt_formula(a, v, PREC_AND, out)?;
            write!(out, " & ")?;
            fmt_formula(b, v, PREC_AND + 1, out)?;
        }
        Formula::Or(a, b) => {
            fmt_formula(a, v, PREC_OR, out)?;
            write!(out, " or ")?;
            fmt_formula(b, v, PREC_OR + 1, out)?;
        }
        Formula::Implies(a, b) => {
            fmt_formula(a, v, PREC_IMPLIES + 1, out)?;
            write!(out, " => ")?;
            fmt_formula(b, v, PREC_IMPLIES, out)?;
        }
        Formula::Iff(a, b) => {
            fmt_formula(a, v, PREC_IFF + 1, out)?;
            write!(out, " <=> ")?;
            fmt_formula(b, v, PREC_IFF + 1, out)?;
        }
        Formula::Forall(x, g) => {
            write!(out, "forall {} (", v.var_name(*x))?;
            fmt_formula(g, v, 0, out)?;
            write!(out, ")")?;
        }
        Formula::Exists(x, g) => {
            write!(out, "exists {} (", v.var_name(*x))?;
            fmt_formula(g, v, 0, out)?;
            write!(out, ")")?;
        }
        Formula::Cmp(l, op, r) => {
            fmt_prop(l, v, out)?;
            match op {
                CmpOp::ApproxEq(t) => write!(out, " ~=_{} ", t.0)?,
                CmpOp::ApproxLeq(t) => write!(out, " <~_{} ", t.0)?,
                CmpOp::Eq => write!(out, " = ")?,
                CmpOp::Leq => write!(out, " <= ")?,
            }
            fmt_prop(r, v, out)?;
        }
    }
    if parens {
        write!(out, ")")?;
    }
    Ok(())
}

fn fmt_term(t: &Term, v: &Vocabulary, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Term::Var(x) => write!(out, "{}", v.var_name(*x)),
        Term::Const(c) => write!(out, "{}", v.const_name(*c)),
        Term::App(f, args) => {
            write!(out, "{}(", v.func_name(*f))?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(out, ", ")?;
                }
                fmt_term(a, v, out)?;
            }
            write!(out, ")")
        }
    }
}

fn fmt_prop(e: &PropExpr, v: &Vocabulary, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    fmt_prop_prec(e, v, 0, out)
}

fn fmt_prop_prec(
    e: &PropExpr,
    v: &Vocabulary,
    prec: u8,
    out: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    match e {
        PropExpr::Rat(r) => write!(out, "{r}"),
        PropExpr::Prop { body, cond, vars } => {
            write!(out, "||")?;
            fmt_formula(body, v, 0, out)?;
            if let Some(c) = cond {
                write!(out, " | ")?;
                fmt_formula(c, v, 0, out)?;
            }
            write!(out, "||_")?;
            if vars.len() == 1 {
                write!(out, "{}", v.var_name(vars[0]))?;
            } else {
                write!(out, "{{")?;
                for (i, x) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(out, ",")?;
                    }
                    write!(out, "{}", v.var_name(*x))?;
                }
                write!(out, "}}")?;
            }
            Ok(())
        }
        PropExpr::Add(a, b) => {
            let parens = prec > 0;
            if parens {
                write!(out, "(")?;
            }
            fmt_prop_prec(a, v, 0, out)?;
            write!(out, " + ")?;
            fmt_prop_prec(b, v, 1, out)?;
            if parens {
                write!(out, ")")?;
            }
            Ok(())
        }
        PropExpr::Sub(a, b) => {
            let parens = prec > 0;
            if parens {
                write!(out, "(")?;
            }
            fmt_prop_prec(a, v, 0, out)?;
            write!(out, " - ")?;
            fmt_prop_prec(b, v, 1, out)?;
            if parens {
                write!(out, ")")?;
            }
            Ok(())
        }
        PropExpr::Mul(a, b) => {
            fmt_prop_prec(a, v, 1, out)?;
            write!(out, " * ")?;
            fmt_prop_prec(b, v, 2, out)?;
            Ok(())
        }
    }
}

impl fmt::Display for Pretty<'_, Formula> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_formula(self.item, self.vocab, 0, f)
    }
}

impl fmt::Display for Pretty<'_, Term> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_term(self.item, self.vocab, f)
    }
}

impl fmt::Display for Pretty<'_, PropExpr> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prop(self.item, self.vocab, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn roundtrip(src: &str) {
        let mut v = Vocabulary::new();
        let f = parse_formula(&mut v, src).unwrap();
        let printed = Pretty::new(&v, &f).to_string();
        let f2 = parse_formula(&mut v, &printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(f, f2, "`{src}` -> `{printed}`");
    }

    #[test]
    fn roundtrips() {
        for src in [
            "Jaun(Eric)",
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8",
            "forall x (Penguin(x) => Bird(x))",
            "P(x) & Q(x) or R(x)",
            "P(x) or Q(x) & R(x)",
            "!(P(x) or Q(x))",
            "P(x) => Q(x) => R(x)",
            "(P(x) => Q(x)) => R(x)",
            "x = Eric & !(y = x)",
            "||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1",
            "||P(x)||_x + ||Q(x)||_x <= 1",
            "||P(x) & Q(x)||_x = 0.5 * ||Q(x)||_x",
            "exists y (Child(Alice, y) & Tall(y))",
            "P(x) <=> Q(x) <=> R(x)",
            "Rises-late(x, Next-day(y))",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn precedence_printing_is_minimal() {
        let mut v = Vocabulary::new();
        let f = parse_formula(&mut v, "P(x) & (Q(x) or R(x))").unwrap();
        assert_eq!(Pretty::new(&v, &f).to_string(), "P(x) & (Q(x) or R(x))");
        let g = parse_formula(&mut v, "(P(x) & Q(x)) or R(x)").unwrap();
        assert_eq!(Pretty::new(&v, &g).to_string(), "P(x) & Q(x) or R(x)");
    }
}
