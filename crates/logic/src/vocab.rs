//! Interned vocabularies: predicate, function, constant and variable symbols.
//!
//! A [`Vocabulary`] is the finite first-order signature `Φ` of the paper plus
//! an interner for variable names. Every AST node refers to symbols by dense
//! integer ids, which keeps formulas `Copy`-cheap to traverse and lets the
//! world engines index interpretations by `id` directly.

use std::collections::HashMap;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id!(
    /// A predicate symbol (with fixed arity).
    PredId
);
define_id!(
    /// A function symbol (with fixed arity).
    FuncId
);
define_id!(
    /// A constant symbol.
    ConstId
);
define_id!(
    /// A variable name.
    VarId
);

/// Symbol-classification errors raised while interning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VocabError {
    ArityMismatch {
        name: String,
        declared: usize,
        used: usize,
    },
    KindMismatch {
        name: String,
        declared: &'static str,
        used: &'static str,
    },
}

impl fmt::Display for VocabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VocabError::ArityMismatch {
                name,
                declared,
                used,
            } => write!(
                f,
                "symbol `{name}` declared with arity {declared} but used with arity {used}"
            ),
            VocabError::KindMismatch {
                name,
                declared,
                used,
            } => {
                write!(
                    f,
                    "symbol `{name}` declared as {declared} but used as {used}"
                )
            }
        }
    }
}

impl std::error::Error for VocabError {}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SymbolKind {
    Pred(PredId),
    Func(FuncId),
    Const(ConstId),
}

/// A finite first-order signature with a variable-name interner.
#[derive(Clone, Default)]
pub struct Vocabulary {
    pred_names: Vec<String>,
    pred_arities: Vec<usize>,
    func_names: Vec<String>,
    func_arities: Vec<usize>,
    const_names: Vec<String>,
    var_names: Vec<String>,
    symbols: HashMap<String, SymbolKind>,
    vars: HashMap<String, VarId>,
    fresh_counter: u32,
}

impl Vocabulary {
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Interns a predicate symbol, checking arity consistency.
    pub fn pred(&mut self, name: &str, arity: usize) -> Result<PredId, VocabError> {
        match self.symbols.get(name) {
            Some(&SymbolKind::Pred(id)) => {
                let declared = self.pred_arities[id.index()];
                if declared != arity {
                    return Err(VocabError::ArityMismatch {
                        name: name.to_string(),
                        declared,
                        used: arity,
                    });
                }
                Ok(id)
            }
            Some(other) => Err(VocabError::KindMismatch {
                name: name.to_string(),
                declared: kind_name(*other),
                used: "predicate",
            }),
            None => {
                let id = PredId(self.pred_names.len() as u32);
                self.pred_names.push(name.to_string());
                self.pred_arities.push(arity);
                self.symbols.insert(name.to_string(), SymbolKind::Pred(id));
                Ok(id)
            }
        }
    }

    /// Interns a function symbol, checking arity consistency.
    pub fn func(&mut self, name: &str, arity: usize) -> Result<FuncId, VocabError> {
        match self.symbols.get(name) {
            Some(&SymbolKind::Func(id)) => {
                let declared = self.func_arities[id.index()];
                if declared != arity {
                    return Err(VocabError::ArityMismatch {
                        name: name.to_string(),
                        declared,
                        used: arity,
                    });
                }
                Ok(id)
            }
            Some(other) => Err(VocabError::KindMismatch {
                name: name.to_string(),
                declared: kind_name(*other),
                used: "function",
            }),
            None => {
                let id = FuncId(self.func_names.len() as u32);
                self.func_names.push(name.to_string());
                self.func_arities.push(arity);
                self.symbols.insert(name.to_string(), SymbolKind::Func(id));
                Ok(id)
            }
        }
    }

    /// Interns a constant symbol.
    pub fn constant(&mut self, name: &str) -> Result<ConstId, VocabError> {
        match self.symbols.get(name) {
            Some(&SymbolKind::Const(id)) => Ok(id),
            Some(other) => Err(VocabError::KindMismatch {
                name: name.to_string(),
                declared: kind_name(*other),
                used: "constant",
            }),
            None => {
                let id = ConstId(self.const_names.len() as u32);
                self.const_names.push(name.to_string());
                self.symbols.insert(name.to_string(), SymbolKind::Const(id));
                Ok(id)
            }
        }
    }

    /// Interns a variable name (variables live in a separate namespace).
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.vars.get(name) {
            return id;
        }
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.vars.insert(name.to_string(), id);
        id
    }

    /// Creates a variable guaranteed not to collide with any parsed name.
    pub fn fresh_var(&mut self, hint: &str) -> VarId {
        loop {
            self.fresh_counter += 1;
            let name = format!("{hint}#{}", self.fresh_counter);
            if !self.vars.contains_key(&name) {
                return self.var(&name);
            }
        }
    }

    pub fn pred_count(&self) -> usize {
        self.pred_names.len()
    }

    pub fn func_count(&self) -> usize {
        self.func_names.len()
    }

    pub fn const_count(&self) -> usize {
        self.const_names.len()
    }

    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    pub fn pred_name(&self, id: PredId) -> &str {
        &self.pred_names[id.index()]
    }

    pub fn pred_arity(&self, id: PredId) -> usize {
        self.pred_arities[id.index()]
    }

    pub fn func_name(&self, id: FuncId) -> &str {
        &self.func_names[id.index()]
    }

    pub fn func_arity(&self, id: FuncId) -> usize {
        self.func_arities[id.index()]
    }

    pub fn const_name(&self, id: ConstId) -> &str {
        &self.const_names[id.index()]
    }

    pub fn var_name(&self, id: VarId) -> &str {
        &self.var_names[id.index()]
    }

    pub fn lookup_pred(&self, name: &str) -> Option<PredId> {
        match self.symbols.get(name) {
            Some(&SymbolKind::Pred(id)) => Some(id),
            _ => None,
        }
    }

    pub fn lookup_const(&self, name: &str) -> Option<ConstId> {
        match self.symbols.get(name) {
            Some(&SymbolKind::Const(id)) => Some(id),
            _ => None,
        }
    }

    pub fn preds(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.pred_names.len() as u32).map(PredId)
    }

    pub fn funcs(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.func_names.len() as u32).map(FuncId)
    }

    pub fn consts(&self) -> impl Iterator<Item = ConstId> + '_ {
        (0..self.const_names.len() as u32).map(ConstId)
    }

    /// True when the signature is unary: every predicate has arity 1 and
    /// there are no function symbols. This is the fragment where the
    /// maximum-entropy connection (paper §6) applies.
    pub fn is_unary(&self) -> bool {
        self.func_names.is_empty() && self.pred_arities.iter().all(|&a| a == 1)
    }
}

fn kind_name(kind: SymbolKind) -> &'static str {
    match kind {
        SymbolKind::Pred(_) => "predicate",
        SymbolKind::Func(_) => "function",
        SymbolKind::Const(_) => "constant",
    }
}

impl fmt::Debug for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vocabulary")
            .field("preds", &self.pred_names)
            .field("funcs", &self.func_names)
            .field("consts", &self.const_names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut v = Vocabulary::new();
        let p1 = v.pred("Bird", 1).unwrap();
        let p2 = v.pred("Bird", 1).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(v.pred_name(p1), "Bird");
        assert_eq!(v.pred_arity(p1), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut v = Vocabulary::new();
        v.pred("Likes", 2).unwrap();
        let err = v.pred("Likes", 1).unwrap_err();
        assert!(matches!(err, VocabError::ArityMismatch { .. }));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut v = Vocabulary::new();
        v.constant("Eric").unwrap();
        assert!(matches!(
            v.pred("Eric", 1),
            Err(VocabError::KindMismatch { .. })
        ));
        v.pred("Bird", 1).unwrap();
        assert!(matches!(
            v.constant("Bird"),
            Err(VocabError::KindMismatch { .. })
        ));
    }

    #[test]
    fn variables_are_separate_namespace() {
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        // A variable may share its spelling with nothing else, but variables
        // never clash with symbols because they are interned separately.
        let x1 = v.var("x");
        let x2 = v.var("x");
        assert_eq!(x1, x2);
        let y = v.var("y");
        assert_ne!(x1, y);
    }

    #[test]
    fn fresh_vars_never_collide() {
        let mut v = Vocabulary::new();
        let a = v.var("u#1");
        let b = v.fresh_var("u");
        assert_ne!(a, b);
        let c = v.fresh_var("u");
        assert_ne!(b, c);
    }

    #[test]
    fn unary_detection() {
        let mut v = Vocabulary::new();
        v.pred("P", 1).unwrap();
        v.constant("c").unwrap();
        assert!(v.is_unary());
        v.pred("R", 2).unwrap();
        assert!(!v.is_unary());
    }
}
