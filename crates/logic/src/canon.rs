//! Canonical query forms and knowledge-base fingerprints.
//!
//! Grove–Halpern–Koller's "Random Worlds and Maximum Entropy" observes
//! that many distinct surface queries reduce to the same unary/maxent
//! subproblem; an answer cache therefore wants a key that identifies a
//! query *up to the syntactic variation that cannot change its degree of
//! belief*. This module provides that key:
//!
//! * [`canonical_formula`] renders a formula as a name-based string that
//!   is invariant under
//!   - interning order (symbols appear by *name*, not by id, so the same
//!     query parsed into two different [`Vocabulary`]s agrees),
//!   - alpha-renaming of bound variables (binders print positionally),
//!   - reordering, reassociation and duplication of the commutative
//!     connectives (`&`, `or`, `<=>`, `+`, `*`, and both symmetric
//!     comparison shapes), and
//!   - double negation;
//! * [`kb_fingerprint`] hashes a whole [`KnowledgeBase`] — canonical
//!   conjuncts in assertion order — to a 64-bit FNV-1a value.
//!
//! Every rewrite above is an *equivalence* of `L≈` (conjunction and
//! disjunction are commutative, associative and idempotent; `≈_i` and `=`
//! are symmetric; `¬¬φ ≡ φ`), so two formulas with equal canonical forms
//! always denote the same proportion/degree of belief. The converse is
//! deliberately not attempted: canonicalization is a cheap syntactic
//! normal form, not a theorem prover.

use crate::ast::{CmpOp, Formula, PropExpr, Term};
use crate::kb::KnowledgeBase;
use crate::vocab::{VarId, Vocabulary};

/// 64-bit FNV-1a over a byte slice — the workspace-local stable hash
/// (`std`'s `DefaultHasher` is explicitly not stable across releases).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical string form of a formula (see the module docs for the
/// invariances). Free variables print by name, bound variables by binder
/// position, symbols by interned name.
///
/// ```
/// use rw_logic::{canon, KnowledgeBase};
/// let mut kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8").unwrap();
/// let a = kb.parse_query("Hep(Eric) & !!Jaun(Eric)").unwrap();
/// let b = kb.parse_query("Jaun(Eric) & Hep(Eric)").unwrap();
/// assert_eq!(
///     canon::canonical_formula(kb.vocab(), &a),
///     canon::canonical_formula(kb.vocab(), &b),
/// );
/// ```
pub fn canonical_formula(vocab: &Vocabulary, f: &Formula) -> String {
    canon_formula(f, vocab, &mut Vec::new())
}

/// A stable 64-bit fingerprint of a knowledge base: FNV-1a over the
/// canonical forms of its conjuncts, in assertion order.
///
/// Conjunct order is deliberately *kept significant*: it cannot change
/// the semantics, but downstream engines classify conjuncts
/// positionally, so two KBs only share a fingerprint when they would be
/// processed identically. Vocabulary-only differences (extra interned
/// symbols from earlier queries) do not affect the fingerprint — degrees
/// of belief are invariant under vocabulary expansion (paper footnote 8).
pub fn kb_fingerprint(kb: &KnowledgeBase) -> u64 {
    let mut src = String::new();
    for c in kb.conjuncts() {
        src.push_str(&canon_formula(c, kb.vocab(), &mut Vec::new()));
        src.push(';');
    }
    fnv1a(src.as_bytes())
}

/// A stable 64-bit fingerprint of a vocabulary's **shape**: predicate
/// and function arities in interning order plus the constant count.
///
/// [`kb_fingerprint`] deliberately ignores vocabulary-only differences
/// (degrees of belief are invariant under vocabulary expansion), but raw
/// finite-`N` *world counts* are not — every interned symbol contributes
/// slots whether or not the knowledge base mentions it (a fresh query
/// constant alone multiplies `#worlds_N` by `N`). Caches of such counts
/// key on this fingerprint alongside the KB's.
pub fn vocab_fingerprint(vocab: &Vocabulary) -> u64 {
    let mut src = String::new();
    for p in vocab.preds() {
        src.push_str(&format!("P{};", vocab.pred_arity(p)));
    }
    for f in vocab.funcs() {
        src.push_str(&format!("F{};", vocab.func_arity(f)));
    }
    src.push_str(&format!("C{}", vocab.const_count()));
    fnv1a(src.as_bytes())
}

fn canon_term(t: &Term, vocab: &Vocabulary, env: &[VarId]) -> String {
    match t {
        Term::Var(v) => {
            // Innermost binding wins, printed by absolute binder position
            // so alpha-renamed formulas agree; free variables by name.
            match env.iter().rposition(|b| b == v) {
                Some(i) => format!("${i}"),
                None => format!("?{}", vocab.var_name(*v)),
            }
        }
        Term::Const(c) => format!("c:{}", vocab.const_name(*c)),
        Term::App(f, args) => {
            let args: Vec<String> = args.iter().map(|a| canon_term(a, vocab, env)).collect();
            format!("f:{}({})", vocab.func_name(*f), args.join(","))
        }
    }
}

/// Flattens a run of one commutative connective, canonicalizes the
/// operands, then sorts and dedupes them (idempotence).
fn commutative_operands(
    f: &Formula,
    pick: fn(&Formula) -> Option<(&Formula, &Formula)>,
    vocab: &Vocabulary,
    env: &mut Vec<VarId>,
) -> Vec<String> {
    let mut stack = vec![f];
    let mut out = Vec::new();
    while let Some(g) = stack.pop() {
        match pick(g) {
            Some((a, b)) => {
                stack.push(a);
                stack.push(b);
            }
            None => out.push(canon_formula(g, vocab, env)),
        }
    }
    out.sort();
    out.dedup();
    out
}

fn canon_formula(f: &Formula, vocab: &Vocabulary, env: &mut Vec<VarId>) -> String {
    match f {
        Formula::True => "T".to_string(),
        Formula::False => "F".to_string(),
        Formula::Pred(p, args) => {
            let args: Vec<String> = args.iter().map(|a| canon_term(a, vocab, env)).collect();
            format!("P:{}({})", vocab.pred_name(*p), args.join(","))
        }
        Formula::TermEq(a, b) => {
            // Term equality is symmetric.
            let mut sides = [canon_term(a, vocab, env), canon_term(b, vocab, env)];
            sides.sort();
            format!("=({},{})", sides[0], sides[1])
        }
        Formula::Not(g) => match g.as_ref() {
            // ¬¬φ ≡ φ.
            Formula::Not(h) => canon_formula(h, vocab, env),
            _ => format!("!({})", canon_formula(g, vocab, env)),
        },
        Formula::And(..) => {
            let parts = commutative_operands(
                f,
                |g| match g {
                    Formula::And(a, b) => Some((a, b)),
                    _ => None,
                },
                vocab,
                env,
            );
            if parts.len() == 1 {
                parts.into_iter().next().expect("non-empty operand list")
            } else {
                format!("&({})", parts.join(","))
            }
        }
        Formula::Or(..) => {
            let parts = commutative_operands(
                f,
                |g| match g {
                    Formula::Or(a, b) => Some((a, b)),
                    _ => None,
                },
                vocab,
                env,
            );
            if parts.len() == 1 {
                parts.into_iter().next().expect("non-empty operand list")
            } else {
                format!("|({})", parts.join(","))
            }
        }
        Formula::Implies(a, b) => format!(
            "=>({},{})",
            canon_formula(a, vocab, env),
            canon_formula(b, vocab, env)
        ),
        Formula::Iff(a, b) => {
            // `<=>` is symmetric.
            let mut sides = [canon_formula(a, vocab, env), canon_formula(b, vocab, env)];
            sides.sort();
            format!("<=>({},{})", sides[0], sides[1])
        }
        Formula::Forall(v, g) => {
            env.push(*v);
            let body = canon_formula(g, vocab, env);
            env.pop();
            format!("A({body})")
        }
        Formula::Exists(v, g) => {
            env.push(*v);
            let body = canon_formula(g, vocab, env);
            env.pop();
            format!("E({body})")
        }
        Formula::Cmp(l, op, r) => {
            let mut lhs = canon_prop(l, vocab, env);
            let mut rhs = canon_prop(r, vocab, env);
            let op = match op {
                CmpOp::ApproxEq(t) => {
                    // `|ζ - ζ'| ≤ τ_i` is symmetric in its sides.
                    if rhs < lhs {
                        std::mem::swap(&mut lhs, &mut rhs);
                    }
                    format!("~={}", t.0)
                }
                CmpOp::ApproxLeq(t) => format!("<~{}", t.0),
                CmpOp::Eq => {
                    if rhs < lhs {
                        std::mem::swap(&mut lhs, &mut rhs);
                    }
                    "==".to_string()
                }
                CmpOp::Leq => "<=".to_string(),
            };
            format!("cmp[{op}]({lhs},{rhs})")
        }
    }
}

/// Flattens, sorts and dedupes a run of one commutative proportion
/// operator (`+` or `*`; both commute and associate over the reals, and
/// unlike formulas they are **not** deduped — `ζ + ζ ≠ ζ`).
fn commutative_prop_operands(
    e: &PropExpr,
    pick: fn(&PropExpr) -> Option<(&PropExpr, &PropExpr)>,
    vocab: &Vocabulary,
    env: &mut Vec<VarId>,
) -> Vec<String> {
    let mut stack = vec![e];
    let mut out = Vec::new();
    while let Some(g) = stack.pop() {
        match pick(g) {
            Some((a, b)) => {
                stack.push(a);
                stack.push(b);
            }
            None => out.push(canon_prop(g, vocab, env)),
        }
    }
    out.sort();
    out
}

fn canon_prop(e: &PropExpr, vocab: &Vocabulary, env: &mut Vec<VarId>) -> String {
    match e {
        PropExpr::Rat(r) => format!("r:{}/{}", r.num(), r.den()),
        PropExpr::Prop { body, cond, vars } => {
            let n = env.len();
            env.extend(vars.iter().copied());
            let body_s = canon_formula(body, vocab, env);
            let cond_s = cond
                .as_ref()
                .map(|c| canon_formula(c, vocab, env))
                .unwrap_or_default();
            env.truncate(n);
            format!("prop{}({body_s}|{cond_s})", vars.len())
        }
        PropExpr::Add(..) => {
            let parts = commutative_prop_operands(
                e,
                |g| match g {
                    PropExpr::Add(a, b) => Some((a, b)),
                    _ => None,
                },
                vocab,
                env,
            );
            format!("+({})", parts.join(","))
        }
        PropExpr::Mul(..) => {
            let parts = commutative_prop_operands(
                e,
                |g| match g {
                    PropExpr::Mul(a, b) => Some((a, b)),
                    _ => None,
                },
                vocab,
                env,
            );
            format!("*({})", parts.join(","))
        }
        PropExpr::Sub(a, b) => format!(
            "-({},{})",
            canon_prop(a, vocab, env),
            canon_prop(b, vocab, env)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon_of(kb_src: &str, query: &str) -> String {
        let mut kb = KnowledgeBase::parse(kb_src).unwrap();
        let q = kb.parse_query(query).unwrap();
        canonical_formula(kb.vocab(), &q)
    }

    #[test]
    fn commuted_conjunctions_and_disjunctions_agree() {
        let kb = "Hep(Eric); Jaun(Eric); Fever(Eric)";
        assert_eq!(
            canon_of(kb, "Hep(Eric) & Jaun(Eric)"),
            canon_of(kb, "Jaun(Eric) & Hep(Eric)")
        );
        assert_eq!(
            canon_of(kb, "(Hep(Eric) & Jaun(Eric)) & Fever(Eric)"),
            canon_of(kb, "Fever(Eric) & (Jaun(Eric) & Hep(Eric))")
        );
        assert_eq!(
            canon_of(kb, "Hep(Eric) or Jaun(Eric)"),
            canon_of(kb, "Jaun(Eric) or Hep(Eric)")
        );
        // Idempotence.
        assert_eq!(
            canon_of(kb, "Hep(Eric) & Hep(Eric)"),
            canon_of(kb, "Hep(Eric)")
        );
    }

    #[test]
    fn double_negation_cancels() {
        let kb = "Hep(Eric)";
        assert_eq!(canon_of(kb, "!!Hep(Eric)"), canon_of(kb, "Hep(Eric)"));
        assert_eq!(canon_of(kb, "!!!Hep(Eric)"), canon_of(kb, "!Hep(Eric)"));
        assert_ne!(canon_of(kb, "!Hep(Eric)"), canon_of(kb, "Hep(Eric)"));
    }

    #[test]
    fn alpha_renamed_binders_agree() {
        let kb = "P(C)";
        assert_eq!(
            canon_of(kb, "forall x (P(x))"),
            canon_of(kb, "forall y (P(y))")
        );
        assert_eq!(
            canon_of(kb, "||P(x) | Q(x)||_x ~=_1 0.5"),
            canon_of(kb, "||P(w) | Q(w)||_w ~=_1 0.5")
        );
    }

    #[test]
    fn symmetric_comparisons_agree_and_tolerances_distinguish() {
        let kb = "P(C)";
        assert_eq!(
            canon_of(kb, "||P(x)||_x ~=_1 0.5"),
            canon_of(kb, "0.5 ~=_1 ||P(x)||_x")
        );
        assert_ne!(
            canon_of(kb, "||P(x)||_x ~=_1 0.5"),
            canon_of(kb, "||P(x)||_x ~=_2 0.5")
        );
        // `⪯` is *not* symmetric.
        assert_ne!(
            canon_of(kb, "||P(x)||_x <~_1 0.5"),
            canon_of(kb, "0.5 <~_1 ||P(x)||_x")
        );
    }

    #[test]
    fn term_equality_is_symmetric() {
        let kb = "P(A); P(B)";
        assert_eq!(canon_of(kb, "A = B"), canon_of(kb, "B = A"));
    }

    #[test]
    fn interning_order_does_not_matter() {
        // Same query text, but the vocabularies interned the symbols in
        // different orders (ids differ); canonical forms still agree.
        let a = canon_of("Jaun(Eric); Hep(Tom)", "Hep(Eric) & Jaun(Eric)");
        let b = canon_of("Hep(Tom); Jaun(Eric)", "Hep(Eric) & Jaun(Eric)");
        assert_eq!(a, b);
    }

    #[test]
    fn free_variables_print_by_name() {
        let mut kb = KnowledgeBase::parse("P(C)").unwrap();
        let open = kb.parse_query("P(z)").unwrap();
        let s = canonical_formula(kb.vocab(), &open);
        assert!(s.contains("?z"), "{s}");
    }

    #[test]
    fn fingerprints_are_stable_and_order_sensitive() {
        let kb1 = KnowledgeBase::parse("P(A); Q(A)").unwrap();
        let kb2 = KnowledgeBase::parse("P(A); Q(A)").unwrap();
        assert_eq!(kb_fingerprint(&kb1), kb_fingerprint(&kb2));
        let swapped = KnowledgeBase::parse("Q(A); P(A)").unwrap();
        assert_ne!(kb_fingerprint(&kb1), kb_fingerprint(&swapped));
        let different = KnowledgeBase::parse("P(A); Q(B)").unwrap();
        assert_ne!(kb_fingerprint(&kb1), kb_fingerprint(&different));
    }

    #[test]
    fn fingerprint_ignores_vocabulary_only_expansion() {
        let kb1 = KnowledgeBase::parse("P(A)").unwrap();
        let mut kb2 = KnowledgeBase::parse("P(A)").unwrap();
        // Parsing a query interns new symbols without asserting anything.
        let _ = kb2.parse_query("Q(B)").unwrap();
        assert_eq!(kb_fingerprint(&kb1), kb_fingerprint(&kb2));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
