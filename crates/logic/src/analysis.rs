//! Syntactic analysis over `L≈` formulas: free variables, mentioned symbols,
//! substitution, generalization and alpha-equivalence.
//!
//! The theorem engine in `rw-core` leans on these utilities to check the
//! *side conditions* of the paper's theorems — e.g. Theorem 5.6 requires
//! that the constants `c̄` appear in neither `KB'`, `φ(x̄)` nor `ψ(x̄)`, and
//! Theorem 5.16(c) restricts where the symbols of `φ` may occur.

use crate::ast::{Formula, PropExpr, Term};
use crate::vocab::{ConstId, FuncId, PredId, VarId};
use std::collections::BTreeSet;

/// The set of variables occurring free in a formula.
///
/// Both quantifiers and proportion subscripts bind variables (`||·||_x̄` is a
/// binder; paper §4.1).
pub fn free_vars(f: &Formula) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    collect_free(f, &mut Vec::new(), &mut out);
    out
}

fn collect_free_term(t: &Term, bound: &[VarId], out: &mut BTreeSet<VarId>) {
    match t {
        Term::Var(v) => {
            if !bound.contains(v) {
                out.insert(*v);
            }
        }
        Term::Const(_) => {}
        Term::App(_, args) => {
            for a in args {
                collect_free_term(a, bound, out);
            }
        }
    }
}

fn collect_free(f: &Formula, bound: &mut Vec<VarId>, out: &mut BTreeSet<VarId>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Pred(_, args) => {
            for a in args {
                collect_free_term(a, bound, out);
            }
        }
        Formula::TermEq(a, b) => {
            collect_free_term(a, bound, out);
            collect_free_term(b, bound, out);
        }
        Formula::Not(g) => collect_free(g, bound, out),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            collect_free(a, bound, out);
            collect_free(b, bound, out);
        }
        Formula::Forall(v, g) | Formula::Exists(v, g) => {
            bound.push(*v);
            collect_free(g, bound, out);
            bound.pop();
        }
        Formula::Cmp(l, _, r) => {
            collect_free_prop(l, bound, out);
            collect_free_prop(r, bound, out);
        }
    }
}

fn collect_free_prop(e: &PropExpr, bound: &mut Vec<VarId>, out: &mut BTreeSet<VarId>) {
    match e {
        PropExpr::Rat(_) => {}
        PropExpr::Prop { body, cond, vars } => {
            let n = bound.len();
            bound.extend(vars.iter().copied());
            collect_free(body, bound, out);
            if let Some(c) = cond {
                collect_free(c, bound, out);
            }
            bound.truncate(n);
        }
        PropExpr::Add(a, b) | PropExpr::Sub(a, b) | PropExpr::Mul(a, b) => {
            collect_free_prop(a, bound, out);
            collect_free_prop(b, bound, out);
        }
    }
}

/// Symbols (of each kind) mentioned anywhere in a formula.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Symbols {
    pub preds: BTreeSet<PredId>,
    pub funcs: BTreeSet<FuncId>,
    pub consts: BTreeSet<ConstId>,
}

impl Symbols {
    pub fn is_disjoint(&self, other: &Symbols) -> bool {
        self.preds.is_disjoint(&other.preds)
            && self.funcs.is_disjoint(&other.funcs)
            && self.consts.is_disjoint(&other.consts)
    }

    pub fn union(&self, other: &Symbols) -> Symbols {
        Symbols {
            preds: self.preds.union(&other.preds).copied().collect(),
            funcs: self.funcs.union(&other.funcs).copied().collect(),
            consts: self.consts.union(&other.consts).copied().collect(),
        }
    }
}

/// Collects every predicate, function and constant symbol in a formula.
pub fn symbols(f: &Formula) -> Symbols {
    let mut s = Symbols::default();
    walk_formula(f, &mut |g| {
        match g {
            Formula::Pred(p, args) => {
                s.preds.insert(*p);
                for a in args {
                    collect_term_symbols(a, &mut s);
                }
            }
            Formula::TermEq(a, b) => {
                collect_term_symbols(a, &mut s);
                collect_term_symbols(b, &mut s);
            }
            _ => {}
        }
        true
    });
    s
}

fn collect_term_symbols(t: &Term, s: &mut Symbols) {
    match t {
        Term::Var(_) => {}
        Term::Const(c) => {
            s.consts.insert(*c);
        }
        Term::App(f, args) => {
            s.funcs.insert(*f);
            for a in args {
                collect_term_symbols(a, s);
            }
        }
    }
}

/// Constants mentioned in a formula.
pub fn constants(f: &Formula) -> BTreeSet<ConstId> {
    symbols(f).consts
}

/// Strips paired negations: `!!φ → φ` (recursively), leaving a single
/// negation intact.
pub fn strip_double_neg(f: &Formula) -> &Formula {
    match f {
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Not(g) => strip_double_neg(g),
            _ => f,
        },
        _ => f,
    }
}

/// Recognizes a ground literal — `P(c̄)` or `!P(c̄)` (modulo double
/// negation) with all-constant arguments — as
/// `(predicate, arguments, polarity)`.
pub fn as_ground_literal(f: &Formula) -> Option<(PredId, Vec<ConstId>, bool)> {
    let (atom, value) = match strip_double_neg(f) {
        Formula::Not(inner) => (strip_double_neg(inner), false),
        other => (other, true),
    };
    let Formula::Pred(p, args) = atom else {
        return None;
    };
    let consts: Option<Vec<ConstId>> = args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            _ => None,
        })
        .collect();
    Some((*p, consts?, value))
}

/// Depth-first traversal visiting every subformula (including bodies and
/// conditions of proportion expressions). The visitor returns `false` to
/// prune descent below a node.
pub fn walk_formula(f: &Formula, visit: &mut impl FnMut(&Formula) -> bool) {
    if !visit(f) {
        return;
    }
    match f {
        Formula::True | Formula::False | Formula::Pred(..) | Formula::TermEq(..) => {}
        Formula::Not(g) => walk_formula(g, visit),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            walk_formula(a, visit);
            walk_formula(b, visit);
        }
        Formula::Forall(_, g) | Formula::Exists(_, g) => walk_formula(g, visit),
        Formula::Cmp(l, _, r) => {
            walk_prop(l, visit);
            walk_prop(r, visit);
        }
    }
}

fn walk_prop(e: &PropExpr, visit: &mut impl FnMut(&Formula) -> bool) {
    match e {
        PropExpr::Rat(_) => {}
        PropExpr::Prop { body, cond, .. } => {
            walk_formula(body, visit);
            if let Some(c) = cond {
                walk_formula(c, visit);
            }
        }
        PropExpr::Add(a, b) | PropExpr::Sub(a, b) | PropExpr::Mul(a, b) => {
            walk_prop(a, visit);
            walk_prop(b, visit);
        }
    }
}

/// Renames every *free* occurrence of variable `from` to `to`.
///
/// The caller is responsible for `to` not being captured (use
/// [`crate::Vocabulary::fresh_var`] when in doubt).
pub fn rename_var(f: &Formula, from: VarId, to: VarId) -> Formula {
    substitute_var(f, from, &Term::Var(to))
}

/// Substitutes term `t` for every free occurrence of variable `v`.
pub fn substitute_var(f: &Formula, v: VarId, t: &Term) -> Formula {
    map_terms(f, &mut |term, bound| {
        if let Term::Var(w) = term {
            if *w == v && !bound.contains(w) {
                return Some(t.clone());
            }
        }
        None
    })
}

/// Substitutes variable `v` (as a term) for every occurrence of constant `c`.
///
/// This is the *generalization* step `φ(c) ⇝ φ(x)` used when reading a
/// reference class off the facts known about an individual (paper §5.2). The
/// caller must pass a variable that is not bound anywhere in `f` (a fresh
/// variable always works: binders introduced by the parser are never fresh).
pub fn generalize_const(f: &Formula, c: ConstId, v: VarId) -> Formula {
    map_terms(f, &mut |term, _bound| {
        if let Term::Const(k) = term {
            if *k == c {
                return Some(Term::Var(v));
            }
        }
        None
    })
}

/// Substitutes constants for variables: `φ(x̄) ⇝ φ(c̄)`.
pub fn instantiate(f: &Formula, pairs: &[(VarId, ConstId)]) -> Formula {
    let mut out = f.clone();
    for (v, c) in pairs {
        out = substitute_var(&out, *v, &Term::Const(*c));
    }
    out
}

/// Structurally maps terms through a formula. The callback receives the term
/// and the list of variables bound at that point; returning `Some` replaces
/// the term wholesale, `None` recurses into it.
fn map_terms(f: &Formula, m: &mut impl FnMut(&Term, &[VarId]) -> Option<Term>) -> Formula {
    fn go_term(
        t: &Term,
        bound: &mut Vec<VarId>,
        m: &mut impl FnMut(&Term, &[VarId]) -> Option<Term>,
    ) -> Term {
        if let Some(rep) = m(t, bound) {
            return rep;
        }
        match t {
            Term::Var(_) | Term::Const(_) => t.clone(),
            Term::App(f, args) => {
                Term::App(*f, args.iter().map(|a| go_term(a, bound, m)).collect())
            }
        }
    }
    fn go(
        f: &Formula,
        bound: &mut Vec<VarId>,
        m: &mut impl FnMut(&Term, &[VarId]) -> Option<Term>,
    ) -> Formula {
        match f {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Pred(p, args) => {
                Formula::Pred(*p, args.iter().map(|a| go_term(a, bound, m)).collect())
            }
            Formula::TermEq(a, b) => Formula::TermEq(go_term(a, bound, m), go_term(b, bound, m)),
            Formula::Not(g) => Formula::not(go(g, bound, m)),
            Formula::And(a, b) => Formula::and(go(a, bound, m), go(b, bound, m)),
            Formula::Or(a, b) => Formula::or(go(a, bound, m), go(b, bound, m)),
            Formula::Implies(a, b) => Formula::implies(go(a, bound, m), go(b, bound, m)),
            Formula::Iff(a, b) => Formula::iff(go(a, bound, m), go(b, bound, m)),
            Formula::Forall(v, g) => {
                bound.push(*v);
                let body = go(g, bound, m);
                bound.pop();
                Formula::forall(*v, body)
            }
            Formula::Exists(v, g) => {
                bound.push(*v);
                let body = go(g, bound, m);
                bound.pop();
                Formula::exists(*v, body)
            }
            Formula::Cmp(l, op, r) => Formula::Cmp(go_prop(l, bound, m), *op, go_prop(r, bound, m)),
        }
    }
    fn go_prop(
        e: &PropExpr,
        bound: &mut Vec<VarId>,
        m: &mut impl FnMut(&Term, &[VarId]) -> Option<Term>,
    ) -> PropExpr {
        match e {
            PropExpr::Rat(r) => PropExpr::Rat(*r),
            PropExpr::Prop { body, cond, vars } => {
                let n = bound.len();
                bound.extend(vars.iter().copied());
                let new_body = go(body, bound, m);
                let new_cond = cond.as_ref().map(|c| Box::new(go(c, bound, m)));
                bound.truncate(n);
                PropExpr::Prop {
                    body: Box::new(new_body),
                    cond: new_cond,
                    vars: vars.clone(),
                }
            }
            PropExpr::Add(a, b) => PropExpr::Add(
                Box::new(go_prop(a, bound, m)),
                Box::new(go_prop(b, bound, m)),
            ),
            PropExpr::Sub(a, b) => PropExpr::Sub(
                Box::new(go_prop(a, bound, m)),
                Box::new(go_prop(b, bound, m)),
            ),
            PropExpr::Mul(a, b) => PropExpr::Mul(
                Box::new(go_prop(a, bound, m)),
                Box::new(go_prop(b, bound, m)),
            ),
        }
    }
    go(f, &mut Vec::new(), m)
}

/// Alpha-equivalence: equality up to consistent renaming of bound variables.
pub fn alpha_eq(a: &Formula, b: &Formula) -> bool {
    alpha_eq_with(a, b, &mut Vec::new())
}

fn alpha_eq_with(a: &Formula, b: &Formula, map: &mut Vec<(VarId, VarId)>) -> bool {
    match (a, b) {
        (Formula::True, Formula::True) | (Formula::False, Formula::False) => true,
        (Formula::Pred(p, xs), Formula::Pred(q, ys)) => {
            p == q
                && xs.len() == ys.len()
                && xs.iter().zip(ys).all(|(x, y)| term_alpha_eq(x, y, map))
        }
        (Formula::TermEq(x1, x2), Formula::TermEq(y1, y2)) => {
            term_alpha_eq(x1, y1, map) && term_alpha_eq(x2, y2, map)
        }
        (Formula::Not(x), Formula::Not(y)) => alpha_eq_with(x, y, map),
        (Formula::And(x1, x2), Formula::And(y1, y2))
        | (Formula::Or(x1, x2), Formula::Or(y1, y2))
        | (Formula::Implies(x1, x2), Formula::Implies(y1, y2))
        | (Formula::Iff(x1, x2), Formula::Iff(y1, y2)) => {
            alpha_eq_with(x1, y1, map) && alpha_eq_with(x2, y2, map)
        }
        (Formula::Forall(v, x), Formula::Forall(w, y))
        | (Formula::Exists(v, x), Formula::Exists(w, y)) => {
            map.push((*v, *w));
            let r = alpha_eq_with(x, y, map);
            map.pop();
            r
        }
        (Formula::Cmp(l1, o1, r1), Formula::Cmp(l2, o2, r2)) => {
            o1 == o2 && prop_alpha_eq(l1, l2, map) && prop_alpha_eq(r1, r2, map)
        }
        _ => false,
    }
}

fn term_alpha_eq(a: &Term, b: &Term, map: &[(VarId, VarId)]) -> bool {
    match (a, b) {
        (Term::Var(v), Term::Var(w)) => {
            // The innermost binding wins; free variables must match exactly.
            for &(bv, bw) in map.iter().rev() {
                let lv = bv == *v;
                let lw = bw == *w;
                if lv || lw {
                    return lv && lw;
                }
            }
            v == w
        }
        (Term::Const(c), Term::Const(d)) => c == d,
        (Term::App(f, xs), Term::App(g, ys)) => {
            f == g
                && xs.len() == ys.len()
                && xs.iter().zip(ys).all(|(x, y)| term_alpha_eq(x, y, map))
        }
        _ => false,
    }
}

fn prop_alpha_eq(a: &PropExpr, b: &PropExpr, map: &mut Vec<(VarId, VarId)>) -> bool {
    match (a, b) {
        (PropExpr::Rat(x), PropExpr::Rat(y)) => x == y,
        (
            PropExpr::Prop {
                body: b1,
                cond: c1,
                vars: v1,
            },
            PropExpr::Prop {
                body: b2,
                cond: c2,
                vars: v2,
            },
        ) => {
            if v1.len() != v2.len() {
                return false;
            }
            let n = map.len();
            for (x, y) in v1.iter().zip(v2) {
                map.push((*x, *y));
            }
            let ok = alpha_eq_with(b1, b2, map)
                && match (c1, c2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => alpha_eq_with(x, y, map),
                    _ => false,
                };
            map.truncate(n);
            ok
        }
        (PropExpr::Add(x1, x2), PropExpr::Add(y1, y2))
        | (PropExpr::Sub(x1, x2), PropExpr::Sub(y1, y2))
        | (PropExpr::Mul(x1, x2), PropExpr::Mul(y1, y2)) => {
            prop_alpha_eq(x1, y1, map) && prop_alpha_eq(x2, y2, map)
        }
        _ => false,
    }
}

/// Tolerance indices mentioned anywhere in a formula.
pub fn tolerance_indices(f: &Formula) -> BTreeSet<crate::ast::TolId> {
    let mut out = BTreeSet::new();
    walk_formula(f, &mut |g| {
        if let Formula::Cmp(_, op, _) = g {
            if let Some(t) = op.tolerance() {
                out.insert(t);
            }
        }
        true
    });
    out
}

/// True when the formula lies in the *quantifier-free unary single-variable*
/// fragment over variable `v`: boolean combinations of `P(v)` atoms. This is
/// the fragment the maximum-entropy compiler consumes directly.
pub fn is_qf_unary_over(f: &Formula, v: VarId) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Pred(_, args) => args.len() == 1 && args[0] == Term::Var(v),
        Formula::Not(g) => is_qf_unary_over(g, v),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            is_qf_unary_over(a, v) && is_qf_unary_over(b, v)
        }
        _ => false,
    }
}

/// True when the formula is a boolean combination of unary-predicate atoms
/// applied to the single constant `c`.
pub fn is_qf_unary_over_const(f: &Formula, c: ConstId) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Pred(_, args) => args.len() == 1 && args[0] == Term::Const(c),
        Formula::Not(g) => is_qf_unary_over_const(g, c),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            is_qf_unary_over_const(a, c) && is_qf_unary_over_const(b, c)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use crate::vocab::Vocabulary;

    fn parse(v: &mut Vocabulary, s: &str) -> Formula {
        parse_formula(v, s).unwrap()
    }

    #[test]
    fn free_vars_sees_through_binders() {
        let mut v = Vocabulary::new();
        let f = parse(&mut v, "forall x (Child(x, y))");
        let y = v.var("y");
        assert_eq!(free_vars(&f), [y].into_iter().collect());

        let g = parse(&mut v, "||Child(x, y)||_x ~=_1 0.5");
        assert_eq!(free_vars(&g), [y].into_iter().collect());

        let h = parse(&mut v, "||Child(x, y)||_{x,y} ~=_1 0.5");
        assert!(free_vars(&h).is_empty());
    }

    #[test]
    fn symbols_collects_everything() {
        let mut v = Vocabulary::new();
        let f = parse(&mut v, "Jaun(Eric) & ||Hep(x) | Jaun(x)||_x ~=_1 0.8");
        let s = symbols(&f);
        assert_eq!(s.preds.len(), 2);
        assert_eq!(s.consts.len(), 1);
        assert!(s.funcs.is_empty());
    }

    #[test]
    fn substitution_avoids_bound_occurrences() {
        let mut v = Vocabulary::new();
        let f = parse(&mut v, "P(x) & forall x (Q(x))");
        let x = v.var("x");
        let eric = v.constant("Eric").unwrap();
        let g = substitute_var(&f, x, &Term::Const(eric));
        let expected = parse(&mut v, "P(Eric) & forall x (Q(x))");
        assert_eq!(g, expected);
    }

    #[test]
    fn generalization_inverts_instantiation() {
        let mut v = Vocabulary::new();
        let f = parse(&mut v, "Jaun(Eric) & Fever(Eric)");
        let eric = v.lookup_const("Eric").unwrap();
        let z = v.fresh_var("z");
        let gen = generalize_const(&f, eric, z);
        let back = instantiate(&gen, &[(z, eric)]);
        assert_eq!(back, f);
        assert!(constants(&gen).is_empty());
    }

    #[test]
    fn alpha_equivalence() {
        let mut v = Vocabulary::new();
        let a = parse(&mut v, "forall x (P(x) => Q(x))");
        let b = parse(&mut v, "forall y (P(y) => Q(y))");
        assert!(alpha_eq(&a, &b));
        let c = parse(&mut v, "forall y (Q(y) => P(y))");
        assert!(!alpha_eq(&a, &c));

        let d = parse(&mut v, "||P(x)||_x ~=_1 1");
        let e = parse(&mut v, "||P(w)||_w ~=_1 1");
        assert!(alpha_eq(&d, &e));
        let f2 = parse(&mut v, "||P(w)||_w ~=_2 1");
        assert!(!alpha_eq(&d, &f2));
    }

    #[test]
    fn alpha_eq_distinguishes_free_vars() {
        let mut v = Vocabulary::new();
        let a = parse(&mut v, "P(x)");
        let b = parse(&mut v, "P(y)");
        assert!(!alpha_eq(&a, &b));
    }

    #[test]
    fn qf_unary_fragment() {
        let mut v = Vocabulary::new();
        let f = parse(&mut v, "Bird(x) & !Penguin(x)");
        let x = v.var("x");
        assert!(is_qf_unary_over(&f, x));
        let g = parse(&mut v, "Bird(x) & Child(x, y)");
        assert!(!is_qf_unary_over(&g, x));
        let h = parse(&mut v, "forall z (Bird(z))");
        assert!(!is_qf_unary_over(&h, x));
    }
}
