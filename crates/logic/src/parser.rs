//! Recursive-descent parser for the `L≈` text syntax (grammar in the crate
//! docs).
//!
//! Lexical conventions:
//! * identifiers starting lowercase are variables, starting uppercase are
//!   predicates / constants / functions (disambiguated by position);
//! * hyphens join identifiers when followed by a letter (`Easy-to-see` is one
//!   symbol), so proportion subtraction needs surrounding spaces;
//! * approximate operators may carry a tolerance subscript (`~=_2`,
//!   `<~_3`, `->_1`); omitting it defaults to tolerance index 1.

use crate::ast::{CmpOp, Formula, PropExpr, Term, TolId};
use crate::vocab::{VarId, VocabError, Vocabulary};
use rw_util::Rat;
use std::fmt;

/// A parse failure, with a byte offset into the source string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn new(pos: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            pos,
            message: message.into(),
        }
    }

    fn from_vocab(pos: usize, e: VocabError) -> ParseError {
        ParseError::new(pos, e.to_string())
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Number(Rat),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Amp,
    Bang,
    Underscore,
    Plus,
    Minus,
    Star,
    Slash,
    Eq,
    Neq,
    Leq,
    Implies,          // =>
    Iff,              // <=>
    Bar,              // |
    DoubleBar,        // ||
    ApproxEq(TolId),  // ~=_i
    ApproxLeq(TolId), // <~_i
    Arrow(TolId),     // ->_i  (default-rule sugar)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token()? {
            out.push(t);
        }
        Ok(out)
    }

    fn peek_byte(&self, off: usize) -> u8 {
        *self.src.get(self.pos + off).unwrap_or(&0)
    }

    fn subscript(&mut self) -> TolId {
        // Optional `_<digits>` following an approximate operator.
        if self.peek_byte(0) == b'_' && self.peek_byte(1).is_ascii_digit() {
            self.pos += 1;
            let start = self.pos;
            while self.peek_byte(0).is_ascii_digit() {
                self.pos += 1;
            }
            let n: u32 = std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .parse()
                .unwrap_or(1);
            TolId(n)
        } else {
            TolId(1)
        }
    }

    fn next_token(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        while self.peek_byte(0).is_ascii_whitespace() {
            self.pos += 1;
        }
        let start = self.pos;
        let b = self.peek_byte(0);
        if b == 0 {
            return Ok(None);
        }
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b'&' => {
                self.pos += 1;
                Tok::Amp
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'/' => {
                self.pos += 1;
                Tok::Slash
            }
            b'_' => {
                self.pos += 1;
                Tok::Underscore
            }
            b'!' => {
                if self.peek_byte(1) == b'=' {
                    self.pos += 2;
                    Tok::Neq
                } else {
                    self.pos += 1;
                    Tok::Bang
                }
            }
            b'=' => {
                if self.peek_byte(1) == b'>' {
                    self.pos += 2;
                    Tok::Implies
                } else {
                    self.pos += 1;
                    Tok::Eq
                }
            }
            b'<' => {
                if self.peek_byte(1) == b'=' && self.peek_byte(2) == b'>' {
                    self.pos += 3;
                    Tok::Iff
                } else if self.peek_byte(1) == b'=' {
                    self.pos += 2;
                    Tok::Leq
                } else if self.peek_byte(1) == b'~' {
                    self.pos += 2;
                    Tok::ApproxLeq(self.subscript())
                } else {
                    return Err(ParseError::new(start, "unexpected `<`"));
                }
            }
            b'~' => {
                if self.peek_byte(1) == b'=' {
                    self.pos += 2;
                    Tok::ApproxEq(self.subscript())
                } else {
                    return Err(ParseError::new(
                        start,
                        "unexpected `~` (did you mean `~=`?)",
                    ));
                }
            }
            b'-' => {
                if self.peek_byte(1) == b'>' {
                    self.pos += 2;
                    Tok::Arrow(self.subscript())
                } else {
                    self.pos += 1;
                    Tok::Minus
                }
            }
            b'|' => {
                if self.peek_byte(1) == b'|' {
                    self.pos += 2;
                    Tok::DoubleBar
                } else {
                    self.pos += 1;
                    Tok::Bar
                }
            }
            b'0'..=b'9' => {
                while self.peek_byte(0).is_ascii_digit() {
                    self.pos += 1;
                }
                if self.peek_byte(0) == b'.' && self.peek_byte(1).is_ascii_digit() {
                    self.pos += 1;
                    while self.peek_byte(0).is_ascii_digit() {
                        self.pos += 1;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                let r = Rat::parse(text)
                    .ok_or_else(|| ParseError::new(start, format!("bad number `{text}`")))?;
                Tok::Number(r)
            }
            b'A'..=b'Z' | b'a'..=b'z' => {
                self.pos += 1;
                loop {
                    let c = self.peek_byte(0);
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.pos += 1;
                    } else if c == b'-' && self.peek_byte(1).is_ascii_alphabetic() {
                        // Hyphenated names like `Easy-to-see`.
                        self.pos += 2;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                Tok::Ident(text.to_string())
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(Some((start, tok)))
    }
}

struct Parser<'v> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    vocab: &'v mut Vocabulary,
    end: usize,
}

impl<'v> Parser<'v> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map_or(self.end, |(p, _)| *p)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError::new(self.here(), format!("expected {what}")))
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(self.here(), msg.into()))
    }

    // formula := iff ( '->_i' iff )?
    fn formula(&mut self) -> Result<Formula, ParseError> {
        let prem = self.iff()?;
        if let Some(Tok::Arrow(tol)) = self.peek().cloned() {
            self.bump();
            let concl = self.iff()?;
            let mut vars: Vec<VarId> = crate::analysis::free_vars(&prem)
                .union(&crate::analysis::free_vars(&concl))
                .copied()
                .collect();
            vars.sort();
            if vars.is_empty() {
                return self.err("default rule `->` must mention at least one free variable");
            }
            return Ok(Formula::default_rule(prem, concl, vars, tol));
        }
        Ok(prem)
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.implies()?;
        while self.eat(&Tok::Iff) {
            let rhs = self.implies()?;
            lhs = Formula::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if self.eat(&Tok::Implies) {
            let rhs = self.implies()?; // right associative
            return Ok(Formula::implies(lhs, rhs));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.and()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "or") {
            self.bump();
            let rhs = self.and()?;
            lhs = Formula::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let is_and = if self.eat(&Tok::Amp) {
                true
            } else if matches!(self.peek(), Some(Tok::Ident(s)) if s == "and") {
                self.bump();
                true
            } else {
                false
            };
            if !is_and {
                break;
            }
            let rhs = self.unary()?;
            lhs = Formula::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.bump();
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::Ident(s)) if s == "not" => {
                self.bump();
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::Ident(s)) if s == "forall" || s == "exists" => self.quantifier(),
            _ => self.atom(),
        }
    }

    fn quantifier(&mut self) -> Result<Formula, ParseError> {
        let kw = match self.bump() {
            Some(Tok::Ident(s)) => s,
            _ => unreachable!(),
        };
        let unique = kw == "exists" && self.eat(&Tok::Bang);
        // One or more lowercase variable names, then a parenthesized body.
        let mut vars = Vec::new();
        while let Some(Tok::Ident(name)) = self.peek() {
            if !name.chars().next().is_some_and(|c| c.is_lowercase()) {
                return self.err(format!("quantified variable `{name}` must start lowercase"));
            }
            let name = name.clone();
            self.bump();
            vars.push(self.vocab.var(&name));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        if vars.is_empty() {
            return self.err("quantifier needs at least one variable");
        }
        self.expect(&Tok::LParen, "`(` after quantifier variables")?;
        let body = self.formula()?;
        self.expect(&Tok::RParen, "`)` closing quantifier body")?;
        let mut out = body;
        for &v in vars.iter().rev() {
            out = if kw == "forall" {
                Formula::forall(v, out)
            } else if unique {
                let fresh = self.vocab.fresh_var("uniq");
                Formula::exists_unique(v, fresh, out)
            } else {
                Formula::exists(v, out)
            };
        }
        Ok(out)
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Number(_)) | Some(Tok::DoubleBar) => self.cmp_chain(),
            Some(Tok::LParen) => {
                self.bump();
                let f = self.formula()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(f)
            }
            Some(Tok::Ident(s)) if s == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::Ident(s)) if s == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::Ident(name)) => {
                let start = self.here();
                self.bump();
                let upper = name.chars().next().is_some_and(|c| c.is_uppercase());
                if upper && self.peek() == Some(&Tok::LParen) {
                    // Predicate application.
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.term()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "`)` closing argument list")?;
                    let p = self
                        .vocab
                        .pred(&name, args.len())
                        .map_err(|e| ParseError::from_vocab(start, e))?;
                    return Ok(Formula::Pred(p, args));
                }
                // A bare term: must be followed by = or !=, or be an arity-0
                // predicate used as a proposition.
                let lhs = self.name_to_term(&name, start)?;
                match self.peek() {
                    Some(Tok::Eq) => {
                        self.bump();
                        let rhs = self.term()?;
                        Ok(Formula::TermEq(lhs, rhs))
                    }
                    Some(Tok::Neq) => {
                        self.bump();
                        let rhs = self.term()?;
                        Ok(Formula::not(Formula::TermEq(lhs, rhs)))
                    }
                    _ => {
                        if upper {
                            // Try as an arity-0 predicate, unless already a constant.
                            if self.vocab.lookup_const(&name).is_some() {
                                return self.err(format!(
                                    "constant `{name}` cannot stand alone as a formula"
                                ));
                            }
                            let p = self
                                .vocab
                                .pred(&name, 0)
                                .map_err(|e| ParseError::from_vocab(start, e))?;
                            Ok(Formula::Pred(p, vec![]))
                        } else {
                            self.err(format!("variable `{name}` is not a formula"))
                        }
                    }
                }
            }
            _ => self.err("expected a formula"),
        }
    }

    fn name_to_term(&mut self, name: &str, start: usize) -> Result<Term, ParseError> {
        let first_upper = name.chars().next().is_some_and(|c| c.is_uppercase());
        if !first_upper {
            return Ok(Term::Var(self.vocab.var(name)));
        }
        if self.peek() == Some(&Tok::LParen) {
            // Function application in term position.
            self.bump();
            let mut args = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    args.push(self.term()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "`)` closing function arguments")?;
            let f = self
                .vocab
                .func(name, args.len())
                .map_err(|e| ParseError::from_vocab(start, e))?;
            return Ok(Term::App(f, args));
        }
        let c = self
            .vocab
            .constant(name)
            .map_err(|e| ParseError::from_vocab(start, e))?;
        Ok(Term::Const(c))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let start = self.here();
        match self.bump() {
            Some(Tok::Ident(name)) => self.name_to_term(&name, start),
            _ => Err(ParseError::new(start, "expected a term")),
        }
    }

    // cmp-chain := propexpr (op propexpr)+, conjoining adjacent comparisons.
    fn cmp_chain(&mut self) -> Result<Formula, ParseError> {
        let first = self.propexpr()?;
        let mut exprs = vec![first];
        let mut ops = Vec::new();
        loop {
            let op = match self.peek() {
                Some(Tok::ApproxEq(t)) => CmpOp::ApproxEq(*t),
                Some(Tok::ApproxLeq(t)) => CmpOp::ApproxLeq(*t),
                Some(Tok::Eq) => CmpOp::Eq,
                Some(Tok::Leq) => CmpOp::Leq,
                _ => break,
            };
            self.bump();
            ops.push(op);
            exprs.push(self.propexpr()?);
        }
        if ops.is_empty() {
            return self.err("expected a comparison operator after proportion expression");
        }
        let mut parts = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            parts.push(Formula::Cmp(exprs[i].clone(), *op, exprs[i + 1].clone()));
        }
        Ok(Formula::conjoin(parts))
    }

    // propexpr := mulexpr (('+'|'-') mulexpr)*
    fn propexpr(&mut self) -> Result<PropExpr, ParseError> {
        let mut lhs = self.mulexpr()?;
        loop {
            if self.eat(&Tok::Plus) {
                let rhs = self.mulexpr()?;
                lhs = PropExpr::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Minus) {
                let rhs = self.mulexpr()?;
                lhs = PropExpr::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mulexpr(&mut self) -> Result<PropExpr, ParseError> {
        let mut lhs = self.prop_atom()?;
        while self.eat(&Tok::Star) {
            let rhs = self.prop_atom()?;
            lhs = PropExpr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn prop_atom(&mut self) -> Result<PropExpr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.bump();
                // `a/b` exact fractions.
                if self.peek() == Some(&Tok::Slash) {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Number(d)) if !d.is_zero() => {
                            return Ok(PropExpr::Rat(n / d));
                        }
                        _ => return self.err("expected nonzero denominator after `/`"),
                    }
                }
                Ok(PropExpr::Rat(n))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.propexpr()?;
                self.expect(&Tok::RParen, "`)` closing proportion expression")?;
                Ok(e)
            }
            Some(Tok::DoubleBar) => {
                self.bump();
                let body = self.formula()?;
                let cond = if self.eat(&Tok::Bar) {
                    Some(self.formula()?)
                } else {
                    None
                };
                self.expect(&Tok::DoubleBar, "`||` closing proportion")?;
                self.expect(&Tok::Underscore, "`_` and subscript variables after `||`")?;
                let vars = self.subscript_vars()?;
                Ok(PropExpr::Prop {
                    body: Box::new(body),
                    cond: cond.map(Box::new),
                    vars,
                })
            }
            _ => self.err("expected a proportion expression"),
        }
    }

    fn subscript_vars(&mut self) -> Result<Vec<VarId>, ParseError> {
        let mut vars = Vec::new();
        if self.eat(&Tok::LBrace) {
            loop {
                match self.bump() {
                    Some(Tok::Ident(name))
                        if name.chars().next().is_some_and(|c| c.is_lowercase()) =>
                    {
                        vars.push(self.vocab.var(&name));
                    }
                    _ => return self.err("expected a variable in proportion subscript"),
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace, "`}` closing subscript")?;
        } else {
            match self.bump() {
                Some(Tok::Ident(name)) if name.chars().next().is_some_and(|c| c.is_lowercase()) => {
                    vars.push(self.vocab.var(&name));
                }
                _ => return self.err("expected a variable in proportion subscript"),
            }
        }
        Ok(vars)
    }
}

/// Parses a single formula, interning symbols into `vocab`.
pub fn parse_formula(vocab: &mut Vocabulary, src: &str) -> Result<Formula, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser {
        toks,
        pos: 0,
        vocab,
        end: src.len(),
    };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(ParseError::new(p.here(), "unexpected trailing input"));
    }
    Ok(f)
}

/// Parses a `;`-separated list of formulas (a knowledge base body).
pub fn parse_kb(vocab: &mut Vocabulary, src: &str) -> Result<Vec<Formula>, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser {
        toks,
        pos: 0,
        vocab,
        end: src.len(),
    };
    let mut out = Vec::new();
    loop {
        // Allow trailing/duplicate semicolons.
        while p.eat(&Tok::Semi) {}
        if p.peek().is_none() {
            break;
        }
        out.push(p.formula()?);
        if p.peek().is_some() {
            p.expect(&Tok::Semi, "`;` between formulas")?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::free_vars;

    fn parse(s: &str) -> (Vocabulary, Formula) {
        let mut v = Vocabulary::new();
        let f = parse_formula(&mut v, s).unwrap();
        (v, f)
    }

    #[test]
    fn simple_atoms() {
        let (v, f) = parse("Jaun(Eric)");
        match f {
            Formula::Pred(p, args) => {
                assert_eq!(v.pred_name(p), "Jaun");
                assert_eq!(args.len(), 1);
                assert!(matches!(args[0], Term::Const(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn proportions_and_comparisons() {
        let (_, f) = parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8");
        match f {
            Formula::Cmp(
                PropExpr::Prop { cond, vars, .. },
                CmpOp::ApproxEq(TolId(1)),
                PropExpr::Rat(r),
            ) => {
                assert!(cond.is_some());
                assert_eq!(vars.len(), 1);
                assert_eq!(r, Rat::new(4, 5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparison_chain_conjoins() {
        let (_, f) = parse("0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8");
        let parts = f.conjuncts();
        assert_eq!(parts.len(), 2);
        assert!(matches!(
            parts[0],
            Formula::Cmp(_, CmpOp::ApproxLeq(TolId(1)), _)
        ));
        assert!(matches!(
            parts[1],
            Formula::Cmp(_, CmpOp::ApproxLeq(TolId(2)), _)
        ));
    }

    #[test]
    fn multi_var_subscripts() {
        let (_, f) = parse("||Likes(x, y) | Elephant(x) & Zookeeper(y)||_{x,y} ~=_1 1");
        match f {
            Formula::Cmp(PropExpr::Prop { vars, .. }, _, _) => assert_eq!(vars.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn default_rule_sugar() {
        let (_, f) = parse("Bird(x) ->_2 Fly(x)");
        match f {
            Formula::Cmp(
                PropExpr::Prop { body, cond, vars },
                CmpOp::ApproxEq(TolId(2)),
                PropExpr::Rat(r),
            ) => {
                assert_eq!(r, Rat::ONE);
                assert_eq!(vars.len(), 1);
                assert!(matches!(*body, Formula::Pred(..)));
                assert!(matches!(cond.as_deref(), Some(Formula::Pred(..))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quantifiers_and_connectives() {
        let (_, f) = parse("forall x (Penguin(x) => Bird(x))");
        assert!(matches!(f, Formula::Forall(..)));
        let (_, g) = parse("exists y (Child(Alice, y) & Tall(y))");
        assert!(matches!(g, Formula::Exists(..)));
        let (_, h) = parse("P(x) or !Q(x) & R(x)");
        // `&` binds tighter than `or`.
        assert!(matches!(h, Formula::Or(..)));
    }

    #[test]
    fn exists_unique_desugars() {
        let (_, f) = parse("exists! x (Winner(x))");
        match &f {
            Formula::Exists(_, body) => assert!(matches!(**body, Formula::And(..))),
            other => panic!("{other:?}"),
        }
        assert!(free_vars(&f).is_empty());
    }

    #[test]
    fn term_equality_and_inequality() {
        let (_, f) = parse("Ray != Drew");
        assert!(matches!(f, Formula::Not(..)));
        let (_, g) = parse("x = Eric");
        assert!(matches!(g, Formula::TermEq(Term::Var(_), Term::Const(_))));
    }

    #[test]
    fn function_terms() {
        let (v, f) = parse("Rises-late(x, Next-day(y))");
        match f {
            Formula::Pred(p, args) => {
                assert_eq!(v.pred_name(p), "Rises-late");
                assert!(matches!(args[1], Term::App(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_proportions() {
        // The bed-late default (paper Example 4.6).
        let src = "|| ||Rises-late(x,y)|Day(y)||_y ~=_1 1 | ||To-bed-late(x,z)|Day(z)||_z ~=_2 1 ||_x ~=_3 1";
        let (_, f) = parse(src);
        assert!(matches!(f, Formula::Cmp(..)));
    }

    #[test]
    fn fractions_and_arithmetic() {
        let (_, f) = parse("||P(x)||_x = 1/3");
        match f {
            Formula::Cmp(_, CmpOp::Eq, PropExpr::Rat(r)) => assert_eq!(r, Rat::new(1, 3)),
            other => panic!("{other:?}"),
        }
        let (_, g) = parse("||P(x)||_x + ||Q(x)||_x <= 1");
        assert!(matches!(g, Formula::Cmp(PropExpr::Add(..), CmpOp::Leq, _)));
        let (_, h) = parse("||P(x) & Q(x)||_x = 0.5 * ||Q(x)||_x");
        assert!(matches!(h, Formula::Cmp(_, CmpOp::Eq, PropExpr::Mul(..))));
    }

    #[test]
    fn kb_parsing_with_semicolons() {
        let mut v = Vocabulary::new();
        let fs = parse_kb(
            &mut v,
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); forall x (Penguin(x) => Bird(x));",
        )
        .unwrap();
        assert_eq!(fs.len(), 3);
    }

    #[test]
    fn errors_have_positions() {
        let mut v = Vocabulary::new();
        let err = parse_formula(&mut v, "Bird(x").unwrap_err();
        assert!(err.pos > 0);
        assert!(parse_formula(&mut v, "").is_err());
        assert!(parse_formula(&mut v, "P(x) P(y)").is_err());
        assert!(parse_formula(&mut v, "||P(x)||_x").is_err()); // missing comparison
    }

    #[test]
    fn arity_errors_surface() {
        let mut v = Vocabulary::new();
        parse_formula(&mut v, "Likes(x, y)").unwrap();
        assert!(parse_formula(&mut v, "Likes(x)").is_err());
    }

    #[test]
    fn keyword_operators() {
        let (_, f) = parse("P(x) and Q(x)");
        assert!(matches!(f, Formula::And(..)));
        let (_, g) = parse("not P(x)");
        assert!(matches!(g, Formula::Not(..)));
    }
}
