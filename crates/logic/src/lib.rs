//! The statistical first-order language `L≈` of Bacchus–Grove–Halpern–Koller
//! (Definition 4.1 of the paper), plus its exact-comparison variant `L=`.
//!
//! `L≈` augments first-order logic with *proportion expressions*:
//!
//! * `||φ(x̄)||_x̄` — the fraction of domain tuples satisfying `φ`;
//! * `||φ(x̄) | ψ(x̄)||_x̄` — the conditional fraction among tuples
//!   satisfying `ψ` (a *primitive* of the language: the paper's Example 4.2
//!   shows that "multiplying out" across approximate comparisons is unsound);
//! * rational constants, closed under `+`, `-` and `×`;
//!
//! and an infinite family of approximate comparison connectives `≈_i` / `⪯_i`
//! interpreted with a tolerance vector `τ⃗` (the subscript picks the
//! component). Statistical defaults — "birds typically fly" — are the sugar
//! `Bird(x) ->_i Fly(x)` for `||Fly(x) | Bird(x)||_x ≈_i 1` (paper §4.3).
//!
//! # Text syntax
//!
//! ```text
//! kb       := formula (';' formula)*
//! formula  := iff | iff '->_i' iff            (default-rule sugar)
//! iff      := imp ('<=>' imp)*
//! imp      := or ('=>' imp)?                  (right associative)
//! or       := and ('or' and)*
//! and      := unary (('&'|'and') unary)*
//! unary    := '!' unary | quant | atom
//! quant    := ('forall'|'exists'|'exists!') var+ '(' formula ')'
//! atom     := pred '(' term,* ')' | term ('='|'!=') term | cmp-chain
//!           | 'true' | 'false' | '(' formula ')'
//! cmp      := propexpr (op propexpr)+         (chains conjoin)
//! op       := '~=_i' | '<~_i' | '=' | '<='    (approx eq/leq, exact eq/leq)
//! propexpr := number | fraction | '||' formula ('|' formula)? '||_' vars
//!           | propexpr ('+'|'-'|'*') propexpr | '(' propexpr ')'
//! vars     := var | '{' var (',' var)* '}'
//! ```
//!
//! Identifiers starting with a lowercase letter are variables; identifiers
//! starting with an uppercase letter are predicates (when applied in formula
//! position), constants (bare in term position), or functions (applied in
//! term position).
//!
//! # Module map
//!
//! * [`ast`] / [`parser`] / [`mod@print`] — the syntax tree, the text syntax
//!   above, and round-trippable pretty-printing;
//! * [`kb`] — [`KnowledgeBase`]: a vocabulary plus asserted conjuncts;
//! * [`analysis`] — free variables, symbols, substitution,
//!   alpha-equivalence: the side-condition toolkit for the theorem engine;
//! * [`canon`] — canonical query strings and KB fingerprints, the cache
//!   keys behind `rw-core`'s answer cache ([`canon::canonical_formula`],
//!   [`canon::kb_fingerprint`]);
//! * [`tolerances`] / [`vocab`] — the tolerance vector `τ⃗` and interned
//!   signatures.

pub mod analysis;
pub mod ast;
pub mod canon;
pub mod kb;
pub mod parser;
pub mod print;
pub mod tolerances;
pub mod vocab;

pub use ast::{CmpOp, Formula, PropExpr, Term, TolId};
pub use kb::KnowledgeBase;
pub use parser::{parse_formula, parse_kb, ParseError};
pub use print::Pretty;
pub use tolerances::Tolerances;
pub use vocab::{ConstId, FuncId, PredId, VarId, Vocabulary};
