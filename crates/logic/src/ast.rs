//! Abstract syntax for `L≈` / `L=` (paper Definition 4.1).

use crate::vocab::{ConstId, FuncId, PredId, VarId};
use rw_util::Rat;
use std::fmt;

/// A tolerance index: the `i` of `≈_i` / `⪯_i`. Comparisons with equal
/// indices share the same tolerance `τ_i`; the paper uses this to encode the
/// relative *strength* of defaults (§5.3: the Nixon diamond with a shared
/// index yields belief 1/2, with distinct indices the limit does not exist).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TolId(pub u32);

impl TolId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// First-order terms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    Var(VarId),
    Const(ConstId),
    App(FuncId, Vec<Term>),
}

/// Comparison operators between proportion expressions.
///
/// `ApproxEq`/`ApproxLeq` are the `≈_i`/`⪯_i` of `L≈`; `Eq`/`Leq` are the
/// exact connectives of `L=` (used internally, and available for tests and
/// knowledge bases that really do mean exact proportions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `ζ ≈_i ζ'`: `|ζ - ζ'| ≤ τ_i`.
    ApproxEq(TolId),
    /// `ζ ⪯_i ζ'`: `ζ - ζ' ≤ τ_i`.
    ApproxLeq(TolId),
    /// Exact equality (`L=`).
    Eq,
    /// Exact `≤` (`L=`).
    Leq,
}

impl CmpOp {
    pub fn tolerance(self) -> Option<TolId> {
        match self {
            CmpOp::ApproxEq(t) | CmpOp::ApproxLeq(t) => Some(t),
            CmpOp::Eq | CmpOp::Leq => None,
        }
    }
}

/// Proportion expressions (paper Definition 4.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PropExpr {
    /// A rational constant.
    Rat(Rat),
    /// `||body||_vars` or `||body | cond||_vars`.
    ///
    /// Conditional proportions are primitive: in worlds where the condition
    /// has measure zero, every approximate comparison mentioning the
    /// proportion is *true* (the paper's convention, §4.1).
    Prop {
        body: Box<Formula>,
        cond: Option<Box<Formula>>,
        vars: Vec<VarId>,
    },
    Add(Box<PropExpr>, Box<PropExpr>),
    Sub(Box<PropExpr>, Box<PropExpr>),
    Mul(Box<PropExpr>, Box<PropExpr>),
}

impl PropExpr {
    pub fn rat(r: Rat) -> PropExpr {
        PropExpr::Rat(r)
    }

    pub fn proportion(body: Formula, vars: Vec<VarId>) -> PropExpr {
        PropExpr::Prop {
            body: Box::new(body),
            cond: None,
            vars,
        }
    }

    pub fn conditional(body: Formula, cond: Formula, vars: Vec<VarId>) -> PropExpr {
        PropExpr::Prop {
            body: Box::new(body),
            cond: Some(Box::new(cond)),
            vars,
        }
    }
}

/// Formulas of `L≈`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The constant truth values (convenient normal-form endpoints).
    True,
    False,
    /// `R(t₁..t_r)`.
    Pred(PredId, Vec<Term>),
    /// `t₁ = t₂`.
    TermEq(Term, Term),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Implies(Box<Formula>, Box<Formula>),
    Iff(Box<Formula>, Box<Formula>),
    Forall(VarId, Box<Formula>),
    Exists(VarId, Box<Formula>),
    /// `ζ op ζ'` between proportion expressions.
    Cmp(PropExpr, CmpOp, PropExpr),
}

impl Formula {
    // A by-value constructor, not a `std::ops::Not` (which takes `self`
    // and would force call-site boxing idioms).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    pub fn forall(v: VarId, f: Formula) -> Formula {
        Formula::Forall(v, Box::new(f))
    }

    pub fn exists(v: VarId, f: Formula) -> Formula {
        Formula::Exists(v, Box::new(f))
    }

    pub fn cmp(lhs: PropExpr, op: CmpOp, rhs: PropExpr) -> Formula {
        Formula::Cmp(lhs, op, rhs)
    }

    /// Conjunction of an iterator of formulas (`True` when empty).
    pub fn conjoin(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut iter = fs.into_iter();
        let first = match iter.next() {
            Some(f) => f,
            None => return Formula::True,
        };
        iter.fold(first, Formula::and)
    }

    /// Disjunction of an iterator of formulas (`False` when empty).
    pub fn disjoin(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut iter = fs.into_iter();
        let first = match iter.next() {
            Some(f) => f,
            None => return Formula::False,
        };
        iter.fold(first, Formula::or)
    }

    /// The statistical reading of a default rule `prem ->_i concl` over the
    /// given tuple of variables: `||concl | prem||_vars ≈_i 1` (paper §4.3).
    pub fn default_rule(prem: Formula, concl: Formula, vars: Vec<VarId>, tol: TolId) -> Formula {
        Formula::Cmp(
            PropExpr::conditional(concl, prem, vars),
            CmpOp::ApproxEq(tol),
            PropExpr::Rat(Rat::ONE),
        )
    }

    /// `∃!x φ(x)` desugared as `∃x (φ(x) ∧ ∀y (φ(y) ⇒ y = x))`.
    ///
    /// The caller must supply a variable `y` that does not occur in `φ`.
    pub fn exists_unique(x: VarId, y: VarId, phi: Formula) -> Formula {
        let phi_y = crate::analysis::rename_var(&phi, x, y);
        Formula::exists(
            x,
            Formula::and(
                phi.clone(),
                Formula::forall(
                    y,
                    Formula::implies(phi_y, Formula::TermEq(Term::Var(y), Term::Var(x))),
                ),
            ),
        )
    }

    /// Splits top-level conjunctions into a flat list.
    pub fn conjuncts(&self) -> Vec<&Formula> {
        let mut out = Vec::new();
        fn walk<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
            match f {
                Formula::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    #[test]
    fn conjoin_disjoin_edge_cases() {
        assert_eq!(Formula::conjoin([]), Formula::True);
        assert_eq!(Formula::disjoin([]), Formula::False);
        let mut v = Vocabulary::new();
        let p = v.pred("P", 0).unwrap();
        let atom = Formula::Pred(p, vec![]);
        assert_eq!(Formula::conjoin([atom.clone()]), atom);
    }

    #[test]
    fn conjunct_splitting_is_left_to_right() {
        let mut v = Vocabulary::new();
        let p = v.pred("P", 0).unwrap();
        let q = v.pred("Q", 0).unwrap();
        let r = v.pred("R", 0).unwrap();
        let fp = Formula::Pred(p, vec![]);
        let fq = Formula::Pred(q, vec![]);
        let fr = Formula::Pred(r, vec![]);
        let conj = Formula::and(Formula::and(fp.clone(), fq.clone()), fr.clone());
        let parts = conj.conjuncts();
        assert_eq!(parts, vec![&fp, &fq, &fr]);
    }

    #[test]
    fn default_rule_shape() {
        let mut v = Vocabulary::new();
        let bird = v.pred("Bird", 1).unwrap();
        let fly = v.pred("Fly", 1).unwrap();
        let x = v.var("x");
        let d = Formula::default_rule(
            Formula::Pred(bird, vec![Term::Var(x)]),
            Formula::Pred(fly, vec![Term::Var(x)]),
            vec![x],
            TolId(1),
        );
        match d {
            Formula::Cmp(
                PropExpr::Prop { cond: Some(_), .. },
                CmpOp::ApproxEq(TolId(1)),
                PropExpr::Rat(r),
            ) => {
                assert_eq!(r, Rat::ONE)
            }
            other => panic!("unexpected desugaring: {other:?}"),
        }
    }
}
