//! Tolerance vectors: the `τ⃗` that interprets `≈_i` and `⪯_i`.
//!
//! The paper's semantics is parameterized by an infinite vector of positive
//! tolerances `τ⃗ = ⟨τ₁, τ₂, ...⟩`; degrees of belief take `τ⃗ → 0` *after*
//! `N → ∞`. [`Tolerances`] represents such a vector as a default value plus
//! per-index overrides, so "shrink every component" and "component 1 shrinks
//! much faster than component 2" (the paper's default-priority mechanism,
//! §5.3) are both easy to express.

use crate::ast::TolId;
use rw_util::Rat;
use std::collections::BTreeMap;

/// A concrete tolerance vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tolerances {
    default: Rat,
    overrides: BTreeMap<u32, Rat>,
}

impl Tolerances {
    /// Every component equal to `tau`.
    pub fn uniform(tau: Rat) -> Tolerances {
        assert!(tau > Rat::ZERO, "tolerances must be positive");
        Tolerances {
            default: tau,
            overrides: BTreeMap::new(),
        }
    }

    /// Overrides a single component.
    pub fn with(mut self, idx: TolId, tau: Rat) -> Tolerances {
        assert!(tau > Rat::ZERO, "tolerances must be positive");
        self.overrides.insert(idx.0, tau);
        self
    }

    pub fn get(&self, idx: TolId) -> Rat {
        self.overrides.get(&idx.0).copied().unwrap_or(self.default)
    }

    pub fn default_value(&self) -> Rat {
        self.default
    }

    /// Scales every component by `factor` (used by τ-sweep limit detection).
    pub fn scaled(&self, factor: Rat) -> Tolerances {
        assert!(factor > Rat::ZERO);
        Tolerances {
            default: self.default * factor,
            overrides: self
                .overrides
                .iter()
                .map(|(&k, &v)| (k, v * factor))
                .collect(),
        }
    }
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances::uniform(Rat::new(1, 10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_overrides() {
        let t = Tolerances::uniform(Rat::new(1, 10)).with(TolId(2), Rat::new(1, 100));
        assert_eq!(t.get(TolId(1)), Rat::new(1, 10));
        assert_eq!(t.get(TolId(2)), Rat::new(1, 100));
        assert_eq!(t.get(TolId(99)), Rat::new(1, 10));
    }

    #[test]
    fn scaling_preserves_ratios() {
        let t = Tolerances::uniform(Rat::new(1, 10))
            .with(TolId(2), Rat::new(1, 100))
            .scaled(Rat::new(1, 2));
        assert_eq!(t.get(TolId(1)), Rat::new(1, 20));
        assert_eq!(t.get(TolId(2)), Rat::new(1, 200));
    }

    #[test]
    #[should_panic]
    fn zero_tolerance_rejected() {
        Tolerances::uniform(Rat::ZERO);
    }
}
