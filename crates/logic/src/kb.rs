//! Knowledge bases: a vocabulary plus a list of asserted formulas.
//!
//! The random-worlds method conditions on the *conjunction* of everything the
//! agent knows (the paper's standing assumption is that `KB` captures all of
//! it). We keep the conjuncts separate rather than pre-conjoined because the
//! theorem engine classifies them individually (statistical statements,
//! universal statements, facts about constants, ...).

use crate::analysis;
use crate::ast::Formula;
use crate::parser::{parse_formula, parse_kb, ParseError};
use crate::print::Pretty;
use crate::vocab::{ConstId, Vocabulary};
use std::fmt;

/// A knowledge base: closed formulas of `L≈` over a shared vocabulary.
#[derive(Clone, Default)]
pub struct KnowledgeBase {
    vocab: Vocabulary,
    conjuncts: Vec<Formula>,
}

impl KnowledgeBase {
    pub fn new() -> KnowledgeBase {
        KnowledgeBase::default()
    }

    /// Builds a knowledge base from an existing vocabulary and conjuncts
    /// (used when splitting a KB into independent components, Thm 5.27).
    pub fn from_parts(vocab: Vocabulary, conjuncts: Vec<Formula>) -> KnowledgeBase {
        KnowledgeBase { vocab, conjuncts }
    }

    /// Parses a `;`-separated list of formulas into a knowledge base.
    ///
    /// ```
    /// use rw_logic::KnowledgeBase;
    /// let kb = KnowledgeBase::parse(
    ///     "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
    ///      forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
    /// ).unwrap();
    /// assert_eq!(kb.conjuncts().len(), 4);
    /// ```
    pub fn parse(src: &str) -> Result<KnowledgeBase, ParseError> {
        let mut vocab = Vocabulary::new();
        let conjuncts = parse_kb(&mut vocab, src)?;
        let kb = KnowledgeBase { vocab, conjuncts };
        kb.check_closed()?;
        Ok(kb)
    }

    fn check_closed(&self) -> Result<(), ParseError> {
        for f in &self.conjuncts {
            let fv = analysis::free_vars(f);
            if let Some(&v) = fv.iter().next() {
                return Err(ParseError {
                    pos: 0,
                    message: format!(
                        "knowledge base formulas must be closed; `{}` has free variable `{}`",
                        Pretty::new(&self.vocab, f),
                        self.vocab.var_name(v)
                    ),
                });
            }
        }
        Ok(())
    }

    /// Adds one more conjunct, parsed in this KB's vocabulary.
    pub fn assert(&mut self, src: &str) -> Result<(), ParseError> {
        let f = parse_formula(&mut self.vocab, src)?;
        self.conjuncts.push(f);
        self.check_closed()
    }

    /// Adds an already-built formula (must use this KB's vocabulary).
    pub fn assert_formula(&mut self, f: Formula) {
        self.conjuncts.push(f);
    }

    /// Parses a formula against this KB's vocabulary *without* asserting it
    /// (new symbols are interned — degrees of belief are invariant under
    /// vocabulary expansion, paper footnote 8).
    pub fn parse_query(&mut self, src: &str) -> Result<Formula, ParseError> {
        parse_formula(&mut self.vocab, src)
    }

    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    pub fn conjuncts(&self) -> &[Formula] {
        &self.conjuncts
    }

    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// The KB as a single conjunction (`true` when empty).
    pub fn as_formula(&self) -> Formula {
        Formula::conjoin(self.conjuncts.iter().cloned())
    }

    /// All constants mentioned anywhere in the KB.
    pub fn mentioned_constants(&self) -> Vec<ConstId> {
        let mut set = std::collections::BTreeSet::new();
        for f in &self.conjuncts {
            set.extend(analysis::constants(f));
        }
        set.into_iter().collect()
    }

    /// A copy of this KB with one conjunct replaced (used by the theorem
    /// engine when rewriting via Proposition 5.2).
    pub fn with_conjunct_replaced(&self, idx: usize, f: Formula) -> KnowledgeBase {
        let mut kb = self.clone();
        kb.conjuncts[idx] = f;
        kb
    }

    /// A copy of this KB without the conjunct at `idx`.
    pub fn without_conjunct(&self, idx: usize) -> KnowledgeBase {
        let mut kb = self.clone();
        kb.conjuncts.remove(idx);
        kb
    }
}

impl fmt::Display for KnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f, ";")?;
            }
            write!(f, "{}", Pretty::new(&self.vocab, c))?;
        }
        Ok(())
    }
}

impl fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KnowledgeBase({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)").unwrap();
        let printed = kb.to_string();
        let kb2 = KnowledgeBase::parse(&printed).unwrap();
        assert_eq!(kb.conjuncts(), kb2.conjuncts());
    }

    #[test]
    fn open_formulas_rejected() {
        assert!(KnowledgeBase::parse("Hep(x)").is_err());
        let mut kb = KnowledgeBase::parse("Jaun(Eric)").unwrap();
        assert!(kb.assert("Fever(y)").is_err());
    }

    #[test]
    fn queries_extend_vocabulary() {
        let mut kb = KnowledgeBase::parse("Jaun(Eric)").unwrap();
        let q = kb.parse_query("Hep(Eric)").unwrap();
        assert!(matches!(q, Formula::Pred(..)));
        assert!(kb.vocab().lookup_pred("Hep").is_some());
    }

    #[test]
    fn mentioned_constants_are_sorted_unique() {
        let kb = KnowledgeBase::parse("Jaun(Eric); Hep(Tom); Fever(Eric)").unwrap();
        let cs = kb.mentioned_constants();
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn conjunct_surgery() {
        let kb = KnowledgeBase::parse("P(A); Q(A); R(A)").unwrap();
        assert_eq!(kb.without_conjunct(1).conjuncts().len(), 2);
        let f = kb.conjuncts()[0].clone();
        let kb2 = kb.with_conjunct_replaced(2, f.clone());
        assert_eq!(kb2.conjuncts()[2], f);
    }
}
