//! Maximum-entropy computation of asymptotic random-worlds degrees of belief
//! for unary knowledge bases (paper §6).
//!
//! For a unary vocabulary the worlds with atom proportions `p⃗` number
//! `≈ e^{N·H(p⃗)}` — so as `N → ∞` essentially *all* worlds satisfying `KB`
//! sit at the entropy-maximizing point of the constraint set `S(KB)` that
//! the knowledge base induces over the atom simplex. Degrees of belief then
//! reduce to conditional probabilities at that point, and the `τ⃗ → 0` outer
//! limit becomes a sweep of maxent solves at shrinking tolerances.
//!
//! Pipeline:
//!
//! 1. [`constraints`] compiles a unary KB into linear constraints over the
//!    atom simplex (universal conjuncts pin atoms to zero; `ζ ≈_i α`
//!    comparisons become two linear inequalities — the conditional case
//!    `||φ|ψ|| ≈_i α` linearizes exactly as `(α−τ)p_ψ ≤ p_{φ∧ψ} ≤ (α+τ)p_ψ`,
//!    which also captures the measure-zero convention at `p_ψ = 0`).
//! 2. [`simplex`] is a dense two-phase simplex LP solver (feasibility checks
//!    and the linear oracle for Frank–Wolfe).
//! 3. [`entropy`] maximizes `H(p) = -Σ p_a ln p_a` over the polytope by
//!    Frank–Wolfe with exact bisection line search (entropy is strictly
//!    concave, so the maximizer is unique).
//! 4. [`belief`] runs the τ-sweep, evaluates queries at each maxent point,
//!    and classifies the limit: converged, non-robust (the value depends on
//!    *how* `τ⃗ → 0` — the paper's conflicting-defaults situation, §5.3), or
//!    infeasible (KB not eventually consistent).

pub mod belief;
pub mod constraints;
pub mod entropy;
pub mod simplex;

pub use belief::{degree_of_belief_limit, maxent_point, LimitOutcome, MaxentError, SweepConfig};
pub use constraints::{compile, CompileError, UnaryConstraintSystem};
pub use entropy::{maximize_entropy, maximize_entropy_dual, EntropyError};
pub use simplex::{solve_lp, LpResult};
