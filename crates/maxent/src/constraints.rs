//! Compiling a unary knowledge base into linear constraints over the atom
//! simplex (the set `S(KB)` of paper §6).
//!
//! Supported conjunct shapes (everything else returns
//! [`CompileError::Unsupported`], signalling the caller to fall back to the
//! exact engines):
//!
//! * `∀x φ(x)`, `φ` quantifier-free unary → atoms outside `S(φ)` are pinned
//!   to zero;
//! * `∃x φ(x)` → recorded; eventually consistent iff some atom of `S(φ)`
//!   remains unpinned (a vanishing-fraction event otherwise);
//! * comparisons `ζ op ζ'` where both sides are *affine* in unconditional
//!   proportions → one or two linear rows (with `τ` slack for `≈_i`/`⪯_i`);
//! * comparisons with a conditional proportion `||φ|ψ||_x` on one side and a
//!   constant on the other → the exact linearization
//!   `(k−τ)·p_ψ ≤ p_{φ∧ψ} ≤ (k+τ)·p_ψ`, which also reproduces the
//!   measure-zero convention at `p_ψ = 0`;
//! * facts about a single constant (any boolean combination of unary atoms
//!   over that constant) → an atom set used for conditioning, not a
//!   constraint on proportions (a single individual has vanishing weight).

use rw_logic::ast::{CmpOp, Formula, PropExpr};
use rw_logic::{ConstId, KnowledgeBase, Pretty, Tolerances, Vocabulary};
use rw_unary::atoms::{atom_count, compile_atom_set, compile_atom_set_const};
use rw_unary::AtomSet;
use std::collections::BTreeMap;

/// Why a KB (or query) cannot be handled by the maxent engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    NotUnary,
    TooManyAtoms(usize),
    Unsupported(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NotUnary => write!(f, "maxent engine requires a unary vocabulary"),
            CompileError::TooManyAtoms(n) => write!(f, "atom space too large ({n} atoms)"),
            CompileError::Unsupported(s) => write!(f, "outside the maxent fragment: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A row `Σ coeffs_a · p_a ≤ rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearRow {
    pub coeffs: Vec<f64>,
    pub rhs: f64,
}

/// The compiled constraint system over the atom simplex.
#[derive(Clone, Debug)]
pub struct UnaryConstraintSystem {
    pub atoms: usize,
    /// Atoms pinned to zero by universal conjuncts.
    pub zero: Vec<bool>,
    /// Inequality rows (excluding simplex-sum and zero pins).
    pub rows: Vec<LinearRow>,
    /// Conditioning atom set per constant mentioned in the KB.
    pub const_atoms: BTreeMap<ConstId, AtomSet>,
    /// Atom sets of existential conjuncts (for eventual-consistency checks).
    pub exists_sets: Vec<AtomSet>,
}

impl UnaryConstraintSystem {
    /// Full LP rows: simplex equality, zero pins, then compiled rows.
    pub fn lp_rows(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let n = self.atoms;
        let mut a = vec![vec![1.0; n], vec![-1.0; n]];
        let mut b = vec![1.0, -1.0];
        for (atom, &z) in self.zero.iter().enumerate() {
            if z {
                let mut row = vec![0.0; n];
                row[atom] = 1.0;
                a.push(row);
                b.push(0.0);
            }
        }
        for r in &self.rows {
            a.push(r.coeffs.clone());
            b.push(r.rhs);
        }
        (a, b)
    }

    /// True when some existential conjunct can never be witnessed.
    pub fn exists_violated(&self) -> bool {
        self.exists_sets
            .iter()
            .any(|s| s.iter().all(|atom| self.zero[atom]))
    }
}

/// An affine function of the atom proportions.
#[derive(Clone, Debug)]
struct Affine {
    coeffs: Vec<f64>,
    konst: f64,
}

impl Affine {
    fn constant(n: usize, k: f64) -> Affine {
        Affine {
            coeffs: vec![0.0; n],
            konst: k,
        }
    }

    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    fn sub(&self, other: &Affine) -> Affine {
        Affine {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a - b)
                .collect(),
            konst: self.konst - other.konst,
        }
    }
}

/// A conditional proportion `||φ|ψ||_x` reduced to atom sets.
struct CondProp {
    body_and_cond: AtomSet,
    cond: AtomSet,
}

fn affine_of(e: &PropExpr, vocab: &Vocabulary, n: usize) -> Option<Affine> {
    match e {
        PropExpr::Rat(r) => Some(Affine::constant(n, r.to_f64())),
        PropExpr::Prop { body, cond, vars } => {
            if cond.is_some() || vars.len() != 1 {
                return None;
            }
            let s = compile_atom_set(body, vars[0], vocab)?;
            let mut coeffs = vec![0.0; n];
            for a in s.iter() {
                coeffs[a] = 1.0;
            }
            Some(Affine { coeffs, konst: 0.0 })
        }
        PropExpr::Add(a, b) => {
            let x = affine_of(a, vocab, n)?;
            let y = affine_of(b, vocab, n)?;
            Some(Affine {
                coeffs: x.coeffs.iter().zip(&y.coeffs).map(|(p, q)| p + q).collect(),
                konst: x.konst + y.konst,
            })
        }
        PropExpr::Sub(a, b) => {
            let x = affine_of(a, vocab, n)?;
            let y = affine_of(b, vocab, n)?;
            Some(x.sub(&y))
        }
        PropExpr::Mul(a, b) => {
            let x = affine_of(a, vocab, n)?;
            let y = affine_of(b, vocab, n)?;
            if x.is_constant() {
                Some(Affine {
                    coeffs: y.coeffs.iter().map(|c| c * x.konst).collect(),
                    konst: x.konst * y.konst,
                })
            } else if y.is_constant() {
                Some(Affine {
                    coeffs: x.coeffs.iter().map(|c| c * y.konst).collect(),
                    konst: x.konst * y.konst,
                })
            } else {
                None
            }
        }
    }
}

fn cond_prop_of(e: &PropExpr, vocab: &Vocabulary) -> Option<CondProp> {
    if let PropExpr::Prop {
        body,
        cond: Some(c),
        vars,
    } = e
    {
        if vars.len() != 1 {
            return None;
        }
        let sb = compile_atom_set(body, vars[0], vocab)?;
        let sc = compile_atom_set(c, vars[0], vocab)?;
        return Some(CondProp {
            body_and_cond: sb.intersect(&sc),
            cond: sc,
        });
    }
    None
}

/// Compiles the KB at a concrete tolerance vector.
pub fn compile(
    kb: &KnowledgeBase,
    tol: &Tolerances,
) -> Result<UnaryConstraintSystem, CompileError> {
    let vocab = kb.vocab();
    if !vocab.is_unary() {
        return Err(CompileError::NotUnary);
    }
    let n = atom_count(vocab);
    if n > 4096 {
        return Err(CompileError::TooManyAtoms(n));
    }
    let mut sys = UnaryConstraintSystem {
        atoms: n,
        zero: vec![false; n],
        rows: Vec::new(),
        const_atoms: BTreeMap::new(),
        exists_sets: Vec::new(),
    };

    for conjunct in kb.conjuncts() {
        // Comparison chains and nested conjunctions may appear inside one
        // conjunct; flatten first.
        for f in conjunct.conjuncts() {
            compile_conjunct(f, vocab, tol, n, &mut sys)?;
        }
    }
    Ok(sys)
}

fn unsupported(vocab: &Vocabulary, f: &Formula, why: &str) -> CompileError {
    CompileError::Unsupported(format!("`{}`: {why}", Pretty::new(vocab, f)))
}

fn compile_conjunct(
    f: &Formula,
    vocab: &Vocabulary,
    tol: &Tolerances,
    n: usize,
    sys: &mut UnaryConstraintSystem,
) -> Result<(), CompileError> {
    match f {
        Formula::True => Ok(()),
        Formula::False => {
            // An explicitly false KB pins everything to zero: infeasible.
            sys.rows.push(LinearRow {
                coeffs: vec![0.0; n],
                rhs: -1.0,
            });
            Ok(())
        }
        Formula::Forall(v, body) => {
            let s = compile_atom_set(body, *v, vocab).ok_or_else(|| {
                unsupported(vocab, f, "universal body is not quantifier-free unary")
            })?;
            for a in 0..n {
                if !s.contains(a) {
                    sys.zero[a] = true;
                }
            }
            Ok(())
        }
        Formula::Exists(v, body) => {
            let s = compile_atom_set(body, *v, vocab).ok_or_else(|| {
                unsupported(vocab, f, "existential body is not quantifier-free unary")
            })?;
            sys.exists_sets.push(s);
            Ok(())
        }
        Formula::Cmp(lhs, op, rhs) => compile_cmp(f, lhs, *op, rhs, vocab, tol, n, sys),
        other => {
            // Constant facts: boolean combination over a single constant.
            let consts = rw_logic::analysis::constants(other);
            if consts.len() == 1 {
                let c = *consts.iter().next().unwrap();
                if let Some(s) = compile_atom_set_const(other, c, vocab) {
                    let entry = sys.const_atoms.entry(c).or_insert_with(|| AtomSet::full(n));
                    *entry = entry.intersect(&s);
                    return Ok(());
                }
            }
            Err(unsupported(
                vocab,
                other,
                "not a universal, existential, proportion comparison or single-constant fact",
            ))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn compile_cmp(
    whole: &Formula,
    lhs: &PropExpr,
    op: CmpOp,
    rhs: &PropExpr,
    vocab: &Vocabulary,
    tol: &Tolerances,
    n: usize,
    sys: &mut UnaryConstraintSystem,
) -> Result<(), CompileError> {
    let tau = op.tolerance().map(|t| tol.get(t).to_f64()).unwrap_or(0.0);
    let la = affine_of(lhs, vocab, n);
    let ra = affine_of(rhs, vocab, n);
    match (la, ra) {
        (Some(l), Some(r)) => {
            // l - r ≤ τ  (and for ≈/= the symmetric row).
            let d = l.sub(&r);
            sys.rows.push(LinearRow {
                coeffs: d.coeffs.clone(),
                rhs: tau - d.konst,
            });
            if matches!(op, CmpOp::ApproxEq(_) | CmpOp::Eq) {
                sys.rows.push(LinearRow {
                    coeffs: d.coeffs.iter().map(|c| -c).collect(),
                    rhs: tau + d.konst,
                });
            }
            Ok(())
        }
        (None, Some(r)) if r.is_constant() => {
            let cp = cond_prop_of(lhs, vocab)
                .ok_or_else(|| unsupported(vocab, whole, "left side is not affine or a conditional proportion"))?;
            push_cond_rows(&cp, op, r.konst, tau, n, sys, false);
            Ok(())
        }
        (Some(l), None) if l.is_constant() => {
            let cp = cond_prop_of(rhs, vocab)
                .ok_or_else(|| unsupported(vocab, whole, "right side is not affine or a conditional proportion"))?;
            push_cond_rows(&cp, op, l.konst, tau, n, sys, true);
            Ok(())
        }
        _ => Err(unsupported(
            vocab,
            whole,
            "comparison between two non-affine sides (conditional proportions may only be compared to constants)",
        )),
    }
}

/// Rows for `||φ|ψ|| op k` (or `k op ||φ|ψ||` when `flipped`):
/// upper: `p_b - (k+τ)·p_c ≤ 0`; lower: `(k-τ)·p_c - p_b ≤ 0`.
fn push_cond_rows(
    cp: &CondProp,
    op: CmpOp,
    k: f64,
    tau: f64,
    n: usize,
    sys: &mut UnaryConstraintSystem,
    flipped: bool,
) {
    let mut upper = vec![0.0; n];
    let mut lower = vec![0.0; n];
    for a in cp.body_and_cond.iter() {
        upper[a] += 1.0;
        lower[a] -= 1.0;
    }
    for a in cp.cond.iter() {
        upper[a] -= k + tau;
        lower[a] += k - tau;
    }
    let leq_only = matches!(op, CmpOp::ApproxLeq(_) | CmpOp::Leq);
    if leq_only {
        // prop ⪯ k  →  upper row only;  k ⪯ prop  →  lower row only.
        if flipped {
            sys.rows.push(LinearRow {
                coeffs: lower,
                rhs: 0.0,
            });
        } else {
            sys.rows.push(LinearRow {
                coeffs: upper,
                rhs: 0.0,
            });
        }
    } else {
        sys.rows.push(LinearRow {
            coeffs: upper,
            rhs: 0.0,
        });
        sys.rows.push(LinearRow {
            coeffs: lower,
            rhs: 0.0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rw_util::Rat;

    fn tol() -> Tolerances {
        Tolerances::uniform(Rat::new(1, 100))
    }

    #[test]
    fn universal_pins_atoms() {
        let kb = KnowledgeBase::parse("forall x (Penguin(x) => Bird(x))").unwrap();
        let sys = compile(&kb, &tol()).unwrap();
        // Penguin = bit 0, Bird = bit 1: atom 1 (P ∧ ¬B) is pinned.
        assert_eq!(sys.zero, vec![false, true, false, false]);
    }

    #[test]
    fn conditional_linearization() {
        let kb = KnowledgeBase::parse("||Hep(x) | Jaun(x)||_x ~=_1 0.8").unwrap();
        let sys = compile(&kb, &tol()).unwrap();
        assert_eq!(sys.rows.len(), 2);
        // Hep = bit 0, Jaun = bit 1. body∧cond = atom 3; cond = atoms 2,3.
        let up = &sys.rows[0];
        assert!((up.coeffs[3] - (1.0 - 0.81)).abs() < 1e-12);
        assert!((up.coeffs[2] - (-0.81)).abs() < 1e-12);
        assert_eq!(up.rhs, 0.0);
    }

    #[test]
    fn unconditional_affine() {
        let kb = KnowledgeBase::parse("||Bird(x)||_x ~=_1 0.1").unwrap();
        let sys = compile(&kb, &tol()).unwrap();
        assert_eq!(sys.rows.len(), 2);
        // p_bird ≤ 0.1 + τ → coeffs 1 on bird atoms, rhs 0.11.
        assert!((sys.rows[0].rhs - 0.11).abs() < 1e-12);
    }

    #[test]
    fn constant_facts_become_conditioning_sets() {
        let kb = KnowledgeBase::parse("Jaun(Eric); !Hep(Tom)").unwrap();
        let sys = compile(&kb, &tol()).unwrap();
        assert_eq!(sys.const_atoms.len(), 2);
        let eric = kb.vocab().lookup_const("Eric").unwrap();
        // Jaun = bit 0: atoms 1, 3.
        let s = &sys.const_atoms[&eric];
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn chains_split_into_rows() {
        let kb = KnowledgeBase::parse("0.7 <~_1 ||Chirps(x) | Bird(x)||_x <~_2 0.8").unwrap();
        let sys = compile(&kb, &tol()).unwrap();
        assert_eq!(sys.rows.len(), 2); // one lower, one upper
    }

    #[test]
    fn exists_recorded_and_checked() {
        let kb = KnowledgeBase::parse("exists x (P(x)); forall x (!P(x))").unwrap();
        let sys = compile(&kb, &tol()).unwrap();
        assert!(sys.exists_violated());
        let kb2 = KnowledgeBase::parse("exists x (P(x))").unwrap();
        assert!(!compile(&kb2, &tol()).unwrap().exists_violated());
    }

    #[test]
    fn unsupported_shapes_are_reported() {
        for src in [
            "||P(x) & Q(y)||_{x,y} ~=_1 0.5",    // multi-variable proportion
            "P(A) or Q(B)",                      // cross-constant
            "||P(x) | Q(x)||_x ~=_1 ||R(x)||_x", // cond vs non-constant
            "exists! x (P(x))",                  // equality quantifier
        ] {
            let kb = KnowledgeBase::parse(src).unwrap();
            let e = compile(&kb, &tol()).unwrap_err();
            match e {
                CompileError::Unsupported(_) => {}
                other => panic!("{src}: {other:?}"),
            }
        }
        let kb = KnowledgeBase::parse("Likes(A, B)").unwrap();
        assert_eq!(compile(&kb, &tol()).unwrap_err(), CompileError::NotUnary);
    }

    #[test]
    fn lp_rows_include_pins_and_simplex() {
        let kb = KnowledgeBase::parse("forall x (P(x)); ||P(x) & Q(x)||_x <~_1 0.3").unwrap();
        let sys = compile(&kb, &tol()).unwrap();
        let (a, b) = sys.lp_rows();
        // 2 simplex + 2 pins (atoms 0 and 2 lack P) + 1 row.
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
    }
}
