//! Asymptotic degrees of belief from maximum entropy: the τ-sweep.
//!
//! For a compiled unary KB, `lim_{N→∞} Pr_N^τ(φ|KB)` is the conditional
//! probability of `φ` at the entropy-maximizing point of `S(KB)[τ⃗]` (paper
//! §6 / GHK94). The outer limit `τ⃗ → 0` is computed by sweeping shrinking
//! tolerance vectors and extrapolating.
//!
//! **Robustness probing.** The paper (§5.3) shows the limit can depend on
//! *how* `τ⃗ → 0` when defaults conflict: shrinking `τ₁` faster than `τ₂`
//! prioritizes default 1. We therefore run one sweep with uniform shrinkage
//! and one extra sweep per tolerance index in which that index shrinks
//! quadratically faster. If all sweeps agree the limit exists; otherwise the
//! outcome is [`LimitOutcome::NonRobust`] with the candidate values —
//! mirroring the paper's diagnosis that conflicting defaults of unspecified
//! relative strength have no robust degree of belief (the Nixon diamond),
//! while *equal* strengths (a shared `≈_i`) give 1/2.

use crate::constraints::{compile, CompileError, UnaryConstraintSystem};
use crate::entropy::EntropyError;
use rw_logic::analysis;
use rw_logic::ast::{Formula, TolId};
use rw_logic::{ConstId, KnowledgeBase, Pretty, Tolerances};
use rw_unary::atoms::{atom_count, compile_atom_set_const};
use rw_unary::AtomSet;
use rw_util::Rat;
use std::collections::BTreeMap;

/// Configuration of the τ-sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Initial tolerance vector.
    pub tau0: Tolerances,
    /// Per-step shrink factor.
    pub factor: Rat,
    /// Number of sweep steps.
    pub steps: usize,
    /// Run the asymmetric-shrinkage probes for robustness.
    pub probe_asymmetry: bool,
    /// Agreement threshold between probes.
    pub agreement: f64,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            tau0: Tolerances::uniform(Rat::new(1, 16)),
            factor: Rat::new(1, 2),
            steps: 8,
            probe_asymmetry: true,
            agreement: 0.02,
        }
    }
}

/// The classified limit.
#[derive(Clone, Debug, PartialEq)]
pub enum LimitOutcome {
    /// The limit exists (up to numerical tolerance).
    Converged(f64),
    /// Different shrinkage paths give different limits (conflicting
    /// defaults of unspecified relative strength, paper §5.3).
    NonRobust(Vec<f64>),
    /// The KB is not eventually consistent: no worlds satisfy it for small
    /// τ⃗ and large N, so no degree of belief exists (Definition 4.3).
    Infeasible,
}

/// Computes the maximum-entropy point of `S(KB)` at a concrete tolerance
/// vector (all atoms; pinned atoms are zero).
pub fn maxent_point(kb: &KnowledgeBase, tol: &Tolerances) -> Result<Vec<f64>, MaxentError> {
    let sys = compile(kb, tol)?;
    solve_system(&sys)
}

/// Errors: compilation failures (caller should fall back to exact engines)
/// or infeasibility (a semantic outcome).
#[derive(Clone, Debug, PartialEq)]
pub enum MaxentError {
    Compile(CompileError),
    Infeasible,
    Numeric(String),
}

impl From<CompileError> for MaxentError {
    fn from(e: CompileError) -> MaxentError {
        MaxentError::Compile(e)
    }
}

impl std::fmt::Display for MaxentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaxentError::Compile(e) => write!(f, "{e}"),
            MaxentError::Infeasible => write!(f, "knowledge base is not eventually consistent"),
            MaxentError::Numeric(s) => write!(f, "numeric failure: {s}"),
        }
    }
}

impl std::error::Error for MaxentError {}

fn solve_system(sys: &UnaryConstraintSystem) -> Result<Vec<f64>, MaxentError> {
    solve_system_warm(sys, None).map(|(p, _)| p)
}

fn solve_system_warm(
    sys: &UnaryConstraintSystem,
    warm: Option<&[f64]>,
) -> Result<(Vec<f64>, Vec<f64>), MaxentError> {
    if sys.exists_violated() {
        return Err(MaxentError::Infeasible);
    }
    // Feasibility first: the dual ascent cannot certify an empty polytope.
    let (a, b) = sys.lp_rows();
    match crate::simplex::solve_lp(&vec![0.0; sys.atoms], &a, &b) {
        crate::simplex::LpResult::Infeasible => return Err(MaxentError::Infeasible),
        crate::simplex::LpResult::Unbounded => {
            return Err(MaxentError::Numeric("polytope unbounded".to_string()))
        }
        crate::simplex::LpResult::Optimal { .. } => {}
    }
    // Existential conjuncts need their witness class to be able to carry
    // *positive* proportion; if the linear rows force it to zero (Poole's
    // partition-of-exceptions KB, paper §5.5), no world of large size
    // satisfies the KB at this tolerance.
    for set in &sys.exists_sets {
        let mut c = vec![0.0; sys.atoms];
        for atom in set.iter() {
            c[atom] = 1.0;
        }
        match crate::simplex::solve_lp(&c, &a, &b) {
            crate::simplex::LpResult::Optimal { value, .. } => {
                if value < 1e-9 {
                    return Err(MaxentError::Infeasible);
                }
            }
            _ => return Err(MaxentError::Infeasible),
        }
    }
    let rows: Vec<(Vec<f64>, f64)> = sys.rows.iter().map(|r| (r.coeffs.clone(), r.rhs)).collect();
    match crate::entropy::maximize_entropy_dual_warm(&rows, &sys.zero, sys.atoms, warm) {
        Ok(pl) => Ok(pl),
        Err(EntropyError::Infeasible) => Err(MaxentError::Infeasible),
        Err(e) => Err(MaxentError::Numeric(e.to_string())),
    }
}

/// A query compiled to per-constant atom sets: the value at a maxent point
/// is `Π_c p(Q_c ∩ F_c) / p(F_c)` (distinct constants are asymptotically
/// independent given the proportions — Theorem 5.27's phenomenon).
struct CompiledQuery {
    per_const: Vec<(ConstId, AtomSet)>,
}

fn compile_query(query: &Formula, kb: &KnowledgeBase) -> Result<CompiledQuery, CompileError> {
    let vocab = kb.vocab();
    let n = atom_count(vocab);
    let mut per_const: BTreeMap<ConstId, AtomSet> = BTreeMap::new();
    for part in query.conjuncts() {
        let consts = analysis::constants(part);
        if consts.len() != 1 {
            return Err(CompileError::Unsupported(format!(
                "query conjunct `{}` must mention exactly one constant",
                Pretty::new(vocab, part)
            )));
        }
        let c = *consts.iter().next().unwrap();
        let s = compile_atom_set_const(part, c, vocab).ok_or_else(|| {
            CompileError::Unsupported(format!(
                "query conjunct `{}` is not a boolean combination of unary atoms over one constant",
                Pretty::new(vocab, part)
            ))
        })?;
        let entry = per_const.entry(c).or_insert_with(|| AtomSet::full(n));
        *entry = entry.intersect(&s);
    }
    Ok(CompiledQuery {
        per_const: per_const.into_iter().collect(),
    })
}

/// Evaluates a compiled query at a maxent point; `None` when some
/// conditioning set carries no mass at this tolerance.
fn query_value(
    q: &CompiledQuery,
    sys: &UnaryConstraintSystem,
    point: &[f64],
    n: usize,
) -> Option<f64> {
    let mut value = 1.0;
    for (c, qset) in &q.per_const {
        let fset = sys
            .const_atoms
            .get(c)
            .cloned()
            .unwrap_or_else(|| AtomSet::full(n));
        let mut num = 0.0;
        let mut den = 0.0;
        for (a, &p) in point.iter().enumerate().take(n) {
            if fset.contains(a) {
                den += p;
                if qset.contains(a) {
                    num += p;
                }
            }
        }
        if den < 1e-13 {
            return None;
        }
        value *= num / den;
    }
    Some(value)
}

/// One sweep along a fixed shrinkage path; returns the extrapolated limit.
fn sweep(
    kb: &KnowledgeBase,
    q: &CompiledQuery,
    config: &SweepConfig,
    accelerate: Option<TolId>,
) -> Result<Option<f64>, MaxentError> {
    let n = atom_count(kb.vocab());
    let mut values: Vec<f64> = Vec::with_capacity(config.steps);
    let mut tol = config.tau0.clone();
    if let Some(idx) = accelerate {
        // Give the accelerated index a head start so the asymmetry is
        // visible even after few steps.
        let accelerated = tol.get(idx) * config.factor * config.factor;
        tol = tol.with(idx, accelerated);
    }
    let mut warm: Option<Vec<f64>> = None;
    for step in 0..config.steps {
        let sys = compile(kb, &tol)?;
        let (point, lambda) = solve_system_warm(&sys, warm.as_deref())?;
        warm = Some(lambda);
        if let Some(v) = query_value(q, &sys, &point, n) {
            values.push(v);
        }
        // Shrink: the accelerated index shrinks by factor² per step.
        tol = tol.scaled(config.factor);
        if let Some(idx) = accelerate {
            let accelerated = tol.get(idx) * config.factor;
            tol = tol.with(idx, accelerated);
        }
        let _ = step;
    }
    if values.len() < 2 {
        return Ok(values.last().copied());
    }
    // Richardson extrapolation for an error model c₁·f^k + c₂·f^{2k}:
    // one pass removes the linear term, a second pass the quadratic one.
    let f = config.factor.to_f64();
    let first: Vec<f64> = values
        .windows(2)
        .map(|w| (w[1] - f * w[0]) / (1.0 - f))
        .collect();
    let extrapolated = if first.len() >= 2 {
        let k = first.len();
        (first[k - 1] - f * f * first[k - 2]) / (1.0 - f * f)
    } else {
        first[0]
    };
    Ok(Some(extrapolated.clamp(0.0, 1.0)))
}

/// The asymptotic random-worlds degree of belief
/// `lim_{τ⃗→0} lim_{N→∞} Pr_N^τ(query | KB)` via maximum entropy.
pub fn degree_of_belief_limit(
    kb: &KnowledgeBase,
    query: &Formula,
    config: &SweepConfig,
) -> Result<LimitOutcome, MaxentError> {
    let q = compile_query(query, kb)?;
    let base = match sweep(kb, &q, config, None) {
        Ok(Some(v)) => v,
        Ok(None) => return Ok(LimitOutcome::Infeasible),
        Err(MaxentError::Infeasible) => return Ok(LimitOutcome::Infeasible),
        Err(e) => return Err(e),
    };
    if !config.probe_asymmetry {
        return Ok(LimitOutcome::Converged(base));
    }
    // Collect the tolerance indices actually used by the KB.
    let mut indices = std::collections::BTreeSet::new();
    for c in kb.conjuncts() {
        indices.extend(analysis::tolerance_indices(c));
    }
    if indices.len() <= 1 {
        return Ok(LimitOutcome::Converged(base));
    }
    let mut candidates = vec![base];
    for idx in indices {
        match sweep(kb, &q, config, Some(idx)) {
            Ok(Some(v)) => candidates.push(v),
            Ok(None) | Err(MaxentError::Infeasible) => return Ok(LimitOutcome::Infeasible),
            Err(e) => return Err(e),
        }
    }
    let min = candidates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = candidates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max - min <= config.agreement {
        // All shrinkage paths agree; report the uniform-path value (it has
        // the most accurate extrapolation — accelerated paths trade
        // precision for asymmetry detection).
        Ok(LimitOutcome::Converged(base))
    } else {
        Ok(LimitOutcome::NonRobust(candidates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limit(kb_src: &str, q_src: &str) -> LimitOutcome {
        let mut kb = KnowledgeBase::parse(kb_src).unwrap();
        let q = kb.parse_query(q_src).unwrap();
        degree_of_belief_limit(&kb, &q, &SweepConfig::default()).unwrap()
    }

    fn expect_point(kb_src: &str, q_src: &str, expected: f64, eps: f64) {
        match limit(kb_src, q_src) {
            LimitOutcome::Converged(v) => {
                assert!(
                    (v - expected).abs() < eps,
                    "{kb_src} ⊢ {q_src}: {v} vs {expected}"
                )
            }
            other => panic!("{kb_src} ⊢ {q_src}: {other:?}"),
        }
    }

    #[test]
    fn direct_inference_hepatitis() {
        // Paper Example 5.8: Pr∞(Hep(Eric)) = 0.8.
        expect_point(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric)",
            "Hep(Eric)",
            0.8,
            1e-3,
        );
    }

    #[test]
    fn default_specificity_penguins() {
        // Paper Example 5.10: penguins don't fly (specificity), despite
        // being birds.
        expect_point(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
            "Fly(Tweety)",
            0.0,
            1e-2,
        );
    }

    #[test]
    fn exceptional_subclass_inheritance() {
        // Paper Example 5.20: Tweety the penguin is still warm-blooded.
        expect_point(
            "Bird(x) ->_1 Fly(x); Penguin(x) ->_2 !Fly(x); \
             Bird(x) ->_3 Warm-blooded(x); \
             forall x (Penguin(x) => Bird(x)); Penguin(Tweety)",
            "Warm-blooded(Tweety)",
            1.0,
            1e-2,
        );
    }

    #[test]
    fn black_birds_047() {
        // Paper Example 5.29: not 0.2 but ≈ 0.47.
        expect_point(
            "||Black(x) | Bird(x)||_x ~=_1 0.2; ||Bird(x)||_x ~=_2 0.1",
            "Black(Clyde)",
            0.47,
            5e-3,
        );
    }

    #[test]
    fn section6_worked_example() {
        // ∀x P1(x) ∧ ||P1∧P2|| ⪯ 0.3 → Pr(P2(c)) = 0.3.
        expect_point(
            "forall x (P1(x)); ||P1(x) & P2(x)||_x <~_1 0.3",
            "P2(C)",
            0.3,
            1e-3,
        );
    }

    #[test]
    fn representation_dependence_colors() {
        // Paper §7.2: refining ¬White into Red/Blue moves Pr(White) from
        // 1/2 to 1/3.
        expect_point("true", "White(B1)", 0.5, 1e-6);
        expect_point(
            "forall x (!White(x) <=> Red(x) or Blue(x)); forall x (!(Red(x) & Blue(x))); \
             forall x (White(x) => !Red(x) & !Blue(x))",
            "White(B1)",
            1.0 / 3.0,
            1e-3,
        );
    }

    #[test]
    fn representation_dependence_flyingbird() {
        // Paper §7.2: Bird/FlyingBird representation gives Pr(Bird(Opus)) = 2/3.
        expect_point(
            "||FlyingBird(x) | Bird(x)||_x ~=_1 0.5; forall x (FlyingBird(x) => Bird(x)); Bird(Tweety)",
            "Bird(Opus)",
            2.0 / 3.0,
            1e-3,
        );
        // While the Bird/Fly representation gives 1/2.
        expect_point(
            "||Fly(x) | Bird(x)||_x ~=_1 0.5; Bird(Tweety)",
            "Bird(Opus)",
            0.5,
            1e-3,
        );
    }

    #[test]
    fn conflicting_defaults_are_non_robust() {
        // Two defaults of unspecified relative strength disagree about C:
        // the limit depends on the shrinkage path (paper §5.3 / §6 Geffner
        // discussion).
        let out = limit(
            "||Q(x) | P(x) & S(x)||_x ~=_1 1; ||Q(x) | R(x)||_x ~=_2 0; \
             P(C); S(C); R(C)",
            "Q(C)",
        );
        match out {
            LimitOutcome::NonRobust(vs) => {
                let min = vs.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                assert!(max - min > 0.3, "{vs:?}");
            }
            other => panic!("expected NonRobust, got {other:?}"),
        }
    }

    #[test]
    fn equal_strength_conflict_is_robust() {
        // Same conflict but through a *shared* tolerance index: the limit
        // is robust. Its value is 3/5, not 1/2: the Lagrangian analysis
        // gives Pr(Q|PSR) = e^{-l2}/(e^{-l1}+e^{-l2}) with the budgets
        // 2C e^{-l1} = tau*p_PS (p_PS ~ C) and 4C e^{-l2} = tau*p_R
        // (p_R ~ 3C), hence e^{-l1} = tau/2, e^{-l2} = 3tau/4 and the
        // ratio (3/4)/(1/2 + 3/4) = 3/5. (The symmetric 1/2 of the paper's
        // Nixon diamond needs the classes to have equal-size supports.)
        expect_point(
            "||Q(x) | P(x) & S(x)||_x ~=_1 1; ||Q(x) | R(x)||_x ~=_1 0; \
             P(C); S(C); R(C)",
            "Q(C)",
            0.6,
            0.01,
        );
    }

    #[test]
    fn inconsistent_kb_is_infeasible() {
        let out = limit("forall x (P(x)); forall x (!P(x))", "P(C)");
        assert_eq!(out, LimitOutcome::Infeasible);
        let out2 = limit("exists x (P(x)); forall x (!P(x))", "P(C)");
        assert_eq!(out2, LimitOutcome::Infeasible);
    }

    #[test]
    fn independence_product() {
        // Paper Example 5.28: Pr(Hep ∧ Over60) = 0.8 × 0.4 = 0.32.
        expect_point(
            "||Hep(x) | Jaun(x)||_x ~=_1 0.8; Jaun(Eric); \
             ||Over60(x) | Patient(x)||_x ~=_2 0.4; Patient(Eric)",
            "Hep(Eric) & Over60(Eric)",
            0.32,
            2e-3,
        );
    }

    #[test]
    fn unsupported_queries_error() {
        let mut kb = KnowledgeBase::parse("P(C)").unwrap();
        let q = kb.parse_query("C = D").unwrap();
        assert!(matches!(
            degree_of_belief_limit(&kb, &q, &SweepConfig::default()),
            Err(MaxentError::Compile(CompileError::Unsupported(_)))
        ));
    }
}
