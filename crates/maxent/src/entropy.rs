//! Entropy maximization over a polytope by Frank–Wolfe.
//!
//! We maximize `H(p) = -Σ p_a ln p_a` over `{p ≥ 0 : A p ≤ b}` (the rows
//! include the simplex equality `Σ p = 1` as two inequalities). Entropy is
//! strictly concave, so the maximizer — the paper §6's "maximum-entropy
//! point of `S(KB)`" — is unique whenever the polytope is nonempty.
//!
//! Frank–Wolfe needs only a linear oracle (one small LP per iteration) and
//! respects the polytope exactly, which matters because compiled constraints
//! routinely pin coordinates to zero. The gradient `-ln p_a - 1` blows up on
//! the boundary; clamping it drives iterates off zero coordinates whenever
//! the polytope allows, which is exactly the behaviour the unique interior
//! maximizer requires. An exact bisection line search on the (monotone)
//! directional derivative replaces the classic `2/(t+2)` step size and makes
//! convergence fast in practice.

use crate::simplex::{solve_lp, LpResult};

/// Failure modes of entropy maximization.
#[derive(Clone, Debug, PartialEq)]
pub enum EntropyError {
    /// The constraint polytope is empty.
    Infeasible,
    /// The LP oracle failed (numerically unbounded polytope — cannot happen
    /// for simplex-bounded systems unless the caller forgot the sum rows).
    Unbounded,
    /// Frank–Wolfe failed to reach the requested gap within the iteration
    /// budget (returns the best point found).
    DidNotConverge { point: Vec<f64>, gap: f64 },
}

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntropyError::Infeasible => write!(f, "constraint polytope is empty"),
            EntropyError::Unbounded => write!(f, "polytope unbounded: missing simplex rows"),
            EntropyError::DidNotConverge { gap, .. } => {
                write!(
                    f,
                    "Frank-Wolfe gap {gap:.2e} above tolerance at iteration budget"
                )
            }
        }
    }
}

impl std::error::Error for EntropyError {}

/// Shannon entropy (natural log) of a non-negative vector.
pub fn entropy(p: &[f64]) -> f64 {
    p.iter()
        .map(|&x| if x > 0.0 { -x * x.ln() } else { 0.0 })
        .sum()
}

const GRAD_CLAMP: f64 = 745.0; // -ln(5e-324): the largest finite -ln p

fn gradient(p: &[f64], out: &mut [f64]) {
    for (g, &x) in out.iter_mut().zip(p) {
        *g = if x <= 0.0 {
            GRAD_CLAMP
        } else {
            (-x.ln() - 1.0).min(GRAD_CLAMP)
        };
    }
}

/// Exact line search: maximize `H(p + γ d)` for `γ ∈ [0, 1]`.
///
/// The directional derivative `φ'(γ) = Σ d_a (-ln(p_a + γ d_a) - 1)` is
/// strictly decreasing, so bisection on its sign converges unconditionally.
fn line_search(p: &[f64], d: &[f64]) -> f64 {
    let phi_prime = |gamma: f64| -> f64 {
        p.iter()
            .zip(d)
            .map(|(&pi, &di)| {
                if di == 0.0 {
                    return 0.0;
                }
                let v = (pi + gamma * di).max(1e-18);
                di * (-v.ln() - 1.0)
            })
            .sum()
    };
    if phi_prime(1.0) >= 0.0 {
        return 1.0;
    }
    if phi_prime(0.0) <= 0.0 {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if phi_prime(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Maximizes entropy over `{p ≥ 0 : A p ≤ b}`.
///
/// The caller must include rows enforcing `Σ p = 1` (e.g. `Σ p ≤ 1` and
/// `-Σ p ≤ -1`); [`crate::constraints::UnaryConstraintSystem::rows`] does.
pub fn maximize_entropy(a: &[Vec<f64>], b: &[f64], n: usize) -> Result<Vec<f64>, EntropyError> {
    // Starting point: average of the per-coordinate maximizing vertices.
    // This lands in the relative interior of the feasible region wherever
    // the region has one, so the entropy gradient is finite on every
    // coordinate that can be nonzero.
    let mut start = vec![0.0f64; n];
    let mut found = 0usize;
    for j in 0..n {
        let mut c = vec![0.0; n];
        c[j] = 1.0;
        match solve_lp(&c, a, b) {
            LpResult::Optimal { x, .. } => {
                for (s, xi) in start.iter_mut().zip(&x) {
                    *s += xi;
                }
                found += 1;
            }
            LpResult::Infeasible => return Err(EntropyError::Infeasible),
            LpResult::Unbounded => return Err(EntropyError::Unbounded),
        }
    }
    if found == 0 {
        return Err(EntropyError::Infeasible);
    }
    let mut p: Vec<f64> = start.iter().map(|s| s / found as f64).collect();

    let mut grad = vec![0.0f64; n];
    let mut best_gap = f64::INFINITY;
    for _iter in 0..2000 {
        gradient(&p, &mut grad);
        let s = match solve_lp(&grad, a, b) {
            LpResult::Optimal { x, .. } => x,
            LpResult::Infeasible => return Err(EntropyError::Infeasible),
            LpResult::Unbounded => return Err(EntropyError::Unbounded),
        };
        let gap: f64 = grad
            .iter()
            .zip(s.iter().zip(&p))
            .map(|(&g, (&si, &pi))| g * (si - pi))
            .sum();
        best_gap = best_gap.min(gap.abs());
        if gap.abs() < 1e-10 {
            return Ok(p);
        }
        let d: Vec<f64> = s.iter().zip(&p).map(|(&si, &pi)| si - pi).collect();
        let gamma = line_search(&p, &d);
        if gamma <= 0.0 {
            return Ok(p);
        }
        for (pi, di) in p.iter_mut().zip(&d) {
            *pi = (*pi + gamma * di).max(0.0);
        }
    }
    Err(EntropyError::DidNotConverge {
        point: p,
        gap: best_gap,
    })
}

/// Maximizes entropy over `{p ∈ Δ : rows·p ≤ rhs, p_a = 0 for pinned a}` by
/// solving the *dual* problem in Gibbs form.
///
/// The maximizer of `H(p)` subject to `Σ p = 1` and `A p ≤ b` is
/// `p_a ∝ exp(-(Aᵀλ)_a)` for multipliers `λ ≥ 0` minimizing the convex dual
/// `g(λ) = ln Σ_a exp(-(Aᵀλ)_a) + b·λ`. Because the primal point is
/// reconstructed in closed form from `λ`, coordinates at scale `τ²` (which
/// arise in exceptional-subclass inheritance, paper Example 5.20) come out
/// with full *relative* precision — the regime where Frank–Wolfe's additive
/// gap bound is useless. Projected gradient descent with adaptive step size
/// suffices for the small systems compiled from knowledge bases.
///
/// `zero` marks atoms pinned to exactly zero (from universal conjuncts);
/// before solving, a closure pass propagates rows of the form
/// `Σ c_a p_a ≤ 0` with `c ≥ 0`, which force further exact zeros that the
/// Gibbs parameterization cannot represent.
pub fn maximize_entropy_dual(
    rows: &[(Vec<f64>, f64)],
    zero: &[bool],
    n: usize,
) -> Result<Vec<f64>, EntropyError> {
    maximize_entropy_dual_warm(rows, zero, n, None).map(|(p, _)| p)
}

/// As [`maximize_entropy_dual`], optionally warm-started from a previous
/// multiplier vector (the τ-sweep reuses multipliers across steps: `λ`
/// changes by `O(ln 1/factor)` per step, so warm starts cut iteration counts
/// by an order of magnitude). Returns the point and the final multipliers.
pub fn maximize_entropy_dual_warm(
    rows: &[(Vec<f64>, f64)],
    zero: &[bool],
    n: usize,
    warm: Option<&[f64]>,
) -> Result<(Vec<f64>, Vec<f64>), EntropyError> {
    // --- Zero closure -----------------------------------------------------
    let mut pinned = zero.to_vec();
    loop {
        let mut changed = false;
        for (coeffs, rhs) in rows {
            if *rhs > 1e-14 {
                continue;
            }
            let mut all_nonneg = true;
            let mut has_pos = false;
            for (a, &c) in coeffs.iter().enumerate() {
                if pinned[a] {
                    continue;
                }
                if c < -1e-14 {
                    all_nonneg = false;
                    break;
                }
                if c > 1e-14 {
                    has_pos = true;
                }
            }
            if all_nonneg {
                if *rhs < -1e-12 {
                    return Err(EntropyError::Infeasible);
                }
                if has_pos {
                    for (a, &c) in coeffs.iter().enumerate() {
                        if !pinned[a] && c > 1e-14 {
                            pinned[a] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let act: Vec<usize> = (0..n).filter(|&a| !pinned[a]).collect();
    if act.is_empty() {
        return Err(EntropyError::Infeasible);
    }

    // Rows with no support on active atoms are vacuous (0 ≤ rhs) or
    // witness infeasibility (0 ≤ negative rhs).
    for (coeffs, rhs) in rows {
        if *rhs < -1e-12 && act.iter().all(|&a| coeffs[a].abs() <= 1e-14) {
            return Err(EntropyError::Infeasible);
        }
    }
    let live: Vec<(Vec<f64>, f64)> = rows
        .iter()
        .filter(|(coeffs, _)| act.iter().any(|&a| coeffs[a].abs() > 1e-14))
        .cloned()
        .collect();
    let m = live.len();

    // --- Dual projected gradient -------------------------------------------
    let mut lambda = match warm {
        Some(w) if w.len() == m => w.to_vec(),
        _ => vec![0.0f64; m],
    };
    let mut grad = vec![0.0f64; m];
    let mut p = vec![0.0f64; n];
    let mut theta = vec![0.0f64; act.len()];

    let eval = |lambda: &[f64], theta: &mut [f64], p: &mut [f64]| -> f64 {
        for (t, &a) in theta.iter_mut().zip(&act) {
            let mut s = 0.0;
            for (j, (coeffs, _)) in live.iter().enumerate() {
                s -= lambda[j] * coeffs[a];
            }
            *t = s;
        }
        let tmax = theta.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let z: f64 = theta.iter().map(|t| (t - tmax).exp()).sum();
        p.fill(0.0);
        for (t, &a) in theta.iter().zip(&act) {
            p[a] = (t - tmax).exp() / z;
        }
        let mut g = z.ln() + tmax;
        for (j, (_, rhs)) in live.iter().enumerate() {
            g += lambda[j] * rhs;
        }
        g
    };

    let mut g = eval(&lambda, &mut theta, &mut p);
    let mut step = 1.0f64;
    for _iter in 0..200_000 {
        // ∇g_j = b_j − E_p[row_j].
        let mut kkt: f64 = 0.0;
        for (j, (coeffs, rhs)) in live.iter().enumerate() {
            let mut e = 0.0;
            for &a in &act {
                e += p[a] * coeffs[a];
            }
            grad[j] = rhs - e;
            let residual = if lambda[j] > 0.0 {
                grad[j].abs()
            } else {
                (-grad[j]).max(0.0)
            };
            kkt = kkt.max(residual);
        }
        if kkt < 1e-11 {
            return Ok((p, lambda));
        }
        // Backtracking projected gradient step.
        let mut accepted = false;
        for _bt in 0..60 {
            let cand: Vec<f64> = lambda
                .iter()
                .zip(&grad)
                .map(|(&l, &d)| (l - step * d).max(0.0))
                .collect();
            let gc = eval(&cand, &mut theta, &mut p);
            if gc <= g - 1e-18 {
                lambda = cand;
                g = gc;
                step *= 1.25;
                accepted = true;
                break;
            }
            step *= 0.5;
            if step < 1e-18 {
                break;
            }
        }
        if !accepted {
            // Re-evaluate p at the current λ and accept the point: the KKT
            // residual is already below what float steps can improve.
            let _ = eval(&lambda, &mut theta, &mut p);
            return Ok((p, lambda));
        }
    }
    let _ = eval(&lambda, &mut theta, &mut p);
    Ok((p, lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simplex rows `Σ p = 1` plus extra inequality rows.
    fn with_simplex(n: usize, mut extra: Vec<(Vec<f64>, f64)>) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut a = vec![vec![1.0; n], vec![-1.0; n]];
        let mut b = vec![1.0, -1.0];
        for (row, rhs) in extra.drain(..) {
            a.push(row);
            b.push(rhs);
        }
        (a, b)
    }

    #[test]
    fn unconstrained_simplex_is_uniform() {
        for n in [2usize, 4, 8] {
            let (a, b) = with_simplex(n, vec![]);
            let p = maximize_entropy(&a, &b, n).unwrap();
            for &x in &p {
                assert!((x - 1.0 / n as f64).abs() < 1e-6, "n={n}: {p:?}");
            }
        }
    }

    #[test]
    fn pinned_coordinate() {
        // p0 ≤ 0.3: maxent puts 0.3 on p0 only if entropy prefers it; with
        // n=2 the unconstrained max is (1/2,1/2) → constraint binds at 0.3?
        // No: uniform (0.5,0.5) violates p0 ≤ 0.3, so optimum is (0.3,0.7).
        let (a, b) = with_simplex(2, vec![(vec![1.0, 0.0], 0.3)]);
        let p = maximize_entropy(&a, &b, 2).unwrap();
        assert!((p[0] - 0.3).abs() < 1e-6, "{p:?}");
        assert!((p[1] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn zero_coordinate() {
        let (a, b) = with_simplex(3, vec![(vec![0.0, 0.0, 1.0], 0.0)]);
        let p = maximize_entropy(&a, &b, 3).unwrap();
        assert!(p[2].abs() < 1e-9);
        assert!(
            (p[0] - 0.5).abs() < 1e-6 && (p[1] - 0.5).abs() < 1e-6,
            "{p:?}"
        );
    }

    #[test]
    fn conditional_constraint_shape() {
        // The Black-birds example (paper Example 5.29), atoms ordered
        // (B∧Bl, B∧¬Bl, ¬B∧Bl, ¬B∧¬Bl): ||Bird|| = 0.1, ||Black|Bird|| = 0.2
        // → p0+p1 = 0.1, p0 = 0.02 → maxent splits the rest: p2 = p3 = 0.45.
        let (a, b) = with_simplex(
            4,
            vec![
                (vec![1.0, 1.0, 0.0, 0.0], 0.1),
                (vec![-1.0, -1.0, 0.0, 0.0], -0.1),
                // p0 = 0.2 (p0 + p1):
                (vec![0.8, -0.2, 0.0, 0.0], 0.0),
                (vec![-0.8, 0.2, 0.0, 0.0], 0.0),
            ],
        );
        let p = maximize_entropy(&a, &b, 4).unwrap();
        assert!((p[0] - 0.02).abs() < 1e-5, "{p:?}");
        assert!((p[1] - 0.08).abs() < 1e-5);
        assert!((p[2] - 0.45).abs() < 1e-5);
        assert!((p[3] - 0.45).abs() < 1e-5);
        // Pr(Black(Clyde)) = p0 + p2 = 0.47 — the paper's number.
        assert!((p[0] + p[2] - 0.47).abs() < 1e-4);
    }

    #[test]
    fn infeasible_polytope() {
        let (a, b) = with_simplex(2, vec![(vec![1.0, 1.0], 0.5)]); // Σ=1 but ≤ 0.5
        assert_eq!(maximize_entropy(&a, &b, 2), Err(EntropyError::Infeasible));
    }

    #[test]
    fn entropy_value_sanity() {
        assert!((entropy(&[0.5, 0.5]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_projection_matches_lagrangian_solution() {
        // max H s.t. p0 + p1 = 0.6 over 4 coords: closed form p0=p1=0.3,
        // p2=p3=0.2.
        let (a, b) = with_simplex(
            4,
            vec![
                (vec![1.0, 1.0, 0.0, 0.0], 0.6),
                (vec![-1.0, -1.0, 0.0, 0.0], -0.6),
            ],
        );
        let p = maximize_entropy(&a, &b, 4).unwrap();
        for (i, expect) in [0.3, 0.3, 0.2, 0.2].iter().enumerate() {
            assert!((p[i] - expect).abs() < 1e-6, "{p:?}");
        }
    }
}
