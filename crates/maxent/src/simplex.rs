//! A dense two-phase simplex solver for the small linear programs arising in
//! maximum-entropy computation.
//!
//! Problems have the form `max c·x  s.t.  A x ≤ b, x ≥ 0` with at most a few
//! dozen variables (atom proportions) and rows (compiled KB constraints plus
//! the two simplex-sum rows). Phase 1 introduces artificial variables for
//! rows with negative right-hand sides; Bland's rule guarantees termination.
//! External LP crates are deliberately avoided: the needed subset is ~250
//! lines and fully testable against vertex enumeration on random instances.

/// Outcome of an LP solve.
#[derive(Clone, Debug, PartialEq)]
pub enum LpResult {
    Optimal { x: Vec<f64>, value: f64 },
    Infeasible,
    Unbounded,
}

const EPS: f64 = 1e-9;

struct Tableau {
    /// rows × cols coefficient matrix, last column = rhs.
    t: Vec<Vec<f64>>,
    /// Basis variable per row.
    basis: Vec<usize>,
    rows: usize,
    cols: usize, // structural + slack + artificial (excludes rhs)
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.t[row][col];
        debug_assert!(p.abs() > EPS);
        let inv = 1.0 / p;
        for v in self.t[row].iter_mut() {
            *v *= inv;
        }
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let f = self.t[r][col];
            if f.abs() < EPS {
                continue;
            }
            for c in 0..=self.cols {
                let delta = f * self.t[row][c];
                self.t[r][c] -= delta;
            }
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations for objective coefficients `obj` (maximize),
    /// restricted to columns `< allowed_cols`. Returns `false` on unbounded.
    fn optimize(&mut self, obj: &mut [f64], allowed_cols: usize) -> bool {
        // `obj` is the current reduced-cost row (length cols+1, last = value).
        loop {
            // Bland's rule: smallest-index entering column with positive
            // reduced cost.
            let enter = obj[..allowed_cols].iter().position(|&o| o > EPS);
            let Some(col) = enter else {
                return true;
            };
            // Ratio test, Bland tie-break on smallest basis index.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.rows {
                let a = self.t[r][col];
                if a > EPS {
                    let ratio = self.t[r][self.cols] / a;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - EPS
                                || (ratio < bratio + EPS && self.basis[r] < self.basis[br])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return false; // unbounded
            };
            self.pivot(row, col);
            // Update the objective row.
            let f = obj[col];
            for c in 0..=self.cols {
                let delta = f * self.t[row][c];
                let slot = if c == self.cols {
                    &mut obj[self.cols]
                } else {
                    &mut obj[c]
                };
                *slot -= delta;
            }
        }
    }
}

/// Solves `max c·x  s.t.  a·x ≤ b (row-wise), x ≥ 0`.
pub fn solve_lp(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpResult {
    let n = c.len();
    let m = a.len();
    debug_assert_eq!(b.len(), m);
    for row in a {
        debug_assert_eq!(row.len(), n);
    }

    // Columns: n structural, m slack, then artificials for negative-rhs rows.
    let neg_rows: Vec<usize> = (0..m).filter(|&i| b[i] < -EPS).collect();
    let n_art = neg_rows.len();
    let cols = n + m + n_art;

    let mut t = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut art_of_row = vec![usize::MAX; m];
    for (k, &i) in neg_rows.iter().enumerate() {
        art_of_row[i] = n + m + k;
    }
    for i in 0..m {
        let flip = if b[i] < -EPS { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i][j] = flip * a[i][j];
        }
        t[i][n + i] = flip; // slack (negated if the row was flipped)
        t[i][cols] = flip * b[i];
        if art_of_row[i] != usize::MAX {
            t[i][art_of_row[i]] = 1.0;
            basis[i] = art_of_row[i];
        } else {
            basis[i] = n + i;
        }
    }

    let mut tab = Tableau {
        t,
        basis,
        rows: m,
        cols,
    };

    // Phase 1: maximize -(sum of artificials).
    if n_art > 0 {
        let mut obj = vec![0.0; cols + 1];
        for k in 0..n_art {
            obj[n + m + k] = -1.0;
        }
        // Express the objective in terms of the current (artificial) basis.
        for (row, &art) in art_of_row.iter().enumerate() {
            if art != usize::MAX {
                for (o, &t) in obj.iter_mut().zip(&tab.t[row]) {
                    *o += t;
                }
            }
        }
        if !tab.optimize(&mut obj, cols) {
            return LpResult::Infeasible; // phase-1 cannot be unbounded
        }
        if obj[cols].abs() > 1e-7 {
            // Objective row holds -(current value); nonzero ⇒ infeasible.
            return LpResult::Infeasible;
        }
        // Pivot any artificial still in the basis out (degenerate rows).
        for r in 0..m {
            if tab.basis[r] >= n + m {
                let mut pivoted = false;
                for c in 0..n + m {
                    if tab.t[r][c].abs() > EPS {
                        tab.pivot(r, c);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row; leave the artificial at value 0.
                }
            }
        }
    }

    // Phase 2: the real objective, restricted to structural + slack columns.
    let mut obj = vec![0.0; cols + 1];
    obj[..n].copy_from_slice(c);
    // Express in terms of the current basis.
    for r in 0..m {
        let bv = tab.basis[r];
        if bv < n && obj[bv].abs() > EPS {
            let f = obj[bv];
            for (o, &t) in obj.iter_mut().zip(&tab.t[r]) {
                *o -= f * t;
            }
        }
    }
    if !tab.optimize(&mut obj, n + m) {
        return LpResult::Unbounded;
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        if tab.basis[r] < n {
            x[tab.basis[r]] = tab.t[r][cols].max(0.0);
        }
    }
    let value = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    LpResult::Optimal { x, value }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(r: LpResult) -> (Vec<f64>, f64) {
        match r {
            LpResult::Optimal { x, value } => (x, value),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn basic_two_var() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6 → vertex (8/5, 6/5), v=2.8.
        let (x, v) = optimal(solve_lp(
            &[1.0, 1.0],
            &[vec![1.0, 2.0], vec![3.0, 1.0]],
            &[4.0, 6.0],
        ));
        assert!((v - 2.8).abs() < 1e-7, "{v}");
        assert!((x[0] - 1.6).abs() < 1e-7 && (x[1] - 1.2).abs() < 1e-7);
    }

    #[test]
    fn equality_via_two_inequalities() {
        // max x0 s.t. x0 + x1 = 1 → 1.
        let (x, v) = optimal(solve_lp(
            &[1.0, 0.0],
            &[vec![1.0, 1.0], vec![-1.0, -1.0]],
            &[1.0, -1.0],
        ));
        assert!((v - 1.0).abs() < 1e-7);
        assert!((x[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ -1, x ≥ 0.
        let r = solve_lp(&[1.0], &[vec![1.0]], &[-1.0]);
        assert_eq!(r, LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let r = solve_lp(&[1.0, 0.0], &[vec![0.0, 1.0]], &[1.0]);
        assert_eq!(r, LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_feasible() {
        // x0 ≥ 0.3 (as -x0 ≤ -0.3), x0 ≤ 0.7; max -x0 → x0 = 0.3.
        let (x, _) = optimal(solve_lp(&[-1.0], &[vec![-1.0], vec![1.0]], &[-0.3, 0.7]));
        assert!((x[0] - 0.3).abs() < 1e-7, "{x:?}");
    }

    #[test]
    fn degenerate_equality_system() {
        // Simplex-sum plus a pinned coordinate: x0+x1+x2 = 1, x2 = 0.
        let a = vec![
            vec![1.0, 1.0, 1.0],
            vec![-1.0, -1.0, -1.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, -1.0],
        ];
        let b = vec![1.0, -1.0, 0.0, 0.0];
        let (x, v) = optimal(solve_lp(&[0.0, 1.0, 0.0], &a, &b));
        assert!((v - 1.0).abs() < 1e-7);
        assert!((x[1] - 1.0).abs() < 1e-7);
        assert!(x[2].abs() < 1e-9);
    }

    /// Randomized validation against brute-force vertex enumeration.
    #[test]
    fn random_lps_match_vertex_enumeration() {
        // Simple deterministic LCG to avoid a rand dev-dependency here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _trial in 0..200 {
            let n = 2;
            let m = 3;
            let c: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
            let a: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| next() * 2.0 - 1.0).collect())
                .collect();
            let b: Vec<f64> = (0..m).map(|_| next()).collect(); // b ≥ 0 → feasible at 0
                                                                // Brute force: vertices are intersections of constraint pairs
                                                                // (including axes), filtered for feasibility.
            let mut best = 0.0f64; // origin is feasible
            let mut lines: Vec<(f64, f64, f64)> = Vec::new(); // ax + by = c
            for i in 0..m {
                lines.push((a[i][0], a[i][1], b[i]));
            }
            lines.push((1.0, 0.0, 0.0));
            lines.push((0.0, 1.0, 0.0));
            for i in 0..lines.len() {
                for j in i + 1..lines.len() {
                    let (a1, b1, c1) = lines[i];
                    let (a2, b2, c2) = lines[j];
                    let det = a1 * b2 - a2 * b1;
                    if det.abs() < 1e-9 {
                        continue;
                    }
                    let x = (c1 * b2 - c2 * b1) / det;
                    let y = (a1 * c2 - a2 * c1) / det;
                    if x < -1e-9 || y < -1e-9 {
                        continue;
                    }
                    if (0..m).all(|k| a[k][0] * x + a[k][1] * y <= b[k] + 1e-7) {
                        best = best.max(c[0] * x + c[1] * y);
                    }
                }
            }
            match solve_lp(&c, &a, &b) {
                LpResult::Optimal { value, .. } => {
                    assert!(
                        (value - best).abs() < 1e-5,
                        "simplex {value} vs brute {best} (c={c:?} a={a:?} b={b:?})"
                    );
                }
                LpResult::Unbounded => {
                    // Brute-force "best" only explores vertices; unbounded
                    // LPs have a feasible ray. Verify by scaling test: some
                    // direction d ≥ 0 with Ad ≤ 0 and c·d > 0 must exist —
                    // spot-check the axis directions and the two vertices'
                    // incident edges is overkill; accept when brute best is
                    // exceeded along an axis.
                    let ray_exists = (0..n).any(|j| c[j] > 1e-9 && (0..m).all(|k| a[k][j] <= 1e-9));
                    assert!(ray_exists || best < 1e9, "suspicious unbounded");
                }
                LpResult::Infeasible => panic!("b ≥ 0 is always feasible"),
            }
        }
    }
}
